//! Bit-reversal permutations.
//!
//! Both the NTT and the FFT in this workspace use decimation-in-time
//! Cooley–Tukey butterflies over bit-reversed inputs, exactly as Figure 3
//! of the paper. The sparse-dataflow analysis also needs to know where an
//! encoded coefficient lands after bit-reverse, so the permutation is
//! exposed as standalone functions.

/// Reverses the lowest `bits` bits of `x`.
///
/// # Examples
///
/// ```
/// use flash_math::bitrev::bit_reverse;
/// // (110)_2 -> (011)_2, the m[6] -> m_br[3] example from the paper.
/// assert_eq!(bit_reverse(6, 3), 3);
/// assert_eq!(bit_reverse(1, 4), 8);
/// ```
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Returns `log2(n)` for a power-of-two `n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    n.trailing_zeros()
}

/// Permutes `data` in place into bit-reversed order.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    let bits = log2_exact(n);
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Returns the bit-reversal permutation as an index table:
/// `table[i] = bit_reverse(i, log2(n))`.
pub fn bit_reverse_table(n: usize) -> Vec<usize> {
    let bits = log2_exact(n);
    (0..n).map(|i| bit_reverse(i, bits)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        for bits in 1..16u32 {
            for x in [0usize, 1, 3, (1 << bits) - 1, (1 << bits) / 2] {
                let x = x & ((1 << bits) - 1); // involution holds for x < 2^bits
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    #[test]
    fn known_small_tables() {
        assert_eq!(bit_reverse_table(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        assert_eq!(bit_reverse_table(4), vec![0, 2, 1, 3]);
        assert_eq!(bit_reverse_table(1), vec![0]);
    }

    #[test]
    fn permute_matches_table() {
        let n = 32;
        let mut v: Vec<usize> = (0..n).collect();
        bit_reverse_permute(&mut v);
        let t = bit_reverse_table(n);
        for i in 0..n {
            assert_eq!(v[i], t[i]);
        }
    }

    #[test]
    fn permute_twice_is_identity() {
        let mut v: Vec<u32> = (0..64).map(|i| i * 7 + 3).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn permute_rejects_non_power_of_two() {
        let mut v = [1, 2, 3];
        bit_reverse_permute(&mut v);
    }
}
