//! Chinese-remainder recombination for residue number systems (RNS).
//!
//! Multi-limb ciphertext moduli `Q = q₀·q₁·…` let BFV support deeper
//! accumulations than a single 62-bit prime. Garner's algorithm
//! reconstructs values in mixed radix, needing only double-width
//! arithmetic; with ≤ 3 limbs of ≤ 42 bits every intermediate fits
//! `u128`/`i128`.

use crate::modular::{inv_mod, mul_mod, sub_mod};

/// A CRT basis: pairwise-coprime moduli and the Garner precomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtBasis {
    moduli: Vec<u64>,
    /// `inv[j][i] = (q_i)^{-1} mod q_j` for `i < j` (Garner constants).
    inv: Vec<Vec<u64>>,
}

impl CrtBasis {
    /// Builds a basis from pairwise-coprime moduli.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one modulus is given, any modulus is < 2, the
    /// moduli are not pairwise coprime, or the product would overflow
    /// `u128` headroom for centered lifts (`Π q_i ≥ 2^126`).
    pub fn new(moduli: Vec<u64>) -> Self {
        assert!(!moduli.is_empty(), "need at least one modulus");
        let mut prod: u128 = 1;
        for &q in &moduli {
            assert!(q >= 2, "modulus {q} too small");
            prod = prod
                .checked_mul(q as u128)
                .filter(|&p| p < (1u128 << 126))
                .expect("modulus product too large");
        }
        let k = moduli.len();
        let mut inv = vec![vec![0u64; k]; k];
        for j in 0..k {
            for i in 0..j {
                inv[j][i] = inv_mod(moduli[i] % moduli[j], moduli[j])
                    .expect("moduli must be pairwise coprime");
            }
        }
        Self { moduli, inv }
    }

    /// The moduli.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of limbs.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the basis is empty (never true for a constructed basis).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The modulus product `Q`.
    pub fn product(&self) -> u128 {
        self.moduli.iter().map(|&q| q as u128).product()
    }

    /// Reduces an unsigned big value into residues.
    pub fn decompose_u128(&self, x: u128) -> Vec<u64> {
        self.moduli
            .iter()
            .map(|&q| (x % q as u128) as u64)
            .collect()
    }

    /// Reduces a signed value into residues.
    pub fn decompose_i128(&self, x: i128) -> Vec<u64> {
        self.moduli
            .iter()
            .map(|&q| x.rem_euclid(q as i128) as u64)
            .collect()
    }

    /// Garner reconstruction: residues → the unique value in `[0, Q)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn reconstruct(&self, residues: &[u64]) -> u128 {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        // mixed-radix digits: v = d0 + d1·q0 + d2·q0·q1 + ...
        let k = self.len();
        let mut digits = vec![0u64; k];
        for j in 0..k {
            let qj = self.moduli[j];
            // subtract the already-known digits, in Z_qj
            let mut acc = residues[j] % qj;
            let mut radix = 1u64 % qj;
            for (&di, &mi) in digits.iter().zip(&self.moduli).take(j) {
                let term = mul_mod(di % qj, radix, qj);
                acc = sub_mod(acc, term, qj);
                radix = mul_mod(radix, mi % qj, qj);
            }
            // divide by the radix (q0·…·q_{j-1}) mod qj
            let mut digit = acc;
            for i in 0..j {
                digit = mul_mod(digit, self.inv[j][i], qj);
            }
            digits[j] = digit;
        }
        let mut value: u128 = 0;
        let mut radix: u128 = 1;
        for (&d, &m) in digits.iter().zip(&self.moduli) {
            value += d as u128 * radix;
            radix *= m as u128;
        }
        value
    }

    /// Reconstruction followed by a center lift into `(-Q/2, Q/2]`.
    pub fn reconstruct_centered(&self, residues: &[u64]) -> i128 {
        let v = self.reconstruct(residues);
        let q = self.product();
        if v > q / 2 {
            v as i128 - q as i128
        } else {
            v as i128
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_limb_roundtrip() {
        let b = CrtBasis::new(vec![97, 101]);
        for x in [0u128, 1, 96, 97, 5000, 97 * 101 - 1] {
            assert_eq!(b.reconstruct(&b.decompose_u128(x)), x);
        }
    }

    #[test]
    fn three_limb_large_primes() {
        let p1 = flash_prime(39, 4096, 0);
        let p2 = flash_prime(39, 4096, 1);
        let p3 = flash_prime(38, 4096, 0);
        let b = CrtBasis::new(vec![p1, p2, p3]);
        let q = b.product();
        for x in [0u128, 1, q / 3, q - 1, (1u128 << 100) % q] {
            assert_eq!(b.reconstruct(&b.decompose_u128(x)), x, "x = {x}");
        }
    }

    fn flash_prime(bits: u32, n: u64, skip: usize) -> u64 {
        crate::prime::ntt_primes(bits, n, skip + 1)[skip]
    }

    #[test]
    fn signed_decompose_and_center() {
        let b = CrtBasis::new(vec![97, 101]);
        for x in [-4000i128, -1, 0, 1, 4000] {
            let r = b.decompose_i128(x);
            assert_eq!(b.reconstruct_centered(&r), x);
        }
    }

    #[test]
    fn crt_is_ring_homomorphism() {
        let b = CrtBasis::new(vec![97, 101, 103]);
        let q = b.product();
        let (x, y) = (123_456u128, 789_012u128);
        let rx = b.decompose_u128(x);
        let ry = b.decompose_u128(y);
        let sum: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.moduli())
            .map(|((&a, &c), &m)| crate::modular::add_mod(a, c, m))
            .collect();
        assert_eq!(b.reconstruct(&sum), (x + y) % q);
        let prod: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.moduli())
            .map(|((&a, &c), &m)| mul_mod(a, c, m))
            .collect();
        assert_eq!(b.reconstruct(&prod), (x * y) % q);
    }

    #[test]
    #[should_panic(expected = "pairwise coprime")]
    fn rejects_non_coprime() {
        CrtBasis::new(vec![6, 10]);
    }

    #[test]
    fn single_limb_degenerate() {
        let b = CrtBasis::new(vec![97]);
        assert_eq!(b.reconstruct(&[42]), 42);
        assert_eq!(b.product(), 97);
    }
}
