//! Primality testing, factoring and NTT-friendly prime search.
//!
//! The exact-NTT baseline needs primes `q ≡ 1 (mod 2N)` so that a
//! primitive `2N`-th root of unity ψ exists (negacyclic NTT). This module
//! provides a deterministic Miller–Rabin test for `u64`, Pollard-rho
//! factoring (to find primitive roots), and search helpers.

use crate::modular::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin primality test for `u64`.
///
/// Uses the base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`, which
/// is known to be exact for all `n < 3.3 * 10^24`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Pollard-rho factorization step: finds one non-trivial factor of a
/// composite `n`.
fn pollard_rho(n: u64) -> u64 {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u64;
    loop {
        let mut x = 2u64;
        let mut y = 2u64;
        let mut d = 1u64;
        while d == 1 {
            x = (mul_mod(x, x, n) + c) % n;
            y = (mul_mod(y, y, n) + c) % n;
            y = (mul_mod(y, y, n) + c) % n;
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Returns the sorted set of distinct prime factors of `n`.
///
/// # Examples
///
/// ```
/// assert_eq!(flash_math::prime::distinct_prime_factors(12), vec![2, 3]);
/// ```
pub fn distinct_prime_factors(n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut stack = Vec::new();
    if n <= 1 {
        return factors;
    }
    stack.push(n);
    while let Some(m) = stack.pop() {
        if is_prime(m) {
            if !factors.contains(&m) {
                factors.push(m);
            }
            continue;
        }
        // Strip small factors quickly before rho.
        let mut m = m;
        for p in [2u64, 3, 5, 7, 11, 13] {
            while m % p == 0 {
                if !factors.contains(&p) {
                    factors.push(p);
                }
                m /= p;
            }
        }
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            if !factors.contains(&m) {
                factors.push(m);
            }
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    factors.sort_unstable();
    factors
}

/// Finds a generator (primitive root) of the multiplicative group of
/// `Z_p^*` for prime `p`.
///
/// # Panics
///
/// Panics if `p` is not prime.
pub fn primitive_root(p: u64) -> u64 {
    assert!(is_prime(p), "primitive_root requires a prime modulus");
    if p == 2 {
        return 1;
    }
    let factors = distinct_prime_factors(p - 1);
    'g: for g in 2..p {
        for &f in &factors {
            if pow_mod(g, (p - 1) / f, p) == 1 {
                continue 'g;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

/// Returns a primitive `n`-th root of unity modulo prime `p`.
///
/// # Panics
///
/// Panics if `n` does not divide `p - 1` or `p` is not prime.
pub fn primitive_nth_root(n: u64, p: u64) -> u64 {
    assert!(
        (p - 1).is_multiple_of(n),
        "n = {n} must divide p - 1 = {} for a primitive root to exist",
        p - 1
    );
    let g = primitive_root(p);
    let root = pow_mod(g, (p - 1) / n, p);
    debug_assert_eq!(pow_mod(root, n, p), 1);
    root
}

/// Finds the largest prime `q < 2^bits` with `q ≡ 1 (mod 2n)`, i.e. an
/// NTT-friendly prime supporting the negacyclic transform of length `n`.
///
/// Returns `None` if no such prime exists below `2^bits` (only plausible
/// for tiny `bits`).
///
/// # Examples
///
/// ```
/// let q = flash_math::prime::ntt_prime(30, 4096).unwrap();
/// assert!(q < (1 << 30));
/// assert_eq!(q % (2 * 4096), 1);
/// ```
pub fn ntt_prime(bits: u32, n: u64) -> Option<u64> {
    assert!(bits <= 62, "moduli above 2^62 are not supported");
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let m = 2 * n;
    let top = 1u64 << bits;
    // Largest candidate of the form k*m + 1 below 2^bits.
    let mut k = (top - 2) / m;
    while k > 0 {
        let cand = k * m + 1;
        if is_prime(cand) {
            return Some(cand);
        }
        k -= 1;
    }
    None
}

/// Finds `count` distinct NTT-friendly primes just below `2^bits`.
pub fn ntt_primes(bits: u32, n: u64, count: usize) -> Vec<u64> {
    assert!(bits <= 62);
    let m = 2 * n;
    let top = 1u64 << bits;
    let mut k = (top - 2) / m;
    let mut out = Vec::with_capacity(count);
    while k > 0 && out.len() < count {
        let cand = k * m + 1;
        if is_prime(cand) {
            out.push(cand);
        }
        k -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 4294967291];
        let composites = [
            0u64, 1, 4, 9, 15, 91, 6601, /* Carmichael */
            4294967295,
        ];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn large_known_primes() {
        // SEAL's 61-bit prime and a 50-bit NTT prime.
        assert!(is_prime(0x1FFF_FFFF_FFE0_0001));
        assert!(!is_prime(0x1FFF_FFFF_FFE0_0003));
    }

    #[test]
    fn factors_of_highly_composite() {
        assert_eq!(
            distinct_prime_factors(2 * 2 * 3 * 3 * 5 * 41),
            vec![2, 3, 5, 41]
        );
        assert_eq!(distinct_prime_factors(1), Vec::<u64>::new());
        assert_eq!(distinct_prime_factors(97), vec![97]);
        // Semiprime with large-ish factors exercises Pollard rho.
        assert_eq!(
            distinct_prime_factors(1_000_003u64 * 999_983),
            vec![999_983, 1_000_003]
        );
    }

    #[test]
    fn primitive_root_has_full_order() {
        for p in [17u64, 97, 7681, 12289] {
            let g = primitive_root(p);
            // g^((p-1)/f) != 1 for every prime factor f.
            for f in distinct_prime_factors(p - 1) {
                assert_ne!(pow_mod(g, (p - 1) / f, p), 1);
            }
            assert_eq!(pow_mod(g, p - 1, p), 1);
        }
    }

    #[test]
    fn nth_root_order_is_exact() {
        let p = 12289u64; // = 3 * 2^12 + 1
        let n = 2048u64;
        let w = primitive_nth_root(n, p);
        assert_eq!(pow_mod(w, n, p), 1);
        assert_ne!(pow_mod(w, n / 2, p), 1);
    }

    #[test]
    fn ntt_prime_search_finds_friendly_primes() {
        for (bits, n) in [(20u32, 1024u64), (30, 4096), (39, 4096), (60, 8192)] {
            let q = ntt_prime(bits, n).unwrap();
            assert!(q < (1u64 << bits));
            assert_eq!(q % (2 * n), 1);
            assert!(is_prime(q));
        }
    }

    #[test]
    fn ntt_primes_distinct_and_descending() {
        let ps = ntt_primes(40, 4096, 3);
        assert_eq!(ps.len(), 3);
        assert!(ps[0] > ps[1] && ps[1] > ps[2]);
        for p in ps {
            assert_eq!(p % 8192, 1);
        }
    }
}
