//! Canonical-signed-digit (CSD) quantization of twiddle factors.
//!
//! FLASH replaces the generic multiplier in the weight-transform butterfly
//! by a shift-add network: the pre-known twiddle factor is quantized to at
//! most `k` signed power-of-two terms, so `α × ω` becomes `k` shifted
//! copies of `α` feeding an adder tree (Figure 9 of the paper). The
//! quantization level `k` is the paper's main approximation knob
//! (`k ≈ 18` preserves accuracy without retraining; `k = 5` after
//! approximation-aware training).
//!
//! This module quantizes a real coefficient in `[-2, 2]` greedily into the
//! nearest `k`-term signed power-of-two sum, evaluates the quantization
//! error, and applies the shift-add product to integer operands exactly as
//! the hardware would.

use crate::fixed::Rounding;

/// One signed power-of-two term `± 2^{-shift}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CsdTerm {
    /// Right-shift amount (0 means the term is `±1`).
    pub shift: u32,
    /// Whether the term is subtracted.
    pub neg: bool,
}

impl CsdTerm {
    /// The real value of this term.
    #[inline]
    pub fn value(&self) -> f64 {
        let mag = (0.5f64).powi(self.shift as i32);
        if self.neg {
            -mag
        } else {
            mag
        }
    }
}

/// A coefficient represented as a sum of signed power-of-two terms.
///
/// # Examples
///
/// ```
/// use flash_math::csd::CsdCoeff;
/// // The paper's example: 21/32 = 2^-1 + 2^-3 + 2^-5.
/// let c = CsdCoeff::quantize(21.0 / 32.0, 3, 8);
/// assert_eq!(c.num_terms(), 3);
/// assert!((c.value() - 21.0 / 32.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsdCoeff {
    terms: Vec<CsdTerm>,
}

impl CsdCoeff {
    /// The zero coefficient (no terms).
    pub fn zero() -> Self {
        Self::default()
    }

    /// Greedily quantizes `x` into at most `k` signed power-of-two terms
    /// with shifts bounded by `max_shift`.
    ///
    /// Greedy nearest-power-of-two selection produces the canonical signed
    /// digit recoding for representable values and a near-optimal
    /// approximation otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `|x| > 2.0` (twiddle components are in `[-1, 1]`; a small
    /// margin is allowed for `√2`-style constants).
    pub fn quantize(x: f64, k: usize, max_shift: u32) -> Self {
        assert!(x.abs() <= 2.0, "coefficient {x} out of range for CSD");
        let mut terms = Vec::new();
        let mut residual = x;
        let min_mag = (0.5f64).powi(max_shift as i32);
        for _ in 0..k {
            if residual == 0.0 {
                break;
            }
            let mag = residual.abs();
            // A residual at or below half the resolution floor is closer
            // to zero than to any representable term (the `<=` matters:
            // a tie would otherwise oscillate between canceling ±2^-max
            // terms until the k budget is exhausted).
            if mag <= min_mag / 2.0 {
                break;
            }
            // Value-nearest power of two to |residual| within the shift
            // budget: between 2^e and 2^{e+1} the arithmetic midpoint is
            // 1.5·2^e, not the geometric one `log2().round()` would use.
            let e_low = mag.log2().floor() as i32;
            let exp = if mag - (2.0f64).powi(e_low) > (2.0f64).powi(e_low + 1) - mag {
                e_low + 1
            } else {
                e_low
            };
            let exp = exp.clamp(-(max_shift as i32), 0);
            let term_mag = (2.0f64).powi(exp);
            let neg = residual < 0.0;
            let shift = (-exp) as u32;
            // Merge with an existing equal term only if signs cancel (should
            // not happen with greedy selection, but keep the invariant).
            terms.push(CsdTerm { shift, neg });
            residual -= if neg { -term_mag } else { term_mag };
        }
        Self { terms }
    }

    /// Quantizes `x` with full precision at `frac_bits` resolution
    /// (as many terms as the CSD recoding needs). Useful to measure the
    /// "natural" digit count of a twiddle factor.
    pub fn quantize_exact(x: f64, frac_bits: u32) -> Self {
        // More than frac_bits terms can never be required by CSD.
        Self::quantize(x, frac_bits as usize + 2, frac_bits)
    }

    /// Number of non-zero terms (the hardware cost driver `k`).
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the terms.
    pub fn terms(&self) -> impl Iterator<Item = &CsdTerm> {
        self.terms.iter()
    }

    /// The exact real value represented by this coefficient.
    pub fn value(&self) -> f64 {
        self.terms.iter().map(|t| t.value()).sum()
    }

    /// The largest shift used (drives MUX sizing in the paper's Figure 9).
    pub fn max_shift(&self) -> u32 {
        self.terms.iter().map(|t| t.shift).max().unwrap_or(0)
    }

    /// Applies the shift-add product to an integer operand: computes
    /// `raw × value()` where each term is an arithmetic right shift of
    /// `raw` with the given rounding, exactly as the hardware adder tree
    /// does. The result keeps the operand's fraction alignment.
    pub fn apply_i128(&self, raw: i128, rounding: Rounding) -> i128 {
        let mut acc = 0i128;
        for t in &self.terms {
            let shifted = shift_right(raw, t.shift, rounding);
            if t.neg {
                acc -= shifted;
            } else {
                acc += shifted;
            }
        }
        acc
    }
}

/// Arithmetic right shift with rounding (the per-term rounder in the
/// shift-add multiplier).
#[inline]
fn shift_right(v: i128, shift: u32, rounding: Rounding) -> i128 {
    if shift == 0 {
        return v;
    }
    let (out, _) = crate::fixed::rescale(v, shift, 0, rounding);
    out
}

/// Returns the CSD digit count of `x` at `frac_bits` resolution — the
/// number of non-zero signed digits in the canonical recoding. This is the
/// paper's "number of 1s in the binary format" metric `k`.
pub fn csd_digit_count(x: f64, frac_bits: u32) -> usize {
    CsdCoeff::quantize_exact(x, frac_bits).num_terms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_21_over_32() {
        let c = CsdCoeff::quantize(21.0 / 32.0, 5, 8);
        // 21/32 = 0.65625 = 0.5 + 0.125 + 0.03125 = 2^-1 + 2^-3 + 2^-5
        assert_eq!(c.num_terms(), 3);
        assert!((c.value() - 0.65625).abs() < 1e-15);
        assert_eq!(c.max_shift(), 5);
    }

    #[test]
    fn csd_beats_plain_binary_for_0_9375() {
        // 15/16 = 0.1111b needs 4 plain-binary ones but CSD gives 1 - 2^-4
        // = 2 terms.
        let c = CsdCoeff::quantize(0.9375, 8, 8);
        assert_eq!(c.num_terms(), 2);
        assert!((c.value() - 0.9375).abs() < 1e-15);
    }

    #[test]
    fn k_truncation_controls_error() {
        let x = std::f64::consts::FRAC_1_SQRT_2; // cos(pi/4), a real twiddle
        let mut prev_err = f64::INFINITY;
        for k in 1..=12 {
            let c = CsdCoeff::quantize(x, k, 24);
            let err = (c.value() - x).abs();
            assert!(err <= prev_err + 1e-18, "error must not grow with k");
            prev_err = err;
        }
        assert!(prev_err < 1e-6, "12-term CSD should be very accurate");
    }

    #[test]
    fn negative_and_zero_values() {
        let c = CsdCoeff::quantize(-0.65625, 5, 8);
        assert!((c.value() + 0.65625).abs() < 1e-15);
        let z = CsdCoeff::quantize(0.0, 5, 8);
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.value(), 0.0);
        assert_eq!(CsdCoeff::zero().apply_i128(12345, Rounding::Truncate), 0);
    }

    #[test]
    fn apply_matches_float_product_within_rounding() {
        let x = 0.598_765;
        let c = CsdCoeff::quantize(x, 8, 16);
        let alpha: i128 = 1 << 20;
        let got = c.apply_i128(alpha, Rounding::NearestEven);
        let want = (alpha as f64 * c.value()).round() as i128;
        // Each of the <=8 terms may round by 1/2 LSB.
        assert!((got - want).abs() <= 8, "got {got} want {want}");
    }

    #[test]
    fn apply_exact_for_exact_shifts() {
        // 0.5 + 0.25: applying to a multiple of 4 is exact.
        let c = CsdCoeff::quantize(0.75, 4, 4);
        assert_eq!(c.apply_i128(16, Rounding::Truncate), 12);
        assert_eq!(c.apply_i128(-16, Rounding::Truncate), -12);
    }

    #[test]
    fn digit_count_of_ones_and_powers() {
        assert_eq!(csd_digit_count(1.0, 16), 1);
        assert_eq!(csd_digit_count(0.5, 16), 1);
        assert_eq!(csd_digit_count(0.0, 16), 0);
        assert_eq!(csd_digit_count(0.75, 16), 2); // 1 - 2^-2
    }

    #[test]
    fn resolution_floor_tie_does_not_oscillate() {
        // A residual exactly at half the resolution floor must terminate
        // the greedy loop, not emit chains of canceling ±2^-max terms.
        let c = CsdCoeff::quantize_exact((2.0f64).powi(-21), 20);
        assert!(c.num_terms() <= 1, "got {} terms", c.num_terms());
        // and mid-quantization ties must not burn the k budget
        let c = CsdCoeff::quantize(0.5 + (2.0f64).powi(-21), 3, 20);
        assert!(c.num_terms() <= 2, "got {} terms", c.num_terms());
        assert!((c.value() - 0.5).abs() <= (2.0f64).powi(-21) + 1e-18);
    }

    #[test]
    fn greedy_picks_value_nearest_power() {
        // 0.71 lies between 0.5 and 1.0; 0.5 is nearer in value (0.21 vs
        // 0.29) even though log2 rounding would pick 1.0.
        let c = CsdCoeff::quantize(0.71, 1, 24);
        assert_eq!(c.num_terms(), 1);
        assert!((c.value() - 0.5).abs() < 1e-15, "picked {}", c.value());
    }

    #[test]
    fn quantize_error_bounded_by_resolution() {
        // With unlimited terms, the error is below the shift resolution.
        for &x in &[0.1, 0.333, std::f64::consts::FRAC_1_SQRT_2, 0.999, -0.45] {
            let c = CsdCoeff::quantize_exact(x, 20);
            assert!((c.value() - x).abs() < (0.5f64).powi(19), "x={x}");
        }
    }
}
