//! Parameterized fixed-point arithmetic.
//!
//! The approximate FFT datapath in FLASH carries fixed-point values whose
//! width can differ per butterfly stage (the DSE variable `dw_i`). This
//! module models such values explicitly: a raw `i128` integer plus a
//! [`FxpFormat`] describing how many integer and fraction bits the hardware
//! register holds. Requantization between formats applies a configurable
//! [`Rounding`] mode and an [`Overflow`] policy, and reports what happened
//! through [`QuantFlags`] so error models can count rounding and
//! saturation events.
//!
//! A signed format with `int_bits = i` and `frac_bits = f` occupies
//! `1 + i + f` hardware bits and represents multiples of `2^-f` in
//! `[-2^i, 2^i)`.

use std::fmt;

/// A signed fixed-point format: `1 + int_bits + frac_bits` hardware bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FxpFormat {
    /// Number of integer (magnitude) bits, excluding the sign bit.
    pub int_bits: u32,
    /// Number of fraction bits.
    pub frac_bits: u32,
}

impl FxpFormat {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics if the total width `1 + int_bits + frac_bits` exceeds 96 bits
    /// (products must still fit in `i128`).
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        assert!(
            1 + int_bits + frac_bits <= 96,
            "fixed-point format too wide: {}",
            1 + int_bits + frac_bits
        );
        Self {
            int_bits,
            frac_bits,
        }
    }

    /// Total hardware register width in bits (sign + integer + fraction).
    #[inline]
    pub fn total_bits(&self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    /// The largest representable raw value, `2^(int+frac) - 1`.
    #[inline]
    pub fn max_raw(&self) -> i128 {
        (1i128 << (self.int_bits + self.frac_bits)) - 1
    }

    /// The smallest representable raw value, `-2^(int+frac)`.
    #[inline]
    pub fn min_raw(&self) -> i128 {
        -(1i128 << (self.int_bits + self.frac_bits))
    }

    /// The real value of one least-significant bit, `2^-frac_bits`.
    #[inline]
    pub fn lsb(&self) -> f64 {
        (0.5f64).powi(self.frac_bits as i32)
    }
}

impl fmt::Display for FxpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.int_bits, self.frac_bits)
    }
}

/// How requantization rounds when fraction bits are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest, ties to even (default; what a well-designed
    /// datapath uses).
    #[default]
    NearestEven,
    /// Round to nearest, ties away from zero (cheapest "add half" rounder).
    NearestAway,
    /// Truncate toward negative infinity (drop bits — free in hardware).
    Truncate,
}

/// What happens when a value exceeds the destination format's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Overflow {
    /// Clamp to the representable extremes (saturating arithmetic).
    #[default]
    Saturate,
    /// Wrap modulo the register width (two's-complement overflow).
    Wrap,
}

/// Events observed during a requantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantFlags {
    /// The dropped fraction bits were non-zero (information was lost).
    pub rounded: bool,
    /// The value exceeded the representable range.
    pub overflowed: bool,
}

/// Accumulated quantization statistics, used by the FFT error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantStats {
    /// Total requantizations performed.
    pub total: u64,
    /// Requantizations that lost fraction bits.
    pub rounded: u64,
    /// Requantizations that overflowed the destination range.
    pub overflowed: u64,
}

impl QuantStats {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one requantization outcome.
    #[inline]
    pub fn record(&mut self, flags: QuantFlags) {
        self.total += 1;
        if flags.rounded {
            self.rounded += 1;
        }
        if flags.overflowed {
            self.overflowed += 1;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &QuantStats) {
        self.total += other.total;
        self.rounded += other.rounded;
        self.overflowed += other.overflowed;
    }
}

/// Rescales a raw value with `from_frac` fraction bits to `to_frac`
/// fraction bits using the given rounding mode. The output range grows as
/// needed within `i128`.
///
/// # Panics
///
/// Panics if an up-shift (`to_frac > from_frac`) would push the value
/// past `i128` — silent wrap-around here would corrupt the datapath
/// without setting any overflow flag.
#[inline]
pub fn rescale(raw: i128, from_frac: u32, to_frac: u32, rounding: Rounding) -> (i128, bool) {
    if to_frac >= from_frac {
        let shift = to_frac - from_frac;
        if shift == 0 {
            return (raw, false);
        }
        assert!(
            raw == 0 || shift < 127 && raw.unsigned_abs().leading_zeros() > shift,
            "rescale up-shift by {shift} overflows i128 for raw {raw}"
        );
        return (raw << shift, false);
    }
    let shift = from_frac - to_frac;
    let dropped_mask = (1i128 << shift) - 1;
    let dropped = raw & dropped_mask;
    let floor = raw >> shift; // arithmetic shift: floor division
    if dropped == 0 {
        return (floor, false);
    }
    let half = 1i128 << (shift - 1);
    let out = match rounding {
        Rounding::Truncate => floor,
        Rounding::NearestAway => {
            // Round half away from zero on the *value*, i.e. half up for
            // positives, half down for negatives.
            if raw >= 0 {
                (raw + half) >> shift
            } else {
                -(((-raw) + half) >> shift)
            }
        }
        Rounding::NearestEven => {
            if dropped > half {
                floor + 1
            } else if dropped < half {
                floor
            } else if floor & 1 == 1 {
                floor + 1
            } else {
                floor
            }
        }
    };
    (out, true)
}

/// Requantizes `raw` (with `from_frac` fraction bits) into format `fmt`,
/// applying the rounding mode and overflow policy.
///
/// Returns the new raw value (with `fmt.frac_bits` fraction bits) and the
/// observed [`QuantFlags`].
pub fn requantize(
    raw: i128,
    from_frac: u32,
    fmt: FxpFormat,
    rounding: Rounding,
    overflow: Overflow,
) -> (i128, QuantFlags) {
    let (mut v, rounded) = rescale(raw, from_frac, fmt.frac_bits, rounding);
    let mut overflowed = false;
    if v > fmt.max_raw() || v < fmt.min_raw() {
        overflowed = true;
        match overflow {
            Overflow::Saturate => {
                v = if v > 0 { fmt.max_raw() } else { fmt.min_raw() };
            }
            Overflow::Wrap => {
                let width = fmt.total_bits();
                let modulus = 1i128 << width;
                let mut w = v & (modulus - 1);
                if w >= modulus / 2 {
                    w -= modulus;
                }
                v = w;
            }
        }
    }
    (
        v,
        QuantFlags {
            rounded,
            overflowed,
        },
    )
}

/// Converts an `f64` into the raw representation of `fmt` (round to
/// nearest, saturating).
pub fn from_f64(x: f64, fmt: FxpFormat) -> i128 {
    let scaled = x * (fmt.frac_bits as f64).exp2();
    let v = scaled.round_ties_even();
    // Pre-clamp in f64 only to make the i128 cast safe; the authoritative
    // clamp happens in integer space (for wide formats, max_raw() as f64
    // rounds *up* to 2^(int+frac), one past the representable range).
    let v = v.clamp(-(2.0f64.powi(100)), 2.0f64.powi(100)) as i128;
    v.clamp(fmt.min_raw(), fmt.max_raw())
}

/// Converts a raw value with `frac` fraction bits back to `f64`.
#[inline]
pub fn to_f64(raw: i128, frac: u32) -> f64 {
    raw as f64 * (-(frac as f64)).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ranges() {
        let fmt = FxpFormat::new(2, 3); // s2.3: 6 bits total
        assert_eq!(fmt.total_bits(), 6);
        assert_eq!(fmt.max_raw(), 31);
        assert_eq!(fmt.min_raw(), -32);
        assert_eq!(fmt.lsb(), 0.125);
        assert_eq!(fmt.to_string(), "s2.3");
    }

    #[test]
    fn rescale_up_is_exact() {
        let (v, lost) = rescale(5, 2, 6, Rounding::NearestEven);
        assert_eq!(v, 5 << 4);
        assert!(!lost);
    }

    #[test]
    fn rescale_down_rounding_modes() {
        // raw 0b1011 with 2 frac bits = 2.75; dropping both frac bits:
        assert_eq!(rescale(0b1011, 2, 0, Rounding::Truncate), (2, true));
        assert_eq!(rescale(0b1011, 2, 0, Rounding::NearestAway), (3, true));
        assert_eq!(rescale(0b1011, 2, 0, Rounding::NearestEven), (3, true));
        // exact tie 2.5: even rounds to 2, away rounds to 3.
        assert_eq!(rescale(0b1010, 2, 0, Rounding::NearestEven), (2, true));
        assert_eq!(rescale(0b1010, 2, 0, Rounding::NearestAway), (3, true));
        // tie 3.5: even rounds to 4.
        assert_eq!(rescale(0b1110, 2, 0, Rounding::NearestEven), (4, true));
        // negatives: -2.5 -> even -2, away -3; truncate floors to -3.
        assert_eq!(rescale(-0b1010, 2, 0, Rounding::NearestEven), (-2, true));
        assert_eq!(rescale(-0b1010, 2, 0, Rounding::NearestAway), (-3, true));
        assert_eq!(rescale(-0b1010, 2, 0, Rounding::Truncate), (-3, true));
    }

    #[test]
    fn requantize_saturates() {
        let fmt = FxpFormat::new(2, 2); // range raw in [-16, 15]
        let (v, f) = requantize(100, 2, fmt, Rounding::NearestEven, Overflow::Saturate);
        assert_eq!(v, 15);
        assert!(f.overflowed && !f.rounded);
        let (v, f) = requantize(-100, 2, fmt, Rounding::NearestEven, Overflow::Saturate);
        assert_eq!(v, -16);
        assert!(f.overflowed);
    }

    #[test]
    fn requantize_wraps_like_twos_complement() {
        let fmt = FxpFormat::new(2, 2); // 5-bit register, raw range [-16, 15]
        let (v, f) = requantize(17, 2, fmt, Rounding::NearestEven, Overflow::Wrap);
        assert_eq!(v, 17 - 32);
        assert!(f.overflowed);
        let (v, _) = requantize(-17, 2, fmt, Rounding::NearestEven, Overflow::Wrap);
        assert_eq!(v, 32 - 17);
    }

    #[test]
    fn f64_roundtrip_within_lsb() {
        let fmt = FxpFormat::new(3, 10);
        for x in [-7.99, -1.0, -0.123, 0.0, 0.5, std::f64::consts::PI, 7.9] {
            let raw = from_f64(x, fmt);
            let back = to_f64(raw, fmt.frac_bits);
            assert!((back - x).abs() <= fmt.lsb() / 2.0 + 1e-12, "{x} -> {back}");
        }
        // saturation at the rails
        assert_eq!(from_f64(1e9, fmt), fmt.max_raw());
        assert_eq!(from_f64(-1e9, fmt), fmt.min_raw());
    }

    #[test]
    fn from_f64_saturates_within_range_for_wide_formats() {
        // (2^54 - 1) as f64 rounds up to 2^54; the clamp must happen in
        // integer space so saturation never exceeds max_raw().
        let fmt = FxpFormat::new(24, 30);
        let v = from_f64(1e9, fmt);
        assert!(v <= fmt.max_raw(), "{v} > {}", fmt.max_raw());
        assert_eq!(from_f64(-1e12, fmt), fmt.min_raw());
    }

    #[test]
    #[should_panic(expected = "up-shift")]
    fn rescale_up_shift_overflow_panics_instead_of_wrapping() {
        let _ = rescale(1i128 << 95, 0, 40, Rounding::NearestEven);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = QuantStats::new();
        s.record(QuantFlags {
            rounded: true,
            overflowed: false,
        });
        s.record(QuantFlags {
            rounded: false,
            overflowed: true,
        });
        let mut t = QuantStats::new();
        t.merge(&s);
        t.record(QuantFlags::default());
        assert_eq!(t.total, 3);
        assert_eq!(t.rounded, 1);
        assert_eq!(t.overflowed, 1);
    }

    #[test]
    fn rounding_error_bounded_by_half_lsb() {
        // Exhaustive check on a small format: |quantized - exact| <= lsb/2.
        let fmt = FxpFormat::new(6, 4);
        for raw in -4096i128..4096 {
            let (v, _) = requantize(raw, 8, fmt, Rounding::NearestEven, Overflow::Saturate);
            let exact = to_f64(raw, 8);
            let got = to_f64(v, 4);
            assert!((got - exact).abs() <= fmt.lsb() / 2.0 + 1e-12);
        }
    }
}
