//! Numeric foundations for the FLASH reproduction.
//!
//! This crate provides the arithmetic substrate shared by every other crate
//! in the workspace:
//!
//! * [`modular`] — 64-bit modular arithmetic (plain, Montgomery and
//!   Shoup-precomputed multiplication), used by the exact NTT baseline and
//!   the BFV scheme.
//! * [`prime`] — Miller–Rabin primality testing, Pollard-rho factoring and
//!   NTT-friendly prime / primitive-root search.
//! * [`bitrev`] — bit-reversal permutations shared by NTT and FFT.
//! * [`complex`] — a minimal `f64` complex number type ([`C64`]).
//! * [`fixed`] — parameterized fixed-point formats with explicit rounding
//!   and overflow behaviour, backing the approximate FFT simulator.
//! * [`csd`] — canonical-signed-digit quantization of twiddle factors into
//!   `k` signed power-of-two terms (the paper's shift-add multipliers).
//! * [`pow2`] — wrapping arithmetic in power-of-two rings `Z_{2^l}`, where
//!   modular reduction is a single AND (the `Pow2` ciphertext backend).
//! * [`stats`] — running statistics (Welford) used by the error models.
//!
//! # Examples
//!
//! ```
//! use flash_math::modular::{mul_mod, pow_mod};
//! assert_eq!(mul_mod(3, 5, 17), 15);
//! assert_eq!(pow_mod(2, 16, 17), 1);
//! ```

pub mod bitrev;
pub mod complex;
pub mod crt;
pub mod csd;
pub mod fixed;
pub mod modular;
pub mod pow2;
pub mod prime;
pub mod stats;

pub use complex::C64;
