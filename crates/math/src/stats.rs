//! Running statistics for error analysis.
//!
//! The DSE objective (Figure 11(b)/(c) of the paper) is the *error
//! variance* of homomorphic-convolution outputs; this module provides a
//! numerically stable Welford accumulator plus small helpers used across
//! the error models.

/// Numerically stable running mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan's parallel formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Computes the `p`-quantile (0 ≤ p ≤ 1) of a slice by sorting a copy.
/// Returns `None` for an empty slice.
pub fn quantile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let idx = (p.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
    Some(v[idx])
}

/// Geometric mean of strictly positive values (used for speedup summaries).
/// Returns `None` if any value is non-positive or the slice is empty.
pub fn geomean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = data.iter().map(|x| x.ln()).sum();
    Some((log_sum / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        s.extend(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(xs.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(51.0));
        assert_eq!(quantile(&v, 1.0), Some(101.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -1.0]), None);
        assert_eq!(geomean(&[]), None);
    }
}
