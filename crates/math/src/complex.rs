//! A minimal `f64` complex number.
//!
//! The workspace deliberately avoids external numeric crates; [`C64`] is
//! the full-precision reference arithmetic that the fixed-point butterfly
//! units in [`crate::fixed`] approximate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `e^{i·theta}` (a point on the unit circle).
    #[inline]
    pub fn expi(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplication by `i` (free in hardware: swap + negate).
    #[inline]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.abs2();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::new(re, 0.0)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_spotcheck() {
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.25, 3.0);
        let c = C64::new(4.0, 4.0);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c), a * b + a * c));
        assert!(close((a / b) * b, a));
        assert!(close(a + (-a), C64::ZERO));
    }

    #[test]
    fn conjugate_and_magnitude() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), C64::new(25.0, 0.0)));
    }

    #[test]
    fn expi_is_on_unit_circle() {
        for k in 0..16 {
            let t = std::f64::consts::PI * k as f64 / 8.0;
            let w = C64::expi(t);
            assert!((w.abs() - 1.0).abs() < 1e-15);
        }
        assert!(close(C64::expi(std::f64::consts::PI), C64::new(-1.0, 0.0)));
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let a = C64::new(2.0, -7.0);
        assert!(close(a.mul_i(), a * C64::I));
    }

    #[test]
    fn sum_and_scale() {
        let xs = [C64::new(1.0, 1.0), C64::new(2.0, -1.0), C64::new(-3.0, 0.5)];
        let s: C64 = xs.iter().copied().sum();
        assert!(close(s, C64::new(0.0, 0.5)));
        assert!(close(s.scale(2.0), C64::new(0.0, 1.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
