//! 64-bit modular arithmetic.
//!
//! Three multiplication strategies are provided, mirroring the options an
//! NTT hardware designer has (and which the FLASH paper's Table II costs
//! out):
//!
//! * [`mul_mod`] — straightforward `u128` widening multiply + remainder.
//! * [`Montgomery`] — Montgomery-form multiplication for a fixed odd
//!   modulus (the classic software NTT inner loop).
//! * [`Shoup`] — Shoup's precomputed-constant multiplication for a fixed
//!   multiplicand, the standard trick for twiddle factors.
//!
//! A fourth context, [`Barrett`], covers the remaining hot pattern:
//! reducing *arbitrary* wide integers (not products of reduced residues)
//! by a fixed modulus, as the FFT rounding paths must do for every
//! output coefficient.
//!
//! All moduli are required to be less than `2^63` so that `a + b` never
//! overflows `u64` for reduced operands.

/// Adds two reduced residues modulo `q`.
///
/// # Panics
///
/// Debug-asserts that both operands are already reduced.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates a residue modulo `q`.
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies two residues modulo `q` via a 128-bit widening product.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Computes `base^exp mod q` by square-and-multiply.
pub fn pow_mod(base: u64, mut exp: u64, q: u64) -> u64 {
    let mut base = base % q;
    let mut acc: u64 = 1 % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `q` via the extended
/// Euclidean algorithm.
///
/// Works for any modulus (prime or not) as long as `gcd(a, q) == 1`.
/// Returns `None` when `a` is not invertible.
pub fn inv_mod(a: u64, q: u64) -> Option<u64> {
    if q == 0 {
        return None;
    }
    let (mut old_r, mut r) = (a as i128 % q as i128, q as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quot = old_r / r;
        (old_r, r) = (r, old_r - quot * r);
        (old_s, s) = (s, old_s - quot * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % q as i128;
    if inv < 0 {
        inv += q as i128;
    }
    Some(inv as u64)
}

/// Centers a residue into the symmetric interval `(-q/2, q/2]`.
///
/// This is the "center lift" used when feeding ring elements into the
/// floating-point FFT, where magnitude (not residue class) determines the
/// numeric error.
#[inline]
pub fn center_lift(a: u64, q: u64) -> i64 {
    debug_assert!(a < q);
    if a > q / 2 {
        -((q - a) as i64)
    } else {
        a as i64
    }
}

/// Reduces a signed integer into `[0, q)`.
#[inline]
pub fn from_signed(a: i64, q: u64) -> u64 {
    let r = a.rem_euclid(q as i64);
    r as u64
}

/// Reduces a signed 128-bit integer into `[0, q)`.
#[inline]
pub fn from_signed_i128(a: i128, q: u64) -> u64 {
    a.rem_euclid(q as i128) as u64
}

/// Barrett-style division-free reduction for a fixed modulus.
///
/// Precomputes `m = ⌊2^128 / q⌋ + 1` once; [`Barrett::reduce`] then maps
/// any `u64` into `[0, q)` with three wide multiplies and no hardware
/// division (Lemire's "fastmod" in its 64-bit form). This matters on the
/// paths that reduce *arbitrary* integers rather than products of
/// already-reduced residues — above all the FFT rounding step, where a
/// naive `i128::rem_euclid` per coefficient compiles to a libcall
/// (`__umodti3`) and dominates the inverse-transform cost.
///
/// Every method is bit-identical to the corresponding
/// `rem_euclid`-based helper for every input; this is a speed change
/// only, and the unit tests pin that equivalence across the edge cases.
///
/// # Examples
///
/// ```
/// use flash_math::modular::{from_signed_i128, Barrett};
/// let b = Barrett::new(0x0000_000F_FFFF_FFEF);
/// assert_eq!(b.reduce(u64::MAX), u64::MAX % 0x0000_000F_FFFF_FFEF);
/// assert_eq!(b.from_signed_i128(-5), from_signed_i128(-5, b.modulus()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Barrett {
    q: u64,
    /// `⌊2^128 / q⌋ + 1`, except for powers of two where the `+ 1` is
    /// absorbed by the truncating division (the invariant that matters,
    /// `(m - 1)·q < 2^128 ≤ m·q`, holds either way).
    m: u128,
}

impl Barrett {
    /// Precomputes the reduction constant for modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` (reduction modulo 0 or 1 is degenerate) or if
    /// `q > 2^63` — the module-wide modulus bound, and also exactly the
    /// range for which the no-overflow argument in [`Barrett::reduce`]
    /// holds (`⌊2^128/q⌋ + 1 > 2^64 + q` for `q ≤ 2^63`).
    pub fn new(q: u64) -> Self {
        assert!(q > 1, "Barrett modulus must be at least 2");
        assert!(q <= 1 << 63, "Barrett modulus must not exceed 2^63");
        Self {
            q,
            m: u128::MAX / q as u128 + 1,
        }
    }

    /// The modulus this context reduces by.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Computes `a mod q` without a division.
    ///
    /// With `m·q ≥ 2^128 > (m - 1)·q`, the low 128 bits of `m·a` scaled
    /// by `q/2^128` recover the remainder exactly for any `a < 2^64`
    /// (Lemire, Kaser & Kurz, 2019): writing `a = k·q + r` and
    /// `m·q = 2^128 + e` with `0 ≤ e ≤ q`, the low word is
    /// `k·e + m·r` (no wraparound, since `k·e + m·r < 2^64 + q + 2^128
    /// − m ≤ 2^128` for `q ≤ 2^63`), and scaling it by `q/2^128` yields
    /// `r + ⌊e·a/2^128⌋ = r`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        let low = self.m.wrapping_mul(a as u128);
        // ⌊low·q / 2^128⌋ via two 64×64→128 partial products; dropping
        // the fraction bits of the low partial cannot perturb the outer
        // floor because the discarded part is < 1.
        let hi = low >> 64;
        let lo = low as u64 as u128;
        let q = self.q as u128;
        ((hi * q + ((lo * q) >> 64)) >> 64) as u64
    }

    /// Reduces every element of a slice in place — the bulk form of
    /// [`Barrett::reduce`] for draining lazily-accumulated residue
    /// vectors (sums held unreduced across many multiply-accumulates)
    /// back into `[0, q)` in one vectorizable pass.
    pub fn reduce_slice(&self, xs: &mut [u64]) {
        for x in xs {
            *x = self.reduce(*x);
        }
    }

    /// Reduces a signed 64-bit integer into `[0, q)`; the division-free
    /// twin of [`from_signed`].
    #[inline]
    pub fn from_signed(&self, a: i64) -> u64 {
        let r = self.reduce(a.unsigned_abs());
        if a < 0 && r != 0 {
            self.q - r
        } else {
            r
        }
    }

    /// Reduces a signed 128-bit integer into `[0, q)`; the division-free
    /// twin of [`from_signed_i128`].
    ///
    /// Magnitudes that fit in a `u64` — every value the FFT rounding
    /// paths produce within their proven coefficient bounds — take the
    /// fast path; wider magnitudes fall back to the exact library
    /// remainder so the function stays total.
    #[inline]
    pub fn from_signed_i128(&self, a: i128) -> u64 {
        match u64::try_from(a.unsigned_abs()) {
            Ok(mag) => {
                let r = self.reduce(mag);
                if a < 0 && r != 0 {
                    self.q - r
                } else {
                    r
                }
            }
            Err(_) => from_signed_i128(a, self.q),
        }
    }
}

/// Montgomery multiplication context for a fixed odd modulus `q < 2^63`.
///
/// Values are kept in Montgomery form `aR mod q` with `R = 2^64`.
///
/// # Examples
///
/// ```
/// use flash_math::modular::Montgomery;
/// let m = Montgomery::new(97).unwrap();
/// let a = m.to_mont(13);
/// let b = m.to_mont(29);
/// assert_eq!(m.from_mont(m.mul(a, b)), (13 * 29) % 97);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Montgomery {
    q: u64,
    /// `-q^{-1} mod 2^64`
    neg_qinv: u64,
    /// `R^2 mod q`, used to enter Montgomery form.
    r2: u64,
}

impl Montgomery {
    /// Creates a context for odd `q < 2^63`. Returns `None` for even or
    /// oversized moduli.
    pub fn new(q: u64) -> Option<Self> {
        if q.is_multiple_of(2) || !(3..(1 << 63)).contains(&q) {
            return None;
        }
        // Newton iteration for the inverse of q modulo 2^64.
        let mut inv: u64 = q; // correct to 3 bits
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        let r = (u64::MAX % q) + 1; // 2^64 mod q
        let r2 = mul_mod(r % q, r % q, q);
        Some(Self {
            q,
            neg_qinv: inv.wrapping_neg(),
            r2,
        })
    }

    /// The modulus this context reduces by.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Montgomery reduction of a 128-bit product.
    #[inline]
    fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.neg_qinv);
        let t = (t + m as u128 * self.q as u128) >> 64;
        let t = t as u64;
        if t >= self.q {
            t - self.q
        } else {
            t
        }
    }

    /// Converts a reduced residue into Montgomery form.
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        self.redc(a as u128 * self.r2 as u128)
    }

    /// Converts a value out of Montgomery form.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(a as u128)
    }

    /// Multiplies two Montgomery-form values, producing a Montgomery-form
    /// result.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }
}

/// Shoup precomputed-constant multiplication.
///
/// For a fixed multiplicand `w` (e.g. a twiddle factor), precompute
/// `w' = floor(w * 2^64 / q)`; then `a * w mod q` costs two multiplies and
/// no division. This is the scheme used in most software NTT kernels and is
/// the "optimized modular multiplier" family the paper compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shoup {
    w: u64,
    w_shoup: u64,
}

impl Shoup {
    /// Precomputes the Shoup constant for multiplicand `w` modulo `q`.
    #[inline]
    pub fn new(w: u64, q: u64) -> Self {
        debug_assert!(w < q);
        let w_shoup = ((w as u128) << 64) / q as u128;
        Self {
            w,
            w_shoup: w_shoup as u64,
        }
    }

    /// The plain (non-precomputed) multiplicand.
    #[inline]
    pub fn value(&self) -> u64 {
        self.w
    }

    /// Computes `a * w mod q` (result in `[0, q)`; requires `q < 2^63`).
    #[inline]
    pub fn mul(&self, a: u64, q: u64) -> u64 {
        let r = self.mul_lazy(a, q);
        if r >= q {
            r - q
        } else {
            r
        }
    }

    /// Harvey's lazy variant of [`Shoup::mul`]: skips the final
    /// conditional subtraction, returning a value congruent to
    /// `a * w mod q` in `[0, 2q)` — for *any* `a` (the operand need not
    /// be reduced), requiring only `q < 2^63`.
    ///
    /// This is the butterfly inner product of lazy-reduction NTTs: stages
    /// carry residues in `[0, 2q)`/`[0, 4q)` and normalize once at the
    /// end, saving one compare-subtract per multiply.
    #[inline]
    pub fn mul_lazy(&self, a: u64, q: u64) -> u64 {
        // With w' = ⌊w·2^64/q⌋ and hi = ⌊w'a/2^64⌋:
        //   w·a − hi·q ∈ [0, q·(1 + a/2^64)) ⊂ [0, 2q),
        // and since 2q < 2^64 the wrapping arithmetic below is exact.
        let hi = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        self.w.wrapping_mul(a).wrapping_sub(hi.wrapping_mul(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 0x1FFF_FFFF_FFE0_0001; // 61-bit prime used by SEAL

    #[test]
    fn barrett_matches_rem_euclid_on_edges() {
        // Moduli spanning the interesting shapes: tiny, odd, even,
        // powers of two, primes near word boundaries, and the largest
        // legal-for-arithmetic 63-bit values.
        let moduli = [
            2u64,
            3,
            5,
            255,
            256,
            (1 << 13),
            (1 << 16) + 1,
            (1 << 36) - 5,
            1 << 36,
            Q,
            (1 << 62) + 11,
            (1 << 63) - 1,
            1 << 63,
        ];
        for &q in &moduli {
            let b = Barrett::new(q);
            assert_eq!(b.modulus(), q);
            for a in [
                0u64,
                1,
                q - 1,
                q,
                q + 1,
                q.wrapping_mul(3),
                u64::MAX / 2,
                u64::MAX - 1,
                u64::MAX,
            ] {
                assert_eq!(b.reduce(a), a % q, "reduce({a}) mod {q}");
            }
            // `from_signed` itself casts `q` to `i64`, so its contract
            // (and this comparison) stops at `2^63 - 1`.
            if q < 1 << 63 {
                for a in [
                    0i64,
                    1,
                    -1,
                    i64::MAX,
                    i64::MIN,
                    -(q.min(1 << 62) as i64),
                    (q % (1 << 62)) as i64 + 7,
                ] {
                    assert_eq!(b.from_signed(a), from_signed(a, q), "signed {a} mod {q}");
                }
            }
            for a in [
                0i128,
                -1,
                i128::from(i64::MAX) + 1,
                i128::from(i64::MIN) - 1,
                1 << 100,
                -(1 << 100),
                i128::MAX,
                i128::MIN,
            ] {
                assert_eq!(
                    b.from_signed_i128(a),
                    from_signed_i128(a, q),
                    "signed wide {a} mod {q}"
                );
            }
        }
    }

    #[test]
    fn barrett_matches_rem_euclid_randomized() {
        // Deterministic LCG sweep — no `rand` dependency in this crate's
        // unit tests.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..64 {
            let q = (next() >> 1) | 1; // odd, below the 2^63 contract bound
            let b = Barrett::new(q.max(3));
            for _ in 0..256 {
                let a = next();
                assert_eq!(b.reduce(a), a % b.modulus());
                let s = a as i64;
                assert_eq!(b.from_signed(s), from_signed(s, b.modulus()));
                let w = ((next() as u128) << 64 | next() as u128) as i128;
                assert_eq!(b.from_signed_i128(w), from_signed_i128(w, b.modulus()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn barrett_rejects_trivial_modulus() {
        let _ = Barrett::new(1);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        for (a, b) in [(0u64, 0u64), (1, Q - 1), (Q / 2, Q / 2 + 1), (12345, 678)] {
            let s = add_mod(a, b, Q);
            assert_eq!(sub_mod(s, b, Q), a);
            assert_eq!(add_mod(a, neg_mod(a, Q), Q), 0);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let base = 123_456_789u64;
        let mut acc = 1u64;
        for e in 0..20u64 {
            assert_eq!(pow_mod(base, e, Q), acc);
            acc = mul_mod(acc, base, Q);
        }
    }

    #[test]
    fn inverse_of_invertible() {
        for a in [1u64, 2, 3, 1 << 40, Q - 1] {
            let inv = inv_mod(a, Q).expect("prime modulus: all nonzero invertible");
            assert_eq!(mul_mod(a, inv, Q), 1);
        }
        assert_eq!(inv_mod(0, Q), None);
        // Non-coprime case with a composite modulus.
        assert_eq!(inv_mod(6, 9), None);
        assert_eq!(inv_mod(2, 9), Some(5));
    }

    #[test]
    fn center_lift_bounds_and_roundtrip() {
        let q = 97u64;
        for a in 0..q {
            let c = center_lift(a, q);
            assert!(c > -(q as i64) / 2 - 1 && c <= q as i64 / 2);
            assert_eq!(from_signed(c, q), a);
        }
    }

    #[test]
    fn from_signed_i128_handles_extremes() {
        let q = 0x0FFF_F001u64;
        assert_eq!(from_signed_i128(-1, q), q - 1);
        assert_eq!(from_signed_i128(q as i128, q), 0);
        assert_eq!(from_signed_i128(-(q as i128) * 7 - 3, q), q - 3);
    }

    #[test]
    fn montgomery_matches_plain() {
        let m = Montgomery::new(Q).unwrap();
        let pairs = [
            (1u64, 1u64),
            (Q - 1, Q - 1),
            (0x1234_5678_9ABC, 0xFEDC_BA98),
            (Q / 3, Q / 5),
        ];
        for (a, b) in pairs {
            let am = m.to_mont(a);
            let bm = m.to_mont(b);
            assert_eq!(m.from_mont(m.mul(am, bm)), mul_mod(a, b, Q));
            assert_eq!(m.from_mont(am), a);
        }
    }

    #[test]
    fn montgomery_rejects_bad_moduli() {
        assert!(Montgomery::new(64).is_none());
        assert!(Montgomery::new(1u64 << 63).is_none());
        assert!(Montgomery::new(1).is_none());
    }

    #[test]
    fn shoup_matches_plain() {
        let ws = [1u64, 2, Q - 1, 0xABCDEF, Q / 2];
        let xs = [0u64, 1, Q - 1, 31_415_926_535];
        for w in ws {
            let s = Shoup::new(w, Q);
            assert_eq!(s.value(), w);
            for x in xs {
                assert_eq!(s.mul(x, Q), mul_mod(x, w, Q), "w={w} x={x}");
            }
        }
    }

    #[test]
    fn shoup_lazy_is_congruent_and_bounded() {
        let ws = [1u64, 2, Q - 1, 0xABCDEF, Q / 2];
        // Unreduced operands up to u64::MAX are legal for mul_lazy.
        let xs = [0u64, 1, Q - 1, 2 * Q + 5, 4 * Q - 1, u64::MAX];
        for w in ws {
            let s = Shoup::new(w, Q);
            for x in xs {
                let lazy = s.mul_lazy(x, Q);
                assert!(lazy < 2 * Q, "w={w} x={x}: {lazy} not in [0, 2q)");
                assert_eq!(lazy % Q, mul_mod(x % Q, w, Q), "w={w} x={x}: wrong residue");
            }
        }
    }
}
