//! Arithmetic in the power-of-two ring `Z_{2^l}` — free modular
//! reduction.
//!
//! When the ciphertext modulus is `q = 2^l`, reduction modulo `q` is a
//! single AND against `q − 1`, and — because `2^l` divides `2^64` — every
//! intermediate may be carried in plain wrapping 64-bit arithmetic: for
//! any integers `x, y`,
//!
//! ```text
//! (x ⊙ y mod 2^64) mod 2^l  =  (x ⊙ y) mod 2^l      ⊙ ∈ {+, −, ×}
//! ```
//!
//! so the multiply-accumulate inner loops below do **zero** reduction
//! work per element (no Barrett multiplies, no Shoup constants, no
//! compare-subtract) and drain once with a mask. This is the software
//! image of the Jaguar-style hardware datapath where the modular
//! reduction stage of every butterfly/MAC unit simply disappears; the
//! kernels here are the coefficient-domain half of the `Pow2` ciphertext
//! backend (the transform half lifts through the shared FFT machinery).
//!
//! Signed multipliers need no special casing either: two's-complement
//! wrapping multiplication by `w as u64` is exact multiplication by `w`
//! modulo `2^64`, hence modulo `2^l`.
//!
//! The modulus is capped at `2^62` (not `2^64`) because the rest of the
//! workspace fixes `q < 2^63` — `add_mod` carries in `u64`,
//! [`crate::modular::from_signed`] casts `q` to `i64` — and `2^62`
//! already gives the scheme more noise ceiling than any prime the NTT
//! baseline can use.

/// Checks that `q` is a supported power-of-two modulus: `2^2 ..= 2^62`.
#[inline]
pub fn is_pow2_modulus(q: u64) -> bool {
    q.is_power_of_two() && (4..=(1u64 << 62)).contains(&q)
}

/// The reduction mask `q − 1` for a power-of-two modulus.
///
/// # Panics
///
/// Debug-asserts that `q` is a supported power-of-two modulus.
#[inline]
pub fn mask(q: u64) -> u64 {
    debug_assert!(is_pow2_modulus(q), "not a power-of-two modulus: {q}");
    q - 1
}

/// Reduces one wrapped accumulator word into `[0, q)`: a single AND.
#[inline]
pub fn reduce(x: u64, q: u64) -> u64 {
    x & mask(q)
}

/// Drains a lazily-accumulated slice into `[0, q)` — the power-of-two
/// twin of [`crate::modular::Barrett::reduce_slice`], at one AND per
/// element instead of three wide multiplies.
pub fn reduce_slice(xs: &mut [u64], q: u64) {
    let m = mask(q);
    for x in xs {
        *x &= m;
    }
}

/// Element-wise lazy multiply-accumulate `acc[i] += a[i] · b[i]`, all in
/// wrapping 64-bit arithmetic. The accumulator carries raw wrapped sums;
/// [`reduce_slice`] drains it. This is the power-of-two counterpart of
/// the Harvey-lazy Shoup MAC (`pointwise_mul_acc_shoup_lazy` + a Barrett
/// drain): one multiply and one add per element, no reduction.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn mac_wrapping(acc: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(acc.len(), a.len(), "operand length mismatch");
    assert_eq!(acc.len(), b.len(), "operand length mismatch");
    for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        *d = d.wrapping_add(x.wrapping_mul(y));
    }
}

/// Scaled accumulate `acc[i] += a[i] · w` (wrapping) — the inner loop of
/// one negacyclic weight tap.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn axpy_wrapping(acc: &mut [u64], a: &[u64], w: u64) {
    assert_eq!(acc.len(), a.len(), "operand length mismatch");
    for (d, &x) in acc.iter_mut().zip(a) {
        *d = d.wrapping_add(x.wrapping_mul(w));
    }
}

/// Scaled wrapping subtract `acc[i] -= a[i] · w` — the sign-flipped tap
/// half that crosses the negacyclic wrap boundary.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn axpy_neg_wrapping(acc: &mut [u64], a: &[u64], w: u64) {
    assert_eq!(acc.len(), a.len(), "operand length mismatch");
    for (d, &x) in acc.iter_mut().zip(a) {
        *d = d.wrapping_sub(x.wrapping_mul(w));
    }
}

/// Sparse-tap negacyclic multiply-accumulate: for every tap `(j, w)`,
/// `acc += a · w·X^j mod (X^N + 1)` in wrapping arithmetic. Signed tap
/// values act through their two's-complement image (exact mod `2^l`).
/// The accumulator is left *unreduced*; callers drain with
/// [`reduce_slice`].
///
/// Cost is `N` wrapping multiply-adds per tap with zero reduction work —
/// for the handful of taps a quantized conv band carries, this beats any
/// transform and is **bit-exact**, which is why the runtime noise guard
/// reroutes onto it when a power-of-two band runs out of error budget.
///
/// # Panics
///
/// Panics if `acc` and `a` differ in length or a tap index is out of
/// range.
pub fn negacyclic_mac_taps(acc: &mut [u64], a: &[u64], taps: &[(usize, i64)]) {
    let n = a.len();
    assert_eq!(acc.len(), n, "operand length mismatch");
    for &(j, w) in taps {
        assert!(j < n, "tap degree {j} out of range for N={n}");
        let wu = w as u64;
        // X^j shifts a[i] to position i + j; terms past N − 1 wrap with
        // a sign flip (X^N = −1).
        axpy_wrapping(&mut acc[j..], &a[..n - j], wu);
        axpy_neg_wrapping(&mut acc[..j], &a[n - j..], wu);
    }
}

/// Exact negacyclic product `a · b mod (X^N + 1, 2^l)` by wrapping
/// schoolbook — the reference the transform-lifted power-of-two datapath
/// is tested against, and the dense form of [`negacyclic_mac_taps`].
///
/// Operands are raw residues in `[0, q)`; correctness needs no center
/// lift because wrapping arithmetic respects congruence mod `2^l`
/// regardless of representative.
///
/// # Panics
///
/// Panics if the operand lengths differ or `q` is not a supported
/// power-of-two modulus.
pub fn negacyclic_mul_wrapping(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    assert!(is_pow2_modulus(q), "not a power-of-two modulus: {q}");
    let n = a.len();
    let mut acc = vec![0u64; n];
    for (j, &w) in b.iter().enumerate() {
        if w == 0 {
            continue;
        }
        axpy_wrapping(&mut acc[j..], &a[..n - j], w);
        axpy_neg_wrapping(&mut acc[..j], &a[n - j..], w);
    }
    reduce_slice(&mut acc, q);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 1 << 62;

    /// Per-term-reduced schoolbook in `u128` — an independent oracle
    /// that never relies on wrapping.
    fn reference_mul(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        let q128 = q as u128;
        let mut out = vec![0u128; n];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                let term = (x as u128 % q128) * (y as u128 % q128) % q128;
                let k = (i + j) % n;
                if i + j < n {
                    out[k] = (out[k] + term) % q128;
                } else {
                    out[k] = (out[k] + q128 - term) % q128;
                }
            }
        }
        out.into_iter().map(|x| x as u64).collect()
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn modulus_classification() {
        assert!(is_pow2_modulus(4));
        assert!(is_pow2_modulus(1 << 13));
        assert!(is_pow2_modulus(1 << 62));
        assert!(!is_pow2_modulus(2));
        assert!(!is_pow2_modulus(1 << 63));
        assert!(!is_pow2_modulus(97));
        assert_eq!(mask(Q), Q - 1);
    }

    #[test]
    fn mac_wrapping_matches_per_element_modmul() {
        let mut s = 0xD1CEu64;
        for q in [1u64 << 13, 1 << 36, Q] {
            let a: Vec<u64> = (0..64).map(|_| lcg(&mut s) & (q - 1)).collect();
            let b: Vec<u64> = (0..64).map(|_| lcg(&mut s) & (q - 1)).collect();
            let mut acc: Vec<u64> = (0..64).map(|_| lcg(&mut s) & (q - 1)).collect();
            let want: Vec<u64> = acc
                .iter()
                .zip(a.iter().zip(&b))
                .map(|(&d, (&x, &y))| ((d as u128 + x as u128 * y as u128) % q as u128) as u64)
                .collect();
            mac_wrapping(&mut acc, &a, &b);
            reduce_slice(&mut acc, q);
            assert_eq!(acc, want, "q={q}");
        }
    }

    #[test]
    fn wrapping_schoolbook_matches_reference_at_full_magnitude() {
        // Near-overflow operands: coefficients right below q = 2^62, so
        // single products reach ~2^124 and row sums wrap u64 thousands of
        // times — exactly the regime where "wrapping is exact mod 2^l"
        // must hold.
        let n = 32;
        let mut s = 0xFEED_F00Du64;
        for round in 0..8 {
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    if round % 2 == 0 {
                        lcg(&mut s) & (Q - 1)
                    } else {
                        Q - 1 - (lcg(&mut s) & 0xFF)
                    }
                })
                .collect();
            let b: Vec<u64> = (0..n)
                .map(|_| {
                    if round < 4 {
                        lcg(&mut s) & (Q - 1)
                    } else {
                        Q - 1 - (lcg(&mut s) & 0x7)
                    }
                })
                .collect();
            assert_eq!(
                negacyclic_mul_wrapping(&a, &b, Q),
                reference_mul(&a, &b, Q),
                "round {round}"
            );
        }
    }

    #[test]
    fn sparse_taps_match_dense_schoolbook() {
        let n = 64;
        let mut s = 0xBEEFu64;
        let a: Vec<u64> = (0..n).map(|_| lcg(&mut s) & (Q - 1)).collect();
        // Signed taps, including the extremes of an 8-bit weight range.
        let taps: Vec<(usize, i64)> = vec![(0, 127), (1, -128), (7, -1), (n - 1, 63), (13, -77)];
        let mut b = vec![0u64; n];
        for &(j, w) in &taps {
            b[j] = w.rem_euclid(Q as i64) as u64;
        }
        let mut acc = vec![0u64; n];
        negacyclic_mac_taps(&mut acc, &a, &taps);
        reduce_slice(&mut acc, Q);
        assert_eq!(acc, negacyclic_mul_wrapping(&a, &b, Q));
    }

    #[test]
    fn taps_accumulate_on_top_of_existing_content() {
        let n = 16;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i) << 40).collect();
        let taps = [(3usize, -5i64)];
        let mut acc: Vec<u64> = (0..n as u64).map(|i| i << 50).collect();
        let base = acc.clone();
        negacyclic_mac_taps(&mut acc, &a, &taps);
        reduce_slice(&mut acc, Q);
        let mut prod = vec![0u64; n];
        negacyclic_mac_taps(&mut prod, &a, &taps);
        reduce_slice(&mut prod, Q);
        for i in 0..n {
            assert_eq!(acc[i], (base[i] + prod[i]) & (Q - 1));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mac_rejects_mismatched_lengths() {
        mac_wrapping(&mut [0; 4], &[0; 4], &[0; 3]);
    }
}
