//! Property-based tests for the numeric foundations.

use flash_math::bitrev::{bit_reverse, bit_reverse_permute};
use flash_math::csd::CsdCoeff;
use flash_math::fixed::{requantize, rescale, to_f64, FxpFormat, Overflow, Rounding};
use flash_math::modular::{
    add_mod, center_lift, from_signed, inv_mod, mul_mod, pow_mod, sub_mod, Montgomery, Shoup,
};
use proptest::prelude::*;

const Q61: u64 = 0x1FFF_FFFF_FFE0_0001;
const Q30: u64 = 1_073_479_681; // 30-bit NTT prime (≡ 1 mod 8192)

fn residue(q: u64) -> impl Strategy<Value = u64> {
    (0..q).prop_map(move |x| x)
}

proptest! {
    #[test]
    fn mod_ring_axioms(a in residue(Q61), b in residue(Q61), c in residue(Q61)) {
        // commutativity + associativity of add/mul, distributivity
        prop_assert_eq!(add_mod(a, b, Q61), add_mod(b, a, Q61));
        prop_assert_eq!(mul_mod(a, b, Q61), mul_mod(b, a, Q61));
        prop_assert_eq!(
            mul_mod(a, add_mod(b, c, Q61), Q61),
            add_mod(mul_mod(a, b, Q61), mul_mod(a, c, Q61), Q61)
        );
        prop_assert_eq!(sub_mod(add_mod(a, b, Q61), b, Q61), a);
    }

    #[test]
    fn pow_fermat_little(a in 1..Q30) {
        prop_assert_eq!(pow_mod(a, Q30 - 1, Q30), 1);
    }

    #[test]
    fn inverse_is_two_sided(a in 1..Q30) {
        let inv = inv_mod(a, Q30).unwrap();
        prop_assert_eq!(mul_mod(a, inv, Q30), 1);
        prop_assert_eq!(mul_mod(inv, a, Q30), 1);
    }

    #[test]
    fn montgomery_agrees_with_plain(a in residue(Q61), b in residue(Q61)) {
        let m = Montgomery::new(Q61).unwrap();
        let got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
        prop_assert_eq!(got, mul_mod(a, b, Q61));
    }

    #[test]
    fn shoup_agrees_with_plain(a in residue(Q61), w in residue(Q61)) {
        let s = Shoup::new(w, Q61);
        prop_assert_eq!(s.mul(a, Q61), mul_mod(a, w, Q61));
    }

    #[test]
    fn center_lift_roundtrips(a in residue(Q30)) {
        prop_assert_eq!(from_signed(center_lift(a, Q30), Q30), a);
        prop_assert!(center_lift(a, Q30).unsigned_abs() <= Q30 / 2 + 1);
    }

    #[test]
    fn bitrev_involution(bits in 1u32..20, x in any::<usize>()) {
        let x = x & ((1usize << bits) - 1);
        prop_assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
    }

    #[test]
    fn bitrev_permute_involution(log in 1u32..10, seed in any::<u64>()) {
        let n = 1usize << log;
        let mut v: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        prop_assert_eq!(v, orig);
    }

    #[test]
    fn rescale_error_bounded(raw in -(1i128 << 40)..(1i128 << 40), from in 0u32..20, to in 0u32..20) {
        for mode in [Rounding::NearestEven, Rounding::NearestAway, Rounding::Truncate] {
            let (out, _) = rescale(raw, from, to, mode);
            let exact = to_f64(raw, from);
            let got = to_f64(out, to);
            // Error bounded by one output LSB (half for nearest modes).
            let lsb = (-(to as f64)).exp2();
            let bound = match mode {
                Rounding::Truncate => lsb,
                _ => lsb / 2.0 + 1e-15,
            };
            prop_assert!((got - exact).abs() <= bound, "mode {mode:?}: {got} vs {exact}");
        }
    }

    #[test]
    fn requantize_always_in_range(raw in any::<i64>(), frac in 0u32..30) {
        let fmt = FxpFormat::new(10, 10);
        for ovf in [Overflow::Saturate, Overflow::Wrap] {
            let (v, _) = requantize(raw as i128, frac, fmt, Rounding::NearestEven, ovf);
            prop_assert!(v >= fmt.min_raw() && v <= fmt.max_raw());
        }
    }

    #[test]
    fn csd_error_shrinks_with_k(x in -1.0f64..1.0) {
        let mut prev = f64::INFINITY;
        for k in 1..10usize {
            let err = (CsdCoeff::quantize(x, k, 20).value() - x).abs();
            prop_assert!(err <= prev + 1e-15);
            prev = err;
        }
    }

    #[test]
    fn csd_apply_tracks_value(x in -1.0f64..1.0, alpha in -(1i64 << 30)..(1i64 << 30)) {
        let c = CsdCoeff::quantize(x, 6, 16);
        let got = c.apply_i128(alpha as i128, Rounding::NearestEven) as f64;
        let want = alpha as f64 * c.value();
        // each of <=6 terms rounds by at most 1/2
        prop_assert!((got - want).abs() <= 3.5, "{got} vs {want}");
    }
}
