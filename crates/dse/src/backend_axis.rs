//! The ciphertext-arithmetic backend axis of the design space.
//!
//! Orthogonal to the per-stage width/twiddle search over the approximate
//! weight FFT ([`crate::space`]): which MAC lane the ciphertext datapath
//! instantiates for the spectral multiply-accumulate. The software
//! workspace exposes the same axis as `PolyMulBackend` (exact Harvey/
//! Shoup NTT on a prime modulus vs the FFT-lifted path on a power-of-two
//! modulus with wrapping reduction); this module prices the hardware
//! consequence of that choice with the calibrated cost model of
//! `flash-hw`, so a DSE sweep can weigh "free reduction but a wider
//! word" against "narrow word but a reduction datapath" on the same axis
//! as the transform-precision knobs.

use flash_hw::units::BuKind;
use flash_hw::{CostModel, UnitCost};

/// One candidate ciphertext-arithmetic lane.
#[derive(Debug, Clone)]
pub struct BackendPoint {
    /// Stable identifier (`ntt-shiftadd`, `ntt-barrett`, `pow2-wrap`).
    pub name: &'static str,
    /// Bits of ciphertext modulus the lane supports.
    pub modulus_bits: u32,
    /// Whether coefficient arithmetic is exact (modular lanes) or rides
    /// the float-lifted transform error model (the wrapping lane).
    pub exact: bool,
    /// Composed MAC-lane cost (multiplier, accumulate adders, registers,
    /// and — for the modular lanes — the reduction datapath).
    pub cost: UnitCost,
}

impl BackendPoint {
    /// Energy of one MAC in pJ at 1 GHz.
    pub fn energy_pj(&self) -> f64 {
        self.cost.energy_per_cycle_pj()
    }

    /// Energy per bit of ciphertext modulus — the cross-width metric:
    /// a wider lane buys proportionally more noise ceiling, so lanes of
    /// different widths compare per modulus bit.
    pub fn energy_per_modulus_bit_pj(&self) -> f64 {
        self.energy_pj() / self.modulus_bits as f64
    }
}

/// The backend axis at the FLASH operating widths: a 39-bit CHAM-style
/// shift-add modular lane, a 39-bit Barrett/Montgomery modular lane
/// (F1-style), and the 62-bit power-of-two wrapping lane whose reduction
/// is wiring.
pub fn backend_axis(m: &CostModel) -> Vec<BackendPoint> {
    let prime_bits = 39u32;
    let pow2_bits = 62u32;
    vec![
        BackendPoint {
            name: "ntt-shiftadd",
            modulus_bits: prime_bits,
            exact: true,
            cost: BuKind::Modular { bits: prime_bits }.cost(m),
        },
        BackendPoint {
            name: "ntt-barrett",
            modulus_bits: prime_bits,
            exact: true,
            cost: m.modular_mult_barrett(prime_bits)
                + m.modular_adder(prime_bits) * 2.0
                + m.register(2 * prime_bits),
        },
        BackendPoint {
            name: "pow2-wrap",
            modulus_bits: pow2_bits,
            exact: false,
            cost: BuKind::Pow2Wrap { bits: pow2_bits }.cost(m),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_covers_both_ring_families_with_positive_costs() {
        let axis = backend_axis(&CostModel::cmos28());
        assert_eq!(axis.len(), 3);
        assert!(axis.iter().any(|p| p.exact) && axis.iter().any(|p| !p.exact));
        for p in &axis {
            assert!(p.energy_pj() > 0.0, "{}", p.name);
            assert!(p.cost.area_mm2() > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn pow2_wrap_wins_the_per_modulus_bit_metric() {
        let axis = backend_axis(&CostModel::cmos28());
        let wrap = axis.iter().find(|p| p.name == "pow2-wrap").unwrap();
        for p in axis.iter().filter(|p| p.exact) {
            assert!(
                wrap.energy_per_modulus_bit_pj() < p.energy_per_modulus_bit_pj(),
                "pow2-wrap must beat {} per modulus bit",
                p.name
            );
        }
    }
}
