//! The (power, error) objective of the DSE — Figure 10's fast evaluation
//! pipeline: analytical error model + LUT-based hardware cost.

use crate::space::{DesignPoint, DesignSpace};
use flash_fft::error::analytical_product_error_variance;
use flash_hw::cost::CostModel;
use flash_hw::units::BuKind;

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The candidate configuration.
    pub point: DesignPoint,
    /// Normalized weight-FFT power (mean per-stage BU power in mW).
    pub power: f64,
    /// Estimated HConv output error variance.
    pub error_variance: f64,
}

/// The evaluation context of one convolution layer.
#[derive(Debug, Clone)]
pub struct Objective {
    space: DesignSpace,
    cost: CostModel,
    /// Variance of one weight-polynomial coefficient (sparsity-weighted).
    pub weight_var: f64,
    /// Variance of one (center-lifted) activation coefficient.
    pub act_var: f64,
    /// Cached log10-error extremes of the space (computing them means two
    /// full analytical evaluations; `scalarize` is called once per DSE
    /// candidate).
    error_bounds: std::sync::OnceLock<(f64, f64)>,
}

impl Objective {
    /// Creates an objective for a layer characterized by its weight
    /// density and activation magnitude.
    pub fn new(space: DesignSpace, weight_var: f64, act_var: f64) -> Self {
        Self {
            space,
            cost: CostModel::cmos28(),
            weight_var,
            act_var,
            error_bounds: std::sync::OnceLock::new(),
        }
    }

    /// Builds an objective from layer statistics: `nnz` non-zero weight
    /// coefficients of magnitude ≤ `w_max` in an `n`-degree polynomial,
    /// and activation coefficients of magnitude ≤ `a_max`.
    pub fn from_layer(space: DesignSpace, nnz: usize, w_max: f64, a_max: f64) -> Self {
        let occupancy = nnz as f64 / space.n as f64;
        let weight_var = occupancy * w_max * w_max / 3.0;
        let act_var = a_max * a_max / 3.0;
        Self::new(space, weight_var, act_var)
    }

    /// The search space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Evaluates one candidate: per-stage BU power (area-proportional,
    /// the paper's LUT summation) and the analytical error variance.
    pub fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        let cfg = point.to_config(&self.space);
        let error_variance = analytical_product_error_variance(&cfg, self.weight_var, self.act_var);
        // Pipelined FFT: one BU segment per stage; total power is the sum
        // of per-stage BU power at that stage's width and twiddle level.
        let power: f64 = point
            .frac
            .iter()
            .zip(&point.k)
            .map(|(&f, &k)| {
                let bu = BuKind::Approx {
                    data_bits: 1 + self.space.int_bits + f,
                    k: k as u32,
                    mux_inputs: 8,
                };
                bu.cost(&self.cost).power_mw
            })
            .sum::<f64>()
            / point.frac.len() as f64;
        Evaluation {
            point: point.clone(),
            power,
            error_variance,
        }
    }

    /// Scalarized minimization target: `w·norm_power + (1−w)·norm_log_err`.
    /// Both terms are normalized against the space extremes so the weight
    /// sweep covers the front evenly.
    pub fn scalarize(&self, eval: &Evaluation, w: f64) -> f64 {
        let p_lo = self.power_at(self.space.frac_bits.0, self.space.k.0);
        let p_hi = self.power_at(self.space.frac_bits.1, self.space.k.1);
        let norm_p = (eval.power - p_lo) / (p_hi - p_lo).max(1e-9);
        // errors span many decades; compress with log10
        let e = eval.error_variance.max(1e-30).log10();
        let (e_lo, e_hi) = self.error_log_bounds();
        let norm_e = (e - e_lo) / (e_hi - e_lo).max(1e-9);
        w * norm_p + (1.0 - w) * norm_e
    }

    fn power_at(&self, frac: u32, k: usize) -> f64 {
        let bu = BuKind::Approx {
            data_bits: 1 + self.space.int_bits + frac,
            k: k as u32,
            mux_inputs: 8,
        };
        bu.cost(&self.cost).power_mw
    }

    fn error_log_bounds(&self) -> (f64, f64) {
        *self
            .error_bounds
            .get_or_init(|| self.error_log_bounds_uncached())
    }

    fn error_log_bounds_uncached(&self) -> (f64, f64) {
        let widest = DesignPoint {
            frac: vec![self.space.frac_bits.1; self.space.stages()],
            k: vec![self.space.k.1; self.space.stages()],
        };
        let narrowest = DesignPoint {
            frac: vec![self.space.frac_bits.0; self.space.stages()],
            k: vec![self.space.k.0; self.space.stages()],
        };
        let lo = self.evaluate(&widest).error_variance.max(1e-30).log10();
        let hi = self.evaluate(&narrowest).error_variance.max(1e-30).log10();
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    fn objective() -> Objective {
        let space = DesignSpace::flash_default(256);
        Objective::from_layer(space, 9, 8.0, (1u32 << 15) as f64)
    }

    fn obj_from(space: DesignSpace) -> Objective {
        Objective::from_layer(space, 9, 8.0, (1u32 << 15) as f64)
    }

    #[test]
    fn wider_is_pricier_and_more_accurate() {
        let o = objective();
        let narrow = DesignPoint {
            frac: vec![4; 8],
            k: vec![2; 8],
        };
        let wide = DesignPoint {
            frac: vec![24; 8],
            k: vec![20; 8],
        };
        let en = o.evaluate(&narrow);
        let ew = o.evaluate(&wide);
        assert!(ew.power > en.power);
        assert!(ew.error_variance < en.error_variance / 100.0);
    }

    #[test]
    fn scalarization_tradeoff() {
        let o = objective();
        let narrow = o.evaluate(&DesignPoint {
            frac: vec![4; 8],
            k: vec![2; 8],
        });
        let wide = o.evaluate(&DesignPoint {
            frac: vec![24; 8],
            k: vec![20; 8],
        });
        // all-power weight prefers narrow; all-error weight prefers wide
        assert!(o.scalarize(&narrow, 1.0) < o.scalarize(&wide, 1.0));
        assert!(o.scalarize(&wide, 0.0) < o.scalarize(&narrow, 0.0));
    }

    #[test]
    fn from_layer_statistics() {
        let space = DesignSpace::flash_default(4096);
        let o = obj_from(space);
        assert!(o.weight_var > 0.0 && o.weight_var < 1.0);
        assert!(o.act_var > 1e8);
    }
}
