//! The approximate-FFT parameter space.

use flash_fft::ApproxFftConfig;
use flash_math::fixed::FxpFormat;
use rand::Rng;

/// Bounds of the per-stage parameter space for ring degree `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpace {
    /// Ring degree.
    pub n: usize,
    /// Fraction-bit range per stage (inclusive).
    pub frac_bits: (u32, u32),
    /// Twiddle quantization level range per stage (inclusive).
    pub k: (usize, usize),
    /// Fixed integer bits (sized for worst-case butterfly growth).
    pub int_bits: u32,
    /// Twiddle ROM resolution (max CSD shift).
    pub max_shift: u32,
}

impl DesignSpace {
    /// The FLASH search space at `N = 4096`: fraction bits 4..24, `k`
    /// 2..20, integer bits covering 4-bit weights through 11 doubling
    /// stages.
    pub fn flash_default(n: usize) -> Self {
        Self {
            n,
            frac_bits: (4, 24),
            k: (2, 20),
            int_bits: 16,
            max_shift: 24,
        }
    }

    /// Number of pipeline stages (dimensions come in pairs per stage).
    pub fn stages(&self) -> usize {
        ApproxFftConfig::stage_count(self.n)
    }

    /// Dimensionality of the normalized encoding (`2 × stages`).
    pub fn dims(&self) -> usize {
        2 * self.stages()
    }

    /// Samples a uniform random point.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> DesignPoint {
        let stages = self.stages();
        DesignPoint {
            frac: (0..stages)
                .map(|_| rng.gen_range(self.frac_bits.0..=self.frac_bits.1))
                .collect(),
            k: (0..stages)
                .map(|_| rng.gen_range(self.k.0..=self.k.1))
                .collect(),
        }
    }

    /// Decodes a normalized `[0,1]^dims` vector into a design point
    /// (used by the continuous-space optimizer).
    pub fn decode(&self, x: &[f64]) -> DesignPoint {
        assert_eq!(x.len(), self.dims(), "dimension mismatch");
        let stages = self.stages();
        let frac = (0..stages)
            .map(|i| {
                let t = x[i].clamp(0.0, 1.0);
                let span = (self.frac_bits.1 - self.frac_bits.0) as f64;
                self.frac_bits.0 + (t * span).round() as u32
            })
            .collect();
        let k = (0..stages)
            .map(|i| {
                let t = x[stages + i].clamp(0.0, 1.0);
                let span = (self.k.1 - self.k.0) as f64;
                self.k.0 + (t * span).round() as usize
            })
            .collect();
        DesignPoint { frac, k }
    }

    /// Encodes a design point into `[0,1]^dims`.
    pub fn encode(&self, p: &DesignPoint) -> Vec<f64> {
        let f_span = (self.frac_bits.1 - self.frac_bits.0).max(1) as f64;
        let k_span = (self.k.1 - self.k.0).max(1) as f64;
        p.frac
            .iter()
            .map(|&f| (f - self.frac_bits.0) as f64 / f_span)
            .chain(p.k.iter().map(|&k| (k - self.k.0) as f64 / k_span))
            .collect()
    }
}

/// One candidate configuration: per-stage fraction bits and twiddle `k`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Fraction bits per stage.
    pub frac: Vec<u32>,
    /// Twiddle quantization level per stage.
    pub k: Vec<usize>,
}

impl DesignPoint {
    /// Materializes the point as an [`ApproxFftConfig`].
    pub fn to_config(&self, space: &DesignSpace) -> ApproxFftConfig {
        let fmts = self
            .frac
            .iter()
            .map(|&f| FxpFormat::new(space.int_bits, f))
            .collect();
        let mut cfg = ApproxFftConfig::new(space.n, fmts, self.k.clone());
        cfg.max_shift = space.max_shift;
        cfg
    }

    /// Total datapath width (a compact descriptor for reports).
    pub fn mean_width(&self, space: &DesignSpace) -> f64 {
        let sum: u32 = self.frac.iter().map(|f| 1 + space.int_bits + f).sum();
        sum as f64 / self.frac.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn space_dimensions() {
        let s = DesignSpace::flash_default(4096);
        assert_eq!(s.stages(), 12);
        assert_eq!(s.dims(), 24);
    }

    #[test]
    fn sample_in_bounds() {
        let s = DesignSpace::flash_default(256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = s.sample(&mut rng);
            assert!(p.frac.iter().all(|&f| (4..=24).contains(&f)));
            assert!(p.k.iter().all(|&k| (2..=20).contains(&k)));
            assert_eq!(p.frac.len(), s.stages());
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = DesignSpace::flash_default(256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = s.sample(&mut rng);
            let x = s.encode(&p);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(s.decode(&x), p);
        }
    }

    #[test]
    fn to_config_is_valid() {
        let s = DesignSpace::flash_default(256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = s.sample(&mut rng);
        let cfg = p.to_config(&s);
        assert_eq!(cfg.degree(), 256);
        assert_eq!(cfg.stage_formats().len(), s.stages());
        assert!((20.0..42.0).contains(&p.mean_width(&s)));
    }
}
