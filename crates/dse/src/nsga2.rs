//! NSGA-II: a genetic multi-objective baseline for the DSE.
//!
//! The paper uses Bayesian optimization; NSGA-II is the standard
//! evolutionary alternative and serves as the ablation comparator for
//! that design choice (both populate the Figure 11(b)(c) fronts).

use crate::objective::{Evaluation, Objective};
use crate::space::DesignPoint;
use rand::Rng;

/// NSGA-II run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsgaConfig {
    /// Population size (kept constant across generations).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        Self {
            population: 40,
            generations: 20,
        }
    }
}

/// Runs NSGA-II, returning every evaluation performed (the final
/// population plus history).
pub fn nsga2<R: Rng>(objective: &Objective, cfg: &NsgaConfig, rng: &mut R) -> Vec<Evaluation> {
    let space = *objective.space();
    let mut all: Vec<Evaluation> = Vec::new();
    // Sampling and variation stay on the caller's RNG stream; the (pure)
    // batch evaluations fan out across workers each generation.
    let initial: Vec<_> = (0..cfg.population).map(|_| space.sample(rng)).collect();
    let mut pop: Vec<Evaluation> = flash_runtime::parallel_map(&initial, |p| objective.evaluate(p));
    all.extend(pop.iter().cloned());

    for _ in 0..cfg.generations {
        // Offspring via binary-tournament parents, uniform crossover and
        // step mutation.
        let ranks = rank_and_crowd(&pop);
        let mut children = Vec::with_capacity(cfg.population);
        while children.len() < cfg.population {
            let a = tournament(&pop, &ranks, rng);
            let b = tournament(&pop, &ranks, rng);
            let mut child = crossover(&pop[a].point, &pop[b].point, rng);
            mutate(&mut child, objective, rng);
            children.push(child);
        }
        let offspring = flash_runtime::parallel_map(&children, |c| objective.evaluate(c));
        all.extend(offspring.iter().cloned());
        // Environmental selection over the union.
        pop.extend(offspring);
        pop = select(pop, cfg.population);
    }
    all
}

/// `(rank, crowding)` per individual; rank 0 = non-dominated.
fn rank_and_crowd(pop: &[Evaluation]) -> Vec<(u32, f64)> {
    let n = pop.len();
    let mut rank = vec![0u32; n];
    // simple O(n²) non-dominated sorting
    let dominates = |a: &Evaluation, b: &Evaluation| {
        (a.power <= b.power && a.error_variance <= b.error_variance)
            && (a.power < b.power || a.error_variance < b.error_variance)
    };
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut level = 0u32;
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && dominates(&pop[j], &pop[i]))
            })
            .collect();
        for &i in &front {
            rank[i] = level;
        }
        remaining.retain(|i| !front.contains(i));
        level += 1;
        if front.is_empty() {
            // numerical ties; dump the rest at this level
            for &i in &remaining {
                rank[i] = level;
            }
            break;
        }
    }
    // crowding distance within each front, per objective
    let mut crowd = vec![0.0f64; n];
    for l in 0..=level {
        let mut idx: Vec<usize> = (0..n).filter(|&i| rank[i] == l).collect();
        if idx.len() < 3 {
            for &i in &idx {
                crowd[i] = f64::INFINITY;
            }
            continue;
        }
        for key in [0usize, 1] {
            let get = |i: usize| {
                if key == 0 {
                    pop[i].power
                } else {
                    pop[i].error_variance.max(1e-30).log10()
                }
            };
            idx.sort_by(|&a, &b| get(a).partial_cmp(&get(b)).unwrap());
            let span = (get(idx[idx.len() - 1]) - get(idx[0])).max(1e-12);
            crowd[idx[0]] = f64::INFINITY;
            crowd[*idx.last().unwrap()] = f64::INFINITY;
            for w in idx.windows(3) {
                crowd[w[1]] += (get(w[2]) - get(w[0])) / span;
            }
        }
    }
    rank.into_iter().zip(crowd).collect()
}

fn tournament<R: Rng>(pop: &[Evaluation], ranks: &[(u32, f64)], rng: &mut R) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    let better = |x: usize, y: usize| {
        ranks[x].0 < ranks[y].0 || (ranks[x].0 == ranks[y].0 && ranks[x].1 > ranks[y].1)
    };
    if better(a, b) {
        a
    } else {
        b
    }
}

fn crossover<R: Rng>(a: &DesignPoint, b: &DesignPoint, rng: &mut R) -> DesignPoint {
    let frac = a
        .frac
        .iter()
        .zip(&b.frac)
        .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
        .collect();
    let k =
        a.k.iter()
            .zip(&b.k)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect();
    DesignPoint { frac, k }
}

fn mutate<R: Rng>(p: &mut DesignPoint, objective: &Objective, rng: &mut R) {
    let space = objective.space();
    for f in p.frac.iter_mut() {
        if rng.gen_bool(0.15) {
            let step: i32 = rng.gen_range(-2..=2);
            *f =
                (*f as i32 + step).clamp(space.frac_bits.0 as i32, space.frac_bits.1 as i32) as u32;
        }
    }
    for k in p.k.iter_mut() {
        if rng.gen_bool(0.15) {
            let step: i32 = rng.gen_range(-2..=2);
            *k = (*k as i32 + step).clamp(space.k.0 as i32, space.k.1 as i32) as usize;
        }
    }
}

/// Environmental selection: keep the best `target` by (rank, crowding).
fn select(pop: Vec<Evaluation>, target: usize) -> Vec<Evaluation> {
    let ranks = rank_and_crowd(&pop);
    let mut idx: Vec<usize> = (0..pop.len()).collect();
    idx.sort_by(|&a, &b| {
        ranks[a].0.cmp(&ranks[b].0).then(
            ranks[b]
                .1
                .partial_cmp(&ranks[a].1)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    idx.truncate(target);
    idx.into_iter().map(|i| pop[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesopt::random_search;
    use crate::pareto::{hypervolume, pareto_front};
    use crate::space::DesignSpace;
    use rand::SeedableRng;

    fn objective() -> Objective {
        let space = DesignSpace::flash_default(64);
        Objective::from_layer(space, 5, 8.0, 1024.0)
    }

    #[test]
    fn population_evolves_toward_the_front() {
        let obj = objective();
        let cfg = NsgaConfig {
            population: 16,
            generations: 8,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let evals = nsga2(&obj, &cfg, &mut rng);
        assert_eq!(evals.len(), 16 * 9);
        // the final generation's front should dominate the initial one
        let early = pareto_front(&evals[..16]);
        let late = pareto_front(&evals[evals.len() - 16..]);
        let ref_p = evals.iter().map(|e| e.power).fold(0.0f64, f64::max) * 1.1;
        let hv_early = hypervolume(&early, ref_p, 20.0);
        let hv_late = hypervolume(&late, ref_p, 20.0);
        assert!(
            hv_late >= hv_early * 0.95,
            "front should not regress: {hv_early} -> {hv_late}"
        );
    }

    #[test]
    fn nsga_competitive_with_random_search() {
        let obj = objective();
        let cfg = NsgaConfig {
            population: 16,
            generations: 8,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ga = nsga2(&obj, &cfg, &mut rng);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(4);
        let rs = random_search(&obj, ga.len(), &mut rng2);
        let ref_p = ga.iter().chain(&rs).map(|e| e.power).fold(0.0f64, f64::max) * 1.1;
        let hv_ga = hypervolume(&pareto_front(&ga), ref_p, 20.0);
        let hv_rs = hypervolume(&pareto_front(&rs), ref_p, 20.0);
        assert!(hv_ga >= hv_rs * 0.9, "GA {hv_ga} vs RS {hv_rs}");
    }

    #[test]
    fn crossover_and_mutation_stay_in_bounds() {
        let obj = objective();
        let space = obj.space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = space.sample(&mut rng);
            let b = space.sample(&mut rng);
            let mut c = crossover(&a, &b, &mut rng);
            mutate(&mut c, &obj, &mut rng);
            assert!(c
                .frac
                .iter()
                .all(|f| (space.frac_bits.0..=space.frac_bits.1).contains(f)));
            assert!(c.k.iter().all(|k| (space.k.0..=space.k.1).contains(k)));
        }
    }
}
