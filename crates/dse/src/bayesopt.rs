//! A from-scratch Gaussian-process Bayesian optimizer.
//!
//! Squared-exponential kernel, Cholesky-factored posterior, expected
//! improvement maximized over random candidates. The multi-objective
//! front is obtained by sweeping the scalarization weight (Figure 10's
//! "Bayesian optimization algorithms ... solve the optimization problem
//! iteratively").

use crate::objective::{Evaluation, Objective};
use flash_nn::robustness::phi;
use rand::Rng;

/// A Gaussian-process surrogate over `[0,1]^d`.
#[derive(Debug, Clone)]
pub struct Gp {
    xs: Vec<Vec<f64>>,
    /// Cholesky factor `L` of `K + σ_n² I` (lower triangular, row-major).
    chol: Vec<Vec<f64>>,
    /// `α = K⁻¹ y`.
    alpha: Vec<f64>,
    length_scale: f64,
    signal_var: f64,
    y_mean: f64,
}

impl Gp {
    /// Fits a GP to observations `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length or are empty.
    pub fn fit(xs: Vec<Vec<f64>>, ys: &[f64], length_scale: f64, noise: f64) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "need at least one observation");
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let signal_var = (yc.iter().map(|y| y * y).sum::<f64>() / n as f64).max(1e-12);
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let v = signal_var * rbf(&xs[i], &xs[j], length_scale);
                k[i][j] = v;
                k[j][i] = v;
            }
            k[i][i] += noise + 1e-9;
        }
        let chol = cholesky(&k);
        let alpha = chol_solve(&chol, &yc);
        Self {
            xs,
            chol,
            alpha,
            length_scale,
            signal_var,
            y_mean,
        }
    }

    /// Posterior mean and variance at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| self.signal_var * rbf(xi, x, self.length_scale))
            .collect();
        let mean = self.y_mean + kx.iter().zip(&self.alpha).map(|(a, b)| a * b).sum::<f64>();
        // v = L⁻¹ kx; var = k(x,x) − vᵀv
        let v = forward_solve(&self.chol, &kx);
        let var = (self.signal_var - v.iter().map(|a| a * a).sum::<f64>()).max(1e-12);
        (mean, var)
    }
}

fn rbf(a: &[f64], b: &[f64], ell: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-d2 / (2.0 * ell * ell)).exp()
}

/// Dense Cholesky factorization (lower triangular).
fn cholesky(k: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = k.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = k[i][j];
            for (&lit, &ljt) in l[i][..j].iter().zip(&l[j][..j]) {
                s -= lit * ljt;
            }
            if i == j {
                l[i][j] = s.max(1e-12).sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    l
}

/// Solves `L y = b`.
fn forward_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i][j] * y[j];
        }
        y[i] = s / l[i][i];
    }
    y
}

/// Solves `(L Lᵀ) x = b`.
fn chol_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let y = forward_solve(l, b);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in i + 1..n {
            s -= l[j][i] * x[j];
        }
        x[i] = s / l[i][i];
    }
    x
}

/// Expected improvement of minimizing at posterior `(mean, var)` against
/// incumbent `best`.
fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sd = var.sqrt();
    if sd < 1e-12 {
        return 0.0;
    }
    let z = (best - mean) / sd;
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    sd * (z * phi(z) + pdf)
}

/// Configuration of one BO run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoConfig {
    /// Random initial design size.
    pub init: usize,
    /// BO iterations after initialization.
    pub iters: usize,
    /// Candidates scored by EI per iteration.
    pub candidates: usize,
    /// GP length scale in the normalized space.
    pub length_scale: f64,
    /// GP observation noise.
    pub noise: f64,
}

impl Default for BoConfig {
    fn default() -> Self {
        Self {
            init: 12,
            iters: 25,
            candidates: 256,
            length_scale: 0.4,
            noise: 1e-4,
        }
    }
}

/// Runs single-objective BO for one scalarization weight; returns every
/// evaluation made.
pub fn optimize_scalarized<R: Rng>(
    objective: &Objective,
    weight: f64,
    cfg: &BoConfig,
    rng: &mut R,
) -> Vec<Evaluation> {
    let space = *objective.space();
    let mut evals: Vec<Evaluation> = Vec::new();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for _ in 0..cfg.init {
        let p = space.sample(rng);
        let e = objective.evaluate(&p);
        xs.push(space.encode(&p));
        ys.push(objective.scalarize(&e, weight));
        evals.push(e);
    }
    for _ in 0..cfg.iters {
        let gp = Gp::fit(xs.clone(), &ys, cfg.length_scale, cfg.noise);
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // Candidates come off the caller's RNG stream; the GP posterior
        // queries fan out, and the first-wins argmax below matches the
        // sequential scan exactly.
        let candidates: Vec<Vec<f64>> = (0..cfg.candidates)
            .map(|_| (0..space.dims()).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let eis = flash_runtime::parallel_map(&candidates, |x| {
            let (m, v) = gp.predict(x);
            expected_improvement(m, v, best)
        });
        let mut best_x: Option<&Vec<f64>> = None;
        let mut best_ei = -1.0;
        for (x, &ei) in candidates.iter().zip(&eis) {
            if ei > best_ei {
                best_ei = ei;
                best_x = Some(x);
            }
        }
        let x = best_x.expect("candidates > 0").clone();
        let p = space.decode(&x);
        let e = objective.evaluate(&p);
        xs.push(space.encode(&p));
        ys.push(objective.scalarize(&e, weight));
        evals.push(e);
    }
    evals
}

/// Sweeps scalarization weights to populate the multi-objective scatter
/// (the paper's 1000-solution clouds in Figure 11(b)(c)).
pub fn optimize_multi<R: Rng>(
    objective: &Objective,
    weights: &[f64],
    cfg: &BoConfig,
    rng: &mut R,
) -> Vec<Evaluation> {
    let mut all = Vec::new();
    for &w in weights {
        all.extend(optimize_scalarized(objective, w, cfg, rng));
    }
    all
}

/// Pure random search baseline with the same evaluation budget.
pub fn random_search<R: Rng>(objective: &Objective, budget: usize, rng: &mut R) -> Vec<Evaluation> {
    // Sampling stays on the caller's RNG stream; the (pure) evaluations
    // fan out across workers.
    let points: Vec<_> = (0..budget).map(|_| objective.space().sample(rng)).collect();
    flash_runtime::parallel_map(&points, |p| objective.evaluate(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;
    use crate::space::DesignSpace;
    use rand::SeedableRng;

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, 0.0, 1.0];
        let gp = Gp::fit(xs.clone(), &ys, 0.3, 1e-6);
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs {y}");
            assert!(v < 0.05, "var {v} should be small at data");
        }
        // far from data the variance grows
        let (_, v) = gp.predict(&[3.0]);
        assert!(v > 0.1);
    }

    #[test]
    fn ei_prefers_uncertain_low_mean() {
        let a = expected_improvement(0.0, 1.0, 0.5);
        let b = expected_improvement(1.0, 1.0, 0.5);
        let c = expected_improvement(0.0, 0.01, 0.5);
        assert!(a > b, "lower mean is better");
        assert!(a > c, "higher variance is better at equal mean");
        assert!(expected_improvement(0.0, 0.0, 0.5) == 0.0);
    }

    #[test]
    fn bo_beats_random_on_scalarized_objective() {
        let space = DesignSpace::flash_default(64);
        let obj = Objective::from_layer(space, 5, 8.0, 1024.0);
        let cfg = BoConfig {
            init: 8,
            iters: 12,
            candidates: 128,
            ..BoConfig::default()
        };
        let best = |evs: &[Evaluation]| {
            evs.iter()
                .map(|e| obj.scalarize(e, 0.5))
                .fold(f64::INFINITY, f64::min)
        };
        // Average over several seeds: BO is stochastic and can lose to
        // random search on individual tiny-budget runs.
        let mut bo_sum = 0.0;
        let mut rs_sum = 0.0;
        for seed in 0..5u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let bo = optimize_scalarized(&obj, 0.5, &cfg, &mut rng);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rs = random_search(&obj, bo.len(), &mut rng);
            bo_sum += best(&bo);
            rs_sum += best(&rs);
        }
        assert!(
            bo_sum <= rs_sum + 0.05,
            "bo mean {} vs rs mean {}",
            bo_sum / 5.0,
            rs_sum / 5.0
        );
    }

    #[test]
    fn multi_weight_sweep_produces_a_front() {
        let space = DesignSpace::flash_default(64);
        let obj = Objective::from_layer(space, 5, 8.0, 1024.0);
        let cfg = BoConfig {
            init: 6,
            iters: 6,
            candidates: 64,
            ..BoConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let evals = optimize_multi(&obj, &[0.1, 0.5, 0.9], &cfg, &mut rng);
        assert_eq!(evals.len(), 3 * 12);
        let front = pareto_front(&evals);
        assert!(front.len() >= 2, "front should have multiple points");
        // the front spans a real trade-off
        let pmin = front.iter().map(|e| e.power).fold(f64::INFINITY, f64::min);
        let pmax = front.iter().map(|e| e.power).fold(0.0, f64::max);
        assert!(pmax > pmin);
    }
}
