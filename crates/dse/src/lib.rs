//! Design-space exploration for the approximate FFT (Section IV-C).
//!
//! The optimization problem: choose per-stage data widths `dw_i` and
//! twiddle quantization levels `k_i` minimizing weight-FFT power subject
//! to a bound on the HConv output error variance. Error estimation uses
//! the analytical model of `flash-fft`; power estimation uses the
//! LUT-calibrated butterfly-unit costs of `flash-hw` — exactly the fast
//! estimation pipeline of the paper's Figure 10. The search runs Bayesian
//! optimization (Gaussian process + expected improvement) over a
//! scalarization-weight sweep, yielding the Pareto scatter of
//! Figure 11(b)(c); pure random search is included as a baseline.
//!
//! * [`space`] — the parameter space and design points.
//! * [`objective`] — (power, error-variance) evaluation.
//! * [`bayesopt`] — a from-scratch GP/EI optimizer.
//! * [`pareto`] — non-dominated filtering and hypervolume.
//! * [`backend_axis`] — the orthogonal ciphertext-arithmetic lane choice
//!   (modular prime vs power-of-two wrapping MAC).

pub mod backend_axis;
pub mod bayesopt;
pub mod nsga2;
pub mod objective;
pub mod pareto;
pub mod space;

pub use backend_axis::{backend_axis, BackendPoint};
pub use objective::{Evaluation, Objective};
pub use pareto::pareto_front;
pub use space::{DesignPoint, DesignSpace};
