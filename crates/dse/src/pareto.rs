//! Pareto-front extraction and hypervolume for (power, error) scatter
//! plots.

use crate::objective::Evaluation;

/// Returns the non-dominated subset (minimizing both power and error
/// variance), sorted by ascending power.
pub fn pareto_front(evals: &[Evaluation]) -> Vec<Evaluation> {
    let mut sorted: Vec<&Evaluation> = evals.iter().collect();
    sorted.sort_by(|a, b| {
        a.power
            .partial_cmp(&b.power)
            .unwrap()
            .then(a.error_variance.partial_cmp(&b.error_variance).unwrap())
    });
    let mut front: Vec<Evaluation> = Vec::new();
    let mut best_err = f64::INFINITY;
    for e in sorted {
        if e.error_variance < best_err {
            best_err = e.error_variance;
            front.push(e.clone());
        }
    }
    front
}

/// 2-D hypervolume dominated by the front relative to a reference point
/// `(ref_power, ref_log_err)`, computed in (power, log10-error) space.
/// Larger is better.
pub fn hypervolume(front: &[Evaluation], ref_power: f64, ref_log_err: f64) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .map(|e| (e.power, e.error_variance.max(1e-30).log10()))
        .filter(|&(p, e)| p < ref_power && e < ref_log_err)
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut hv = 0.0;
    let mut prev_err = ref_log_err;
    for (p, e) in pts {
        if e < prev_err {
            hv += (ref_power - p) * (prev_err - e);
            prev_err = e;
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignPoint;

    fn ev(power: f64, err: f64) -> Evaluation {
        Evaluation {
            point: DesignPoint {
                frac: vec![8],
                k: vec![5],
            },
            power,
            error_variance: err,
        }
    }

    #[test]
    fn dominated_points_removed() {
        let evals = vec![ev(1.0, 1.0), ev(2.0, 2.0), ev(2.0, 0.5), ev(3.0, 0.1)];
        let front = pareto_front(&evals);
        let coords: Vec<(f64, f64)> = front.iter().map(|e| (e.power, e.error_variance)).collect();
        assert_eq!(coords, vec![(1.0, 1.0), (2.0, 0.5), (3.0, 0.1)]);
    }

    #[test]
    fn single_point_front() {
        let evals = vec![ev(1.0, 1.0), ev(2.0, 1.0), ev(1.5, 2.0)];
        let front = pareto_front(&evals);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].power, 1.0);
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let weak = pareto_front(&[ev(2.0, 1e-2)]);
        let strong = pareto_front(&[ev(1.0, 1e-4), ev(2.0, 1e-6)]);
        let hv_weak = hypervolume(&weak, 5.0, 2.0);
        let hv_strong = hypervolume(&strong, 5.0, 2.0);
        assert!(hv_strong > hv_weak);
        assert_eq!(hypervolume(&[], 5.0, 2.0), 0.0);
    }
}
