//! Property-based tests for the RNS (multi-limb) BFV variant.

use flash_he::poly::Poly;
use flash_he::rns::{RnsCiphertext, RnsParams, RnsSecretKey};
use flash_math::modular::from_signed;
use proptest::prelude::*;
use rand::SeedableRng;

fn params() -> RnsParams {
    RnsParams::test_double()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rns_roundtrip_random_messages(seed in any::<u64>()) {
        let p = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        prop_assert_eq!(sk.decrypt(&ct), m);
    }

    #[test]
    fn rns_algebra_matches_plaintext_ring(seed in any::<u64>(), nnz in 1usize..12) {
        let p = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let add = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..nnz {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        let ct = sk
            .encrypt(&m, &mut rng)
            .add_plain(&add, &p)
            .mul_plain_signed(&w, &p);
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
        let want = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.add(&add).coeffs(), &w_t, p.t),
            p.t,
        );
        prop_assert_eq!(sk.decrypt(&ct), want);
    }

    #[test]
    fn rns_ct_addition_associative(seed in any::<u64>()) {
        let p = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let ms: Vec<Poly> = (0..3).map(|_| Poly::uniform(p.n, p.t, &mut rng)).collect();
        let cts: Vec<RnsCiphertext> = ms.iter().map(|m| sk.encrypt(m, &mut rng)).collect();
        let left = cts[0].add_ct(&cts[1]).add_ct(&cts[2]);
        let right = cts[0].add_ct(&cts[1].add_ct(&cts[2]));
        prop_assert_eq!(sk.decrypt(&left), sk.decrypt(&right));
        prop_assert_eq!(sk.decrypt(&left), ms[0].add(&ms[1]).add(&ms[2]));
    }

    #[test]
    fn rns_noise_budget_stays_positive_through_hconv_shape(seed in any::<u64>()) {
        let p = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let share = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for i in 0..9 {
            w[i * 13] = 7 - (i as i64 % 15);
        }
        let ct = sk
            .encrypt(&m, &mut rng)
            .add_plain(&share, &p)
            .mul_plain_signed(&w, &p);
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
        let want = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.add(&share).coeffs(), &w_t, p.t),
            p.t,
        );
        prop_assert!(sk.noise_budget_bits(&ct, &want) > 20.0);
    }
}
