//! Property-based tests for response-ciphertext truncation.
//!
//! The contracts under test: any `(d0, d1)` admitted by
//! [`safe_truncation`] must leave decryption intact with a noise
//! increase within [`TruncatedCiphertext::noise_bound`], and the
//! per-coefficient rounding must land on the nearest multiple of `2^d`
//! reduced mod q — including the near-q band, where the pre-fix code
//! wrapped to zero before shifting.

use flash_he::truncate::{safe_truncation, TruncatedCiphertext};
use flash_he::{Ciphertext, HeParams, Poly, SecretKey};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn safe_truncations_roundtrip_within_noise_bound(
        seed in any::<u64>(),
        d0_frac in 0u32..=4,
        d1_frac in 0u32..=4,
    ) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let before = sk.noise(&ct, &m).inf_norm() as f64;
        let budget = p.noise_ceiling() as f64 - before;
        prop_assume!(budget > 0.0);
        // Any (d0, d1) at or below the safe pair (margin 0.5 leaves
        // headroom for the pre-existing noise growth).
        let (d0_max, d1_max) = safe_truncation(&p, budget, 0.5);
        let d0 = d0_max * d0_frac / 4;
        let d1 = d1_max * d1_frac / 4;

        let t = TruncatedCiphertext::truncate(&ct, d0, d1, &p);
        let back = t.reconstruct(&p);
        prop_assert_eq!(sk.decrypt(&back), m, "d=({},{})", d0, d1);
        let after = sk.noise(&back, &m).inf_norm() as f64;
        prop_assert!(
            after <= before + t.noise_bound(&p) + 1.0,
            "noise delta exceeds bound at d=({},{}): {} > {} + {}",
            d0, d1, after, before, t.noise_bound(&p)
        );
        if d0 > 0 || d1 > 0 {
            prop_assert!(t.byte_size(&p) <= ct.byte_size());
        }
    }

    #[test]
    fn rounding_is_nearest_multiple_for_all_coefficients(
        seed in any::<u64>(),
        d in 1u32..=20,
    ) {
        // Synthetic c0 with uniform coefficients, plus the top of the
        // range forced into the near-q band [q - 2^{d-1}, q) where the
        // old `% q`-before-shift rounding collapsed to zero.
        let p = HeParams::test_256();
        let half = 1u64 << (d - 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut c0 = Poly::uniform(p.n, p.q, &mut rng).coeffs().to_vec();
        for (i, slot) in c0.iter_mut().take(8).enumerate() {
            *slot = p.q - 1 - (i as u64 * half) / 8;
        }
        let ct = Ciphertext::new(
            Poly::from_coeffs(c0.clone(), p.q),
            Poly::from_coeffs(vec![0u64; p.n], p.q),
        );
        let back = TruncatedCiphertext::truncate(&ct, d, 0, &p).reconstruct(&p);
        for (&c, &got) in c0.iter().zip(back.c0().coeffs()) {
            let nearest = ((c as u128 + half as u128) >> d) << d;
            let want = (nearest % p.q as u128) as u64;
            prop_assert_eq!(got, want, "d={} c={}", d, c);
            let diff = (got as i128 - c as i128).rem_euclid(p.q as i128);
            let err = diff.min(p.q as i128 - diff);
            prop_assert!(err <= half as i128, "d={} c={}: err={}", d, c, err);
        }
    }
}
