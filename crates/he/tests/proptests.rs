//! Property-based tests for the BFV scheme and the coefficient encoding.

use flash_he::encoding::{direct_conv_stride1, ConvEncoder, ConvShape, TileAlignment};
use flash_he::matvec::{matvec_reference, MatVecEncoder};
use flash_he::serialize::{ciphertext_from_bytes, ciphertext_to_bytes};
use flash_he::{HeParams, Poly, PolyMulBackend, SecretKey};
use proptest::prelude::*;
use rand::SeedableRng;

/// Independent oracle: negacyclic convolution of center-lifted operands
/// in `i128` (no wraparound possible at N=256, 62-bit coefficients and
/// 7-bit weights), reduced into `[0, modulus)` at the very end.
fn signed_reference_conv(a: &[u64], w: &[i64], lift_mod: u64, out_mod: u64) -> Vec<u64> {
    let n = a.len();
    let mut acc = vec![0i128; n];
    for (i, &ai) in a.iter().enumerate() {
        let av = flash_math::modular::center_lift(ai, lift_mod) as i128;
        if av == 0 {
            continue;
        }
        for (j, &wj) in w.iter().enumerate() {
            if wj == 0 {
                continue;
            }
            let prod = av * wj as i128;
            let k = i + j;
            if k < n {
                acc[k] += prod;
            } else {
                acc[k - n] -= prod;
            }
        }
    }
    acc.iter()
        .map(|&x| x.rem_euclid(out_mod as i128) as u64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn encrypt_decrypt_always_roundtrips(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        prop_assert_eq!(sk.decrypt(&ct), m);
    }

    #[test]
    fn homomorphic_add_commutes_with_plain_add(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let a = sk.encrypt(&m1, &mut rng).add_plain(&m2, &p);
        let b = sk.encrypt(&m2, &mut rng).add_plain(&m1, &p);
        prop_assert_eq!(sk.decrypt(&a), sk.decrypt(&b));
    }

    #[test]
    fn serialization_roundtrips(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let back = ciphertext_from_bytes(&ciphertext_to_bytes(&ct), p.n, p.q).unwrap();
        prop_assert_eq!(back, ct);
    }

    #[test]
    fn ntt_and_fft_backends_always_agree(seed in any::<u64>(), nnz in 1usize..16) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..nnz {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        let x = PolyMulBackend::Ntt.mul_ct_pt(&a, &w, &p);
        let y = PolyMulBackend::FftF64.mul_ct_pt(&a, &w, &p);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn pow2_backend_decrypts_exactly_for_random_sparse_weights(
        seed in any::<u64>(),
        nnz in 1usize..16,
    ) {
        // End-to-end on q = 2^62: encrypt → ⊠w → decrypt must land on the
        // exact plaintext-ring product for any weight sparsity, because
        // the backend's float error sits far below the noise ceiling.
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..nnz {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        let ct = sk.encrypt(&m, &mut rng).mul_plain_signed(&w, &p, &PolyMulBackend::Pow2);
        let want = signed_reference_conv(m.coeffs(), &w, p.t, p.t);
        prop_assert_eq!(sk.decrypt(&ct).coeffs(), &want[..]);
    }

    #[test]
    fn pow2_product_tracks_integer_reference_at_full_magnitude(
        seed in any::<u64>(),
        nnz in 1usize..16,
        wmax in 1i64..128,
    ) {
        // Raw ring-level property at near-overflow operand magnitudes:
        // uniform coefficients reach q/2 ≈ 2^61 (beyond f64 exactness),
        // weights up to ±127. The wrapping product must stay within the
        // declared error model of an exact signed-integer negacyclic
        // convolution reduced mod 2^62.
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..nnz {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-wmax..=wmax);
        }
        let got = PolyMulBackend::Pow2.mul_ct_pt(&a, &w, &p);
        let want = signed_reference_conv(a.coeffs(), &w, p.q, p.q);
        let sq: f64 = w.iter().map(|&x| (x * x) as f64).sum();
        let bound = PolyMulBackend::Pow2
            .error_model(&p)
            .expect("Pow2 is approximate")
            .phase_error_bound(&p, sq, 1);
        for (&g, &e) in got.coeffs().iter().zip(&want) {
            let err = flash_math::modular::center_lift(g.wrapping_sub(e) & (p.q - 1), p.q)
                .unsigned_abs();
            prop_assert!((err as f64) < bound, "err {} above bound {}", err, bound);
        }
    }

    #[test]
    fn conv_encoding_correct_for_random_geometry(
        c in 1usize..4,
        h in 3usize..7,
        w_dim in 3usize..7,
        k in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= h && k <= w_dim);
        let shape = ConvShape { c, h, w: w_dim, m: 2, k };
        let n = 256usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len()).map(|_| rng.gen_range(-8..8)).collect();
        let f: Vec<i64> = (0..shape.m * shape.kernel_len()).map(|_| rng.gen_range(-8..8)).collect();
        let fft = flash_fft::NegacyclicFft::new(n);
        for align in [TileAlignment::Compact, TileAlignment::PowerOfTwo] {
            let enc = ConvEncoder::with_alignment(shape, n, align);
            let acts = enc.encode_activation(&x);
            let mut y = vec![0i64; shape.output_len()];
            for oc in 0..shape.m {
                let wp = enc.encode_weight(&f[oc * shape.kernel_len()..][..shape.kernel_len()], oc);
                for b in 0..enc.bands() {
                    let mut acc = vec![0i64; n];
                    for g in 0..enc.groups() {
                        for (s, v) in acc
                            .iter_mut()
                            .zip(fft.polymul_i64(&acts[g * enc.bands() + b], &wp[g][b]))
                        {
                            *s += v as i64;
                        }
                    }
                    enc.decode_band(&acc, b, oc, &mut y);
                }
            }
            prop_assert_eq!(&y, &direct_conv_stride1(&x, &f, &shape), "{:?}", align);
        }
    }

    #[test]
    fn matvec_encoding_correct_for_random_geometry(
        ni in 1usize..40,
        no in 1usize..12,
        seed in any::<u64>(),
    ) {
        let n = 32usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<i64> = (0..ni * no).map(|_| rng.gen_range(-8..8)).collect();
        let x: Vec<i64> = (0..ni).map(|_| rng.gen_range(-8..8)).collect();
        let enc = MatVecEncoder::new(ni, no, n);
        let fft = flash_fft::NegacyclicFft::new(n);
        let xs = enc.encode_vector(&x);
        let mut y = vec![0i64; no];
        for rb in 0..enc.row_blocks() {
            let mut acc = vec![0i64; n];
            for (cc, xp) in xs.iter().enumerate() {
                let wp = enc.encode_matrix(&w, rb, cc);
                for (s, v) in acc.iter_mut().zip(fft.polymul_i64(xp, &wp)) {
                    *s += v as i64;
                }
            }
            enc.decode_block(&acc, rb, &mut y);
        }
        prop_assert_eq!(y, matvec_reference(&w, &x, ni, no));
    }
}
