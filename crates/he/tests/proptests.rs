//! Property-based tests for the BFV scheme and the coefficient encoding.

use flash_he::encoding::{direct_conv_stride1, ConvEncoder, ConvShape, TileAlignment};
use flash_he::matvec::{matvec_reference, MatVecEncoder};
use flash_he::serialize::{ciphertext_from_bytes, ciphertext_to_bytes};
use flash_he::{HeParams, Poly, PolyMulBackend, SecretKey};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn encrypt_decrypt_always_roundtrips(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        prop_assert_eq!(sk.decrypt(&ct), m);
    }

    #[test]
    fn homomorphic_add_commutes_with_plain_add(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let a = sk.encrypt(&m1, &mut rng).add_plain(&m2, &p);
        let b = sk.encrypt(&m2, &mut rng).add_plain(&m1, &p);
        prop_assert_eq!(sk.decrypt(&a), sk.decrypt(&b));
    }

    #[test]
    fn serialization_roundtrips(seed in any::<u64>()) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let back = ciphertext_from_bytes(&ciphertext_to_bytes(&ct), p.n, p.q).unwrap();
        prop_assert_eq!(back, ct);
    }

    #[test]
    fn ntt_and_fft_backends_always_agree(seed in any::<u64>(), nnz in 1usize..16) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..nnz {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        let x = PolyMulBackend::Ntt.mul_ct_pt(&a, &w, p.ntt(), p.fft());
        let y = PolyMulBackend::FftF64.mul_ct_pt(&a, &w, p.ntt(), p.fft());
        prop_assert_eq!(x, y);
    }

    #[test]
    fn conv_encoding_correct_for_random_geometry(
        c in 1usize..4,
        h in 3usize..7,
        w_dim in 3usize..7,
        k in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= h && k <= w_dim);
        let shape = ConvShape { c, h, w: w_dim, m: 2, k };
        let n = 256usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len()).map(|_| rng.gen_range(-8..8)).collect();
        let f: Vec<i64> = (0..shape.m * shape.kernel_len()).map(|_| rng.gen_range(-8..8)).collect();
        let fft = flash_fft::NegacyclicFft::new(n);
        for align in [TileAlignment::Compact, TileAlignment::PowerOfTwo] {
            let enc = ConvEncoder::with_alignment(shape, n, align);
            let acts = enc.encode_activation(&x);
            let mut y = vec![0i64; shape.output_len()];
            for oc in 0..shape.m {
                let wp = enc.encode_weight(&f[oc * shape.kernel_len()..][..shape.kernel_len()], oc);
                for b in 0..enc.bands() {
                    let mut acc = vec![0i64; n];
                    for g in 0..enc.groups() {
                        for (s, v) in acc
                            .iter_mut()
                            .zip(fft.polymul_i64(&acts[g * enc.bands() + b], &wp[g][b]))
                        {
                            *s += v as i64;
                        }
                    }
                    enc.decode_band(&acc, b, oc, &mut y);
                }
            }
            prop_assert_eq!(&y, &direct_conv_stride1(&x, &f, &shape), "{:?}", align);
        }
    }

    #[test]
    fn matvec_encoding_correct_for_random_geometry(
        ni in 1usize..40,
        no in 1usize..12,
        seed in any::<u64>(),
    ) {
        let n = 32usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<i64> = (0..ni * no).map(|_| rng.gen_range(-8..8)).collect();
        let x: Vec<i64> = (0..ni).map(|_| rng.gen_range(-8..8)).collect();
        let enc = MatVecEncoder::new(ni, no, n);
        let fft = flash_fft::NegacyclicFft::new(n);
        let xs = enc.encode_vector(&x);
        let mut y = vec![0i64; no];
        for rb in 0..enc.row_blocks() {
            let mut acc = vec![0i64; n];
            for (cc, xp) in xs.iter().enumerate() {
                let wp = enc.encode_matrix(&w, rb, cc);
                for (s, v) in acc.iter_mut().zip(fft.polymul_i64(xp, &wp)) {
                    *s += v as i64;
                }
            }
            enc.decode_block(&acc, rb, &mut y);
        }
        prop_assert_eq!(y, matvec_reference(&w, &x, ni, no));
    }
}
