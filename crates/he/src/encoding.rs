//! Cheetah-style coefficient encoding of convolutions.
//!
//! Tensors map directly onto polynomial coefficients (Figure 2 of the
//! paper): for a stride-1 valid convolution of a `C×H×W` activation with a
//! `M×C×k×k` kernel, one input tile places
//!
//! * activation `x[c][i][j]` at coefficient `c·CS + i·RS + j`, and
//! * weight `f[c][i][j]` (one output channel) at coefficient
//!   `(C−1−c)·CS + (k−1−i)·RS + (k−1−j)`;
//!
//! the negacyclic product then carries output `y[p][q]` at coefficient
//! `(C−1)·CS + (p+k−1)·RS + (q+k−1)`. Here `RS` (row stride) and `CS`
//! (channel stride) are at least `W` and `H·RS` respectively. Only
//! `C·k²` of the coefficients are non-zero — the extreme sparsity FLASH
//! exploits (Figure 7).
//!
//! Two layouts are provided:
//!
//! * [`TileAlignment::Compact`] — `RS = W`, `CS = H·W` (Cheetah's dense
//!   packing; minimal ciphertext count).
//! * [`TileAlignment::PowerOfTwo`] — `RS` and `CS` rounded up to powers of
//!   two. This is the layout FLASH's sparse dataflow assumes ("when H and
//!   W are powers of two … data originally located at multiples of H×W
//!   become contiguous after bit-reverse"): weight coefficients land on
//!   power-of-two arithmetic progressions, which the butterfly network
//!   skips almost entirely. The price is a (usually small) increase in
//!   the number of tiles.
//!
//! When `C·CS > N` the convolution is tiled: channels are grouped
//! (`⌊N/CS⌋` per ciphertext) and, when even one channel's image overflows
//! `N`, rows are split into overlapping spatial bands. Partial products
//! along the channel-group axis accumulate homomorphically; bands and
//! output channels are independent ciphertexts.

use std::fmt;

/// Shape of a stride-1 valid convolution (inputs already padded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub c: usize,
    /// Input height (after padding).
    pub h: usize,
    /// Input width (after padding).
    pub w: usize,
    /// Output channels.
    pub m: usize,
    /// Kernel size `k×k`.
    pub k: usize,
}

impl ConvShape {
    /// Output height `H − k + 1`.
    pub fn out_h(&self) -> usize {
        self.h - self.k + 1
    }

    /// Output width `W − k + 1`.
    pub fn out_w(&self) -> usize {
        self.w - self.k + 1
    }

    /// Elements in one input tensor.
    pub fn input_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Elements in one kernel (single output channel).
    pub fn kernel_len(&self) -> usize {
        self.c * self.k * self.k
    }

    /// Elements in the output tensor.
    pub fn output_len(&self) -> usize {
        self.m * self.out_h() * self.out_w()
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{} -> {} ch, {}x{} kernel",
            self.c, self.h, self.w, self.m, self.k, self.k
        )
    }
}

/// Coefficient-layout policy of the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileAlignment {
    /// Dense Cheetah packing (`RS = W`, `CS = rows·W`).
    #[default]
    Compact,
    /// Power-of-two row/channel strides (FLASH's sparse-dataflow layout).
    PowerOfTwo,
}

/// One tile of the tiled convolution: a channel range × a row band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// First input channel of the group.
    pub c0: usize,
    /// Channels in this group (zero-padded up to the layout's group size).
    pub c_len: usize,
    /// First input row of the band.
    pub row0: usize,
    /// Input rows in the band (`rows_out + k − 1`).
    pub rows_in: usize,
    /// First *output* row this band produces.
    pub out_row0: usize,
    /// Output rows this band produces.
    pub rows_out: usize,
}

/// The tiling plan of one convolution into degree-`n` polynomials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvEncoder {
    shape: ConvShape,
    n: usize,
    alignment: TileAlignment,
    /// Row stride (`≥ w`).
    row_stride: usize,
    /// Channels per ciphertext (groups are zero-padded to this).
    cg: usize,
    /// Channel groups.
    groups: usize,
    /// Row bands: `(row0, rows_in, out_row0, rows_out)`.
    bands: Vec<(usize, usize, usize, usize)>,
}

impl ConvEncoder {
    /// Plans a compact (Cheetah-layout) tiling of `shape` into ring
    /// degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if even `k` input rows of one channel exceed `n`, if
    /// `k > min(h, w)`, or `n` is not a power of two.
    pub fn new(shape: ConvShape, n: usize) -> Self {
        Self::with_alignment(shape, n, TileAlignment::Compact)
    }

    /// Plans a tiling with the given layout policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ConvEncoder::new`] (with the aligned row
    /// stride for [`TileAlignment::PowerOfTwo`]).
    pub fn with_alignment(shape: ConvShape, n: usize, alignment: TileAlignment) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        assert!(
            shape.k <= shape.h && shape.k <= shape.w,
            "kernel larger than input"
        );
        let row_stride = match alignment {
            TileAlignment::Compact => shape.w,
            TileAlignment::PowerOfTwo => shape.w.next_power_of_two(),
        };
        assert!(
            shape.k * row_stride <= n,
            "even a single k-row band of one channel exceeds the ring degree"
        );
        let full_cs = Self::chan_stride_for(shape.h, row_stride, alignment);
        let (cg, bands) = if full_cs <= n {
            // Channel grouping, full spatial extent per tile.
            let cg = (n / full_cs).min(shape.c);
            (cg, vec![(0, shape.h, 0, shape.out_h())])
        } else {
            // Single channel per tile, overlapping row bands.
            let rows_in_max = n / row_stride;
            let rows_out_per_band = rows_in_max - shape.k + 1;
            let mut bands = Vec::new();
            let mut out_row = 0;
            while out_row < shape.out_h() {
                let rows_out = rows_out_per_band.min(shape.out_h() - out_row);
                let rows_in = rows_out + shape.k - 1;
                bands.push((out_row, rows_in, out_row, rows_out));
                out_row += rows_out;
            }
            (1, bands)
        };
        let groups = shape.c.div_ceil(cg);
        Self {
            shape,
            n,
            alignment,
            row_stride,
            cg,
            groups,
            bands,
        }
    }

    fn chan_stride_for(rows: usize, row_stride: usize, alignment: TileAlignment) -> usize {
        let base = rows * row_stride;
        match alignment {
            TileAlignment::Compact => base,
            TileAlignment::PowerOfTwo => base.next_power_of_two(),
        }
    }

    /// The convolution shape being encoded.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The layout policy.
    pub fn alignment(&self) -> TileAlignment {
        self.alignment
    }

    /// Row stride (`≥ w`; a power of two under
    /// [`TileAlignment::PowerOfTwo`]).
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Channel groups (partial products accumulate across this axis).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Channels per group (zero-padded).
    pub fn channels_per_group(&self) -> usize {
        self.cg
    }

    /// Row bands (independent ciphertexts along this axis).
    pub fn bands(&self) -> usize {
        self.bands.len()
    }

    /// Activation polynomials the client sends: `groups × bands`.
    pub fn activation_polys(&self) -> usize {
        self.groups * self.bands.len()
    }

    /// Weight polynomials the server encodes: `groups × out-channels`
    /// (bands share weights).
    pub fn weight_polys(&self) -> usize {
        self.groups * self.shape.m
    }

    /// Result ciphertexts: `bands × out-channels`.
    pub fn result_polys(&self) -> usize {
        self.bands.len() * self.shape.m
    }

    /// `(row_stride, chan_stride)` of band `b`.
    fn strides(&self, band: usize) -> (usize, usize) {
        let rows_in = self.bands[band].1;
        (
            self.row_stride,
            Self::chan_stride_for(rows_in, self.row_stride, self.alignment),
        )
    }

    /// Row geometry of band `b` as a [`TileSpec`] with the full channel
    /// group (callers needing per-group specs combine with
    /// [`ConvEncoder::groups`]).
    pub fn band_spec(&self, b: usize) -> TileSpec {
        let (row0, rows_in, out_row0, rows_out) = self.bands[b];
        TileSpec {
            c0: 0,
            c_len: self.cg,
            row0,
            rows_in,
            out_row0,
            rows_out,
        }
    }

    /// Encodes the activation tensor (`c·h·w` row-major) into
    /// `groups × bands` polynomials of length `n`, indexed
    /// `[g * bands + b]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input size.
    pub fn encode_activation(&self, x: &[i64]) -> Vec<Vec<i64>> {
        let s = &self.shape;
        assert_eq!(x.len(), s.input_len(), "activation size mismatch");
        let mut out = Vec::with_capacity(self.activation_polys());
        for g in 0..self.groups {
            for (b, &(row0, rows_in, _, _)) in self.bands.iter().enumerate() {
                let (rs, cs) = self.strides(b);
                let mut poly = vec![0i64; self.n];
                for cc in 0..self.cg {
                    let c = g * self.cg + cc;
                    if c >= s.c {
                        break; // zero padding of the last group
                    }
                    for i in 0..rows_in {
                        for j in 0..s.w {
                            let src = (c * s.h + (row0 + i)) * s.w + j;
                            poly[cc * cs + i * rs + j] = x[src];
                        }
                    }
                }
                out.push(poly);
            }
        }
        out
    }

    /// Encodes the kernel of output channel `oc` (`c·k·k` row-major) into
    /// per-group, per-band polynomials (`[group][band] -> poly`; bands
    /// with differing heights have different channel strides, hence the
    /// band axis).
    ///
    /// # Panics
    ///
    /// Panics if `f.len()` differs from the kernel size.
    pub fn encode_weight(&self, f: &[i64], oc: usize) -> Vec<Vec<Vec<i64>>> {
        let s = &self.shape;
        assert_eq!(f.len(), s.kernel_len(), "kernel size mismatch");
        assert!(oc < s.m, "output channel out of range");
        let mut per_group = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let mut per_band = Vec::with_capacity(self.bands.len());
            for b in 0..self.bands.len() {
                let (rs, cs) = self.strides(b);
                let mut poly = vec![0i64; self.n];
                for cc in 0..self.cg {
                    let c = g * self.cg + cc;
                    if c >= s.c {
                        break;
                    }
                    for i in 0..s.k {
                        for j in 0..s.k {
                            let src = (c * s.k + i) * s.k + j;
                            let idx = (self.cg - 1 - cc) * cs + (s.k - 1 - i) * rs + (s.k - 1 - j);
                            poly[idx] = f[src];
                        }
                    }
                }
                per_band.push(poly);
            }
            per_group.push(per_band);
        }
        per_group
    }

    /// The non-zero coefficient indices of a weight polynomial for band
    /// `b` — the sparsity pattern FLASH's dataflow consumes. Independent
    /// of the weight values (zero weights would only increase sparsity).
    pub fn weight_indices(&self, b: usize) -> Vec<usize> {
        let s = &self.shape;
        let (rs, cs) = self.strides(b);
        let channels = self.cg.min(s.c);
        let mut idx = Vec::with_capacity(channels * s.k * s.k);
        for cc in 0..channels {
            for i in 0..s.k {
                for j in 0..s.k {
                    idx.push((self.cg - 1 - cc) * cs + (s.k - 1 - i) * rs + (s.k - 1 - j));
                }
            }
        }
        idx.sort_unstable();
        idx
    }

    /// Extracts the outputs of band `b` from the (group-accumulated)
    /// product polynomial of one output channel, writing into
    /// `y[oc]` laid out `m·out_h·out_w` row-major.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn decode_band(&self, prod: &[i64], b: usize, oc: usize, y: &mut [i64]) {
        let s = &self.shape;
        assert_eq!(prod.len(), self.n, "product polynomial length mismatch");
        assert_eq!(y.len(), s.output_len(), "output tensor size mismatch");
        let (rs, cs) = self.strides(b);
        let (_, _, out_row0, rows_out) = self.bands[b];
        for p in 0..rows_out {
            for q in 0..s.out_w() {
                let idx = (self.cg - 1) * cs + (p + s.k - 1) * rs + (q + s.k - 1);
                let dst = (oc * s.out_h() + out_row0 + p) * s.out_w() + q;
                y[dst] = prod[idx];
            }
        }
    }
}

/// Reference stride-1 valid convolution over `i64` (the correctness
/// oracle for the encoding).
pub fn direct_conv_stride1(x: &[i64], f: &[i64], shape: &ConvShape) -> Vec<i64> {
    let s = shape;
    assert_eq!(x.len(), s.input_len());
    assert_eq!(f.len(), s.m * s.kernel_len());
    let (oh, ow) = (s.out_h(), s.out_w());
    let mut y = vec![0i64; s.m * oh * ow];
    for oc in 0..s.m {
        for p in 0..oh {
            for q in 0..ow {
                let mut acc = 0i64;
                for c in 0..s.c {
                    for i in 0..s.k {
                        for j in 0..s.k {
                            let xv = x[(c * s.h + p + i) * s.w + q + j];
                            let fv = f[((oc * s.c + c) * s.k + i) * s.k + j];
                            acc += xv * fv;
                        }
                    }
                }
                y[(oc * oh + p) * ow + q] = acc;
            }
        }
    }
    y
}

/// Zero-pads a `c×h×w` tensor by `pad` on each spatial side.
pub fn pad_input(x: &[i64], c: usize, h: usize, w: usize, pad: usize) -> Vec<i64> {
    assert_eq!(x.len(), c * h * w);
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let mut out = vec![0i64; c * hp * wp];
    for cc in 0..c {
        for i in 0..h {
            for j in 0..w {
                out[(cc * hp + i + pad) * wp + j + pad] = x[(cc * h + i) * w + j];
            }
        }
    }
    out
}

/// Decomposes a stride-2 convolution into four stride-1 convolutions over
/// the even/odd subsampled inputs and kernels; the four outputs sum.
///
/// Returns `(sub_shape, [(x_sub, f_sub); 4])` where `f_sub` covers all `m`
/// output channels. Kernel sub-grids that are empty for a phase still
/// appear (as all-zero kernels) so the caller's accumulation is uniform.
pub type Stride2Phases = Vec<(Vec<i64>, Vec<i64>)>;

/// See [`Stride2Phases`] for the per-phase `(activation, kernel)` pairs.
pub fn stride2_decompose(x: &[i64], f: &[i64], shape: &ConvShape) -> (ConvShape, Stride2Phases) {
    let s = shape;
    assert_eq!(x.len(), s.input_len());
    assert_eq!(f.len(), s.m * s.kernel_len());
    // Subsampled dimensions (ceil for phase 0).
    let hs = s.h.div_ceil(2);
    let ws = s.w.div_ceil(2);
    let ks = s.k.div_ceil(2);
    let sub_shape = ConvShape {
        c: s.c,
        h: hs,
        w: ws,
        m: s.m,
        k: ks,
    };
    let mut parts = Vec::with_capacity(4);
    for alpha in 0..2usize {
        for beta in 0..2usize {
            let mut xs = vec![0i64; s.c * hs * ws];
            for c in 0..s.c {
                for i in 0..hs {
                    for j in 0..ws {
                        let (hi, wj) = (2 * i + alpha, 2 * j + beta);
                        if hi < s.h && wj < s.w {
                            xs[(c * hs + i) * ws + j] = x[(c * s.h + hi) * s.w + wj];
                        }
                    }
                }
            }
            let mut fs = vec![0i64; s.m * s.c * ks * ks];
            for oc in 0..s.m {
                for c in 0..s.c {
                    for a in 0..ks {
                        for b in 0..ks {
                            let (ki, kj) = (2 * a + alpha, 2 * b + beta);
                            if ki < s.k && kj < s.k {
                                fs[((oc * s.c + c) * ks + a) * ks + b] =
                                    f[((oc * s.c + c) * s.k + ki) * s.k + kj];
                            }
                        }
                    }
                }
            }
            parts.push((xs, fs));
        }
    }
    (sub_shape, parts)
}

/// Output shape of a strided convolution given the *padded* input shape.
pub fn strided_out_dims(h: usize, w: usize, k: usize, stride: usize) -> (usize, usize) {
    ((h - k) / stride + 1, (w - k) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_conv(shape: &ConvShape, seed: u64) -> (Vec<i64>, Vec<i64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let f: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        (x, f)
    }

    /// Runs the full encode → negacyclic-multiply → accumulate → decode
    /// pipeline in plain integers and compares with the direct conv.
    fn check_encoded_conv(shape: ConvShape, n: usize, align: TileAlignment, seed: u64) {
        let (x, f) = rand_conv(&shape, seed);
        let enc = ConvEncoder::with_alignment(shape, n, align);
        let fft = flash_fft::NegacyclicFft::shared(n);
        let acts = enc.encode_activation(&x);
        let mut y = vec![0i64; shape.output_len()];
        for oc in 0..shape.m {
            let w_polys =
                enc.encode_weight(&f[oc * shape.kernel_len()..][..shape.kernel_len()], oc);
            for b in 0..enc.bands() {
                let mut acc = vec![0i128; n];
                for g in 0..enc.groups() {
                    let prod = fft.polymul_i64(&acts[g * enc.bands() + b], &w_polys[g][b]);
                    for (a, p) in acc.iter_mut().zip(&prod) {
                        *a += p;
                    }
                }
                let acc64: Vec<i64> = acc.iter().map(|&v| v as i64).collect();
                enc.decode_band(&acc64, b, oc, &mut y);
            }
        }
        assert_eq!(
            y,
            direct_conv_stride1(&x, &f, &shape),
            "shape {shape} n={n} align {align:?}"
        );
    }

    fn check_both(shape: ConvShape, n: usize, seed: u64) {
        check_encoded_conv(shape, n, TileAlignment::Compact, seed);
        check_encoded_conv(shape, n, TileAlignment::PowerOfTwo, seed);
    }

    #[test]
    fn single_tile_conv_roundtrip() {
        check_both(
            ConvShape {
                c: 2,
                h: 5,
                w: 4,
                m: 3,
                k: 3,
            },
            64,
            1,
        );
        check_both(
            ConvShape {
                c: 1,
                h: 4,
                w: 4,
                m: 1,
                k: 1,
            },
            16,
            2,
        );
        check_both(
            ConvShape {
                c: 3,
                h: 4,
                w: 4,
                m: 2,
                k: 2,
            },
            64,
            3,
        );
    }

    #[test]
    fn non_power_of_two_dims_roundtrip() {
        // 5x6 image: aligned layout pads the row stride to 8.
        let shape = ConvShape {
            c: 2,
            h: 5,
            w: 6,
            m: 2,
            k: 3,
        };
        let enc = ConvEncoder::with_alignment(shape, 128, TileAlignment::PowerOfTwo);
        assert_eq!(enc.row_stride(), 8);
        check_both(shape, 128, 9);
    }

    #[test]
    fn channel_grouped_conv_roundtrip() {
        // c*h*w = 4*4*4 = 64 > 32 = n: two channel groups of 2.
        let shape = ConvShape {
            c: 4,
            h: 4,
            w: 4,
            m: 2,
            k: 3,
        };
        let enc = ConvEncoder::new(shape, 32);
        assert_eq!(enc.groups(), 2);
        assert_eq!(enc.bands(), 1);
        check_both(shape, 32, 4);
    }

    #[test]
    fn banded_conv_roundtrip() {
        // One channel image of 8x8 = 64 > 32 = n: row bands.
        let shape = ConvShape {
            c: 1,
            h: 8,
            w: 8,
            m: 2,
            k: 3,
        };
        let enc = ConvEncoder::new(shape, 32);
        assert!(enc.bands() > 1);
        check_both(shape, 32, 5);
    }

    #[test]
    fn banded_multichannel_conv_roundtrip() {
        let shape = ConvShape {
            c: 2,
            h: 8,
            w: 8,
            m: 1,
            k: 3,
        };
        let enc = ConvEncoder::new(shape, 32);
        assert_eq!(enc.channels_per_group(), 1);
        assert_eq!(enc.groups(), 2);
        check_both(shape, 32, 6);
    }

    #[test]
    fn uneven_channel_group_padding() {
        // 3 channels into groups of 2: last group is half empty.
        let shape = ConvShape {
            c: 3,
            h: 4,
            w: 4,
            m: 2,
            k: 2,
        };
        let enc = ConvEncoder::new(shape, 32);
        assert_eq!(enc.channels_per_group(), 2);
        assert_eq!(enc.groups(), 2);
        check_both(shape, 32, 7);
    }

    #[test]
    fn weight_sparsity_matches_paper_structure() {
        // ResNet-like tile: 1 channel of 32x32 with 3x3 kernel in n=1024:
        // 9 of 1024 coefficients are valid (> 99 % sparse).
        let shape = ConvShape {
            c: 1,
            h: 32,
            w: 32,
            m: 1,
            k: 3,
        };
        let enc = ConvEncoder::new(shape, 1024);
        let idx = enc.weight_indices(0);
        assert_eq!(idx.len(), 9);
        // k contiguous values with stride W between rows
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 1);
        assert_eq!(idx[2], 2);
        assert_eq!(idx[3], 32);
        let sparsity = 1.0 - idx.len() as f64 / 1024.0;
        assert!(sparsity > 0.99);
    }

    #[test]
    fn aligned_one_by_one_weights_form_power_of_two_progression() {
        // The FLASH layout: 1x1 kernels over 14x14 (aligned to 16x16
        // strides) put one valid coefficient at each multiple of 256 —
        // the pattern whose transform collapses to a tiny sub-network.
        let shape = ConvShape {
            c: 20,
            h: 14,
            w: 14,
            m: 1,
            k: 1,
        };
        let enc = ConvEncoder::with_alignment(shape, 4096, TileAlignment::PowerOfTwo);
        assert_eq!(enc.row_stride(), 16);
        let idx = enc.weight_indices(0);
        assert!(idx.len() <= 16);
        for i in &idx {
            assert_eq!(i % 256, 0, "index {i} must sit on the 256 grid");
        }
        // compact layout has more channels per poly but an irregular grid
        let compact = ConvEncoder::new(shape, 4096);
        assert!(compact.channels_per_group() >= enc.channels_per_group());
    }

    #[test]
    fn pad_input_places_values() {
        let x: Vec<i64> = (1..=4).collect(); // 1x2x2
        let p = pad_input(&x, 1, 2, 2, 1);
        assert_eq!(p.len(), 16);
        assert_eq!(p[5], 1); // (1,1) in 4x4
        assert_eq!(p[6], 2);
        assert_eq!(p[9], 3);
        assert_eq!(p[10], 4);
        assert_eq!(p[0], 0);
    }

    #[test]
    fn stride2_decomposition_matches_direct() {
        let shape = ConvShape {
            c: 2,
            h: 8,
            w: 8,
            m: 2,
            k: 3,
        };
        let (x, f) = rand_conv(&shape, 8);
        // direct strided reference
        let (oh, ow) = strided_out_dims(shape.h, shape.w, shape.k, 2);
        let mut want = vec![0i64; shape.m * oh * ow];
        for oc in 0..shape.m {
            for p in 0..oh {
                for q in 0..ow {
                    let mut acc = 0;
                    for c in 0..shape.c {
                        for i in 0..shape.k {
                            for j in 0..shape.k {
                                acc += x[(c * shape.h + 2 * p + i) * shape.w + 2 * q + j]
                                    * f[((oc * shape.c + c) * shape.k + i) * shape.k + j];
                            }
                        }
                    }
                    want[(oc * oh + p) * ow + q] = acc;
                }
            }
        }
        // via decomposition
        let (sub, parts) = stride2_decompose(&x, &f, &shape);
        let mut sum = vec![0i64; sub.output_len()];
        for (xs, fs) in &parts {
            let y = direct_conv_stride1(xs, fs, &sub);
            for (s_, v) in sum.iter_mut().zip(&y) {
                *s_ += v;
            }
        }
        // the stride-2 output is the top-left (oh x ow) block of the
        // sub-convolution output
        for oc in 0..shape.m {
            for p in 0..oh {
                for q in 0..ow {
                    assert_eq!(
                        sum[(oc * sub.out_h() + p) * sub.out_w() + q],
                        want[(oc * oh + p) * ow + q],
                        "oc={oc} p={p} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the ring degree")]
    fn impossible_tiling_panics() {
        ConvEncoder::new(
            ConvShape {
                c: 1,
                h: 16,
                w: 16,
                m: 1,
                k: 3,
            },
            32,
        );
    }
}
