//! Cheetah-style coefficient encoding of matrix–vector products (the
//! fully-connected layers of the network).
//!
//! For `y = W·x` with `W ∈ Z^{no×ni}`: the vector places `x[j]` at
//! coefficient `j`; a block of rows places `W[i][j]` at coefficient
//! `i·ni + (ni−1−j)`. The negacyclic product then carries the dot
//! product `y[i]` at coefficient `i·ni + ni − 1`. Large `ni` splits into
//! column chunks whose partial products accumulate homomorphically;
//! large `no` splits into row blocks (independent ciphertexts).
//!
//! Unlike convolution kernels, FC weight polynomials are *dense* (every
//! coefficient of a row span is a real weight) — FC layers gain from the
//! approximate FFT but not from the sparse dataflow, and they are a tiny
//! share of ResNet inference.

/// The tiling plan of one matrix–vector product into degree-`n`
/// polynomials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatVecEncoder {
    ni: usize,
    no: usize,
    n: usize,
    /// Columns per chunk (`≤ n`).
    nc: usize,
    /// Number of column chunks.
    col_chunks: usize,
    /// Rows per polynomial (`rows · nc ≤ n`).
    rows_per_block: usize,
    /// Number of row blocks.
    row_blocks: usize,
}

impl MatVecEncoder {
    /// Plans `y = W·x` with `W ∈ Z^{no×ni}` into ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or a dimension is zero.
    pub fn new(ni: usize, no: usize, n: usize) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        assert!(ni > 0 && no > 0, "dimensions must be positive");
        let nc = ni.min(n);
        let col_chunks = ni.div_ceil(nc);
        let rows_per_block = (n / nc).min(no).max(1);
        let row_blocks = no.div_ceil(rows_per_block);
        Self {
            ni,
            no,
            n,
            nc,
            col_chunks,
            rows_per_block,
            row_blocks,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.ni
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.no
    }

    /// Column chunks (vector ciphertexts; partial sums accumulate).
    pub fn col_chunks(&self) -> usize {
        self.col_chunks
    }

    /// Row blocks (independent result ciphertexts).
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// Rows carried per polynomial.
    pub fn rows_per_block(&self) -> usize {
        self.rows_per_block
    }

    /// Weight polynomials the server encodes (`row_blocks × col_chunks`).
    pub fn weight_polys(&self) -> usize {
        self.row_blocks * self.col_chunks
    }

    /// Encodes the input vector into `col_chunks` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ni`.
    pub fn encode_vector(&self, x: &[i64]) -> Vec<Vec<i64>> {
        assert_eq!(x.len(), self.ni, "vector length mismatch");
        (0..self.col_chunks)
            .map(|cc| {
                let mut poly = vec![0i64; self.n];
                let base = cc * self.nc;
                let len = self.nc.min(self.ni - base);
                poly[..len].copy_from_slice(&x[base..base + len]);
                poly
            })
            .collect()
    }

    /// Encodes row block `rb` × column chunk `cc` of `W` (row-major
    /// `no×ni`) into one polynomial.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block indices or a size mismatch.
    pub fn encode_matrix(&self, w: &[i64], rb: usize, cc: usize) -> Vec<i64> {
        assert_eq!(w.len(), self.no * self.ni, "matrix size mismatch");
        assert!(
            rb < self.row_blocks && cc < self.col_chunks,
            "block out of range"
        );
        let mut poly = vec![0i64; self.n];
        let row0 = rb * self.rows_per_block;
        let col0 = cc * self.nc;
        for i in 0..self.rows_per_block.min(self.no - row0) {
            for j in 0..self.nc.min(self.ni - col0) {
                poly[i * self.nc + (self.nc - 1 - j)] = w[(row0 + i) * self.ni + col0 + j];
            }
        }
        poly
    }

    /// The product-polynomial coefficient index carrying output row `i`
    /// (within its block).
    #[inline]
    pub fn output_index(&self, i_in_block: usize) -> usize {
        i_in_block * self.nc + self.nc - 1
    }

    /// Extracts this row block's outputs from the (chunk-accumulated)
    /// product polynomial into `y` (length `no`).
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn decode_block(&self, prod: &[i64], rb: usize, y: &mut [i64]) {
        assert_eq!(prod.len(), self.n, "product length mismatch");
        assert_eq!(y.len(), self.no, "output length mismatch");
        let row0 = rb * self.rows_per_block;
        for i in 0..self.rows_per_block.min(self.no - row0) {
            y[row0 + i] = prod[self.output_index(i)];
        }
    }
}

/// Reference matrix–vector product.
pub fn matvec_reference(w: &[i64], x: &[i64], ni: usize, no: usize) -> Vec<i64> {
    assert_eq!(w.len(), no * ni);
    assert_eq!(x.len(), ni);
    (0..no)
        .map(|i| (0..ni).map(|j| w[i * ni + j] * x[j]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn check(ni: usize, no: usize, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<i64> = (0..no * ni).map(|_| rng.gen_range(-8..8)).collect();
        let x: Vec<i64> = (0..ni).map(|_| rng.gen_range(-8..8)).collect();
        let enc = MatVecEncoder::new(ni, no, n);
        let fft = flash_fft::NegacyclicFft::shared(n);
        let xs = enc.encode_vector(&x);
        let mut y = vec![0i64; no];
        for rb in 0..enc.row_blocks() {
            let mut acc = vec![0i64; n];
            for (cc, xp) in xs.iter().enumerate() {
                let wp = enc.encode_matrix(&w, rb, cc);
                for (a, p) in acc.iter_mut().zip(fft.polymul_i64(xp, &wp)) {
                    *a += p as i64;
                }
            }
            enc.decode_block(&acc, rb, &mut y);
        }
        assert_eq!(y, matvec_reference(&w, &x, ni, no), "ni={ni} no={no} n={n}");
    }

    #[test]
    fn single_poly_matvec() {
        check(8, 4, 64, 1); // everything fits in one polynomial
        check(16, 4, 64, 2);
    }

    #[test]
    fn row_blocked_matvec() {
        // 8 rows of width 16 need two 64-degree polys (4 rows each)
        let enc = MatVecEncoder::new(16, 8, 64);
        assert_eq!(enc.rows_per_block(), 4);
        assert_eq!(enc.row_blocks(), 2);
        check(16, 8, 64, 3);
    }

    #[test]
    fn column_chunked_matvec() {
        // ni = 96 > n = 64: two column chunks, partial sums accumulate.
        let enc = MatVecEncoder::new(96, 2, 64);
        assert_eq!(enc.col_chunks(), 2);
        check(96, 2, 64, 4);
    }

    #[test]
    fn blocked_and_chunked_matvec() {
        check(100, 7, 64, 5);
        check(130, 10, 128, 6);
    }

    #[test]
    fn resnet_fc_shape_plan() {
        // ResNet-50's classifier: 2048 -> 1000 at N = 4096.
        let enc = MatVecEncoder::new(2048, 1000, 4096);
        assert_eq!(enc.col_chunks(), 1);
        assert_eq!(enc.rows_per_block(), 2);
        assert_eq!(enc.row_blocks(), 500);
        assert_eq!(enc.weight_polys(), 500);
    }

    #[test]
    fn fc_weight_polys_are_dense() {
        let enc = MatVecEncoder::new(8, 4, 32);
        let w: Vec<i64> = (1..=32).collect();
        let poly = enc.encode_matrix(&w, 0, 0);
        let nnz = poly.iter().filter(|&&v| v != 0).count();
        assert_eq!(nnz, 32, "FC weight polynomials carry no sparsity");
    }
}
