//! Ciphertexts and the homomorphic operations the hybrid protocol uses.
//!
//! The server-side evaluation of one homomorphic convolution is
//! `(Enc({x}^C) ⊞ {x}^S) ⊠ w ⊟ s` — plaintext addition, plaintext
//! multiplication (through a pluggable [`PolyMulBackend`]) and plaintext
//! subtraction, plus ciphertext–ciphertext addition for accumulating
//! partial sums across input-channel tiles.

use crate::backend::PolyMulBackend;
use crate::params::HeParams;
use crate::poly::Poly;
use flash_math::modular::{add_mod, center_lift, from_signed, sub_mod, Shoup};

/// A BFV ciphertext `(c0, c1)` with `c0 + c1·s = Δ·m + e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    c0: Poly,
    c1: Poly,
}

impl Ciphertext {
    /// Wraps two ciphertext-ring polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the components disagree in modulus or length.
    pub fn new(c0: Poly, c1: Poly) -> Self {
        assert_eq!(c0.modulus(), c1.modulus(), "component modulus mismatch");
        assert_eq!(c0.len(), c1.len(), "component length mismatch");
        Self { c0, c1 }
    }

    /// Checks that a (typically deserialized) ciphertext belongs to a
    /// parameter set: ring degree `n` and coefficient modulus `q` must
    /// match. Coefficient reduction is already enforced by
    /// [`crate::serialize::ciphertext_from_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::HeError`] on a degree or modulus mismatch.
    pub fn validate_for(&self, params: &HeParams) -> Result<(), crate::error::HeError> {
        if self.len() != params.n {
            return Err(crate::error::HeError::SizeMismatch {
                expected: params.n,
                got: self.len(),
            });
        }
        if self.c0.modulus() != params.q {
            return Err(crate::error::HeError::ModulusMismatch {
                expected: params.q,
                got: self.c0.modulus(),
            });
        }
        Ok(())
    }

    /// The transparent zero ciphertext — the identity for [`add_ct`]
    /// (`Ciphertext::add_ct`), used to seed fused accumulation loops.
    pub fn zero(n: usize, q: u64) -> Self {
        Self {
            c0: Poly::zero(n, q),
            c1: Poly::zero(n, q),
        }
    }

    /// First component.
    pub fn c0(&self) -> &Poly {
        &self.c0
    }

    /// Second component.
    pub fn c1(&self) -> &Poly {
        &self.c1
    }

    /// Ring degree.
    pub fn len(&self) -> usize {
        self.c0.len()
    }

    /// Whether the ciphertext is degenerate (zero-length).
    pub fn is_empty(&self) -> bool {
        self.c0.is_empty()
    }

    /// Serialized size in bytes (two polynomials of `⌈log2 q⌉`-bit words),
    /// used for protocol communication accounting.
    pub fn byte_size(&self) -> usize {
        let q_bits = 64 - self.c0.modulus().leading_zeros() as usize;
        2 * self.len() * q_bits.div_ceil(8)
    }

    /// Homomorphic ciphertext addition.
    pub fn add_ct(&self, other: &Ciphertext) -> Ciphertext {
        Ciphertext {
            c0: self.c0.add(&other.c0),
            c1: self.c1.add(&other.c1),
        }
    }

    /// `ct ⊞ p`: adds a plaintext (`mod t`) into the message slot.
    pub fn add_plain(&self, p: &Poly, params: &HeParams) -> Ciphertext {
        let mut out = self.clone();
        out.add_plain_assign(p, params);
        out
    }

    /// In-place [`Ciphertext::add_plain`]: folds the lift / Δ-scale /
    /// add pipeline into one pass over `c0` — no intermediate
    /// polynomials, one Shoup constant instead of a widening remainder
    /// per coefficient. Bit-identical to the allocating form.
    pub fn add_plain_assign(&mut self, p: &Poly, params: &HeParams) {
        self.plain_op_assign(p, params, add_mod);
    }

    /// `ct ⊟ p`: subtracts a plaintext from the message slot (the random
    /// share mask of the protocol).
    pub fn sub_plain(&self, p: &Poly, params: &HeParams) -> Ciphertext {
        let mut out = self.clone();
        out.sub_plain_assign(p, params);
        out
    }

    /// In-place [`Ciphertext::sub_plain`]; see
    /// [`Ciphertext::add_plain_assign`] for the cost argument.
    pub fn sub_plain_assign(&mut self, p: &Poly, params: &HeParams) {
        self.plain_op_assign(p, params, sub_mod);
    }

    /// Shared body of the in-place plaintext add/sub: for every
    /// coefficient, center-lift mod `t`, re-reduce mod `q`, scale by Δ
    /// (Shoup-multiplied — Δ is fixed for the whole pass) and combine
    /// into `c0`. `c1` is untouched, exactly as in the allocating forms.
    fn plain_op_assign(&mut self, p: &Poly, params: &HeParams, op: fn(u64, u64, u64) -> u64) {
        assert_eq!(p.modulus(), params.t, "plaintext must be mod t");
        assert_eq!(p.len(), self.c0.len(), "plaintext length mismatch");
        let (t, q) = (params.t, params.q);
        let delta = Shoup::new(params.delta(), q);
        for (c, &m) in self.c0.coeffs_mut().iter_mut().zip(p.coeffs()) {
            let lifted = from_signed(center_lift(m, t), q);
            *c = op(*c, delta.mul(lifted, q), q);
        }
    }

    /// `ct ⊠ w`: multiplies by a small signed plaintext polynomial through
    /// the chosen backend (both components are transformed — the "2
    /// transforms per ciphertext" of the accelerator's workload).
    pub fn mul_plain_signed(
        &self,
        w_signed: &[i64],
        params: &HeParams,
        backend: &PolyMulBackend,
    ) -> Ciphertext {
        Ciphertext {
            c0: backend.mul_ct_pt(&self.c0, w_signed, params),
            c1: backend.mul_ct_pt(&self.c1, w_signed, params),
        }
    }

    /// Fused `acc ⊞= self ⊠ w`: multiplies by a small signed plaintext
    /// polynomial and accumulates into `acc` without materializing the
    /// intermediate ciphertext. Bit-identical to
    /// `acc.add_ct(&self.mul_plain_signed(w, params, backend))`, but the
    /// weight transform runs once per call (shared by both components)
    /// and all intermediates come from the scratch pools.
    pub fn mul_plain_signed_acc(
        &self,
        w_signed: &[i64],
        params: &HeParams,
        backend: &PolyMulBackend,
        acc: &mut Ciphertext,
    ) {
        backend.mul_ct_pt_acc(
            &mut acc.c0,
            &mut acc.c1,
            &self.c0,
            &self.c1,
            w_signed,
            params,
        );
    }

    /// Exact `acc ⊞= self ⊠ w` for the noise guard's fallback path,
    /// dispatched on the ring family: the Shoup-NTT MAC on a prime ring,
    /// the wrapping schoolbook over the weight's nonzero taps on a
    /// power-of-two ring (where the prime NTT does not exist — and where
    /// the schoolbook keeps the datapath's zero-reduction property while
    /// being **bit-exact**). Quantized conv bands carry a handful of
    /// taps, so the `taps·N` schoolbook stays comparable to a transform.
    pub fn mul_plain_signed_acc_exact(
        &self,
        w_signed: &[i64],
        params: &HeParams,
        acc: &mut Ciphertext,
    ) {
        if params.is_pow2() {
            let taps: Vec<(usize, i64)> = w_signed
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w != 0)
                .map(|(j, &w)| (j, w))
                .collect();
            let _t = flash_telemetry::span!("hconv.pointwise_acc");
            for (acc, a) in [(&mut acc.c0, &self.c0), (&mut acc.c1, &self.c1)] {
                let dst = acc.coeffs_mut();
                flash_math::pow2::negacyclic_mac_taps(dst, a.coeffs(), &taps);
                flash_math::pow2::reduce_slice(dst, params.q);
            }
        } else {
            PolyMulBackend::Ntt.mul_ct_pt_acc(
                &mut acc.c0,
                &mut acc.c1,
                &self.c0,
                &self.c1,
                w_signed,
                params,
            );
        }
    }

    /// Like [`Ciphertext::mul_plain_signed_acc`], but routes the weight
    /// transform through a compiled [`flash_sparse::SparsePlan`] when one
    /// is supplied, the backend is FFT-family, and the plan is
    /// worthwhile; the dense path runs bit-for-bit otherwise. Returns
    /// `true` when the sparse tape executed.
    pub fn mul_plain_signed_acc_plan(
        &self,
        w_signed: &[i64],
        params: &HeParams,
        backend: &PolyMulBackend,
        plan: Option<&flash_sparse::SparsePlan>,
        acc: &mut Ciphertext,
    ) -> bool {
        backend.mul_ct_pt_acc_plan(
            &mut acc.c0,
            &mut acc.c1,
            &self.c0,
            &self.c1,
            w_signed,
            params,
            plan,
        )
    }

    /// Fused `acc ⊞= self ⊠ w` with the weight already in the spectral
    /// domain (e.g. from [`flash_sparse::SparsePlan::execute_batch_into`]
    /// over a whole layer). FFT-family backends only.
    pub fn mul_plain_spectrum_acc(
        &self,
        fw: &[flash_math::C64],
        params: &HeParams,
        backend: &PolyMulBackend,
        acc: &mut Ciphertext,
    ) {
        backend.mul_ct_pt_acc_spectrum(
            &mut acc.c0,
            &mut acc.c1,
            &self.c0,
            &self.c1,
            fw,
            params.fft(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use flash_math::modular::from_signed;
    use rand::{Rng, SeedableRng};

    fn setup() -> (HeParams, SecretKey, rand::rngs::StdRng) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&p, &mut rng);
        (p, sk, rng)
    }

    #[test]
    fn add_plain_is_plaintext_addition() {
        let (p, sk, mut rng) = setup();
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m1, &mut rng).add_plain(&m2, &p);
        assert_eq!(sk.decrypt(&ct), m1.add(&m2));
    }

    #[test]
    fn sub_plain_is_plaintext_subtraction() {
        let (p, sk, mut rng) = setup();
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let mask = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m1, &mut rng).sub_plain(&mask, &p);
        assert_eq!(sk.decrypt(&ct), m1.sub(&mask));
    }

    #[test]
    fn plain_assign_forms_match_lift_scale_pipeline() {
        // The fused in-place add/sub must be bit-identical to the
        // original three-pass formulation (`lift_to` → `scale` → ring
        // add/sub), which is what the wire fixtures were recorded with.
        let (p, sk, mut rng) = setup();
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let plain = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let scaled = plain.lift_to(p.q).scale(p.delta());
        let added = Ciphertext::new(ct.c0().add(&scaled), ct.c1().clone());
        let subbed = Ciphertext::new(ct.c0().sub(&scaled), ct.c1().clone());
        assert_eq!(ct.add_plain(&plain, &p), added);
        assert_eq!(ct.sub_plain(&plain, &p), subbed);
        let mut inplace = ct.clone();
        inplace.add_plain_assign(&plain, &p);
        assert_eq!(inplace, added);
        let mut inplace = ct.clone();
        inplace.sub_plain_assign(&plain, &p);
        assert_eq!(inplace, subbed);
    }

    #[test]
    fn add_ct_accumulates() {
        let (p, sk, mut rng) = setup();
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m1, &mut rng).add_ct(&sk.encrypt(&m2, &mut rng));
        assert_eq!(sk.decrypt(&ct), m1.add(&m2));
    }

    #[test]
    fn mul_plain_matches_ring_product() {
        let (p, sk, mut rng) = setup();
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..9 {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        for backend in [PolyMulBackend::Ntt, PolyMulBackend::FftF64] {
            let ct = sk.encrypt(&m, &mut rng).mul_plain_signed(&w, &p, &backend);
            // expected: m * w in the plaintext ring Z_t[X]/(X^N+1)
            let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
            let expected = flash_ntt::polymul::negacyclic_mul_naive(m.coeffs(), &w_t, p.t);
            assert_eq!(sk.decrypt(&ct).coeffs(), &expected[..]);
        }
    }

    #[test]
    fn fused_mul_acc_is_bit_identical_to_mul_then_add() {
        let (p, sk, mut rng) = setup();
        let mut cfg =
            flash_fft::ApproxFftConfig::uniform(p.n, flash_math::fixed::FxpFormat::new(20, 60), 60);
        cfg.max_shift = 55;
        for backend in [
            PolyMulBackend::Ntt,
            PolyMulBackend::FftF64,
            PolyMulBackend::approx(cfg),
        ] {
            let mut acc = Ciphertext::zero(p.n, p.q);
            let mut reference: Option<Ciphertext> = None;
            for round in 0..3u64 {
                let m = Poly::uniform(p.n, p.t, &mut rng);
                let ct = sk.encrypt(&m, &mut rng);
                let mut w = vec![0i64; p.n];
                for _ in 0..9 {
                    let i = rng.gen_range(0..p.n);
                    w[i] = rng.gen_range(-8..8);
                }
                ct.mul_plain_signed_acc(&w, &p, &backend, &mut acc);
                let term = ct.mul_plain_signed(&w, &p, &backend);
                reference = Some(match reference {
                    None => term,
                    Some(r) => r.add_ct(&term),
                });
                assert_eq!(
                    acc,
                    reference.clone().unwrap(),
                    "fused MAC diverged at round {round}"
                );
            }
        }
    }

    #[test]
    fn pow2_mul_plain_matches_ring_product() {
        // The full ⊠ path on q = 2^62: FFT lift at 61-bit magnitudes,
        // wrapping mask reduction, u128 decrypt rounding.
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for _ in 0..9 {
            let i = rng.gen_range(0..p.n);
            w[i] = rng.gen_range(-8..8);
        }
        let ct = sk
            .encrypt(&m, &mut rng)
            .mul_plain_signed(&w, &p, &PolyMulBackend::Pow2);
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
        let expected = flash_ntt::polymul::negacyclic_mul_naive(m.coeffs(), &w_t, p.t);
        assert_eq!(sk.decrypt(&ct).coeffs(), &expected[..]);
    }

    #[test]
    fn pow2_fused_mul_acc_is_bit_identical_to_mul_then_add() {
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = SecretKey::generate(&p, &mut rng);
        let backend = PolyMulBackend::Pow2;
        let mut acc = Ciphertext::zero(p.n, p.q);
        let mut reference: Option<Ciphertext> = None;
        for round in 0..3u64 {
            let m = Poly::uniform(p.n, p.t, &mut rng);
            let ct = sk.encrypt(&m, &mut rng);
            let mut w = vec![0i64; p.n];
            for _ in 0..9 {
                let i = rng.gen_range(0..p.n);
                w[i] = rng.gen_range(-8..8);
            }
            ct.mul_plain_signed_acc(&w, &p, &backend, &mut acc);
            let term = ct.mul_plain_signed(&w, &p, &backend);
            reference = Some(match reference {
                None => term,
                Some(r) => r.add_ct(&term),
            });
            assert_eq!(
                acc,
                reference.clone().unwrap(),
                "fused pow2 MAC diverged at round {round}"
            );
        }
    }

    #[test]
    fn exact_acc_is_bit_exact_on_both_rings() {
        // The noise guard's fallback must land exactly on the ring
        // product, whatever the ring family — uniform (worst-case)
        // ciphertext components, accumulated twice to exercise the
        // `acc += ...` form.
        for p in [HeParams::test_256(), HeParams::pow2_test_256()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(14);
            let mut w = vec![0i64; p.n];
            for _ in 0..9 {
                let i = rng.gen_range(0..p.n);
                w[i] = rng.gen_range(-8..8);
            }
            let ct = Ciphertext::new(
                Poly::uniform(p.n, p.q, &mut rng),
                Poly::uniform(p.n, p.q, &mut rng),
            );
            let mut acc = Ciphertext::zero(p.n, p.q);
            ct.mul_plain_signed_acc_exact(&w, &p, &mut acc);
            ct.mul_plain_signed_acc_exact(&w, &p, &mut acc);
            let w_q: Vec<u64> = w.iter().map(|&x| from_signed(x, p.q)).collect();
            let expect = |a: &Poly| {
                let prod = flash_ntt::polymul::negacyclic_mul_naive(a.coeffs(), &w_q, p.q);
                prod.iter().map(|&x| add_mod(x, x, p.q)).collect::<Vec<_>>()
            };
            assert_eq!(acc.c0().coeffs(), &expect(ct.c0())[..], "c0, q={}", p.q);
            assert_eq!(acc.c1().coeffs(), &expect(ct.c1())[..], "c1, q={}", p.q);
        }
    }

    #[test]
    fn mul_plain_noise_growth_is_bounded() {
        let (p, sk, mut rng) = setup();
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for i in 0..9 {
            w[i * 7] = if i % 2 == 0 { 7 } else { -8 };
        }
        let ct = sk.encrypt(&m, &mut rng);
        let before = sk.noise(&ct, &m).inf_norm();
        let ct2 = ct.mul_plain_signed(&w, &p, &PolyMulBackend::Ntt);
        // product message mod t
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
        let mw = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.coeffs(), &w_t, p.t),
            p.t,
        );
        let after = sk.noise(&ct2, &mw).inf_norm();
        // growth bounded by ||w||_1-ish factor (9 coefficients of < 8)
        assert!(
            after <= before * 9 * 8 + p.t,
            "noise grew too much: {before} -> {after}"
        );
        assert!(sk.noise_budget_bits(&ct2, &mw) > 0.0);
    }

    #[test]
    fn byte_size_accounting() {
        let (p, sk, mut rng) = setup();
        let ct = sk.encrypt(&Poly::zero(p.n, p.t), &mut rng);
        // 256 coeffs * 2 polys * ceil(36/8)=5 bytes
        assert_eq!(ct.byte_size(), 2 * 256 * 5);
    }
}
