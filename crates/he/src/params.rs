//! BFV parameter sets.
//!
//! The hybrid protocol with low-bit-width quantized CNNs runs at small
//! parameters (the paper's point in Section III): `N = 4096`, a ~39-bit
//! ciphertext modulus (matching CHAM's 39-bit NTT datapath) and a
//! power-of-two plaintext modulus sized to the convolution sum-product
//! bit-width.

use flash_math::prime::ntt_prime;
use std::fmt;
use std::sync::Arc;

use flash_fft::negacyclic::NegacyclicFft;
use flash_ntt::NttTables;

/// BFV parameters plus shared transform plans for the ring.
#[derive(Clone)]
pub struct HeParams {
    /// Ring degree `N` (power of two).
    pub n: usize,
    /// Ciphertext modulus `q` (NTT-friendly prime).
    pub q: u64,
    /// Plaintext modulus `t` (a power of two, matching the 2PC share ring).
    pub t: u64,
    /// Standard deviation of the encryption error.
    pub noise_std: f64,
    ntt: Arc<NttTables>,
    fft: Arc<NegacyclicFft>,
}

impl fmt::Debug for HeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeParams")
            .field("n", &self.n)
            .field("q", &self.q)
            .field("t", &self.t)
            .field("noise_std", &self.noise_std)
            .finish()
    }
}

impl PartialEq for HeParams {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.q == other.q && self.t == other.t
    }
}

impl HeParams {
    /// Builds a parameter set with `q` the largest prime below `2^q_bits`
    /// satisfying both `q ≡ 1 (mod 2N)` (negacyclic NTT) and
    /// `q ≡ 1 (mod t)` (so plaintext-ring wraparound carries multiply a
    /// unit into the noise instead of `q mod t`).
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ q/2` (no noise budget), `t` is not a power of two,
    /// or no suitable prime exists.
    pub fn new(n: usize, q_bits: u32, t: u64, noise_std: f64) -> Self {
        assert!(
            t.is_power_of_two(),
            "plaintext modulus must be a power of two"
        );
        assert!(
            t < (1u64 << q_bits) / 2,
            "plaintext modulus leaves no noise budget"
        );
        // Both 2N and t are powers of two, so the combined congruence is
        // q ≡ 1 (mod max(2N, t)) — i.e. an NTT prime for degree
        // max(N, t/2).
        let n_eff = n.max((t / 2) as usize);
        let q = ntt_prime(q_bits, n_eff as u64).expect("no NTT-friendly prime at this size");
        assert!(t < q / 2, "plaintext modulus leaves no noise budget");
        let ntt = NttTables::shared(n, q).expect("params are NTT friendly");
        let fft = NegacyclicFft::shared(n);
        Self {
            n,
            q,
            t,
            noise_std,
            ntt,
            fft,
        }
    }

    /// The FLASH/Cheetah operating point: `N = 4096`, 39-bit `q`,
    /// `t = 2^21` (W4A4 convolution sum-products), σ = 3.2.
    pub fn flash_default() -> Self {
        Self::new(4096, 39, 1 << 21, 3.2)
    }

    /// A tiny parameter set for unit tests and doc examples
    /// (`N = 8` — NOT secure, purely functional).
    pub fn toy() -> Self {
        Self::new(8, 30, 1 << 8, 1.0)
    }

    /// A mid-size set for integration tests (`N = 256`).
    pub fn test_256() -> Self {
        Self::new(256, 36, 1 << 16, 3.2)
    }

    /// `Δ = ⌊q/t⌋`, the plaintext scaling factor.
    #[inline]
    pub fn delta(&self) -> u64 {
        self.q / self.t
    }

    /// The decryption noise budget ceiling `q/(2t)`: decryption is correct
    /// while `‖noise‖_∞` stays below this.
    #[inline]
    pub fn noise_ceiling(&self) -> u64 {
        self.q / (2 * self.t)
    }

    /// Shared exact-NTT tables for this ring.
    #[inline]
    pub fn ntt(&self) -> &NttTables {
        &self.ntt
    }

    /// Shared `f64` negacyclic FFT plan for this ring.
    #[inline]
    pub fn fft(&self) -> &NegacyclicFft {
        &self.fft
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_shape() {
        let p = HeParams::flash_default();
        assert_eq!(p.n, 4096);
        assert_eq!(p.q % (2 * 4096), 1);
        assert!(p.q < (1 << 39) && p.q > (1 << 38));
        assert_eq!(p.t, 1 << 21);
        assert!(p.delta() > (1 << 17));
        assert!(p.noise_ceiling() >= (1 << 16));
    }

    #[test]
    fn toy_params_work() {
        let p = HeParams::toy();
        assert_eq!(p.n, 8);
        assert_eq!(p.ntt().degree(), 8);
        assert_eq!(p.fft().degree(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_t() {
        HeParams::new(8, 30, 100, 1.0);
    }

    #[test]
    #[should_panic(expected = "noise budget")]
    fn rejects_oversized_t() {
        HeParams::new(8, 20, 1 << 20, 1.0);
    }
}
