//! BFV parameter sets.
//!
//! The hybrid protocol with low-bit-width quantized CNNs runs at small
//! parameters (the paper's point in Section III): `N = 4096`, a ~39-bit
//! ciphertext modulus (matching CHAM's 39-bit NTT datapath) and a
//! power-of-two plaintext modulus sized to the convolution sum-product
//! bit-width.
//!
//! Two ring families are supported:
//!
//! * **Prime** — `q` an NTT-friendly prime; exact arithmetic via the
//!   Shoup NTT, approximate arithmetic via the `f64` FFT backends.
//! * **Power-of-two** — `q = 2^l` (Jaguar-style): modular reduction on
//!   the MAC path is a single AND and all accumulation is native
//!   wrapping arithmetic, at the price of losing the ring's own NTT.
//!   Exact key operations lift through a two-limb CRT of helper primes
//!   ([`flash_ntt::pow2::Pow2Ring`]); the hot path lifts through the
//!   shared FFT like the other approximate backends. Because both `t`
//!   and `q` are powers of two, `Δ = q/t` is exact and plaintext-ring
//!   wraparound carries vanish entirely (`q ≡ 0 (mod t)`).

use flash_math::prime::ntt_prime;
use std::fmt;
use std::sync::Arc;

use flash_fft::negacyclic::NegacyclicFft;
use flash_ntt::pow2::Pow2Ring;
use flash_ntt::NttTables;

/// The coefficient-ring context: the modulus family decides which exact
/// multiplication machinery key operations use.
#[derive(Clone)]
enum RingCtx {
    /// NTT-friendly prime modulus with its transform tables.
    Prime(Arc<NttTables>),
    /// Power-of-two modulus with its CRT-NTT lift for key operations.
    Pow2(Arc<Pow2Ring>),
}

/// BFV parameters plus shared transform plans for the ring.
#[derive(Clone)]
pub struct HeParams {
    /// Ring degree `N` (power of two).
    pub n: usize,
    /// Ciphertext modulus `q` (NTT-friendly prime or a power of two).
    pub q: u64,
    /// Plaintext modulus `t` (a power of two, matching the 2PC share ring).
    pub t: u64,
    /// Standard deviation of the encryption error.
    pub noise_std: f64,
    ring: RingCtx,
    fft: Arc<NegacyclicFft>,
}

impl fmt::Debug for HeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeParams")
            .field("n", &self.n)
            .field("q", &self.q)
            .field("t", &self.t)
            .field("noise_std", &self.noise_std)
            .field("pow2", &self.is_pow2())
            .finish()
    }
}

impl PartialEq for HeParams {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.q == other.q && self.t == other.t
    }
}

impl HeParams {
    /// Builds a parameter set with `q` the largest prime below `2^q_bits`
    /// satisfying both `q ≡ 1 (mod 2N)` (negacyclic NTT) and
    /// `q ≡ 1 (mod t)` (so plaintext-ring wraparound carries multiply a
    /// unit into the noise instead of `q mod t`).
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ q/2` (no noise budget), `t` is not a power of two,
    /// or no suitable prime exists.
    pub fn new(n: usize, q_bits: u32, t: u64, noise_std: f64) -> Self {
        assert!(
            t.is_power_of_two(),
            "plaintext modulus must be a power of two"
        );
        assert!(
            t < (1u64 << q_bits) / 2,
            "plaintext modulus leaves no noise budget"
        );
        // Both 2N and t are powers of two, so the combined congruence is
        // q ≡ 1 (mod max(2N, t)) — i.e. an NTT prime for degree
        // max(N, t/2).
        let n_eff = n.max((t / 2) as usize);
        let q = ntt_prime(q_bits, n_eff as u64).expect("no NTT-friendly prime at this size");
        assert!(t < q / 2, "plaintext modulus leaves no noise budget");
        let ntt = NttTables::shared(n, q).expect("params are NTT friendly");
        let fft = NegacyclicFft::shared(n);
        Self {
            n,
            q,
            t,
            noise_std,
            ring: RingCtx::Prime(ntt),
            fft,
        }
    }

    /// Builds a power-of-two parameter set with `q = 2^l`. All MAC-path
    /// reduction degenerates to wrapping arithmetic plus one mask;
    /// exact key operations run through the CRT-NTT lift.
    ///
    /// `l` is capped at 62 (the workspace-wide `q < 2^63` contract);
    /// `2^62` already exceeds every prime modulus the NTT baseline can
    /// reach, so the cap costs no headroom in practice.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two, `t ≥ 2^l / 2`, or `l` is
    /// outside `2..=62`.
    pub fn new_pow2(n: usize, l: u32, t: u64, noise_std: f64) -> Self {
        assert!(
            t.is_power_of_two(),
            "plaintext modulus must be a power of two"
        );
        assert!(
            (2..=62).contains(&l),
            "power-of-two modulus exponent {l} outside 2..=62"
        );
        let q = 1u64 << l;
        assert!(t < q / 2, "plaintext modulus leaves no noise budget");
        let ring = Arc::new(Pow2Ring::new(n, l));
        let fft = NegacyclicFft::shared(n);
        Self {
            n,
            q,
            t,
            noise_std,
            ring: RingCtx::Pow2(ring),
            fft,
        }
    }

    /// The FLASH/Cheetah operating point: `N = 4096`, 39-bit `q`,
    /// `t = 2^21` (W4A4 convolution sum-products), σ = 3.2.
    pub fn flash_default() -> Self {
        Self::new(4096, 39, 1 << 21, 3.2)
    }

    /// The power-of-two twin of [`HeParams::flash_default`]: same ring
    /// degree and plaintext modulus, `q = 2^62` — maximal noise ceiling
    /// and free reduction.
    pub fn flash_pow2() -> Self {
        Self::new_pow2(4096, 62, 1 << 21, 3.2)
    }

    /// A tiny parameter set for unit tests and doc examples
    /// (`N = 8` — NOT secure, purely functional).
    pub fn toy() -> Self {
        Self::new(8, 30, 1 << 8, 1.0)
    }

    /// A mid-size set for integration tests (`N = 256`).
    pub fn test_256() -> Self {
        Self::new(256, 36, 1 << 16, 3.2)
    }

    /// The power-of-two twin of [`HeParams::test_256`] (`q = 2^62`).
    pub fn pow2_test_256() -> Self {
        Self::new_pow2(256, 62, 1 << 16, 3.2)
    }

    /// `Δ = ⌊q/t⌋`, the plaintext scaling factor.
    #[inline]
    pub fn delta(&self) -> u64 {
        self.q / self.t
    }

    /// The decryption noise budget ceiling `q/(2t)`: decryption is correct
    /// while `‖noise‖_∞` stays below this.
    #[inline]
    pub fn noise_ceiling(&self) -> u64 {
        self.q / (2 * self.t)
    }

    /// Whether the ciphertext modulus is a power of two.
    #[inline]
    pub fn is_pow2(&self) -> bool {
        matches!(self.ring, RingCtx::Pow2(_))
    }

    /// Shared exact-NTT tables for this ring.
    ///
    /// # Panics
    ///
    /// Panics for a power-of-two ring — `2^l` admits no negacyclic NTT;
    /// exact products go through [`HeParams::key_mul_into`] (dense, key
    /// operations) or the wrapping schoolbook (sparse fallback) instead.
    #[inline]
    pub fn ntt(&self) -> &NttTables {
        match &self.ring {
            RingCtx::Prime(t) => t,
            RingCtx::Pow2(_) => panic!(
                "power-of-two modulus {q} has no NTT; use key_mul_into or the \
                 wrapping kernels",
                q = self.q
            ),
        }
    }

    /// The power-of-two ring context.
    ///
    /// # Panics
    ///
    /// Panics for a prime ring.
    #[inline]
    pub fn pow2_ring(&self) -> &Pow2Ring {
        match &self.ring {
            RingCtx::Pow2(r) => r,
            RingCtx::Prime(_) => panic!("prime modulus {q} is not a power-of-two ring", q = self.q),
        }
    }

    /// Shared `f64` negacyclic FFT plan for this ring.
    #[inline]
    pub fn fft(&self) -> &NegacyclicFft {
        &self.fft
    }

    /// Exact negacyclic product for key operations (`a·s`, `p·u`, …)
    /// where the second operand is *small* (ternary secrets, encryption
    /// randomness): Shoup-NTT on a prime ring, CRT-NTT lift on a
    /// power-of-two ring. Never used on the MAC hot path.
    pub fn key_mul_into(&self, out: &mut [u64], a: &[u64], b_small: &[u64]) {
        match &self.ring {
            RingCtx::Prime(t) => {
                flash_ntt::polymul::negacyclic_mul_ntt_into(out, a, b_small, t);
            }
            RingCtx::Pow2(r) => r.negacyclic_mul_small_into(out, a, b_small),
        }
    }

    /// Allocating convenience wrapper over [`HeParams::key_mul_into`].
    pub fn key_mul(&self, a: &[u64], b_small: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        self.key_mul_into(&mut out, a, b_small);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_shape() {
        let p = HeParams::flash_default();
        assert_eq!(p.n, 4096);
        assert_eq!(p.q % (2 * 4096), 1);
        assert!(p.q < (1 << 39) && p.q > (1 << 38));
        assert_eq!(p.t, 1 << 21);
        assert!(p.delta() > (1 << 17));
        assert!(p.noise_ceiling() >= (1 << 16));
        assert!(!p.is_pow2());
    }

    #[test]
    fn pow2_params_shape() {
        let p = HeParams::flash_pow2();
        assert_eq!(p.n, 4096);
        assert_eq!(p.q, 1 << 62);
        assert!(p.is_pow2());
        // Δ is exact (no flooring remainder) and q ≡ 0 (mod t): the
        // wraparound carry term of the noise analysis vanishes.
        assert_eq!(p.delta() * p.t, p.q);
        assert_eq!(p.q % p.t, 0);
        // 2^62 beats the 39-bit prime's ceiling by >20 bits.
        assert!(p.noise_ceiling() > HeParams::flash_default().noise_ceiling() << 20);
        assert_eq!(p.pow2_ring().degree(), 4096);
    }

    #[test]
    fn key_mul_agrees_across_rings_on_ternary() {
        use rand::{Rng, SeedableRng};
        let prime = HeParams::test_256();
        let pow2 = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        // Same signed inputs, per-ring residues: products must agree
        // after center lift since no coefficient overflows either ring.
        let a_signed: Vec<i64> = (0..256).map(|_| rng.gen_range(-128..128)).collect();
        let s_signed: Vec<i64> = (0..256).map(|_| rng.gen_range(-1..=1)).collect();
        let enc = |xs: &[i64], q: u64| -> Vec<u64> {
            xs.iter()
                .map(|&x| flash_math::modular::from_signed(x, q))
                .collect()
        };
        let rp = prime.key_mul(&enc(&a_signed, prime.q), &enc(&s_signed, prime.q));
        let r2 = pow2.key_mul(&enc(&a_signed, pow2.q), &enc(&s_signed, pow2.q));
        for (x, y) in rp.iter().zip(&r2) {
            assert_eq!(
                flash_math::modular::center_lift(*x, prime.q),
                flash_math::modular::center_lift(*y, pow2.q)
            );
        }
    }

    #[test]
    #[should_panic(expected = "no NTT")]
    fn pow2_ring_has_no_ntt_tables() {
        let _ = HeParams::pow2_test_256().ntt();
    }

    #[test]
    fn toy_params_work() {
        let p = HeParams::toy();
        assert_eq!(p.n, 8);
        assert_eq!(p.ntt().degree(), 8);
        assert_eq!(p.fft().degree(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_t() {
        HeParams::new(8, 30, 100, 1.0);
    }

    #[test]
    #[should_panic(expected = "noise budget")]
    fn rejects_oversized_t() {
        HeParams::new(8, 20, 1 << 20, 1.0);
    }
}
