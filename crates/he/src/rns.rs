//! Multi-limb (RNS) BFV for larger ciphertext moduli.
//!
//! The paper sizes `q` "by the required noise budgets": one ~39-bit prime
//! suffices for W4A4 ResNets, but deeper accumulations (larger plaintext
//! moduli, denser weights, transformer-scale layers) need more headroom.
//! This module runs the same scheme over `Q = q₀·q₁·…` in residue form —
//! every limb is an independent NTT-friendly prime, all polynomial
//! arithmetic stays in 64-bit limbs, and only decryption reconstructs
//! through the CRT.

use crate::params::HeParams;
use crate::poly::Poly;
use flash_math::crt::CrtBasis;
use flash_math::modular::{from_signed, mul_mod};
use flash_math::prime::ntt_primes;
use flash_ntt::polymul::{negacyclic_mul_ntt, negacyclic_mul_ntt_into};
use flash_ntt::NttTables;
use flash_runtime::U64_SCRATCH;
use rand::Rng;
use std::sync::Arc;

/// RNS BFV parameters: a CRT basis of NTT-friendly primes.
#[derive(Debug, Clone)]
pub struct RnsParams {
    /// Ring degree.
    pub n: usize,
    /// Plaintext modulus (`2^l`, shared with the 2PC ring).
    pub t: u64,
    /// Encryption noise standard deviation.
    pub noise_std: f64,
    basis: CrtBasis,
    ntts: Vec<Arc<NttTables>>,
    /// `Δ = ⌊Q/t⌋ mod q_i` per limb.
    delta_limbs: Vec<u64>,
}

impl RnsParams {
    /// Builds parameters with `limbs` primes just below `2^prime_bits`,
    /// all `≡ 1 (mod max(2N, t))`.
    ///
    /// # Panics
    ///
    /// Panics if not enough suitable primes exist, `t` is not a power of
    /// two, or the product exceeds the CRT headroom.
    pub fn new(n: usize, prime_bits: u32, limbs: usize, t: u64, noise_std: f64) -> Self {
        assert!(
            t.is_power_of_two(),
            "plaintext modulus must be a power of two"
        );
        let n_eff = n.max((t / 2) as usize) as u64;
        let primes = ntt_primes(prime_bits, n_eff, limbs);
        assert_eq!(primes.len(), limbs, "not enough NTT primes at this size");
        let basis = CrtBasis::new(primes.clone());
        let q_prod = basis.product();
        assert!(
            t as u128 * 4 < q_prod,
            "plaintext modulus leaves no noise budget"
        );
        let ntts = primes
            .iter()
            .map(|&q| NttTables::shared(n, q).expect("NTT-friendly prime"))
            .collect();
        let delta = q_prod / t as u128;
        let delta_limbs = primes.iter().map(|&q| (delta % q as u128) as u64).collect();
        Self {
            n,
            t,
            noise_std,
            basis,
            ntts,
            delta_limbs,
        }
    }

    /// A double-limb FLASH configuration: `Q ≈ 2^78` at `N = 4096`,
    /// `t = 2^21` — roughly the square of the paper's single-limb budget.
    pub fn flash_double() -> Self {
        Self::new(4096, 39, 2, 1 << 21, 3.2)
    }

    /// A test-scale double-limb set (`N = 256`).
    pub fn test_double() -> Self {
        Self::new(256, 36, 2, 1 << 16, 3.2)
    }

    /// The CRT basis.
    pub fn basis(&self) -> &CrtBasis {
        &self.basis
    }

    /// Number of limbs.
    pub fn limbs(&self) -> usize {
        self.basis.len()
    }

    /// The modulus product `Q`.
    pub fn q_product(&self) -> u128 {
        self.basis.product()
    }

    /// The decryption noise ceiling `Q/(2t)`.
    pub fn noise_ceiling(&self) -> u128 {
        self.q_product() / (2 * self.t as u128)
    }

    /// The single-limb [`HeParams`]-equivalent noise ceiling, for budget
    /// comparisons.
    pub fn single_limb_ceiling(params: &HeParams) -> u128 {
        params.noise_ceiling() as u128
    }
}

/// A ring element in residue representation.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    limbs: Vec<Poly>,
}

impl RnsPoly {
    /// The zero element.
    pub fn zero(params: &RnsParams) -> Self {
        Self {
            limbs: params
                .basis
                .moduli()
                .iter()
                .map(|&q| Poly::zero(params.n, q))
                .collect(),
        }
    }

    /// Embeds small signed coefficients into every limb.
    pub fn from_signed(coeffs: &[i64], params: &RnsParams) -> Self {
        Self {
            limbs: params
                .basis
                .moduli()
                .iter()
                .map(|&q| Poly::from_signed(coeffs, q))
                .collect(),
        }
    }

    /// Uniform element of `R_Q` (independent uniform limbs, by CRT).
    pub fn uniform<R: Rng>(params: &RnsParams, rng: &mut R) -> Self {
        Self {
            limbs: params
                .basis
                .moduli()
                .iter()
                .map(|&q| Poly::uniform(params.n, q, rng))
                .collect(),
        }
    }

    /// Limb `i`.
    pub fn limb(&self, i: usize) -> &Poly {
        &self.limbs[i]
    }

    /// Coefficient-wise sum.
    pub fn add(&self, other: &RnsPoly) -> RnsPoly {
        RnsPoly {
            limbs: self
                .limbs
                .iter()
                .zip(&other.limbs)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// Coefficient-wise difference.
    pub fn sub(&self, other: &RnsPoly) -> RnsPoly {
        RnsPoly {
            limbs: self
                .limbs
                .iter()
                .zip(&other.limbs)
                .map(|(a, b)| a.sub(b))
                .collect(),
        }
    }

    /// Negacyclic product with a small signed polynomial (per-limb NTT).
    /// The reduced weight operand stays in a scratch buffer; only the
    /// per-limb result polynomials are allocated.
    pub fn mul_signed(&self, w: &[i64], params: &RnsParams) -> RnsPoly {
        RnsPoly {
            limbs: self
                .limbs
                .iter()
                .zip(&params.ntts)
                .map(|(limb, ntt)| {
                    let q = limb.modulus();
                    let mut wq = U64_SCRATCH.take(w.len());
                    for (slot, &x) in wq.iter_mut().zip(w) {
                        *slot = from_signed(x, q);
                    }
                    let mut out = vec![0u64; limb.len()];
                    negacyclic_mul_ntt_into(&mut out, limb.coeffs(), &wq, ntt);
                    Poly::from_coeffs(out, q)
                })
                .collect(),
        }
    }

    /// CRT-reconstructs coefficient `i` into `(-Q/2, Q/2]`.
    pub fn coeff_centered(&self, i: usize, params: &RnsParams) -> i128 {
        let residues: Vec<u64> = self.limbs.iter().map(|l| l.coeff(i)).collect();
        params.basis.reconstruct_centered(&residues)
    }
}

/// An RNS BFV ciphertext.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsCiphertext {
    c0: RnsPoly,
    c1: RnsPoly,
}

impl RnsCiphertext {
    /// `ct ⊞ pt` (plaintext mod `t`, scaled by Δ into every limb).
    pub fn add_plain(&self, p: &Poly, params: &RnsParams) -> RnsCiphertext {
        assert_eq!(p.modulus(), params.t, "plaintext must be mod t");
        let scaled = scale_plaintext(p, params);
        RnsCiphertext {
            c0: self.c0.add(&scaled),
            c1: self.c1.clone(),
        }
    }

    /// `ct ⊟ pt`.
    pub fn sub_plain(&self, p: &Poly, params: &RnsParams) -> RnsCiphertext {
        assert_eq!(p.modulus(), params.t, "plaintext must be mod t");
        let scaled = scale_plaintext(p, params);
        RnsCiphertext {
            c0: self.c0.sub(&scaled),
            c1: self.c1.clone(),
        }
    }

    /// `ct ⊠ w` for a small signed plaintext polynomial.
    pub fn mul_plain_signed(&self, w: &[i64], params: &RnsParams) -> RnsCiphertext {
        RnsCiphertext {
            c0: self.c0.mul_signed(w, params),
            c1: self.c1.mul_signed(w, params),
        }
    }

    /// Homomorphic addition.
    pub fn add_ct(&self, other: &RnsCiphertext) -> RnsCiphertext {
        RnsCiphertext {
            c0: self.c0.add(&other.c0),
            c1: self.c1.add(&other.c1),
        }
    }
}

fn scale_plaintext(p: &Poly, params: &RnsParams) -> RnsPoly {
    RnsPoly {
        limbs: params
            .basis
            .moduli()
            .iter()
            .zip(&params.delta_limbs)
            .map(|(&q, &delta)| {
                let lifted = p.lift_to(q);
                Poly::from_coeffs(
                    lifted
                        .coeffs()
                        .iter()
                        .map(|&c| mul_mod(c, delta, q))
                        .collect(),
                    q,
                )
            })
            .collect(),
    }
}

/// An RNS BFV secret key (one ternary secret, reduced into every limb).
#[derive(Debug, Clone)]
pub struct RnsSecretKey {
    params: RnsParams,
    s: RnsPoly,
}

impl RnsSecretKey {
    /// Samples a fresh key.
    pub fn generate<R: Rng>(params: &RnsParams, rng: &mut R) -> Self {
        let s_signed: Vec<i64> = (0..params.n).map(|_| rng.gen_range(-1i64..=1)).collect();
        Self {
            s: RnsPoly::from_signed(&s_signed, params),
            params: params.clone(),
        }
    }

    /// The parameters.
    pub fn params(&self) -> &RnsParams {
        &self.params
    }

    /// Encrypts a plaintext (`mod t`).
    ///
    /// # Panics
    ///
    /// Panics on modulus/length mismatch.
    pub fn encrypt<R: Rng>(&self, m: &Poly, rng: &mut R) -> RnsCiphertext {
        let p = &self.params;
        assert_eq!(m.modulus(), p.t, "plaintext must be mod t");
        assert_eq!(m.len(), p.n, "plaintext length must be N");
        let a = RnsPoly::uniform(p, rng);
        // one small error, embedded in every limb
        let e_signed: Vec<i64> = {
            let tmp = Poly::gaussian(p.n, 1 << 30, p.noise_std, rng);
            tmp.lifted()
        };
        let e = RnsPoly::from_signed(&e_signed, p);
        let a_s = RnsPoly {
            limbs: a
                .limbs
                .iter()
                .zip(&self.s.limbs)
                .zip(&p.ntts)
                .map(|((ai, si), ntt)| {
                    Poly::from_coeffs(
                        negacyclic_mul_ntt(ai.coeffs(), si.coeffs(), ntt),
                        ai.modulus(),
                    )
                })
                .collect(),
        };
        let scaled_m = scale_plaintext(m, p);
        RnsCiphertext {
            c0: scaled_m.add(&e).sub(&a_s),
            c1: a,
        }
    }

    /// The raw phase `c0 + c1·s`.
    fn phase(&self, ct: &RnsCiphertext) -> RnsPoly {
        let p = &self.params;
        let c1_s = RnsPoly {
            limbs: ct
                .c1
                .limbs
                .iter()
                .zip(&self.s.limbs)
                .zip(&p.ntts)
                .map(|((ci, si), ntt)| {
                    Poly::from_coeffs(
                        negacyclic_mul_ntt(ci.coeffs(), si.coeffs(), ntt),
                        ci.modulus(),
                    )
                })
                .collect(),
        };
        ct.c0.add(&c1_s)
    }

    /// Decrypts: CRT-reconstruct the phase and round by `t/Q`.
    pub fn decrypt(&self, ct: &RnsCiphertext) -> Poly {
        let p = &self.params;
        let phase = self.phase(ct);
        let q = p.q_product();
        let half_q = (q / 2) as i128;
        let coeffs: Vec<u64> = (0..p.n)
            .map(|i| {
                let x = phase.coeff_centered(i, p);
                // round(t * x / Q) over the integers, then mod t
                let num = x * p.t as i128;
                let rounded = if num >= 0 {
                    (num + half_q) / q as i128
                } else {
                    -((-num + half_q) / q as i128)
                };
                rounded.rem_euclid(p.t as i128) as u64
            })
            .collect();
        Poly::from_coeffs(coeffs, p.t)
    }

    /// Exact residual noise magnitude (∞-norm over the CRT lift).
    pub fn noise_inf(&self, ct: &RnsCiphertext, m: &Poly) -> u128 {
        let p = &self.params;
        let phase = self.phase(ct);
        let expected = scale_plaintext(m, p);
        let diff = phase.sub(&expected);
        (0..p.n)
            .map(|i| diff.coeff_centered(i, p).unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Remaining noise budget in bits.
    pub fn noise_budget_bits(&self, ct: &RnsCiphertext, m: &Poly) -> f64 {
        let noise = self.noise_inf(ct, m).max(1);
        (self.params.noise_ceiling() as f64).log2() - (noise as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::modular::from_signed;
    use rand::SeedableRng;

    #[test]
    fn rns_encrypt_decrypt_roundtrip() {
        let p = RnsParams::test_double();
        assert_eq!(p.limbs(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        for seed in 0..3u64 {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Poly::uniform(p.n, p.t, &mut r);
            let ct = sk.encrypt(&m, &mut rng);
            assert_eq!(sk.decrypt(&ct), m);
        }
    }

    #[test]
    fn rns_budget_dwarfs_single_limb() {
        let p2 = RnsParams::test_double();
        let p1 = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = RnsSecretKey::generate(&p2, &mut rng);
        let m = Poly::uniform(p2.n, p2.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let budget = sk.noise_budget_bits(&ct, &m);
        let single_ceiling_bits = (RnsParams::single_limb_ceiling(&p1) as f64).log2();
        let double_ceiling_bits = (p2.noise_ceiling() as f64).log2();
        assert!(double_ceiling_bits > single_ceiling_bits + 30.0);
        assert!(budget > 45.0, "double-limb fresh budget {budget}");
    }

    #[test]
    fn rns_homomorphic_algebra() {
        let p = RnsParams::test_double();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        for i in 0..9 {
            w[i * 11] = ((i as i64) % 15) - 7;
        }
        let ct = sk
            .encrypt(&m1, &mut rng)
            .add_plain(&m2, &p)
            .mul_plain_signed(&w, &p);
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p.t)).collect();
        let want = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m1.add(&m2).coeffs(), &w_t, p.t),
            p.t,
        );
        assert_eq!(sk.decrypt(&ct), want);

        let ct2 = ct.add_ct(&ct);
        assert_eq!(sk.decrypt(&ct2), want.add(&want));

        let mask = Poly::uniform(p.n, p.t, &mut rng);
        assert_eq!(sk.decrypt(&ct.sub_plain(&mask, &p)), want.sub(&mask));
    }

    #[test]
    fn dense_weights_break_single_limb_but_not_double() {
        // With a deliberately small 25-bit single-limb modulus, a dense
        // +-8 weight multiplication pushes the noise past the ceiling
        // q/(2t) ≈ 2^8; the two-limb 50-bit product absorbs it easily.
        let p1 = HeParams::new(256, 25, 1 << 16, 3.2);
        let p2 = RnsParams::new(256, 25, 2, 1 << 16, 3.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w: Vec<i64> = (0..p1.n).map(|i| ((i as i64 * 7) % 15) - 7).collect();
        let w_t: Vec<u64> = w.iter().map(|&x| from_signed(x, p1.t)).collect();

        // single limb: decryption corrupts
        let sk1 = crate::keys::SecretKey::generate(&p1, &mut rng);
        let m = Poly::uniform(p1.n, p1.t, &mut rng);
        let ct1 = sk1.encrypt(&m, &mut rng).mul_plain_signed(
            &w,
            &p1,
            &crate::backend::PolyMulBackend::Ntt,
        );
        let want = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.coeffs(), &w_t, p1.t),
            p1.t,
        );
        assert_ne!(sk1.decrypt(&ct1), want, "single limb should overflow");

        // double limb: decryption exact
        let sk2 = RnsSecretKey::generate(&p2, &mut rng);
        let ct2 = sk2.encrypt(&m, &mut rng).mul_plain_signed(&w, &p2);
        assert_eq!(sk2.decrypt(&ct2), want);
        assert!(sk2.noise_budget_bits(&ct2, &want) > 20.0);
    }

    #[test]
    fn flash_double_parameters_build() {
        let p = RnsParams::flash_double();
        assert_eq!(p.n, 4096);
        assert_eq!(p.limbs(), 2);
        assert!(p.q_product() > 1u128 << 76);
        // distinct primes, both NTT-friendly for the combined congruence
        let m = p.basis().moduli();
        assert_ne!(m[0], m[1]);
        // combined congruence: q ≡ 1 mod max(2N, t) = 2^21
        for &q in m {
            assert_eq!(q % (1 << 21), 1);
        }
    }
}
