//! Analytical noise-growth tracking.
//!
//! The kernel-level robustness argument of the paper rests on the BFV
//! invariant `‖noise‖_∞ < q/(2t)`. This module provides a conservative
//! analytical bound that composes across the protocol's homomorphic
//! operations, so parameter sets can be validated without running the
//! pipeline (and so the approximate-FFT error budget — the slack between
//! the bound and the ceiling — is explicit).

use crate::params::HeParams;

/// A conservative `‖noise‖_∞` bound, composed operation by operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBound {
    bound: f64,
    ceiling: f64,
}

impl NoiseBound {
    /// Noise bound of a fresh symmetric encryption: `B = 6σ` (a
    /// ~`erfc`-negligible tail for rounded Gaussians).
    pub fn fresh(params: &HeParams) -> Self {
        Self {
            bound: 6.0 * params.noise_std,
            ceiling: params.noise_ceiling() as f64,
        }
    }

    /// Noise bound of a fresh public-key encryption:
    /// `B = 6σ·(2N·‖u‖_∞ + 1) ≈ 6σ(2N + 1)` for ternary `u`.
    pub fn fresh_public(params: &HeParams) -> Self {
        Self {
            bound: 6.0 * params.noise_std * (2.0 * params.n as f64 + 1.0),
            ceiling: params.noise_ceiling() as f64,
        }
    }

    /// The current bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The decryption ceiling `q/(2t)` this bound is tracked against.
    pub fn ceiling(&self) -> f64 {
        self.ceiling
    }

    /// Typed form of [`NoiseBound::is_safe`]: `Ok(())` while decryption
    /// is guaranteed correct, otherwise the overflow as an error.
    pub fn check(&self) -> Result<(), crate::error::HeError> {
        if self.is_safe() {
            Ok(())
        } else {
            Err(crate::error::HeError::NoiseOverflow {
                bound: self.bound,
                ceiling: self.ceiling,
            })
        }
    }

    /// Remaining budget in bits (`log2(ceiling) − log2(bound)`); negative
    /// means decryption may fail.
    pub fn budget_bits(&self) -> f64 {
        self.ceiling.log2() - self.bound.max(1.0).log2()
    }

    /// Whether decryption is guaranteed correct.
    pub fn is_safe(&self) -> bool {
        self.bound < self.ceiling
    }

    /// After `ct ⊞ pt` / `ct ⊟ pt`: with `q ≡ 1 (mod t)` the rounding
    /// residue adds at most `t/2`-scaled carry × 1 — effectively `+1`.
    pub fn after_plain_add(self) -> Self {
        Self {
            bound: self.bound + 1.0,
            ..self
        }
    }

    /// After `ct ⊠ w` for a plaintext with 1-norm `w_l1` (the sum of
    /// coefficient magnitudes): noise multiplies by `w_l1`, plus the
    /// plaintext-ring wraparound carry (`≤ w_l1·t/2` products wrapping
    /// into a unit residue each, bounded by `w_l1`).
    pub fn after_plain_mul(self, w_l1: f64) -> Self {
        Self {
            bound: self.bound * w_l1 + w_l1,
            ..self
        }
    }

    /// After `ct ⊞ ct`.
    pub fn after_ct_add(self, other: &NoiseBound) -> Self {
        Self {
            bound: self.bound + other.bound,
            ..self
        }
    }

    /// After injecting an approximate-FFT computation error with absolute
    /// bound `err` (the FLASH error budget consumes noise headroom
    /// directly).
    pub fn after_computation_error(self, err: f64) -> Self {
        Self {
            bound: self.bound + err,
            ..self
        }
    }
}

/// Validates that one homomorphic convolution (`groups` accumulated
/// `ct⊠w` terms of 1-norm ≤ `w_l1`, plus a share add and a mask subtract)
/// stays decryptable under the *worst-case* bound, returning the
/// remaining budget in bits.
pub fn hconv_budget_bits(params: &HeParams, w_l1: f64, groups: u32) -> f64 {
    let one = NoiseBound::fresh(params)
        .after_plain_add() // server's share
        .after_plain_mul(w_l1);
    let mut acc = one;
    for _ in 1..groups {
        acc = acc.after_ct_add(&one);
    }
    acc.after_plain_add().budget_bits() // mask subtract
}

/// Average-case (standard-deviation-composition) budget for the same
/// chain: `σ_out = 6·σ·w_l2·√groups`. This is the heuristic real
/// parameter selection uses — worst-case 1-norm bounds are vacuously
/// loose for Gaussian noise against signed weights.
pub fn hconv_budget_bits_avg(params: &HeParams, w_l2: f64, groups: u32) -> f64 {
    let sigma_out = params.noise_std * w_l2 * (groups as f64).sqrt();
    let bound = 6.0 * sigma_out + 2.0; // plain add/sub residues
    (params.noise_ceiling() as f64).log2() - bound.max(1.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use crate::poly::Poly;
    use crate::PolyMulBackend;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fresh_bounds_exceed_measurements() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&p, &mut rng);
        let pk = sk.public_key(&mut rng);
        let bound = NoiseBound::fresh(&p);
        let bound_pk = NoiseBound::fresh_public(&p);
        for seed in 0..5u64 {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Poly::uniform(p.n, p.t, &mut r);
            let ct = sk.encrypt(&m, &mut r);
            assert!((sk.noise(&ct, &m).inf_norm() as f64) <= bound.bound());
            let ct = pk.encrypt(&m, &mut r);
            assert!((sk.noise(&ct, &m).inf_norm() as f64) <= bound_pk.bound());
        }
    }

    #[test]
    fn bound_tracks_a_full_hconv_chain() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let share = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        let mut l1 = 0f64;
        for i in 0..9 {
            let v = rng.gen_range(-8i64..8);
            w[i * 13] = v;
            l1 += v.abs() as f64;
        }
        let ct = sk
            .encrypt(&m, &mut rng)
            .add_plain(&share, &p)
            .mul_plain_signed(&w, &p, &PolyMulBackend::Ntt);
        let ct2 = ct.add_ct(&ct);

        let w_t: Vec<u64> = w
            .iter()
            .map(|&x| flash_math::modular::from_signed(x, p.t))
            .collect();
        let mw = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.add(&share).coeffs(), &w_t, p.t),
            p.t,
        );
        let expected2 = mw.add(&mw);

        let bound = NoiseBound::fresh(&p)
            .after_plain_add()
            .after_plain_mul(l1.max(1.0));
        let bound2 = bound.after_ct_add(&bound);
        let measured2 = sk.noise(&ct2, &expected2).inf_norm() as f64;
        assert!(
            measured2 <= bound2.bound(),
            "measured {measured2} vs bound {}",
            bound2.bound()
        );
        assert!(bound2.is_safe());
    }

    #[test]
    fn hconv_budget_positive_at_paper_parameters() {
        let p = HeParams::flash_default();
        // worst ResNet-50 tile: 16 channels x 9 taps of 4-bit weights
        let w_l2 = (16.0f64 * 9.0 * 64.0).sqrt();
        let bits = hconv_budget_bits_avg(&p, w_l2, 16);
        assert!(
            bits > 1.0,
            "paper parameters must leave budget: {bits} bits"
        );
        // the worst-case bound is (expectedly) much tighter
        let wc = hconv_budget_bits(&p, 16.0 * 9.0 * 8.0, 16);
        assert!(wc < bits);
    }

    #[test]
    fn budget_exhausts_for_absurd_norms() {
        let p = HeParams::test_256();
        let bits = hconv_budget_bits(&p, 1e12, 64);
        assert!(bits < 0.0);
        let nb = NoiseBound::fresh(&p).after_computation_error(1e18);
        assert!(!nb.is_safe());
    }
}
