//! Ring elements of `Z_m[X]/(X^N + 1)` and the samplers BFV needs.
//!
//! A [`Poly`] stores reduced coefficients together with its modulus, so
//! plaintexts (`mod t`) and ciphertext components (`mod q`) cannot be
//! mixed accidentally.

use flash_math::modular::{add_mod, center_lift, from_signed, mul_mod, neg_mod, sub_mod};
use rand::Rng;

/// A polynomial with coefficients reduced modulo `modulus`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    modulus: u64,
}

impl Poly {
    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize, modulus: u64) -> Self {
        Self {
            coeffs: vec![0; n],
            modulus,
        }
    }

    /// Builds a polynomial from already-reduced coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is not reduced.
    pub fn from_coeffs(coeffs: Vec<u64>, modulus: u64) -> Self {
        assert!(
            coeffs.iter().all(|&c| c < modulus),
            "coefficients must be reduced modulo {modulus}"
        );
        Self { coeffs, modulus }
    }

    /// Builds a polynomial from signed integers, reducing them.
    pub fn from_signed(coeffs: &[i64], modulus: u64) -> Self {
        Self {
            coeffs: coeffs.iter().map(|&c| from_signed(c, modulus)).collect(),
            modulus,
        }
    }

    /// Uniformly random element (used for the RLWE mask `a`).
    pub fn uniform<R: Rng>(n: usize, modulus: u64, rng: &mut R) -> Self {
        Self {
            coeffs: (0..n).map(|_| rng.gen_range(0..modulus)).collect(),
            modulus,
        }
    }

    /// Ternary polynomial with coefficients in `{-1, 0, 1}` (secret keys).
    pub fn ternary<R: Rng>(n: usize, modulus: u64, rng: &mut R) -> Self {
        Self {
            coeffs: (0..n)
                .map(|_| from_signed(rng.gen_range(-1i64..=1), modulus))
                .collect(),
            modulus,
        }
    }

    /// Rounded-Gaussian error polynomial with standard deviation `std`
    /// (Box–Muller).
    pub fn gaussian<R: Rng>(n: usize, modulus: u64, std: f64, rng: &mut R) -> Self {
        let coeffs = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                from_signed((z * std).round() as i64, modulus)
            })
            .collect();
        Self { coeffs, modulus }
    }

    /// Degree bound `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial has no coefficients (degenerate).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// The reduced coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Coefficient `i`.
    #[inline]
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs[i]
    }

    /// Mutable coefficient access for in-place kernels. Callers must keep
    /// every coefficient reduced modulo [`Poly::modulus`].
    #[inline]
    pub(crate) fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// In-place coefficient-wise sum: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on modulus or length mismatch.
    pub fn add_assign(&mut self, other: &Poly) {
        self.check_compat(other);
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = add_mod(*a, b, self.modulus);
        }
    }

    /// Sets coefficient `i` (must be reduced).
    pub fn set_coeff(&mut self, i: usize, v: u64) {
        assert!(v < self.modulus);
        self.coeffs[i] = v;
    }

    /// Center-lifted coefficients in `(-m/2, m/2]`.
    pub fn lifted(&self) -> Vec<i64> {
        self.coeffs
            .iter()
            .map(|&c| center_lift(c, self.modulus))
            .collect()
    }

    /// Largest coefficient magnitude after center lift.
    pub fn inf_norm(&self) -> u64 {
        self.lifted()
            .iter()
            .map(|c| c.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Number of non-zero coefficients.
    pub fn nnz(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0).count()
    }

    /// Coefficient-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on modulus or length mismatch.
    pub fn add(&self, other: &Poly) -> Poly {
        self.check_compat(other);
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| add_mod(a, b, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Coefficient-wise difference.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.check_compat(other);
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| sub_mod(a, b, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Coefficient-wise negation.
    pub fn neg(&self) -> Poly {
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| neg_mod(a, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Scales every coefficient by a constant.
    pub fn scale(&self, k: u64) -> Poly {
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| mul_mod(a, k, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Re-interprets the center-lifted coefficients in a different
    /// modulus (used to lift plaintexts `mod t` into the ciphertext ring
    /// `mod q`).
    pub fn lift_to(&self, modulus: u64) -> Poly {
        Poly {
            coeffs: self
                .lifted()
                .iter()
                .map(|&c| from_signed(c, modulus))
                .collect(),
            modulus,
        }
    }

    fn check_compat(&self, other: &Poly) {
        assert_eq!(self.modulus, other.modulus, "modulus mismatch");
        assert_eq!(self.coeffs.len(), other.coeffs.len(), "length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Poly::from_signed(&[1, -2, 3, -4], 97);
        let b = Poly::from_signed(&[5, 6, -7, 8], 97);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), Poly::zero(4, 97));
        assert_eq!(a.neg().neg(), a);
        assert_eq!(a.scale(2), a.add(&a));
    }

    #[test]
    fn lifted_and_norms() {
        let a = Poly::from_signed(&[1, -2, 0, 40], 97);
        assert_eq!(a.lifted(), vec![1, -2, 0, 40]);
        assert_eq!(a.inf_norm(), 40);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn lift_to_preserves_signed_values() {
        let a = Poly::from_signed(&[1, -2, 3, 0], 256);
        let b = a.lift_to(0x3FFF_FFFF_F001);
        assert_eq!(b.lifted(), vec![1, -2, 3, 0]);
    }

    #[test]
    fn samplers_have_expected_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let q = 1_073_479_681u64;
        let u = Poly::uniform(1024, q, &mut rng);
        assert!(u.coeffs().iter().all(|&c| c < q));
        // uniform should be "large" on average
        assert!(u.inf_norm() > q / 4);

        let t = Poly::ternary(1024, q, &mut rng);
        assert!(t.inf_norm() <= 1);
        assert!(t.nnz() > 500, "ternary should be ~2/3 dense");

        let g = Poly::gaussian(4096, q, 3.2, &mut rng);
        assert!(g.inf_norm() < 30, "6-sigma-ish bound");
        let mean: f64 = g.lifted().iter().map(|&x| x as f64).sum::<f64>() / 4096.0;
        assert!(mean.abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "modulus mismatch")]
    fn mixing_moduli_panics() {
        let a = Poly::zero(4, 97);
        let b = Poly::zero(4, 101);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "reduced")]
    fn unreduced_coeffs_rejected() {
        Poly::from_coeffs(vec![97], 97);
    }
}
