//! Pluggable negacyclic multipliers for ciphertext × plaintext products.
//!
//! The choice of backend is exactly the design axis of the paper:
//!
//! * [`PolyMulBackend::Ntt`] — the exact modular datapath of baseline
//!   accelerators (CHAM, F1, …).
//! * [`PolyMulBackend::FftF64`] — Figure 4(b): transforms in floating
//!   point; exact in practice at FLASH's parameters (Klemsa's error-free
//!   regime), standing in for a wide (39-bit-mantissa) FP datapath.
//! * [`PolyMulBackend::ApproxFft`] — FLASH's approximate fixed-point
//!   *weight* transform; the ciphertext-side transform, point-wise product
//!   and inverse stay in floating point, as in the FLASH architecture.
//! * [`PolyMulBackend::Pow2`] — Jaguar's axis: the ciphertext modulus is
//!   a power of two, so coefficient-domain reduction is free (wrapping
//!   arithmetic plus one mask, zero Barrett/Shoup/Montgomery work).
//!   Products lift through the same `f64` transform machinery as the FFT
//!   backends — SIMD batching and sparse tapes compose unchanged — and
//!   the result wraps into `Z_{2^l}` by truncation. At `q = 2^62` the
//!   lifted magnitudes exceed the 53-bit mantissa, so this backend is
//!   *approximate* and carries an [`ApproxErrorModel`] for the runtime
//!   noise guard; its exact fallback is the wrapping schoolbook over the
//!   band's sparse taps (bit-exact, still reduction-free).
//!
//! For the approximate backends the *plaintext* operand must be small and
//! signed (quantized weights); the ciphertext operand is center-lifted.

use crate::cipher::Ciphertext;
use crate::params::HeParams;
use crate::poly::Poly;
use flash_fft::fixed_fft::FixedNegacyclicFft;
use flash_fft::C64_SCRATCH;
use flash_math::modular::{add_mod, center_lift, from_signed, Barrett, Shoup};
use flash_math::C64;
use flash_ntt::polymul::negacyclic_mul_ntt;
use flash_ntt::transform::{
    forward, forward_batch, inverse, inverse_batch, pointwise_mul_acc, pointwise_mul_acc_shoup,
    pointwise_mul_acc_shoup_lazy, pointwise_mul_assign,
};
use flash_ntt::NttTables;
use flash_runtime::{F64_SCRATCH, U64_SCRATCH};
use flash_sparse::SparsePlan;
use std::sync::Arc;

/// The negacyclic multiplier used for `ct ⊠ pt` products.
#[derive(Debug, Clone)]
pub enum PolyMulBackend {
    /// Exact number-theoretic transform.
    Ntt,
    /// `f64` negacyclic FFT (exact at FLASH parameters).
    FftF64,
    /// Approximate fixed-point FFT for the plaintext (weight) transform.
    ApproxFft(Arc<FixedNegacyclicFft>),
    /// Power-of-two ciphertext modulus: free wrapping reduction on the
    /// coefficient path, `f64` FFT lift on the transform path.
    Pow2,
}

/// Analytic error model of an approximate weight-transform backend,
/// queried by the runtime noise guard on the protocol hot path.
///
/// The per-group spectrum error power of the fixed-point transform is
/// affine in the weight coefficient variance, `p0 + slope·Var(w)`
/// ([`FixedNegacyclicFft::spectrum_error_power_coeffs`]), so one cached
/// pair of coefficients prices every band of a layer without touching the
/// twiddle tables again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxErrorModel {
    p0: f64,
    slope: f64,
    n: f64,
}

impl ApproxErrorModel {
    /// A (≈6σ) bound on the decryption-phase error injected by `groups`
    /// accumulated approximate products with total weight energy
    /// `w_sq_sum = Σ_g Σ_i w_{g,i}²`.
    ///
    /// Per-coefficient product error variance is `power(Var(w_g))·σ_x²`
    /// with ciphertext operands center-lifted to `(−q/2, q/2]`
    /// (`σ_x² = q²/12`); summing the affine power over groups gives
    /// `(G·p0 + slope·Σw²/N)·σ_x²` per component. The `c1` component's
    /// error passes through the `c1·s` product of the decryption phase
    /// (ternary key, `E[s²] = 2/3`), inflating the phase variance by
    /// `2N/3`, and the tail factor 6 matches [`NoiseBound::fresh`]'s
    /// convention.
    ///
    /// [`NoiseBound::fresh`]: crate::noise::NoiseBound::fresh
    pub fn phase_error_bound(&self, params: &HeParams, w_sq_sum: f64, groups: usize) -> f64 {
        let q = params.q as f64;
        let act_var = q * q / 12.0;
        let component_var = (groups as f64 * self.p0 + self.slope * w_sq_sum / self.n) * act_var;
        let phase_var = component_var * (1.0 + 2.0 * self.n / 3.0);
        6.0 * phase_var.sqrt()
    }
}

impl PolyMulBackend {
    /// Builds the approximate backend from a configuration.
    pub fn approx(cfg: flash_fft::ApproxFftConfig) -> Self {
        PolyMulBackend::ApproxFft(FixedNegacyclicFft::shared(&cfg))
    }

    /// The analytic error model of this backend, or `None` for the
    /// backends that are exact in the protocol's operating regime (`Ntt`
    /// by construction, `FftF64` at FLASH parameters).
    ///
    /// `Pow2` is approximate for a different reason than `ApproxFft`:
    /// the weight transform itself is full-precision `f64`, but the
    /// center-lifted ciphertext coefficients reach `q/2 ≈ 2^61`, beyond
    /// the 53-bit mantissa, so the transform-lifted product carries
    /// `O(ε·N·log₂N)` relative rounding error. The model prices that as
    /// a spectrum error power affine in the weight variance with
    /// `p0 = 0` (no weight-independent quantization floor — zero
    /// weights are exact) and `slope = (4·ε·N·log₂N)²`, the standard
    /// FFT forward/inverse error-growth bound with a safety factor 4.
    pub fn error_model(&self, params: &HeParams) -> Option<ApproxErrorModel> {
        match self {
            PolyMulBackend::Ntt | PolyMulBackend::FftF64 => None,
            PolyMulBackend::ApproxFft(fixed) => {
                let (p0, slope) = fixed.spectrum_error_power_coeffs();
                Some(ApproxErrorModel {
                    p0,
                    slope,
                    n: fixed.config().degree() as f64,
                })
            }
            PolyMulBackend::Pow2 => {
                let n = params.n as f64;
                let per = 4.0 * f64::EPSILON * n * n.log2();
                Some(ApproxErrorModel {
                    p0: 0.0,
                    slope: per * per,
                    n,
                })
            }
        }
    }

    /// Multiplies a ciphertext-ring polynomial `a` (mod `q`) by a small
    /// signed plaintext polynomial `w` in the negacyclic ring.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, the modulus disagrees with `params`,
    /// or the backend and the parameter set's ring family mismatch
    /// (`Ntt` on a power-of-two ring, `Pow2` on a prime ring).
    pub fn mul_ct_pt(&self, a: &Poly, w_signed: &[i64], params: &HeParams) -> Poly {
        let q = a.modulus();
        assert_eq!(q, params.q, "operand modulus must match params");
        assert_eq!(a.len(), w_signed.len(), "operand lengths must match");
        let fft = params.fft();
        match self {
            PolyMulBackend::Ntt => {
                let ntt = params.ntt();
                let w = Poly::from_signed(w_signed, q);
                Poly::from_coeffs(negacyclic_mul_ntt(a.coeffs(), w.coeffs(), ntt), q)
            }
            PolyMulBackend::FftF64 | PolyMulBackend::Pow2 => {
                if matches!(self, PolyMulBackend::Pow2) {
                    assert!(
                        params.is_pow2(),
                        "Pow2 backend requires a power-of-two ring"
                    );
                }
                let af: Vec<f64> = a
                    .coeffs()
                    .iter()
                    .map(|&x| center_lift(x, q) as f64)
                    .collect();
                let wf: Vec<f64> = w_signed.iter().map(|&x| x as f64).collect();
                let prod = fft.polymul_f64(&af, &wf);
                let red = Reducer::new(q);
                Poly::from_coeffs(prod.iter().map(|&x| red.reduce_f64(x)).collect(), q)
            }
            PolyMulBackend::ApproxFft(fixed) => {
                assert_eq!(
                    fixed.config().degree(),
                    a.len(),
                    "approx plan degree mismatch"
                );
                let (fw, _) = fixed.forward(w_signed);
                let af: Vec<f64> = a
                    .coeffs()
                    .iter()
                    .map(|&x| center_lift(x, q) as f64)
                    .collect();
                let fa = fft.forward(&af);
                let spec: Vec<C64> = fa.iter().zip(&fw).map(|(x, y)| *x * *y).collect();
                let prod = fft.inverse(&spec);
                let red = Reducer::new(q);
                Poly::from_coeffs(prod.iter().map(|&x| red.reduce_f64(x)).collect(), q)
            }
        }
    }

    /// Fused multiply-accumulate over a ciphertext pair:
    /// `acc0 += a0 ⊠ w` and `acc1 += a1 ⊠ w`.
    ///
    /// Bit-identical to [`PolyMulBackend::mul_ct_pt`] on each component
    /// followed by a modular addition, but the weight transform runs
    /// **once** per call (shared by both components instead of recomputed
    /// per component) and every intermediate buffer comes from the
    /// thread-local scratch pools, so steady-state calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Operand/accumulator length and modulus agreement is an internal
    /// invariant of the callers (the protocol validates wire-derived
    /// ciphertexts before they reach this hot path), checked with
    /// `debug_assert!` only.
    pub fn mul_ct_pt_acc(
        &self,
        acc0: &mut Poly,
        acc1: &mut Poly,
        a0: &Poly,
        a1: &Poly,
        w_signed: &[i64],
        params: &HeParams,
    ) {
        let q = a0.modulus();
        let n = a0.len();
        debug_assert_eq!(q, params.q, "operand modulus must match params");
        debug_assert_eq!(a1.modulus(), q, "component modulus mismatch");
        debug_assert_eq!(a1.len(), n, "component length mismatch");
        for acc in [&*acc0, &*acc1] {
            debug_assert_eq!(acc.modulus(), q, "accumulator modulus mismatch");
            debug_assert_eq!(acc.len(), n, "accumulator length mismatch");
        }
        debug_assert_eq!(n, w_signed.len(), "operand lengths must match");
        let fft = params.fft();
        match self {
            PolyMulBackend::Ntt => {
                let ntt = params.ntt();
                let mut fw = U64_SCRATCH.take(n);
                {
                    let _t = flash_telemetry::span!("hconv.weight_transform");
                    for (slot, &x) in fw.iter_mut().zip(w_signed) {
                        *slot = from_signed(x, q);
                    }
                    forward(&mut fw, ntt);
                }
                for (acc, a) in [(acc0, a0), (acc1, a1)] {
                    let mut fa = U64_SCRATCH.take_copied(a.coeffs());
                    {
                        let _t = flash_telemetry::span!("hconv.activation_fft");
                        forward(&mut fa, ntt);
                    }
                    {
                        let _t = flash_telemetry::span!("hconv.pointwise_acc");
                        pointwise_mul_assign(&mut fa, &fw, ntt);
                    }
                    let _t = flash_telemetry::span!("hconv.inverse_fft");
                    inverse(&mut fa, ntt);
                    for (dst, &x) in acc.coeffs_mut().iter_mut().zip(fa.iter()) {
                        *dst = add_mod(*dst, x, q);
                    }
                }
            }
            PolyMulBackend::FftF64 | PolyMulBackend::Pow2 => {
                let mut fw = C64_SCRATCH.take(n / 2);
                {
                    let _t = flash_telemetry::span!("hconv.weight_transform");
                    let mut wf = F64_SCRATCH.take(n);
                    for (slot, &x) in wf.iter_mut().zip(w_signed) {
                        *slot = x as f64;
                    }
                    fft.forward_into(&wf, &mut fw);
                }
                accumulate_pair_fft(acc0, acc1, a0, a1, &fw, fft, q);
            }
            PolyMulBackend::ApproxFft(fixed) => {
                assert_eq!(fixed.config().degree(), n, "approx plan degree mismatch");
                let mut fw = C64_SCRATCH.take(n / 2);
                {
                    let _t = flash_telemetry::span!("hconv.weight_transform");
                    let _ = fixed.forward_into(w_signed, &mut fw);
                }
                accumulate_pair_fft(acc0, acc1, a0, a1, &fw, fft, q);
            }
        }
    }

    /// Like [`PolyMulBackend::mul_ct_pt_acc`], but when a compiled
    /// [`SparsePlan`] for the weight's sparsity pattern is supplied and
    /// [`SparsePlan::worthwhile`] holds, the FFT-family backends run the
    /// weight transform on the flat µop tape instead of the dense
    /// butterfly network. Returns `true` when the sparse tape executed.
    ///
    /// With `plan == None`, an unprofitable plan, or the `Ntt` backend,
    /// this is **bit-for-bit** the dense [`PolyMulBackend::mul_ct_pt_acc`]
    /// (the same code runs). For `ApproxFft` the tape plays the role of
    /// the wide sparse datapath: it evaluates the same transform in `f64`
    /// (exact where the wide fixed-point datapath is exact), so swapping
    /// it in preserves protocol outputs in the error-free regime.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PolyMulBackend::mul_ct_pt_acc`],
    /// or if the plan's ring degree disagrees with the operands.
    #[allow(clippy::too_many_arguments)]
    pub fn mul_ct_pt_acc_plan(
        &self,
        acc0: &mut Poly,
        acc1: &mut Poly,
        a0: &Poly,
        a1: &Poly,
        w_signed: &[i64],
        params: &HeParams,
        plan: Option<&SparsePlan>,
    ) -> bool {
        let sparse = match (self, plan) {
            (PolyMulBackend::Ntt, _) | (_, None) => None,
            (_, Some(p)) if !p.worthwhile() => None,
            (_, Some(p)) => Some(p),
        };
        let Some(plan) = sparse else {
            self.mul_ct_pt_acc(acc0, acc1, a0, a1, w_signed, params);
            return false;
        };
        let fft = params.fft();
        let q = a0.modulus();
        let n = a0.len();
        debug_assert_eq!(plan.degree(), n, "sparse plan degree mismatch");
        debug_assert_eq!(a1.modulus(), q, "component modulus mismatch");
        debug_assert_eq!(a1.len(), n, "component length mismatch");
        for acc in [&*acc0, &*acc1] {
            debug_assert_eq!(acc.modulus(), q, "accumulator modulus mismatch");
            debug_assert_eq!(acc.len(), n, "accumulator length mismatch");
        }
        debug_assert_eq!(n, w_signed.len(), "operand lengths must match");
        let mut fw = C64_SCRATCH.take(n / 2);
        {
            let _t = flash_telemetry::span!("hconv.weight_transform");
            plan.execute_into(w_signed, &mut fw);
        }
        accumulate_pair_fft(acc0, acc1, a0, a1, &fw, fft, q);
        true
    }

    /// Accumulates `acc += a ⊠ w` for a ciphertext pair given the weight
    /// already in the spectral domain (`fw`, as produced by the dense
    /// forward transform or a [`SparsePlan`] tape). This is the batched
    /// hot path: the caller transforms a whole layer's weights with
    /// [`SparsePlan::execute_batch_into`] and feeds the spectra here.
    ///
    /// # Panics
    ///
    /// Panics for the `Ntt` backend (spectra are FFT-domain values), or
    /// on mismatched lengths/moduli.
    #[allow(clippy::too_many_arguments)]
    pub fn mul_ct_pt_acc_spectrum(
        &self,
        acc0: &mut Poly,
        acc1: &mut Poly,
        a0: &Poly,
        a1: &Poly,
        fw: &[C64],
        fft: &flash_fft::NegacyclicFft,
    ) {
        assert!(
            !matches!(self, PolyMulBackend::Ntt),
            "spectrum accumulation requires an FFT-family backend"
        );
        let q = a0.modulus();
        let n = a0.len();
        debug_assert_eq!(a1.modulus(), q, "component modulus mismatch");
        debug_assert_eq!(a1.len(), n, "component length mismatch");
        for acc in [&*acc0, &*acc1] {
            debug_assert_eq!(acc.modulus(), q, "accumulator modulus mismatch");
            debug_assert_eq!(acc.len(), n, "accumulator length mismatch");
        }
        debug_assert_eq!(fw.len(), n / 2, "spectrum length must be n/2");
        accumulate_pair_fft(acc0, acc1, a0, a1, fw, fft, q);
    }
}

/// Spectral form of every uploaded (share-folded) ciphertext, computed
/// **once per protocol run** through the batched lane-parallel transforms
/// and shared by all `(oc, band)` jobs — the activation hoist of the SoA
/// datapath. Without it, each output channel re-derives the same forward
/// transforms of the same ciphertexts.
#[derive(Debug, Clone)]
pub enum ActivationSpectra {
    /// FFT-family backends: per ciphertext the two component spectra
    /// `[c0 | c1]`, each `N/2` slots, in upload order.
    Fft(Vec<C64>),
    /// Exact NTT backend: per ciphertext the two forward residue vectors
    /// `[c0 | c1]`, each `N` coefficients, in upload order.
    Ntt(Vec<u64>),
}

/// One `(oc, band)` response being accumulated in the spectral domain,
/// both ciphertext components side by side, so a whole channel's worth of
/// responses can close through one lane-parallel inverse batch.
#[derive(Debug, Clone)]
pub enum BandAccumulator {
    /// `[s0 | s1]`, each `N/2` spectrum slots.
    Fft(Vec<C64>),
    /// `[r0 | r1]`, each `N` residues.
    Ntt(Vec<u64>),
}

impl PolyMulBackend {
    /// Forward-transforms both components of every ciphertext, `2·cts`
    /// polynomials in one batched sweep
    /// ([`flash_fft::NegacyclicFft::forward_batch_into`] or
    /// [`flash_ntt::transform::forward_batch`], `W` lanes per twiddle).
    pub fn activation_spectra(&self, cts: &[Ciphertext], params: &HeParams) -> ActivationSpectra {
        self.activation_spectra_multi(&[cts], params)
    }

    /// Cross-session variant of [`PolyMulBackend::activation_spectra`]:
    /// forward-transforms every ciphertext of every span in one batched
    /// sweep, without copying the spans into a contiguous buffer first.
    /// The serving layer uses this to pack activations from different
    /// clients into a single SoA batch, so the lane-parallel kernels run
    /// at full SIMD width instead of per-client width.
    ///
    /// Spectra are indexed by *global* ciphertext position — the order of
    /// concatenation of the spans — so a caller holding requests from
    /// several sessions addresses request `r`'s ciphertext `c` as
    /// `idx = offset_of(r) + c` in [`ActivationSpectra::mac_fft`] /
    /// [`ActivationSpectra::mac_ntt`].
    pub fn activation_spectra_multi(
        &self,
        spans: &[&[Ciphertext]],
        params: &HeParams,
    ) -> ActivationSpectra {
        let n = params.n;
        let q = params.q;
        let total: usize = spans.iter().map(|s| s.len()).sum();
        let components = spans
            .iter()
            .flat_map(|s| s.iter())
            .flat_map(|ct| [ct.c0(), ct.c1()]);
        match self {
            PolyMulBackend::Ntt => {
                let mut res = vec![0u64; 2 * total * n];
                for (chunk, poly) in res.chunks_exact_mut(n).zip(components) {
                    chunk.copy_from_slice(poly.coeffs());
                }
                let _t = flash_telemetry::span!("hconv.activation_fft");
                forward_batch(&mut res, params.ntt());
                ActivationSpectra::Ntt(res)
            }
            _ => {
                let mut lifted = F64_SCRATCH.take(2 * total * n);
                for (chunk, poly) in lifted.chunks_exact_mut(n).zip(components) {
                    for (slot, &x) in chunk.iter_mut().zip(poly.coeffs()) {
                        *slot = center_lift(x, q) as f64;
                    }
                }
                let mut spectra = vec![C64::ZERO; total * n];
                let _t = flash_telemetry::span!("hconv.activation_fft");
                params.fft().forward_batch_into(&lifted, &mut spectra);
                ActivationSpectra::Fft(spectra)
            }
        }
    }

    /// Forward-transforms one band's weight polynomials (one per channel
    /// group) into concatenated `N/2`-slot spectra through the batched
    /// kernels. FFT-family backends only; the exact path uses
    /// [`weight_residues_into`].
    ///
    /// # Panics
    ///
    /// Panics on the `Ntt` backend or mismatched lengths.
    pub fn weight_spectra_into(
        &self,
        ws: &[&[i64]],
        out: &mut [C64],
        fft: &flash_fft::NegacyclicFft,
    ) {
        let n = fft.degree();
        assert_eq!(out.len(), ws.len() * (n / 2), "spectra length mismatch");
        match self {
            PolyMulBackend::Ntt => panic!("weight spectra require an FFT-family backend"),
            PolyMulBackend::FftF64 | PolyMulBackend::Pow2 => {
                let mut staged = F64_SCRATCH.take(ws.len() * n);
                for (chunk, w) in staged.chunks_exact_mut(n).zip(ws) {
                    for (slot, &x) in chunk.iter_mut().zip(*w) {
                        *slot = x as f64;
                    }
                }
                fft.forward_batch_into(&staged, out);
            }
            PolyMulBackend::ApproxFft(fixed) => {
                let mut staged = Vec::with_capacity(ws.len() * n);
                for w in ws {
                    staged.extend_from_slice(w);
                }
                let _ = fixed.forward_batch_into(&staged, out);
            }
        }
    }
}

/// From-signed lift + batched forward NTT of one band's weight
/// polynomials (the exact path's counterpart of
/// [`PolyMulBackend::weight_spectra_into`]).
///
/// # Panics
///
/// Panics if `out.len() != ws.len() · N`.
pub fn weight_residues_into(ws: &[&[i64]], out: &mut [u64], ntt: &NttTables) {
    let n = ntt.degree();
    let q = ntt.modulus();
    assert_eq!(out.len(), ws.len() * n, "residue length mismatch");
    for (chunk, w) in out.chunks_exact_mut(n).zip(ws) {
        for (slot, &x) in chunk.iter_mut().zip(*w) {
            *slot = from_signed(x, q);
        }
    }
    forward_batch(out, ntt);
}

impl ActivationSpectra {
    /// A zeroed accumulator matching this spectra's domain.
    pub fn accumulator(&self, n: usize) -> BandAccumulator {
        match self {
            ActivationSpectra::Fft(_) => BandAccumulator::Fft(vec![C64::ZERO; n]),
            ActivationSpectra::Ntt(_) => BandAccumulator::Ntt(vec![0u64; 2 * n]),
        }
    }

    /// `acc ⊞= ct[idx] ⊙ fw` over both components in the FFT spectral
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics when `self` or `acc` is not FFT-domain, or on length
    /// mismatches.
    pub fn mac_fft(&self, idx: usize, fw: &[C64], acc: &mut BandAccumulator) {
        let (ActivationSpectra::Fft(sp), BandAccumulator::Fft(a)) = (self, acc) else {
            panic!("FFT MAC requires FFT-domain spectra");
        };
        let half = fw.len();
        assert_eq!(a.len(), 2 * half, "accumulator length mismatch");
        let ct = &sp[idx * 2 * half..][..2 * half];
        let _t = flash_telemetry::span!("hconv.pointwise_acc");
        for c in 0..2 {
            let dst = &mut a[c * half..][..half];
            let src = &ct[c * half..][..half];
            for i in 0..half {
                dst[i] += src[i] * fw[i];
            }
        }
    }

    /// `acc ⊞= ct[idx] ⊙ fw` over both components in the NTT domain.
    ///
    /// # Panics
    ///
    /// Panics when `self` or `acc` is not NTT-domain, or on length
    /// mismatches.
    pub fn mac_ntt(&self, idx: usize, fw: &[u64], tables: &NttTables, acc: &mut BandAccumulator) {
        let (ActivationSpectra::Ntt(sp), BandAccumulator::Ntt(a)) = (self, acc) else {
            panic!("NTT MAC requires NTT-domain residues");
        };
        let n = fw.len();
        assert_eq!(a.len(), 2 * n, "accumulator length mismatch");
        let ct = &sp[idx * 2 * n..][..2 * n];
        let _t = flash_telemetry::span!("hconv.pointwise_acc");
        pointwise_mul_acc(&mut a[..n], &ct[..n], fw, tables);
        pointwise_mul_acc(&mut a[n..], &ct[n..], fw, tables);
    }

    /// [`ActivationSpectra::mac_ntt`] against Shoup-precomputed weight
    /// residues (see [`weight_residue_shoups`]): two multiplies per
    /// coefficient instead of a widening remainder, bit-identical
    /// output. This is the serving MAC — a registered model pays the
    /// constant build once and every coalesced request reuses it.
    ///
    /// # Panics
    ///
    /// Panics when `self` or `acc` is not NTT-domain, or on length
    /// mismatches.
    pub fn mac_ntt_shoup(
        &self,
        idx: usize,
        fw: &[Shoup],
        tables: &NttTables,
        acc: &mut BandAccumulator,
    ) {
        let (ActivationSpectra::Ntt(sp), BandAccumulator::Ntt(a)) = (self, acc) else {
            panic!("NTT MAC requires NTT-domain residues");
        };
        let n = fw.len();
        assert_eq!(a.len(), 2 * n, "accumulator length mismatch");
        let ct = &sp[idx * 2 * n..][..2 * n];
        let _t = flash_telemetry::span!("hconv.pointwise_acc");
        pointwise_mul_acc_shoup(&mut a[..n], &ct[..n], fw, tables);
        pointwise_mul_acc_shoup(&mut a[n..], &ct[n..], fw, tables);
    }

    /// Lazy MAC into a raw `2·N` accumulator slice against one group's
    /// split-stream Shoup residues (one [`WeightShoups`] group slice):
    /// no per-element reduction — the accumulator carries raw integer
    /// sums that [`BandAccumulator::finish_ntt_bands_in_place`] reduces
    /// once before its inverse.
    ///
    /// A batch processor lays its accumulators out contiguously and MACs
    /// through this entry point, so no per-accumulator staging copy is
    /// ever needed. The caller owns the lazy-overflow budget: at most
    /// `⌊(2^64 − 1)/2q⌋` MACs per accumulator between reductions (see
    /// [`flash_ntt::transform::pointwise_mul_acc_shoup_lazy`]); the
    /// model planner enforces this when it elects the NTT unit layout.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not NTT-domain or on length mismatches.
    pub fn mac_ntt_shoup_lazy_into(
        &self,
        idx: usize,
        w: &[u64],
        w_shoup: &[u64],
        tables: &NttTables,
        acc: &mut [u64],
    ) {
        let ActivationSpectra::Ntt(sp) = self else {
            panic!("NTT MAC requires NTT-domain residues");
        };
        let n = w.len();
        assert_eq!(acc.len(), 2 * n, "accumulator length mismatch");
        let ct = &sp[idx * 2 * n..][..2 * n];
        let _t = flash_telemetry::span!("hconv.pointwise_acc");
        let (a0, a1) = acc.split_at_mut(n);
        pointwise_mul_acc_shoup_lazy(a0, &ct[..n], w, w_shoup, tables);
        pointwise_mul_acc_shoup_lazy(a1, &ct[n..], w, w_shoup, tables);
    }
}

/// NTT-domain weight residues with their Shoup constants in split
/// structure-of-arrays streams (`w[i]` and `w' = ⌊w·2^64/q⌋` in
/// separate vectors, group-major like [`weight_residues_into`]), the
/// layout [`pointwise_mul_acc_shoup_lazy`] vectorizes best.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightShoups {
    /// Plain residues, `groups · N`.
    pub w: Vec<u64>,
    /// Shoup precomputed constants, `groups · N`.
    pub shoup: Vec<u64>,
}

/// [`weight_residues_into`] followed by the per-coefficient Shoup
/// constant build — the registration-time precompute that makes
/// [`ActivationSpectra::mac_ntt_shoup_lazy_into`] division-free on the
/// request path. One division per coefficient here buys two-multiply
/// MACs for every request served afterwards; a per-request pipeline
/// gains nothing from it, which is exactly the asymmetry a serving
/// layer amortizes.
pub fn weight_residue_shoups(ws: &[&[i64]], ntt: &NttTables) -> WeightShoups {
    let q = ntt.modulus();
    let mut w = vec![0u64; ws.len() * ntt.degree()];
    weight_residues_into(ws, &mut w, ntt);
    let shoup = w
        .iter()
        .map(|&r| (((r as u128) << 64) / q as u128) as u64)
        .collect();
    WeightShoups { w, shoup }
}

impl BandAccumulator {
    /// Closes one accumulation: a 2-lane inverse batch over the component
    /// pair, rounded/reduced into a fresh ciphertext.
    pub fn finish(self, params: &HeParams) -> Ciphertext {
        BandAccumulator::finish_bands(vec![self], params)
            .pop()
            .expect("one accumulator in, one ciphertext out")
    }

    /// Closes many accumulators at once: every component of every band
    /// goes through **one** batched inverse call (`2·k` lanes) — the
    /// widest legal batch a protocol worker can form per output channel.
    ///
    /// For the exact NTT domain the result is bit-identical to per-group
    /// inverse-then-add (the transform is linear over `Z_q`); for the FFT
    /// family the accumulated spectrum rounds once instead of per group,
    /// which is exact in the protocol's error-free operating regime.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators mix domains.
    pub fn finish_bands(accs: Vec<BandAccumulator>, params: &HeParams) -> Vec<Ciphertext> {
        let n = params.n;
        let q = params.q;
        let Some(first) = accs.first() else {
            return Vec::new();
        };
        match first {
            BandAccumulator::Fft(_) => {
                let mut spec = C64_SCRATCH.take(accs.len() * n);
                for (chunk, acc) in spec.chunks_exact_mut(n).zip(&accs) {
                    let BandAccumulator::Fft(s) = acc else {
                        panic!("mixed accumulator domains");
                    };
                    chunk.copy_from_slice(s);
                }
                let mut prod = F64_SCRATCH.take(accs.len() * 2 * n);
                {
                    let _t = flash_telemetry::span!("hconv.inverse_fft");
                    params.fft().inverse_batch_into(&spec, &mut prod);
                }
                // One division-free reducer for every coefficient of the
                // batch: the naive `rem_euclid` here is an i128 libcall
                // that used to dominate the whole inverse-transform cost.
                // (On a power-of-two ring the reducer degenerates to a
                // truncating cast and a mask.)
                let red = Reducer::new(q);
                let to_poly = |xs: &[f64]| {
                    Poly::from_coeffs(xs.iter().map(|&x| red.reduce_f64(x)).collect(), q)
                };
                prod.chunks_exact(2 * n)
                    .map(|pair| Ciphertext::new(to_poly(&pair[..n]), to_poly(&pair[n..])))
                    .collect()
            }
            BandAccumulator::Ntt(_) => {
                let mut res = U64_SCRATCH.take(accs.len() * 2 * n);
                for (chunk, acc) in res.chunks_exact_mut(2 * n).zip(&accs) {
                    let BandAccumulator::Ntt(r) = acc else {
                        panic!("mixed accumulator domains");
                    };
                    chunk.copy_from_slice(r);
                }
                BandAccumulator::finish_ntt_bands_in_place(&mut res, params)
            }
        }
    }

    /// [`BandAccumulator::finish_bands`] for NTT accumulators already
    /// laid out contiguously (`k · 2N` residues, filled through
    /// [`ActivationSpectra::mac_ntt_shoup_lazy_into`]): one Barrett
    /// reduction pass drains the lazy sums, then the batched inverse
    /// runs directly on `buf` with no staging copy. Bit-identical to
    /// eagerly-reduced accumulators through the accumulator-vector form
    /// (reducing an already-reduced residue is the identity, so both
    /// kinds of caller may use this).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` is not a multiple of `2N`.
    pub fn finish_ntt_bands_in_place(buf: &mut [u64], params: &HeParams) -> Vec<Ciphertext> {
        let n = params.n;
        let q = params.q;
        assert_eq!(buf.len() % (2 * n), 0, "accumulator buffer length");
        Barrett::new(q).reduce_slice(buf);
        {
            let _t = flash_telemetry::span!("hconv.inverse_fft");
            inverse_batch(buf, params.ntt());
        }
        buf.chunks_exact(2 * n)
            .map(|pair| {
                Ciphertext::new(
                    Poly::from_coeffs(pair[..n].to_vec(), q),
                    Poly::from_coeffs(pair[n..].to_vec(), q),
                )
            })
            .collect()
    }
}

/// Rounds an `f64` product coefficient into `[0, q)`, dispatching on the
/// modulus family once per call batch: primes reduce through one Barrett
/// pass, powers of two through a truncating cast plus a mask — the
/// "free reduction" of the `Pow2` datapath (`i128 → u64` truncation *is*
/// reduction mod `2^64`, and `2^l | 2^64` finishes the job).
enum Reducer {
    Barrett(Barrett),
    Mask(u64),
}

impl Reducer {
    fn new(q: u64) -> Self {
        // A prime modulus (> 2) is never a power of two, so the existing
        // backends always take the Barrett arm bit-identically.
        if q.is_power_of_two() {
            Reducer::Mask(q - 1)
        } else {
            Reducer::Barrett(Barrett::new(q))
        }
    }

    #[inline]
    fn reduce_f64(&self, x: f64) -> u64 {
        match self {
            // Products reach ~2^76 at q = 2^62 — beyond i64, within i128.
            Reducer::Mask(m) => (x.round_ties_even() as i128) as u64 & m,
            Reducer::Barrett(br) => br.from_signed_i128(x.round_ties_even() as i128),
        }
    }

    #[inline]
    fn add_assign(&self, dst: &mut u64, x: u64, q: u64) {
        match self {
            Reducer::Mask(m) => *dst = dst.wrapping_add(x) & m,
            Reducer::Barrett(_) => *dst = add_mod(*dst, x, q),
        }
    }
}

/// The FFT-family ciphertext side of a fused multiply-accumulate: for
/// each component, center-lift, forward-transform, point-wise multiply by
/// the weight spectrum `fw`, inverse-transform, and accumulate mod `q`.
/// All intermediates come from the thread-local scratch pools. The
/// center lift fuses into the fold-and-twist stage
/// ([`flash_fft::NegacyclicFft::forward_residues_into`]), so no staged
/// `f64` copy of the ciphertext component is materialized.
fn accumulate_pair_fft(
    acc0: &mut Poly,
    acc1: &mut Poly,
    a0: &Poly,
    a1: &Poly,
    fw: &[C64],
    fft: &flash_fft::NegacyclicFft,
    q: u64,
) {
    let n = a0.len();
    let mut fa = C64_SCRATCH.take(n / 2);
    let mut prod = F64_SCRATCH.take(n);
    let red = Reducer::new(q);
    for (acc, a) in [(acc0, a0), (acc1, a1)] {
        {
            let _t = flash_telemetry::span!("hconv.activation_fft");
            fft.forward_residues_into(a.coeffs(), q, &mut fa);
        }
        {
            let _t = flash_telemetry::span!("hconv.pointwise_acc");
            for (x, &y) in fa.iter_mut().zip(fw.iter()) {
                *x *= y;
            }
        }
        let _t = flash_telemetry::span!("hconv.inverse_fft");
        fft.inverse_into(&mut fa, &mut prod);
        for (dst, &x) in acc.coeffs_mut().iter_mut().zip(prod.iter()) {
            red.add_assign(dst, red.reduce_f64(x), q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HeParams;
    use flash_fft::ApproxFftConfig;
    use flash_math::fixed::FxpFormat;
    use rand::{Rng, SeedableRng};

    fn small_weights(n: usize, nnz: usize, rng: &mut impl Rng) -> Vec<i64> {
        let mut w = vec![0i64; n];
        for _ in 0..nnz {
            w[rng.gen_range(0..n)] = rng.gen_range(-8..8);
        }
        w
    }

    #[test]
    fn fft_backend_matches_ntt_backend() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        let exact = PolyMulBackend::Ntt.mul_ct_pt(&a, &w, &p);
        let viaf = PolyMulBackend::FftF64.mul_ct_pt(&a, &w, &p);
        assert_eq!(exact, viaf);
    }

    #[test]
    fn wide_approx_backend_matches_ntt() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        // Very wide fixed-point datapath: error far below 0.5 per coeff
        // even against ciphertext coefficients of magnitude q/2 ≈ 2^35.
        let mut cfg = ApproxFftConfig::uniform(p.n, FxpFormat::new(20, 60), 60);
        cfg.max_shift = 55;
        let b = PolyMulBackend::approx(cfg);
        let exact = PolyMulBackend::Ntt.mul_ct_pt(&a, &w, &p);
        let approx = b.mul_ct_pt(&a, &w, &p);
        assert_eq!(exact, approx);
    }

    #[test]
    fn plan_path_matches_ntt_and_dense_fallback_is_bit_identical() {
        use flash_sparse::SparsityPattern;
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a0 = Poly::uniform(p.n, p.q, &mut rng);
        let a1 = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        let pattern = SparsityPattern::fold_from_poly(&w);
        let plan = SparsePlan::compile(&pattern);
        assert!(plan.worthwhile(), "9 nonzeros of 256 must be worthwhile");

        let run = |b: &PolyMulBackend, plan: Option<&SparsePlan>| {
            let mut c0 = Poly::zero(p.n, p.q);
            let mut c1 = Poly::zero(p.n, p.q);
            let used = b.mul_ct_pt_acc_plan(&mut c0, &mut c1, &a0, &a1, &w, &p, plan);
            (c0, c1, used)
        };

        let (e0, e1, used_ntt) = run(&PolyMulBackend::Ntt, Some(&plan));
        assert!(!used_ntt, "Ntt backend must ignore the plan");
        let (s0, s1, used) = run(&PolyMulBackend::FftF64, Some(&plan));
        assert!(used, "FFT backend must take the sparse tape");
        assert_eq!((&e0, &e1), (&s0, &s1), "sparse path diverged from NTT");
        let (d0, d1, used_dense) = run(&PolyMulBackend::FftF64, None);
        assert!(!used_dense);
        assert_eq!((&s0, &s1), (&d0, &d1), "fallback not bit-identical");

        // Spectrum entry point: same result from a precomputed spectrum.
        let mut fw = vec![flash_math::C64::ZERO; p.n / 2];
        plan.execute_into(&w, &mut fw);
        let mut c0 = Poly::zero(p.n, p.q);
        let mut c1 = Poly::zero(p.n, p.q);
        PolyMulBackend::FftF64.mul_ct_pt_acc_spectrum(&mut c0, &mut c1, &a0, &a1, &fw, p.fft());
        assert_eq!((&c0, &c1), (&s0, &s1), "spectrum path diverged");
    }

    #[test]
    fn error_model_exists_only_for_the_approximate_backends() {
        let p = HeParams::test_256();
        assert!(PolyMulBackend::Ntt.error_model(&p).is_none());
        assert!(PolyMulBackend::FftF64.error_model(&p).is_none());
        let cfg = ApproxFftConfig::uniform(p.n, FxpFormat::new(18, 34), 30);
        assert!(PolyMulBackend::approx(cfg).error_model(&p).is_some());
        let p2 = HeParams::pow2_test_256();
        assert!(PolyMulBackend::Pow2.error_model(&p2).is_some());
    }

    #[test]
    fn pow2_backend_stays_within_its_error_model() {
        // Kernel-level claim of the Pow2 datapath: the f64-lifted product
        // differs from the exact wrapping schoolbook by far less than the
        // model's phase bound, even against full-magnitude (≈2^61)
        // ciphertext coefficients.
        use flash_math::pow2::negacyclic_mul_wrapping;
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        let got = PolyMulBackend::Pow2.mul_ct_pt(&a, &w, &p);
        let w_res: Vec<u64> = w
            .iter()
            .map(|&x| flash_math::modular::from_signed(x, p.q))
            .collect();
        let want = negacyclic_mul_wrapping(a.coeffs(), &w_res, p.q);
        let sq: f64 = w.iter().map(|&x| (x * x) as f64).sum();
        let bound = PolyMulBackend::Pow2
            .error_model(&p)
            .unwrap()
            .phase_error_bound(&p, sq, 1);
        let err = got
            .coeffs()
            .iter()
            .zip(&want)
            .map(|(&g, &e)| center_lift(g.wrapping_sub(e) & (p.q - 1), p.q).unsigned_abs())
            .max()
            .unwrap();
        assert!(err > 0, "2^61 magnitudes must exceed f64 exactness");
        assert!(
            (err as f64) < bound,
            "err {err} must stay below the model bound {bound}"
        );
        assert!(bound < p.noise_ceiling() as f64 / 4.0);
    }

    #[test]
    fn pow2_sparse_tape_and_spectrum_paths_stay_within_the_model() {
        // The tape reorders the weight transform's float additions, so at
        // 2^61 activation magnitudes its rounded output may differ from
        // the dense path by a few low bits — both must stay inside the
        // same error model vs the exact wrapping schoolbook (the property
        // the noise guard relies on). The spectrum entry point shares the
        // tape's weight spectrum and accumulate code, so it *is*
        // bit-identical to the tape path.
        use flash_math::pow2::negacyclic_mul_wrapping;
        use flash_sparse::SparsityPattern;
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a0 = Poly::uniform(p.n, p.q, &mut rng);
        let a1 = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        let pattern = SparsityPattern::fold_from_poly(&w);
        let plan = SparsePlan::compile(&pattern);
        assert!(plan.worthwhile());

        let mut d0 = Poly::zero(p.n, p.q);
        let mut d1 = Poly::zero(p.n, p.q);
        let used_dense =
            PolyMulBackend::Pow2.mul_ct_pt_acc_plan(&mut d0, &mut d1, &a0, &a1, &w, &p, None);
        assert!(!used_dense);

        let mut s0 = Poly::zero(p.n, p.q);
        let mut s1 = Poly::zero(p.n, p.q);
        let used = PolyMulBackend::Pow2.mul_ct_pt_acc_plan(
            &mut s0,
            &mut s1,
            &a0,
            &a1,
            &w,
            &p,
            Some(&plan),
        );
        assert!(used, "Pow2 must compose with the sparse tape");

        let sq: f64 = w.iter().map(|&x| (x * x) as f64).sum();
        let bound = PolyMulBackend::Pow2
            .error_model(&p)
            .unwrap()
            .phase_error_bound(&p, sq, 1);
        let w_res: Vec<u64> = w
            .iter()
            .map(|&x| flash_math::modular::from_signed(x, p.q))
            .collect();
        for (a, got, path) in [
            (&a0, &d0, "dense c0"),
            (&a1, &d1, "dense c1"),
            (&a0, &s0, "tape c0"),
            (&a1, &s1, "tape c1"),
        ] {
            let want = negacyclic_mul_wrapping(a.coeffs(), &w_res, p.q);
            let err = got
                .coeffs()
                .iter()
                .zip(&want)
                .map(|(&g, &e)| center_lift(g.wrapping_sub(e) & (p.q - 1), p.q).unsigned_abs())
                .max()
                .unwrap();
            assert!(
                (err as f64) < bound,
                "{path}: err {err} above bound {bound}"
            );
        }

        let mut fw = vec![flash_math::C64::ZERO; p.n / 2];
        plan.execute_into(&w, &mut fw);
        let mut c0 = Poly::zero(p.n, p.q);
        let mut c1 = Poly::zero(p.n, p.q);
        PolyMulBackend::Pow2.mul_ct_pt_acc_spectrum(&mut c0, &mut c1, &a0, &a1, &fw, p.fft());
        assert_eq!((&c0, &c1), (&s0, &s1), "spectrum path diverged from tape");
    }

    #[test]
    fn error_model_bounds_measured_decryption_noise() {
        // The guard's actual claim: composed analytic bound (worst-case
        // chain + model term) dominates the measured decryption-phase
        // noise of an approximate product, for both a narrow and a wide
        // datapath.
        use crate::keys::SecretKey;
        use crate::noise::NoiseBound;
        let p = HeParams::test_256();
        for (frac, k, shift) in [(30u32, 24usize, 26u32), (34, 30, 30)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(13);
            let sk = SecretKey::generate(&p, &mut rng);
            let m = Poly::uniform(p.n, p.t, &mut rng);
            let ct = sk.encrypt(&m, &mut rng);
            let w = small_weights(p.n, 9, &mut rng);
            let mut cfg = ApproxFftConfig::uniform(p.n, FxpFormat::new(16, frac), k);
            cfg.max_shift = shift;
            let b = PolyMulBackend::approx(cfg);
            let model = b.error_model(&p).unwrap();

            let ct2 = ct.mul_plain_signed(&w, &p, &b);
            let w_t: Vec<u64> = w
                .iter()
                .map(|&x| flash_math::modular::from_signed(x, p.t))
                .collect();
            let mw = Poly::from_coeffs(
                flash_ntt::polymul::negacyclic_mul_naive(m.coeffs(), &w_t, p.t),
                p.t,
            );
            let measured = sk.noise(&ct2, &mw).inf_norm() as f64;

            let l1: f64 = w.iter().map(|&x| x.abs() as f64).sum();
            let sq: f64 = w.iter().map(|&x| (x * x) as f64).sum();
            let bound = NoiseBound::fresh(&p)
                .after_plain_mul(l1)
                .after_computation_error(model.phase_error_bound(&p, sq, 1));
            assert!(
                measured <= bound.bound(),
                "frac={frac}: measured {measured} vs bound {}",
                bound.bound()
            );
        }
    }

    #[test]
    fn narrow_approx_backend_errs_within_budget() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Poly::uniform(p.n, p.q, &mut rng);
        let w = small_weights(p.n, 9, &mut rng);
        let mut cfg = ApproxFftConfig::uniform(p.n, FxpFormat::new(16, 30), 24);
        cfg.max_shift = 26;
        let b = PolyMulBackend::approx(cfg);
        let exact = PolyMulBackend::Ntt.mul_ct_pt(&a, &w, &p);
        let approx = b.mul_ct_pt(&a, &w, &p);
        // errors exist but are small relative to the noise ceiling
        let diff = exact.sub(&approx);
        let err = diff.inf_norm();
        assert!(err > 0, "narrow datapath should introduce some error");
        assert!(
            err < p.noise_ceiling() / 4,
            "error {err} must stay within the kernel-level budget {}",
            p.noise_ceiling()
        );
    }
}
