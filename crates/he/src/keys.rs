//! Secret keys, encryption and decryption.
//!
//! Symmetric-key BFV suffices for the hybrid protocol (the client both
//! encrypts and decrypts): `ct = (c0, c1)` with `c1 = a` uniform and
//! `c0 = −a·s + Δ·m + e`, so `c0 + c1·s = Δ·m + e`.

use crate::cipher::Ciphertext;
use crate::params::HeParams;
use crate::poly::Poly;
use flash_math::modular::add_mod;
use flash_runtime::U64_SCRATCH;
use rand::Rng;

/// A BFV secret key (ternary).
#[derive(Debug, Clone)]
pub struct SecretKey {
    params: HeParams,
    s: Poly,
}

/// A BFV public key: an encryption of zero `(p0, p1) = (−a·s + e, a)`.
///
/// The hybrid protocol itself only needs symmetric encryption (the
/// client encrypts and decrypts), but a public key lets third parties
/// contribute ciphertexts.
#[derive(Debug, Clone)]
pub struct PublicKey {
    params: HeParams,
    p0: Poly,
    p1: Poly,
}

impl PublicKey {
    /// The parameter set this key belongs to.
    pub fn params(&self) -> &HeParams {
        &self.params
    }

    /// Encrypts a plaintext with the public key:
    /// `ct = (p0·u + e1 + Δ·m, p1·u + e2)` with ternary `u`.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext modulus or length mismatches.
    pub fn encrypt<R: Rng>(&self, m: &Poly, rng: &mut R) -> Ciphertext {
        let p = &self.params;
        assert_eq!(m.modulus(), p.t, "plaintext must be mod t");
        assert_eq!(m.len(), p.n, "plaintext length must be N");
        let u = Poly::ternary(p.n, p.q, rng);
        let e1 = Poly::gaussian(p.n, p.q, p.noise_std, rng);
        let e2 = Poly::gaussian(p.n, p.q, p.noise_std, rng);
        let scaled_m = m.lift_to(p.q).scale(p.delta());
        let c0 = Poly::from_coeffs(p.key_mul(self.p0.coeffs(), u.coeffs()), p.q)
            .add(&e1)
            .add(&scaled_m);
        let c1 = Poly::from_coeffs(p.key_mul(self.p1.coeffs(), u.coeffs()), p.q).add(&e2);
        Ciphertext::new(c0, c1)
    }
}

impl SecretKey {
    /// Samples a fresh ternary secret key.
    pub fn generate<R: Rng>(params: &HeParams, rng: &mut R) -> Self {
        let s = Poly::ternary(params.n, params.q, rng);
        Self {
            params: params.clone(),
            s,
        }
    }

    /// The parameter set this key belongs to.
    pub fn params(&self) -> &HeParams {
        &self.params
    }

    /// Derives the matching public key (an encryption of zero).
    pub fn public_key<R: Rng>(&self, rng: &mut R) -> PublicKey {
        let p = &self.params;
        let a = Poly::uniform(p.n, p.q, rng);
        let e = Poly::gaussian(p.n, p.q, p.noise_std, rng);
        let a_s = Poly::from_coeffs(p.key_mul(a.coeffs(), self.s.coeffs()), p.q);
        PublicKey {
            params: p.clone(),
            p0: e.sub(&a_s),
            p1: a,
        }
    }

    /// Encrypts a plaintext polynomial (`mod t`).
    ///
    /// # Panics
    ///
    /// Panics if the plaintext modulus or length does not match the
    /// parameters.
    pub fn encrypt<R: Rng>(&self, m: &Poly, rng: &mut R) -> Ciphertext {
        let p = &self.params;
        assert_eq!(m.modulus(), p.t, "plaintext must be mod t");
        assert_eq!(m.len(), p.n, "plaintext length must be N");
        let a = Poly::uniform(p.n, p.q, rng);
        let e = Poly::gaussian(p.n, p.q, p.noise_std, rng);
        let scaled_m = m.lift_to(p.q).scale(p.delta());
        let a_s = Poly::from_coeffs(p.key_mul(a.coeffs(), self.s.coeffs()), p.q);
        let c0 = scaled_m.add(&e).sub(&a_s);
        Ciphertext::new(c0, a)
    }

    /// The raw decryption phase `c0 + c1·s` (mod `q`).
    ///
    /// Runs per ciphertext in the protocol's client step, so the `c1·s`
    /// product stays in a scratch buffer; only the returned polynomial
    /// is allocated.
    pub fn phase(&self, ct: &Ciphertext) -> Poly {
        let p = &self.params;
        let mut c1_s = U64_SCRATCH.take(p.n);
        p.key_mul_into(&mut c1_s, ct.c1().coeffs(), self.s.coeffs());
        let coeffs = ct
            .c0()
            .coeffs()
            .iter()
            .zip(c1_s.iter())
            .map(|(&a, &b)| add_mod(a, b, p.q))
            .collect();
        Poly::from_coeffs(coeffs, p.q)
    }

    /// Decryption for wire-derived ciphertexts: validates the ciphertext
    /// against this key's parameter set before running [`decrypt`]
    /// (`SecretKey::decrypt`), so malformed peer data surfaces as a typed
    /// error instead of a panic deep in the NTT.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::HeError`] on a degree or modulus mismatch.
    pub fn try_decrypt(&self, ct: &Ciphertext) -> Result<Poly, crate::error::HeError> {
        ct.validate_for(&self.params)?;
        Ok(self.decrypt(ct))
    }

    /// Decrypts a ciphertext: `round(t/q · (c0 + c1·s)) mod t`.
    pub fn decrypt(&self, ct: &Ciphertext) -> Poly {
        let p = &self.params;
        let phase = self.phase(ct);
        let coeffs = phase
            .coeffs()
            .iter()
            .map(|&c| {
                // round(t * c / q) mod t, in u128 to avoid overflow
                let num = c as u128 * p.t as u128 + p.q as u128 / 2;
                ((num / p.q as u128) % p.t as u128) as u64
            })
            .collect();
        Poly::from_coeffs(coeffs, p.t)
    }

    /// Exact residual noise of a ciphertext that should decrypt to `m`:
    /// center-lifted `c0 + c1·s − Δ·m`.
    pub fn noise(&self, ct: &Ciphertext, m: &Poly) -> Poly {
        let p = &self.params;
        let expected = m.lift_to(p.q).scale(p.delta());
        self.phase(ct).sub(&expected)
    }

    /// Remaining noise budget in bits: `log2(noise ceiling) −
    /// log2(‖noise‖_∞)`. Negative means decryption failure is possible.
    pub fn noise_budget_bits(&self, ct: &Ciphertext, m: &Poly) -> f64 {
        let noise = self.noise(ct, m).inf_norm().max(1);
        (self.params.noise_ceiling() as f64).log2() - (noise as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&p, &mut rng);
        for seed in 0..5u64 {
            let mut mrng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Poly::uniform(p.n, p.t, &mut mrng);
            let ct = sk.encrypt(&m, &mut rng);
            assert_eq!(sk.decrypt(&ct), m);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip_pow2_ring() {
        // The whole key path — ternary sampling, a·s / p·u products via
        // the CRT lift, Δ·m scaling, u128 rounding — on q = 2^62.
        let p = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&p, &mut rng);
        let pk = sk.public_key(&mut rng);
        for seed in 0..3u64 {
            let mut mrng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Poly::uniform(p.n, p.t, &mut mrng);
            let ct = sk.encrypt(&m, &mut rng);
            assert_eq!(sk.decrypt(&ct), m);
            assert!(sk.noise(&ct, &m).inf_norm() < 40);
            // The 2^62 modulus leaves a vast budget vs the 36-bit prime.
            assert!(sk.noise_budget_bits(&ct, &m) > 30.0);
            let ct_pk = pk.encrypt(&m, &mut rng);
            assert_eq!(sk.decrypt(&ct_pk), m);
        }
    }

    #[test]
    fn fresh_noise_is_small() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let noise = sk.noise(&ct, &m);
        assert!(noise.inf_norm() < 40, "fresh noise should be a few sigma");
        assert!(sk.noise_budget_bits(&ct, &m) > 10.0);
    }

    #[test]
    fn decryption_robust_to_injected_error_below_ceiling() {
        // Kernel-level robustness: adding error below q/(2t) to c0 leaves
        // decryption unchanged — the foundation of FLASH's approximation.
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let headroom = (p.noise_ceiling() / 2) as i64;
        let inject = Poly::from_signed(&vec![headroom; p.n], p.q);
        let noisy = Ciphertext::new(ct.c0().add(&inject), ct.c1().clone());
        assert_eq!(sk.decrypt(&noisy), m);
    }

    #[test]
    fn public_key_encryption_roundtrip() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sk = SecretKey::generate(&p, &mut rng);
        let pk = sk.public_key(&mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = pk.encrypt(&m, &mut rng);
        assert_eq!(sk.decrypt(&ct), m);
        // pk encryption carries more noise than symmetric (u·e terms) but
        // stays comfortably within budget.
        let budget = sk.noise_budget_bits(&ct, &m);
        assert!(budget > 3.0, "pk budget {budget}");
        let sym = sk.encrypt(&m, &mut rng);
        assert!(sk.noise(&ct, &m).inf_norm() >= sk.noise(&sym, &m).inf_norm());
    }

    #[test]
    fn public_key_ciphertexts_compose_homomorphically() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let sk = SecretKey::generate(&p, &mut rng);
        let pk = sk.public_key(&mut rng);
        let m1 = Poly::uniform(p.n, p.t, &mut rng);
        let m2 = Poly::uniform(p.n, p.t, &mut rng);
        let ct = pk.encrypt(&m1, &mut rng).add_ct(&sk.encrypt(&m2, &mut rng));
        assert_eq!(sk.decrypt(&ct), m1.add(&m2));
    }

    #[test]
    fn decryption_fails_above_ceiling() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::zero(p.n, p.t);
        let ct = sk.encrypt(&m, &mut rng);
        let too_much = (p.noise_ceiling() + p.noise_ceiling() / 2) as i64;
        let inject = Poly::from_signed(&vec![too_much; p.n], p.q);
        let noisy = Ciphertext::new(ct.c0().add(&inject), ct.c1().clone());
        assert_ne!(sk.decrypt(&noisy), m);
    }
}
