//! Response-ciphertext truncation (Cheetah's download compression).
//!
//! The masked response ciphertext only needs to survive *one* decryption,
//! so its low-order coefficient bits — which carry nothing but noise
//! headroom — can be dropped before download. Dropping `d0` bits of `c0`
//! adds at most `2^{d0-1}` per coefficient to the noise; dropping `d1`
//! bits of `c1` adds up to `2^{d1-1}·‖s‖₁` (the error passes through the
//! `c1·s` product), so `c1` tolerates far less truncation than `c0`.

use crate::cipher::Ciphertext;
use crate::params::HeParams;
use crate::poly::Poly;
use crate::serialize::WireError;

/// A ciphertext with truncated coefficients, as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedCiphertext {
    /// High bits of `c0` (each coefficient right-shifted by `d0`).
    c0_high: Vec<u64>,
    /// High bits of `c1`.
    c1_high: Vec<u64>,
    /// Dropped bits of `c0`.
    pub d0: u32,
    /// Dropped bits of `c1`.
    pub d1: u32,
}

impl TruncatedCiphertext {
    /// Truncates a ciphertext, rounding each coefficient to the nearest
    /// multiple of `2^d` (so the reconstruction error is centered).
    ///
    /// # Panics
    ///
    /// Panics if a shift is ≥ the modulus width.
    pub fn truncate(ct: &Ciphertext, d0: u32, d1: u32, params: &HeParams) -> Self {
        let q_bits = 64 - params.q.leading_zeros();
        assert!(
            d0 < q_bits && d1 < q_bits,
            "cannot drop the whole coefficient"
        );
        let round = |c: u64, d: u32| -> u64 {
            if d == 0 {
                return c;
            }
            // Nearest multiple of 2^d. The add runs in u128 so the
            // rounding carry survives for coefficients near q, and the
            // mask keeps exactly the q_bits - d wire bits (a carry past
            // 2^{q_bits} wraps to 0, which the mod-q lift absorbs).
            // The old `(c + half) % q >> d` wrapped near-q coefficients
            // to 0 *before* the shift, breaking the nearest-multiple
            // contract at the top of the range.
            let half = 1u128 << (d - 1);
            let mask = (1u64 << (q_bits - d)) - 1;
            (((c as u128 + half) >> d) as u64) & mask
        };
        Self {
            c0_high: ct.c0().coeffs().iter().map(|&c| round(c, d0)).collect(),
            c1_high: ct.c1().coeffs().iter().map(|&c| round(c, d1)).collect(),
            d0,
            d1,
        }
    }

    /// Reconstructs a (noisier) ciphertext on the client side.
    pub fn reconstruct(&self, params: &HeParams) -> Ciphertext {
        // The lifted value `h << d` can exceed q (it is the nearest
        // multiple of 2^d, which may sit just above q), so reduce in
        // u128 rather than truncating.
        let lift = |high: &[u64], d: u32| -> Poly {
            Poly::from_coeffs(
                high.iter()
                    .map(|&h| (((h as u128) << d) % params.q as u128) as u64)
                    .collect(),
                params.q,
            )
        };
        Ciphertext::new(lift(&self.c0_high, self.d0), lift(&self.c1_high, self.d1))
    }

    /// Wire size in bytes: each coefficient packs into
    /// `⌈(log2 q − d)/8⌉` bytes.
    pub fn byte_size(&self, params: &HeParams) -> usize {
        let q_bits = (64 - params.q.leading_zeros()) as usize;
        let bytes = |d: u32| (q_bits - d as usize).div_ceil(8);
        self.c0_high.len() * bytes(self.d0) + self.c1_high.len() * bytes(self.d1)
    }

    /// Serializes the truncated components (`c0_high ‖ c1_high`,
    /// little-endian, `⌈(log2 q − d)/8⌉` bytes per coefficient). The
    /// `(d0, d1)` pair travels in the session context — both parties
    /// agreed on the truncation when the protocol was planned — so the
    /// byte string length is exactly [`TruncatedCiphertext::byte_size`].
    pub fn to_bytes(&self, params: &HeParams) -> Vec<u8> {
        let q_bits = (64 - params.q.leading_zeros()) as usize;
        let mut out = Vec::with_capacity(self.byte_size(params));
        for (high, d) in [(&self.c0_high, self.d0), (&self.c1_high, self.d1)] {
            let cb = (q_bits - d as usize).div_ceil(8);
            for &h in high.iter() {
                out.extend_from_slice(&h.to_le_bytes()[..cb]);
            }
        }
        out
    }

    /// Deserializes a truncated ciphertext of degree `n` with the agreed
    /// `(d0, d1)` shifts.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the buffer is short or a packed value
    /// exceeds the `log2 q − d` wire width (including flipped pad bits in
    /// the top byte of a coefficient).
    pub fn from_bytes(buf: &[u8], d0: u32, d1: u32, params: &HeParams) -> Result<Self, WireError> {
        let q_bits = (64 - params.q.leading_zeros()) as usize;
        let n = params.n;
        let mut offset = 0usize;
        let mut parts: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for (slot, d) in [(0usize, d0), (1, d1)] {
            let width = q_bits - d as usize;
            let cb = width.div_ceil(8);
            let mask = (1u64 << width) - 1;
            if buf.len() < offset + n * cb {
                return Err(WireError::Truncated);
            }
            let mut high = Vec::with_capacity(n);
            for i in 0..n {
                let mut le = [0u8; 8];
                le[..cb].copy_from_slice(&buf[offset + i * cb..offset + (i + 1) * cb]);
                let h = u64::from_le_bytes(le);
                if h > mask {
                    return Err(WireError::CoefficientOutOfRange { index: i });
                }
                high.push(h);
            }
            parts[slot] = high;
            offset += n * cb;
        }
        let [c0_high, c1_high] = parts;
        Ok(Self {
            c0_high,
            c1_high,
            d0,
            d1,
        })
    }

    /// Worst-case noise added by the truncation: `2^{d0-1}` from `c0`
    /// plus `2^{d1-1}·‖s‖₁` from `c1` (ternary key: `‖s‖₁ ≤ N`).
    pub fn noise_bound(&self, params: &HeParams) -> f64 {
        let e0 = if self.d0 == 0 {
            0.0
        } else {
            (2.0f64).powi(self.d0 as i32 - 1)
        };
        let e1 = if self.d1 == 0 {
            0.0
        } else {
            (2.0f64).powi(self.d1 as i32 - 1)
        };
        e0 + e1 * params.n as f64
    }
}

/// Picks the largest `(d0, d1)` whose combined truncation noise — the
/// exact [`TruncatedCiphertext::noise_bound`] expression
/// `2^{d0-1} + 2^{d1-1}·N` — stays within `margin` times the remaining
/// noise budget `budget_abs`. Half the target is reserved for each
/// component, then `d1` grows into whatever `d0` left unused.
///
/// The previous version compared `2^{d1}·N/2 < target/2`: the spurious
/// `/2` on both sides cancelled, and together with the post-loop
/// decrement it left one admissible bit of `d1` (a factor-2× tighter
/// truncation than the bound allows) on the table.
pub fn safe_truncation(params: &HeParams, budget_abs: f64, margin: f64) -> (u32, u32) {
    let target = budget_abs * margin;
    let q_bits = 64 - params.q.leading_zeros();
    let max_d = 40.min(q_bits - 1);
    // largest d0 with 2^{d0-1} <= target/2
    let mut d0 = 0u32;
    while d0 < max_d && (2.0f64).powi(d0 as i32) <= target / 2.0 {
        d0 += 1;
    }
    let e0 = if d0 == 0 {
        0.0
    } else {
        (2.0f64).powi(d0 as i32 - 1)
    };
    // largest d1 with e0 + 2^{d1-1}·N <= target
    let mut d1 = 0u32;
    while d1 < max_d && e0 + (2.0f64).powi(d1 as i32) * params.n as f64 <= target {
        d1 += 1;
    }
    (d0, d1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (HeParams, SecretKey, Poly, Ciphertext) {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        (p, sk, m, ct)
    }

    #[test]
    fn zero_truncation_is_identity_up_to_packing() {
        let (p, sk, m, ct) = setup();
        let t = TruncatedCiphertext::truncate(&ct, 0, 0, &p);
        let back = t.reconstruct(&p);
        assert_eq!(sk.decrypt(&back), m);
        assert_eq!(t.byte_size(&p), ct.byte_size());
    }

    #[test]
    fn safe_truncation_preserves_decryption_and_saves_bytes() {
        let (p, sk, m, ct) = setup();
        let budget = p.noise_ceiling() as f64 - sk.noise(&ct, &m).inf_norm() as f64;
        let margin = 0.25;
        let (d0, d1) = safe_truncation(&p, budget, margin);
        assert!(d0 > 4, "should find real savings: d0={d0}");
        let t = TruncatedCiphertext::truncate(&ct, d0, d1, &p);
        assert!(
            t.noise_bound(&p) <= budget * margin,
            "chosen (d0,d1)=({d0},{d1}) exceeds the target: {} > {}",
            t.noise_bound(&p),
            budget * margin
        );
        let back = t.reconstruct(&p);
        assert_eq!(sk.decrypt(&back), m, "d0={d0} d1={d1}");
        let saved = 1.0 - t.byte_size(&p) as f64 / ct.byte_size() as f64;
        assert!(saved > 0.1, "download shrank by {saved}");
    }

    #[test]
    fn truncation_noise_within_bound() {
        let (p, sk, m, ct) = setup();
        let before = sk.noise(&ct, &m).inf_norm() as f64;
        for (d0, d1) in [(4u32, 0u32), (8, 0), (10, 2)] {
            let t = TruncatedCiphertext::truncate(&ct, d0, d1, &p);
            let back = t.reconstruct(&p);
            let after = sk.noise(&back, &m).inf_norm() as f64;
            assert!(
                after <= before + t.noise_bound(&p) + 1.0,
                "d=({d0},{d1}): {after} > {before} + {}",
                t.noise_bound(&p)
            );
        }
    }

    #[test]
    fn safe_truncation_admits_the_full_d1_bound() {
        // The fixed predicate reasons about the combined noise bound
        // directly; for the test parameters (target = 2^17, N = 256) the
        // admissible pair is (17, 9) — the old predicate's spurious
        // halving stopped at d1 = 8.
        let p = HeParams::test_256();
        let (d0, d1) = safe_truncation(&p, (1u64 << 19) as f64, 0.25);
        assert_eq!((d0, d1), (17, 9));
    }

    #[test]
    fn near_q_coefficients_round_to_nearest_multiple() {
        // Regression for the rounding fix: coefficients in
        // [q - 2^{d-1}, q) used to collapse to 0 — the `% q` wrap fired
        // *before* the shift — instead of landing on the nearest
        // multiple of 2^d reduced mod q. The old code fails this test.
        let p = HeParams::test_256();
        let d = 10u32;
        let half = 1u64 << (d - 1);
        for c in [p.q - half, p.q - half / 2, p.q - 1] {
            let ct = Ciphertext::new(
                Poly::from_coeffs(vec![c; p.n], p.q),
                Poly::from_coeffs(vec![0; p.n], p.q),
            );
            let t = TruncatedCiphertext::truncate(&ct, d, 0, &p);
            let back = t.reconstruct(&p);
            let nearest = ((c as u128 + half as u128) >> d) << d;
            let want = (nearest % p.q as u128) as u64;
            let got = back.c0().coeffs()[0];
            assert_eq!(got, want, "c={c}");
            // and the centered reconstruction error stays within 2^{d-1}
            let diff = (got as i128 - c as i128).rem_euclid(p.q as i128);
            let err = diff.min(p.q as i128 - diff);
            assert!(err <= half as i128, "c={c}: err={err}");
        }
    }

    #[test]
    fn truncated_wire_roundtrip_and_size_matches_accounting() {
        let (p, sk, m, ct) = setup();
        for (d0, d1) in [(0u32, 0u32), (8, 2), (17, 9)] {
            let t = TruncatedCiphertext::truncate(&ct, d0, d1, &p);
            let bytes = t.to_bytes(&p);
            assert_eq!(bytes.len(), t.byte_size(&p), "d=({d0},{d1})");
            let back = TruncatedCiphertext::from_bytes(&bytes, d0, d1, &p).unwrap();
            assert_eq!(back, t);
            if d0 <= 8 && d1 <= 2 {
                assert_eq!(sk.decrypt(&back.reconstruct(&p)), m, "d=({d0},{d1})");
            }
        }
    }

    #[test]
    fn truncated_wire_rejects_short_buffers_and_pad_bit_garbage() {
        let (p, _, _, ct) = setup();
        let t = TruncatedCiphertext::truncate(&ct, 8, 2, &p);
        let bytes = t.to_bytes(&p);
        assert_eq!(
            TruncatedCiphertext::from_bytes(&bytes[..bytes.len() - 1], 8, 2, &p),
            Err(WireError::Truncated)
        );
        // q_bits = 36, d0 = 8 -> 28-bit coefficients in 4 bytes: the top
        // 4 bits of every 4th byte are padding and must stay clear.
        let mut bad = bytes.clone();
        bad[3] |= 0x80;
        assert!(matches!(
            TruncatedCiphertext::from_bytes(&bad, 8, 2, &p),
            Err(WireError::CoefficientOutOfRange { index: 0 })
        ));
    }

    #[test]
    fn reckless_truncation_breaks_decryption() {
        let (p, sk, m, ct) = setup();
        // dropping 18 bits of c1 injects noise of typical magnitude
        // 2^17·√N ≫ the q/2t ceiling
        let t = TruncatedCiphertext::truncate(&ct, 0, 18, &p);
        assert_ne!(sk.decrypt(&t.reconstruct(&p)), m);
    }
}
