//! Typed errors for operations on wire-derived homomorphic data.
//!
//! Everything that reaches the scheme from *outside the process* —
//! deserialized polynomials, ciphertexts from a peer, noise budgets that
//! depend on runtime data — reports failure through [`HeError`] instead
//! of panicking. Panics remain for programmer errors on locally
//! constructed values (wrong parameter set passed to an API), and those
//! are `debug_assert!`-checked on hot paths.

use crate::serialize::WireError;
use std::fmt;

/// Errors from validating or operating on wire-derived HE data.
#[derive(Debug, Clone, PartialEq)]
pub enum HeError {
    /// Deserialization rejected the bytes.
    Wire(WireError),
    /// A polynomial or ciphertext length disagrees with the parameters.
    SizeMismatch {
        /// Ring degree the parameter set requires.
        expected: usize,
        /// Length actually carried by the object.
        got: usize,
    },
    /// A coefficient modulus disagrees with the parameters.
    ModulusMismatch {
        /// Modulus the parameter set requires.
        expected: u64,
        /// Modulus actually carried by the object.
        got: u64,
    },
    /// The composed noise bound exceeds the decryption ceiling `q/(2t)`:
    /// correctness of the result can no longer be guaranteed, even on the
    /// exact backend.
    NoiseOverflow {
        /// The composed `‖noise‖_∞` bound.
        bound: f64,
        /// The ceiling `q/(2t)`.
        ceiling: f64,
    },
}

impl fmt::Display for HeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeError::Wire(e) => write!(f, "wire error: {e}"),
            HeError::SizeMismatch { expected, got } => {
                write!(f, "ring degree mismatch: expected {expected}, got {got}")
            }
            HeError::ModulusMismatch { expected, got } => {
                write!(f, "modulus mismatch: expected {expected}, got {got}")
            }
            HeError::NoiseOverflow { bound, ceiling } => write!(
                f,
                "noise bound {bound:.3e} exceeds the decryption ceiling {ceiling:.3e}"
            ),
        }
    }
}

impl std::error::Error for HeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for HeError {
    fn from(e: WireError) -> Self {
        HeError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_composes_with_dyn_error() {
        let e: Box<dyn std::error::Error> = Box::new(HeError::Wire(WireError::Truncated));
        assert!(e.to_string().contains("truncated"));
        assert!(e.source().is_some());
        let o = HeError::NoiseOverflow {
            bound: 2.0e6,
            ceiling: 5.0e5,
        };
        assert!(o.to_string().contains("ceiling"));
        assert!(std::error::Error::source(&o).is_none());
    }
}
