//! Wire serialization of ciphertexts and polynomials.
//!
//! The protocol's communication costs (Cheetah's headline advantage) are
//! accounted from real byte strings: coefficients are packed
//! little-endian into `⌈log2 q / 8⌉` bytes each, matching
//! [`crate::Ciphertext::byte_size`].

use crate::cipher::Ciphertext;
use crate::poly::Poly;
use std::fmt;

/// Errors from deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header/payload requires.
    Truncated,
    /// A decoded coefficient is not reduced modulo the modulus.
    CoefficientOutOfRange { index: usize },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire buffer truncated"),
            WireError::CoefficientOutOfRange { index } => {
                write!(f, "coefficient {index} out of range for modulus")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Bytes per coefficient for a modulus.
#[inline]
pub fn coeff_bytes(modulus: u64) -> usize {
    let bits = 64 - modulus.leading_zeros() as usize;
    bits.div_ceil(8)
}

/// Serializes a polynomial's coefficients (the modulus and length travel
/// in the session context, as in real protocol implementations).
pub fn poly_to_bytes(p: &Poly) -> Vec<u8> {
    let cb = coeff_bytes(p.modulus());
    let n = p.len();
    // Over-allocate by one word so every coefficient can be stored as a
    // full little-endian u64; ascending writes overwrite the garbage
    // high bytes of their predecessor, and the tail is truncated away.
    let mut out = vec![0u8; n * cb + 8];
    for (i, &c) in p.coeffs().iter().enumerate() {
        out[i * cb..i * cb + 8].copy_from_slice(&c.to_le_bytes());
    }
    out.truncate(n * cb);
    out
}

/// Deserializes a polynomial of degree `n` modulo `modulus`.
///
/// # Errors
///
/// Returns [`WireError`] on truncation or unreduced coefficients.
pub fn poly_from_bytes(buf: &[u8], n: usize, modulus: u64) -> Result<Poly, WireError> {
    let cb = coeff_bytes(modulus);
    if buf.len() < n * cb {
        return Err(WireError::Truncated);
    }
    // Branch-free inner loop: decode everything, fold the range check
    // into one flag, and locate the offending index only on failure.
    // Coefficients are read as full little-endian u64 words masked down
    // to `cb` bytes wherever the buffer permits; only the last few fall
    // back to byte-wise assembly.
    let mask = if cb == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * cb)) - 1
    };
    let wide = if buf.len() >= 8 {
        (buf.len() - 8) / cb + 1
    } else {
        0
    };
    let mut coeffs = Vec::with_capacity(n);
    let mut all_reduced = true;
    for i in 0..n.min(wide) {
        let word = u64::from_le_bytes(buf[i * cb..i * cb + 8].try_into().expect("8-byte slice"));
        let c = word & mask;
        all_reduced &= c < modulus;
        coeffs.push(c);
    }
    for i in wide..n {
        let mut le = [0u8; 8];
        le[..cb].copy_from_slice(&buf[i * cb..(i + 1) * cb]);
        let c = u64::from_le_bytes(le);
        all_reduced &= c < modulus;
        coeffs.push(c);
    }
    if !all_reduced {
        let index = coeffs
            .iter()
            .position(|&c| c >= modulus)
            .expect("flag implies an offender");
        return Err(WireError::CoefficientOutOfRange { index });
    }
    Ok(Poly::from_coeffs(coeffs, modulus))
}

/// Serializes a ciphertext (`c0 ‖ c1`).
pub fn ciphertext_to_bytes(ct: &Ciphertext) -> Vec<u8> {
    let mut out = poly_to_bytes(ct.c0());
    out.extend(poly_to_bytes(ct.c1()));
    out
}

/// Deserializes a ciphertext of degree `n` modulo `q`.
///
/// # Errors
///
/// Returns [`WireError`] on truncation or unreduced coefficients.
pub fn ciphertext_from_bytes(buf: &[u8], n: usize, q: u64) -> Result<Ciphertext, WireError> {
    let half = n * coeff_bytes(q);
    if buf.len() < 2 * half {
        return Err(WireError::Truncated);
    }
    let c0 = poly_from_bytes(&buf[..half], n, q)?;
    let c1 = poly_from_bytes(&buf[half..], n, q)?;
    Ok(Ciphertext::new(c0, c1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use crate::params::HeParams;
    use rand::SeedableRng;

    #[test]
    fn poly_roundtrip() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let poly = Poly::uniform(p.n, p.q, &mut rng);
        let bytes = poly_to_bytes(&poly);
        assert_eq!(bytes.len(), p.n * coeff_bytes(p.q));
        let back = poly_from_bytes(&bytes, p.n, p.q).unwrap();
        assert_eq!(back, poly);
    }

    #[test]
    fn ciphertext_roundtrip_and_size_matches_accounting() {
        let p = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let bytes = ciphertext_to_bytes(&ct);
        assert_eq!(
            bytes.len(),
            ct.byte_size(),
            "wire size must match accounting"
        );
        let back = ciphertext_from_bytes(&bytes, p.n, p.q).unwrap();
        assert_eq!(back, ct);
        assert_eq!(sk.decrypt(&back), m);
    }

    #[test]
    fn pow2_ring_ciphertext_roundtrip() {
        // q = 2^62 needs 8-byte coefficient words (63-bit residue range);
        // the serializer is modulus-generic, so the power-of-two ring
        // must roundtrip bit-exactly including residues right below q.
        let p = HeParams::pow2_test_256();
        assert_eq!(coeff_bytes(p.q), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let ct = sk.encrypt(&m, &mut rng);
        let bytes = ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), ct.byte_size());
        let back = ciphertext_from_bytes(&bytes, p.n, p.q).unwrap();
        assert_eq!(back, ct);
        assert_eq!(sk.decrypt(&back), m);

        let top = Poly::from_coeffs(vec![p.q - 1; p.n], p.q);
        let round = poly_from_bytes(&poly_to_bytes(&top), p.n, p.q).unwrap();
        assert_eq!(round, top);
        // A residue at exactly q must still be rejected on this ring.
        let mut bad = poly_to_bytes(&top);
        bad[..8].copy_from_slice(&p.q.to_le_bytes());
        assert!(matches!(
            poly_from_bytes(&bad, p.n, p.q),
            Err(WireError::CoefficientOutOfRange { index: 0 })
        ));
    }

    #[test]
    fn truncated_buffers_rejected() {
        let p = HeParams::toy();
        let poly = Poly::zero(p.n, p.q);
        let bytes = poly_to_bytes(&poly);
        assert_eq!(
            poly_from_bytes(&bytes[..bytes.len() - 1], p.n, p.q),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn unreduced_coefficients_rejected() {
        // All-ones bytes decode to a value >= q for a non-power modulus.
        let p = HeParams::toy();
        let cb = coeff_bytes(p.q);
        let bytes = vec![0xFFu8; p.n * cb];
        assert!(matches!(
            poly_from_bytes(&bytes, p.n, p.q),
            Err(WireError::CoefficientOutOfRange { index: 0 })
        ));
    }
}
