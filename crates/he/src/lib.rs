//! A from-scratch BFV homomorphic encryption scheme with Cheetah-style
//! coefficient encoding for convolutions.
//!
//! The hybrid HE/2PC protocol needs only a small BFV subset — symmetric
//! encryption, ciphertext ⊞/⊠/⊟ plaintext, ciphertext ⊞ ciphertext and
//! decryption — over `Z_q[X]/(X^N+1)` with plaintext ring `Z_t`, `t = 2^l`
//! aligned with the secret-sharing modulus. Polynomial products run on a
//! pluggable backend: the exact NTT (the baseline accelerators' datapath),
//! the `f64` negacyclic FFT, or FLASH's approximate fixed-point FFT.
//!
//! * [`params`] — parameter sets (`N`, `q`, `t`, noise).
//! * [`poly`] — ring elements and samplers.
//! * [`keys`] / [`cipher`] — secret keys, ciphertexts, exact noise
//!   tracking.
//! * [`backend`] — the pluggable negacyclic multiplier.
//! * [`encoding`] — Cheetah coefficient encoding of convolutions,
//!   including padding, channel/spatial tiling and stride-2 decomposition.
//!
//! # Examples
//!
//! ```
//! use flash_he::params::HeParams;
//! use flash_he::keys::SecretKey;
//! use flash_he::poly::Poly;
//! use rand::SeedableRng;
//!
//! let params = HeParams::toy();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sk = SecretKey::generate(&params, &mut rng);
//! let m = Poly::from_signed(&[1, -2, 3, 0, 0, 0, 0, 0], params.t);
//! let ct = sk.encrypt(&m, &mut rng);
//! assert_eq!(sk.decrypt(&ct), m);
//! ```

pub mod backend;
pub mod cipher;
pub mod encoding;
pub mod error;
pub mod keys;
pub mod matvec;
pub mod noise;
pub mod params;
pub mod poly;
pub mod rns;
pub mod serialize;
pub mod truncate;

pub use backend::PolyMulBackend;
pub use cipher::Ciphertext;
pub use error::HeError;
pub use keys::SecretKey;
pub use params::HeParams;
pub use poly::Poly;
