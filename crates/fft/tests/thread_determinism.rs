//! Monte-Carlo error estimation must not depend on the worker count.
//!
//! Single test function: `set_threads` is process-global, so the 1-thread
//! and 8-thread runs must not interleave with other tests.

use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_fft::ApproxFftConfig;
use flash_math::fixed::FxpFormat;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn monte_carlo_is_identical_for_any_worker_count() {
    let cfg = ApproxFftConfig::uniform(128, FxpFormat::new(16, 10), 8);
    let wl = ErrorWorkload::default();

    let seq = {
        let _guard = flash_runtime::ThreadOverrideGuard::set(1);
        let mut rng = StdRng::seed_from_u64(42);
        monte_carlo_error(&cfg, wl, 6, &mut rng)
    };

    let par = {
        let _guard = flash_runtime::ThreadOverrideGuard::set(8);
        let mut rng = StdRng::seed_from_u64(42);
        monte_carlo_error(&cfg, wl, 6, &mut rng)
    };

    assert_eq!(seq.samples, par.samples);
    assert_eq!(seq.variance.to_bits(), par.variance.to_bits());
    assert_eq!(seq.max_abs.to_bits(), par.max_abs.to_bits());
    assert_eq!(seq.mean.to_bits(), par.mean.to_bits());
}
