//! Interning semantics of the shared transform-plan caches.

use flash_fft::fixed_fft::FixedNegacyclicFft;
use flash_fft::{ApproxFftConfig, NegacyclicFft};
use flash_math::fixed::FxpFormat;
use std::sync::Arc;

#[test]
fn negacyclic_plans_are_interned_per_degree() {
    let a = NegacyclicFft::shared(64);
    let b = NegacyclicFft::shared(64);
    let c = NegacyclicFft::shared(128);
    assert!(Arc::ptr_eq(&a, &b), "same degree must share one plan");
    assert!(!Arc::ptr_eq(&a, &c), "distinct degrees must not");
    assert_eq!(c.degree(), 128);
}

#[test]
fn shared_plan_computes_like_a_fresh_one() {
    let shared = NegacyclicFft::shared(32);
    let fresh = NegacyclicFft::new(32);
    let x: Vec<f64> = (0..32).map(|i| (i as f64) - 15.5).collect();
    let a = shared.forward(&x);
    let b = fresh.forward(&x);
    for (u, v) in a.iter().zip(&b) {
        assert_eq!(u.re.to_bits(), v.re.to_bits());
        assert_eq!(u.im.to_bits(), v.im.to_bits());
    }
}

#[test]
fn fixed_plans_intern_by_structural_config() {
    let cfg = ApproxFftConfig::uniform(64, FxpFormat::new(12, 14), 8);
    let a = FixedNegacyclicFft::shared(&cfg);
    let b = FixedNegacyclicFft::shared(&cfg.clone());
    assert!(Arc::ptr_eq(&a, &b), "equal configs must share one plan");

    let mut coarser = ApproxFftConfig::uniform(64, FxpFormat::new(12, 14), 8);
    coarser.max_shift = 12;
    let c = FixedNegacyclicFft::shared(&coarser);
    assert!(!Arc::ptr_eq(&a, &c), "differing max_shift must rebuild");

    let other_fmt = ApproxFftConfig::uniform(64, FxpFormat::new(12, 10), 8);
    let d = FixedNegacyclicFft::shared(&other_fmt);
    assert!(!Arc::ptr_eq(&a, &d), "differing formats must rebuild");
}

#[test]
fn shared_fixed_plan_matches_fresh_bit_for_bit() {
    let cfg = ApproxFftConfig::uniform(64, FxpFormat::new(14, 12), 6);
    let shared = FixedNegacyclicFft::shared(&cfg);
    let fresh = FixedNegacyclicFft::new(cfg);
    let w: Vec<i64> = (0..64).map(|i| (i as i64 % 17) - 8).collect();
    let (a, _) = shared.forward(&w);
    let (b, _) = fresh.forward(&w);
    for (u, v) in a.iter().zip(&b) {
        assert_eq!(u.re.to_bits(), v.re.to_bits());
        assert_eq!(u.im.to_bits(), v.im.to_bits());
    }
}
