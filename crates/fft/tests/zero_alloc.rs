//! Proof that the transform hot paths are allocation-free at steady state.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; after a warm-up
//! pass populates the thread-local scratch pools and plan caches, the
//! counter is armed and every NTT/FFT kernel is driven again. Any heap
//! allocation in the measured region fails the test.
//!
//! The file holds a single `#[test]` on purpose: the counter is global,
//! and concurrent tests in the same binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed and returns how many heap
/// allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Relaxed);
    ENABLED.store(true, Relaxed);
    f();
    ENABLED.store(false, Relaxed);
    ALLOCS.load(Relaxed)
}

#[test]
fn transform_hot_paths_allocate_nothing_at_steady_state() {
    use flash_fft::negacyclic::NegacyclicFft;
    use flash_math::C64;
    use flash_ntt::polymul::{negacyclic_mul_ntt_batch_into, negacyclic_mul_ntt_into};
    use flash_ntt::transform::{
        forward, forward_batch, inverse, inverse_batch, pointwise_mul_assign,
    };
    use flash_ntt::NttTables;
    use flash_sparse::{SparsePlan, SparsityPattern};

    let n = 256;
    let q = flash_math::prime::ntt_prime(40, n as u64).unwrap();
    let tables = NttTables::new(n, q).unwrap();
    let fft = NegacyclicFft::new(n);

    let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 7) % q).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 11) % q).collect();
    let af: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let bf: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();

    let mut u = a.clone();
    let mut ntt_out = vec![0u64; n];
    let mut spec = vec![C64::ZERO; n / 2];
    let mut fft_out = vec![0.0f64; n];

    // Compiled sparse-plan tape: compiled and interned during warm-up,
    // then executed (single and batched) inside the counted region. The
    // output buffer doubles as the tape's slot arena, so steady-state
    // execution must touch no heap at all.
    let pattern = SparsityPattern::from_indices(n / 2, [1, 5, 9, 40, 77]);
    let plan = SparsePlan::shared(&pattern);
    let mut w = vec![0i64; n];
    for (k, i) in pattern.indices().into_iter().enumerate() {
        w[i] = k as i64 + 1;
        w[i + n / 2] = -(k as i64) - 2;
    }
    let mut tape_out = vec![C64::ZERO; n / 2];
    let mut batch_out = vec![C64::ZERO; 3 * (n / 2)];

    // Lane-interleaved SoA batch paths: an odd batch width (3) forces the
    // remainder handling, and every transpose stages through the
    // thread-local scratch pools — so steady state must stay heap-free.
    let af3: Vec<f64> = af.iter().chain(&af).chain(&af).copied().collect();
    let a3: Vec<u64> = a.iter().chain(&a).chain(&a).copied().collect();
    let mut spec3 = vec![C64::ZERO; 3 * (n / 2)];
    let mut fft3_out = vec![0.0f64; 3 * n];
    let mut ntt3 = a3.clone();
    let mut ntt3_out = vec![0u64; 3 * n];

    let drive = |u: &mut Vec<u64>,
                 ntt_out: &mut Vec<u64>,
                 spec: &mut Vec<C64>,
                 fft_out: &mut Vec<f64>,
                 tape_out: &mut Vec<C64>,
                 batch_out: &mut Vec<C64>,
                 spec3: &mut Vec<C64>,
                 fft3_out: &mut Vec<f64>,
                 ntt3: &mut Vec<u64>,
                 ntt3_out: &mut Vec<u64>| {
        // NTT kernels: forward / pointwise / inverse plus the fused
        // scratch-backed polynomial product.
        forward(u, &tables);
        pointwise_mul_assign(u, &b, &tables);
        inverse(u, &tables);
        negacyclic_mul_ntt_into(ntt_out, &a, &b, &tables);
        // FFT kernels: fold/twist forward, pointwise, inverse, and the
        // fused f64 product.
        fft.forward_into(&af, spec);
        fft.inverse_into(spec, fft_out);
        fft.polymul_f64_into(&af, &bf, fft_out);
        // Sparse µop tape: single execution and a 3-wide batch.
        plan.execute_into(&w, tape_out);
        plan.execute_batch_into([&w[..], &w[..], &w[..]], batch_out);
        // SoA batched transforms: FFT forward/inverse, NTT
        // forward/inverse, and the fused batched polynomial product.
        fft.forward_batch_into(&af3, spec3);
        fft.inverse_batch_into(spec3, fft3_out);
        ntt3.copy_from_slice(&a3);
        forward_batch(ntt3, &tables);
        inverse_batch(ntt3, &tables);
        negacyclic_mul_ntt_batch_into(ntt3_out, &a3, &b, &tables);
    };

    // Warm up twice: the first pass takes every pool miss, the second
    // proves the pools reached steady state before we arm the counter.
    drive(
        &mut u,
        &mut ntt_out,
        &mut spec,
        &mut fft_out,
        &mut tape_out,
        &mut batch_out,
        &mut spec3,
        &mut fft3_out,
        &mut ntt3,
        &mut ntt3_out,
    );
    drive(
        &mut u,
        &mut ntt_out,
        &mut spec,
        &mut fft_out,
        &mut tape_out,
        &mut batch_out,
        &mut spec3,
        &mut fft3_out,
        &mut ntt3,
        &mut ntt3_out,
    );

    let allocs = count_allocs(|| {
        drive(
            &mut u,
            &mut ntt_out,
            &mut spec,
            &mut fft_out,
            &mut tape_out,
            &mut batch_out,
            &mut spec3,
            &mut fft3_out,
            &mut ntt3,
            &mut ntt3_out,
        );
        drive(
            &mut u,
            &mut ntt_out,
            &mut spec,
            &mut fft_out,
            &mut tape_out,
            &mut batch_out,
            &mut spec3,
            &mut fft3_out,
            &mut ntt3,
            &mut ntt3_out,
        );
    });
    assert_eq!(
        allocs, 0,
        "transform hot paths allocated {allocs} times at steady state"
    );

    // Sanity: the counter itself works.
    let observed = count_allocs(|| {
        let v = vec![0u8; 64];
        std::hint::black_box(&v);
    });
    assert!(observed >= 1, "counting allocator failed to observe a Vec");
}
