//! SIMD-vs-scalar equivalence suite.
//!
//! The batched SoA kernels promise outputs **bit-identical** to the
//! scalar reference paths at every lane width: per lane they evaluate the
//! same expression sequence (and Rust never fuses `a*b + c`), so this is
//! an exact contract, not a tolerance. These tests pin it across random
//! sizes and batch widths — including the `W−1` and `W+1` remainder
//! shapes — for every dispatch level the host can execute.
//!
//! `force_level` is process-global, so every test that flips it holds a
//! shared lock; each integration-test file is its own process, so other
//! test binaries are unaffected.

use flash_fft::negacyclic::NegacyclicFft;
use flash_fft::simd::{self, SimdLevel};
use flash_math::C64;
use flash_ntt::{transform, NttTables};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every level the host can actually run (forcing clamps to detected).
fn available_levels() -> Vec<SimdLevel> {
    let detected = simd::detected_level();
    [
        SimdLevel::Scalar,
        SimdLevel::Portable,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ]
    .into_iter()
    .filter(|&l| l <= detected)
    .collect()
}

/// Batch widths worth testing at lane width `w`: empty batch, sub-width,
/// exact, remainder one short / one over, multiple blocks.
fn batch_widths(w: usize) -> Vec<usize> {
    let mut v = vec![0, 1, w.saturating_sub(1), w, w + 1, 2 * w + 3];
    v.dedup();
    v
}

fn poly(n: usize, seed: u64, amp: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(seed | 1)
                .wrapping_add(0x9e3779b97f4a7c15);
            let x = x ^ (x >> 29);
            (x % 65537) as f64 / 65536.0 * 2.0 * amp - amp
        })
        .collect()
}

fn assert_c64_bits_eq(got: &[C64], want: &[C64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            (g.re.to_bits(), g.im.to_bits()),
            (w.re.to_bits(), w.im.to_bits()),
            "{ctx}: spectrum slot {i}: {g:?} vs {w:?}"
        );
    }
}

fn assert_f64_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: coeff {i}: {g} vs {w}");
    }
}

#[test]
fn fft_forward_batch_bit_identical_to_scalar_at_every_level_and_width() {
    let _guard = lock();
    for n in [8usize, 32, 256, 2048] {
        let fft = NegacyclicFft::new(n);
        let half = n / 2;
        for level in available_levels() {
            let w = level.lanes();
            for batch in batch_widths(w) {
                let inputs: Vec<f64> = (0..batch)
                    .flat_map(|b| poly(n, 1000 * b as u64 + n as u64, 100.0))
                    .collect();
                // Scalar reference, one polynomial at a time.
                simd::force_level(Some(SimdLevel::Scalar));
                let mut want = vec![C64::ZERO; batch * half];
                for b in 0..batch {
                    fft.forward_into(
                        &inputs[b * n..(b + 1) * n],
                        &mut want[b * half..(b + 1) * half],
                    );
                }
                // Batched at the level under test.
                simd::force_level(Some(level));
                let mut got = vec![C64::ZERO; batch * half];
                fft.forward_batch_into(&inputs, &mut got);
                simd::force_level(None);
                assert_c64_bits_eq(
                    &got,
                    &want,
                    &format!("n={n} level={} batch={batch}", level.name()),
                );
            }
        }
    }
}

#[test]
fn fft_inverse_batch_bit_identical_to_scalar_at_every_level_and_width() {
    let _guard = lock();
    for n in [8usize, 64, 512] {
        let fft = NegacyclicFft::new(n);
        let half = n / 2;
        for level in available_levels() {
            let w = level.lanes();
            for batch in batch_widths(w) {
                // Arbitrary (but valid-length) spectra.
                let spectra: Vec<C64> = (0..batch * half)
                    .map(|i| {
                        let p = poly(2, i as u64 * 7 + 13, 50.0);
                        C64::new(p[0], p[1])
                    })
                    .collect();
                simd::force_level(Some(SimdLevel::Scalar));
                let mut want = vec![0.0f64; batch * n];
                for b in 0..batch {
                    let mut d = spectra[b * half..(b + 1) * half].to_vec();
                    fft.inverse_into(&mut d, &mut want[b * n..(b + 1) * n]);
                }
                simd::force_level(Some(level));
                let mut got = vec![0.0f64; batch * n];
                fft.inverse_batch_into(&spectra, &mut got);
                simd::force_level(None);
                assert_f64_bits_eq(
                    &got,
                    &want,
                    &format!("n={n} level={} batch={batch}", level.name()),
                );
            }
        }
    }
}

#[test]
fn fft_roundtrip_through_batched_paths_recovers_input() {
    let _guard = lock();
    let n = 128;
    let fft = NegacyclicFft::new(n);
    let batch = 5;
    let inputs: Vec<f64> = (0..batch)
        .flat_map(|b| poly(n, b as u64 + 3, 20.0))
        .collect();
    let mut spec = vec![C64::ZERO; batch * n / 2];
    fft.forward_batch_into(&inputs, &mut spec);
    let mut back = vec![0.0f64; batch * n];
    fft.inverse_batch_into(&spec, &mut back);
    for (x, y) in inputs.iter().zip(&back) {
        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
    }
}

#[test]
fn ntt_batch_bit_identical_to_scalar_at_every_level_and_width() {
    let _guard = lock();
    for (n, qbits) in [(16usize, 30u32), (256, 50), (1024, 59)] {
        let q = flash_math::prime::ntt_prime(qbits, n as u64).unwrap();
        let tables = NttTables::new(n, q).unwrap();
        for level in available_levels() {
            let w = level.lanes();
            for batch in batch_widths(w) {
                let polys: Vec<u64> = (0..batch * n)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(7);
                        (x ^ (x >> 31)) % q
                    })
                    .collect();
                // Scalar reference.
                let mut want = polys.clone();
                for chunk in want.chunks_exact_mut(n) {
                    transform::forward(chunk, &tables);
                }
                simd::force_level(Some(level));
                let mut got = polys.clone();
                transform::forward_batch(&mut got, &tables);
                simd::force_level(None);
                assert_eq!(
                    got,
                    want,
                    "forward n={n} level={} batch={batch}",
                    level.name()
                );

                // Inverse over the forwarded data.
                let mut want_inv = want.clone();
                for chunk in want_inv.chunks_exact_mut(n) {
                    transform::inverse(chunk, &tables);
                }
                simd::force_level(Some(level));
                let mut got_inv = want.clone();
                transform::inverse_batch(&mut got_inv, &tables);
                simd::force_level(None);
                assert_eq!(
                    got_inv,
                    want_inv,
                    "inverse n={n} level={} batch={batch}",
                    level.name()
                );
                // And the roundtrip recovers the input exactly.
                assert_eq!(got_inv, polys, "roundtrip n={n} batch={batch}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fft_forward_batch_equivalence_random(log_n in 2u32..10, batch in 0usize..11, seed in any::<u64>()) {
        let _guard = lock();
        let n = 1usize << log_n;
        let half = n / 2;
        let fft = NegacyclicFft::new(n);
        let inputs: Vec<f64> = (0..batch).flat_map(|b| poly(n, seed ^ b as u64, 500.0)).collect();
        simd::force_level(Some(SimdLevel::Scalar));
        let mut want = vec![C64::ZERO; batch * half];
        for b in 0..batch {
            fft.forward_into(&inputs[b * n..(b + 1) * n], &mut want[b * half..(b + 1) * half]);
        }
        simd::force_level(None);
        let mut got = vec![C64::ZERO; batch * half];
        fft.forward_batch_into(&inputs, &mut got);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.re.to_bits(), w.re.to_bits());
            prop_assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }

    #[test]
    fn ntt_forward_batch_equivalence_random(log_n in 2u32..11, batch in 0usize..11, seed in any::<u64>()) {
        let _guard = lock();
        let n = 1usize << log_n;
        let q = flash_math::prime::ntt_prime(40, n as u64).unwrap();
        let tables = NttTables::new(n, q).unwrap();
        let polys: Vec<u64> = (0..batch * n)
            .map(|i| (i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 7) % q)
            .collect();
        let mut want = polys.clone();
        for chunk in want.chunks_exact_mut(n) {
            transform::forward(chunk, &tables);
        }
        let mut got = polys;
        transform::forward_batch(&mut got, &tables);
        prop_assert_eq!(got, want);
    }
}
