//! Property-based tests for the transform stack.

use flash_fft::dft::{dft, Direction};
use flash_fft::fft64::FftPlan;
use flash_fft::fixed_fft::{ApproxFftConfig, FixedNegacyclicFft};
use flash_fft::negacyclic::NegacyclicFft;
use flash_fft::radix4::fft_radix4;
use flash_math::fixed::FxpFormat;
use flash_math::C64;
use proptest::prelude::*;

fn complex_vec(log_len: u32) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(
        (-8.0f64..8.0, -8.0f64..8.0).prop_map(|(re, im)| C64::new(re, im)),
        1usize << log_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_matches_dft(log_len in 1u32..8, x in complex_vec(6)) {
        let m = 1usize << log_len;
        let x = &x[..m.min(x.len())];
        if x.len() != m { return Ok(()); }
        let plan = FftPlan::new(m);
        for dir in [Direction::Negative, Direction::Positive] {
            let mut fast = x.to_vec();
            plan.transform(&mut fast, dir);
            let slow = dft(x, dir);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!((*a - *b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn radix4_matches_radix2(log_len in 1u32..9, seed in any::<u64>()) {
        let m = 1usize << log_len;
        let x: Vec<C64> = (0..m)
            .map(|i| {
                let v = (i as u64).wrapping_mul(seed | 1) as f64 / u64::MAX as f64;
                C64::new(v * 8.0 - 4.0, -v * 2.0)
            })
            .collect();
        let plan = FftPlan::new(m);
        let mut want = x.clone();
        plan.transform(&mut want, Direction::Negative);
        let got = fft_radix4(&x, Direction::Negative);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn negacyclic_roundtrip(log_n in 2u32..10, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 31) as f64 - 15.0)
            .collect();
        let plan = NegacyclicFft::new(n);
        let back = plan.inverse(&plan.forward(&a));
        for (x, y) in a.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn negacyclic_product_is_commutative_and_distributive(seed in any::<u64>()) {
        let n = 32usize;
        let gen = |s: u64| -> Vec<i64> {
            (0..n).map(|i| (((i as u64).wrapping_mul(s | 1) >> 3) % 15) as i64 - 7).collect()
        };
        let (a, b, c) = (gen(seed), gen(seed ^ 0xABCD), gen(seed ^ 0x1234));
        let plan = NegacyclicFft::new(n);
        let ab = plan.polymul_i64(&a, &b);
        let ba = plan.polymul_i64(&b, &a);
        prop_assert_eq!(&ab, &ba);
        // a*(b+c) == a*b + a*c
        let bc: Vec<i64> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
        let lhs = plan.polymul_i64(&a, &bc);
        let ac = plan.polymul_i64(&a, &c);
        let rhs: Vec<i128> = ab.iter().zip(&ac).map(|(x, y)| x + y).collect();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fixed_fft_error_bounded_by_format(frac in 8u32..26, seed in any::<u64>()) {
        let n = 64usize;
        let a: Vec<i64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed | 1) >> 2) % 15) as i64 - 7)
            .collect();
        let cfg = ApproxFftConfig::uniform(n, FxpFormat::new(16, frac), 24);
        let fft = FixedNegacyclicFft::new(cfg);
        let err = fft
            .spectrum_error(&a)
            .iter()
            .map(|e| e.abs())
            .fold(0.0, f64::max);
        // error per stage <= lsb amplified by <= 2 per remaining stage;
        // loose bound: 2^{stages+4} * lsb
        let bound = (2.0f64).powi(10) * (0.5f64).powi(frac as i32);
        prop_assert!(err <= bound, "frac={frac}: err {err} > bound {bound}");
    }

    #[test]
    fn fixed_fft_never_panics_on_extreme_inputs(v in -128i64..128) {
        let n = 16usize;
        let cfg = ApproxFftConfig::uniform(n, FxpFormat::new(6, 6), 3);
        let fft = FixedNegacyclicFft::new(cfg);
        // may saturate, must not panic, output must be finite
        let (out, _) = fft.forward(&vec![v; n]);
        prop_assert!(out.iter().all(|c| c.re.is_finite() && c.im.is_finite()));
    }
}
