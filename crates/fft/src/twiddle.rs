//! Twiddle-factor tables, plain and CSD-quantized.
//!
//! Every multiplier constant in the negacyclic pipeline — the twist
//! factors `ω^j` and the FFT butterfly roots — is a power `e^{iπ t/N}`
//! with `t ∈ Z_{2N}`. FLASH stores them quantized to `k` signed
//! power-of-two terms per real/imaginary component and multiplies by
//! shift-add (Figure 9). This module builds those per-stage ROMs and
//! reports the statistics that size the hardware (digit counts, shift
//! distributions, ROM footprint).

use flash_math::csd::CsdCoeff;
use flash_math::C64;

/// A complex twiddle factor quantized component-wise to CSD form.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTwiddle {
    /// Quantized real part.
    pub re: CsdCoeff,
    /// Quantized imaginary part.
    pub im: CsdCoeff,
    /// The exact (unquantized) value, kept for error analysis.
    pub exact: C64,
}

impl QuantizedTwiddle {
    /// Quantizes the exact twiddle `w` with at most `k` terms per
    /// component and shifts bounded by `max_shift`.
    pub fn new(w: C64, k: usize, max_shift: u32) -> Self {
        Self {
            re: CsdCoeff::quantize(w.re, k, max_shift),
            im: CsdCoeff::quantize(w.im, k, max_shift),
            exact: w,
        }
    }

    /// The value actually realized by the shift-add network.
    pub fn value(&self) -> C64 {
        C64::new(self.re.value(), self.im.value())
    }

    /// Quantization error `|realized − exact|`.
    pub fn error(&self) -> f64 {
        (self.value() - self.exact).abs()
    }

    /// Total shift-add terms across both components (hardware adders).
    pub fn total_terms(&self) -> usize {
        self.re.num_terms() + self.im.num_terms()
    }
}

/// The twiddles of one pipeline stage, quantized at one level `k`.
///
/// Stage 0 is the fold/twist stage (`N/2` distinct factors `ω^j`); stage
/// `s ≥ 1` is the FFT butterfly stage with block length `2^s`
/// (`2^{s-1}` distinct factors, shared across blocks).
#[derive(Debug, Clone)]
pub struct StageTwiddles {
    twiddles: Vec<QuantizedTwiddle>,
}

impl StageTwiddles {
    /// Builds the twist-stage table for ring degree `n`: `ω^j`,
    /// `j ∈ 0..n/2`, `ω = e^{iπ/n}`.
    pub fn twist_stage(n: usize, k: usize, max_shift: u32) -> Self {
        let twiddles = (0..n / 2)
            .map(|j| {
                let w = C64::expi(std::f64::consts::PI * j as f64 / n as f64);
                QuantizedTwiddle::new(w, k, max_shift)
            })
            .collect();
        Self { twiddles }
    }

    /// Builds the FFT-stage table for an `m`-point transform at stage `s`
    /// (1-based; block length `2^s`): roots `e^{+2πi j/2^s}`,
    /// `j ∈ 0..2^{s-1}`.
    pub fn fft_stage(s: u32, k: usize, max_shift: u32) -> Self {
        let len = 1usize << s;
        let twiddles = (0..len / 2)
            .map(|j| {
                let w = C64::expi(2.0 * std::f64::consts::PI * j as f64 / len as f64);
                QuantizedTwiddle::new(w, k, max_shift)
            })
            .collect();
        Self { twiddles }
    }

    /// The `j`-th twiddle of the stage.
    #[inline]
    pub fn get(&self, j: usize) -> &QuantizedTwiddle {
        &self.twiddles[j]
    }

    /// Number of distinct twiddles in this stage.
    pub fn len(&self) -> usize {
        self.twiddles.len()
    }

    /// Whether the stage has no twiddles (never true for valid stages).
    pub fn is_empty(&self) -> bool {
        self.twiddles.is_empty()
    }

    /// Worst-case quantization error over the stage.
    pub fn max_error(&self) -> f64 {
        self.twiddles.iter().map(|t| t.error()).fold(0.0, f64::max)
    }

    /// Mean shift-add terms per twiddle component (the effective `k`).
    pub fn mean_terms(&self) -> f64 {
        if self.twiddles.is_empty() {
            return 0.0;
        }
        let total: usize = self.twiddles.iter().map(|t| t.total_terms()).sum();
        total as f64 / (2 * self.twiddles.len()) as f64
    }
}

/// Digit-count statistics of the *exact* twiddle set at a given fraction
/// resolution — the paper's observation that `k ≈ 18` digits are needed
/// without retraining.
pub fn natural_digit_counts(n: usize, frac_bits: u32) -> Vec<usize> {
    let mut counts = Vec::with_capacity(n);
    for t in 0..n {
        let w = C64::expi(std::f64::consts::PI * t as f64 / n as f64);
        counts.push(flash_math::csd::csd_digit_count(w.re, frac_bits));
        counts.push(flash_math::csd::csd_digit_count(w.im, frac_bits));
    }
    counts
}

/// Distribution of the position of the `i`-th non-zero digit across a
/// twiddle set — drives the MUX sizing of the paper's Figure 9 (FLASH
/// "empirically reduces the MUX size to 8-to-1").
pub fn digit_position_histogram(stage: &StageTwiddles, term_index: usize) -> Vec<u32> {
    let mut shifts = Vec::new();
    for t in 0..stage.len() {
        let q = stage.get(t);
        for coeff in [&q.re, &q.im] {
            if let Some(term) = coeff.terms().nth(term_index) {
                shifts.push(term.shift);
            }
        }
    }
    shifts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twist_stage_has_half_n_entries() {
        let s = StageTwiddles::twist_stage(64, 8, 16);
        assert_eq!(s.len(), 32);
        assert!(!s.is_empty());
        // ω^0 = 1 quantizes exactly with a single term.
        assert_eq!(s.get(0).total_terms(), 1);
        assert!((s.get(0).value() - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn fft_stage_sizes() {
        assert_eq!(StageTwiddles::fft_stage(1, 4, 8).len(), 1);
        assert_eq!(StageTwiddles::fft_stage(5, 4, 8).len(), 16);
        // Stage 1 twiddle is exactly 1.
        let s1 = StageTwiddles::fft_stage(1, 4, 8);
        assert!((s1.get(0).value() - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn error_decreases_with_k() {
        let coarse = StageTwiddles::fft_stage(6, 2, 20);
        let fine = StageTwiddles::fft_stage(6, 10, 20);
        assert!(fine.max_error() < coarse.max_error());
        assert!(fine.max_error() < 1e-4);
    }

    #[test]
    fn natural_digit_count_is_around_paper_value() {
        // At ~20 fraction bits the average CSD digit count of the twiddle
        // set sits in the low tens — consistent with the paper's k ≈ 18
        // observation for accuracy-neutral quantization.
        let counts = natural_digit_counts(256, 20);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(mean > 4.0 && mean < 20.0, "mean natural digits = {mean}");
    }

    #[test]
    fn mean_terms_bounded_by_k() {
        for k in [2usize, 5, 8] {
            let s = StageTwiddles::twist_stage(128, k, 16);
            assert!(s.mean_terms() <= k as f64 + 1e-12);
        }
    }

    #[test]
    fn digit_positions_exist_for_first_term() {
        let s = StageTwiddles::fft_stage(6, 5, 16);
        let h = digit_position_histogram(&s, 0);
        // every non-zero component contributes a first digit
        assert!(h.len() > s.len());
    }
}
