//! Radix-4 FFT — a datapath design-choice ablation.
//!
//! A radix-4 butterfly produces 4 outputs with 3 complex multiplications
//! (multiplications by `±i` are wiring), cutting multiplier activations
//! to 75 % of radix-2 at the cost of a wider BU. Accelerators like F1
//! choose higher radices for exactly this trade; this module provides a
//! verified radix-4 transform and its operation counts so the workspace's
//! cost model can quantify the option (see `DESIGN.md`'s ablation list).

use crate::dft::Direction;
use flash_math::C64;
use flash_ntt::ops::OpCount;

/// Out-of-place radix-4 (with a radix-2 tail for odd `log2 m`) FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two ≥ 1.
pub fn fft_radix4(data: &[C64], dir: Direction) -> Vec<C64> {
    let m = data.len();
    assert!(
        m.is_power_of_two() && m >= 1,
        "length must be a power of two"
    );
    rec(data, dir)
}

fn rec(x: &[C64], dir: Direction) -> Vec<C64> {
    let m = x.len();
    match m {
        1 => x.to_vec(),
        2 => vec![x[0] + x[1], x[0] - x[1]],
        _ if !m.is_multiple_of(4) => {
            // radix-2 step for the odd power of two
            let even: Vec<C64> = x.iter().step_by(2).copied().collect();
            let odd: Vec<C64> = x.iter().skip(1).step_by(2).copied().collect();
            let fe = rec(&even, dir);
            let fo = rec(&odd, dir);
            let sign = dir.sign();
            let mut out = vec![C64::ZERO; m];
            for k in 0..m / 2 {
                let w = C64::expi(sign * 2.0 * std::f64::consts::PI * k as f64 / m as f64);
                let t = w * fo[k];
                out[k] = fe[k] + t;
                out[k + m / 2] = fe[k] - t;
            }
            out
        }
        _ => {
            let quarter = m / 4;
            let parts: Vec<Vec<C64>> = (0..4)
                .map(|r| {
                    let sub: Vec<C64> = x.iter().skip(r).step_by(4).copied().collect();
                    rec(&sub, dir)
                })
                .collect();
            let sign = dir.sign();
            // (−i) for the negative direction, (+i) for the positive.
            let rot = C64::new(0.0, sign);
            let mut out = vec![C64::ZERO; m];
            for k in 0..quarter {
                let w1 = C64::expi(sign * 2.0 * std::f64::consts::PI * k as f64 / m as f64);
                let w2 = w1 * w1;
                let w3 = w2 * w1;
                let u0 = parts[0][k];
                let u1 = w1 * parts[1][k];
                let u2 = w2 * parts[2][k];
                let u3 = w3 * parts[3][k];
                let a02 = u0 + u2;
                let s02 = u0 - u2;
                let a13 = u1 + u3;
                let s13 = (u1 - u3) * rot;
                out[k] = a02 + a13;
                out[k + quarter] = s02 + s13;
                out[k + 2 * quarter] = a02 - a13;
                out[k + 3 * quarter] = s02 - s13;
            }
            out
        }
    }
}

/// Complex-multiplication and addition counts of an `m`-point radix-4
/// transform (3 general multiplications per radix-4 butterfly, 1 per
/// radix-2 butterfly; `±i` rotations are free).
pub fn radix4_ops(m: usize) -> OpCount {
    match m {
        0 | 1 => OpCount::default(),
        2 => OpCount { mults: 0, adds: 2 },
        _ if !m.is_multiple_of(4) => {
            let sub = radix4_ops(m / 2);
            OpCount {
                mults: 2 * sub.mults + m as u64 / 2,
                adds: 2 * sub.adds + m as u64,
            }
        }
        _ => {
            let sub = radix4_ops(m / 4);
            OpCount {
                mults: 4 * sub.mults + 3 * m as u64 / 4,
                adds: 4 * sub.adds + 2 * m as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft64::FftPlan;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_radix2_for_powers_of_four() {
        for m in [4usize, 16, 64, 256, 1024] {
            let x: Vec<C64> = (0..m)
                .map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let plan = FftPlan::new(m);
            for dir in [Direction::Negative, Direction::Positive] {
                let want = {
                    let mut v = x.clone();
                    plan.transform(&mut v, dir);
                    v
                };
                let got = fft_radix4(&x, dir);
                assert!(max_err(&got, &want) < 1e-9, "m={m} {dir:?}");
            }
        }
    }

    #[test]
    fn matches_radix2_for_odd_log_sizes() {
        for m in [2usize, 8, 32, 128, 2048] {
            let x: Vec<C64> = (0..m)
                .map(|i| C64::new(i as f64, -(i as f64) / 2.0))
                .collect();
            let plan = FftPlan::new(m);
            let mut want = x.clone();
            plan.transform(&mut want, Direction::Negative);
            let got = fft_radix4(&x, Direction::Negative);
            assert!(max_err(&got, &want) < 1e-8, "m={m}");
        }
    }

    #[test]
    fn radix4_needs_fewer_multiplications() {
        for m in [16usize, 256, 2048, 4096] {
            let r2 = flash_ntt::ops::fft_complex_ops(m);
            let r4 = radix4_ops(m);
            assert!(
                (r4.mults as f64) < 0.85 * r2.mults as f64,
                "m={m}: radix4 {} vs radix2 {}",
                r4.mults,
                r2.mults
            );
        }
        // the asymptotic ratio approaches 3/4
        let r2 = flash_ntt::ops::fft_complex_ops(1 << 16);
        let r4 = radix4_ops(1 << 16);
        let ratio = r4.mults as f64 / r2.mults as f64;
        assert!((0.70..0.85).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn impulse_and_linearity() {
        let m = 64;
        let mut x = vec![C64::ZERO; m];
        x[0] = C64::ONE;
        let y = fft_radix4(&x, Direction::Negative);
        for v in y {
            assert!((v - C64::ONE).abs() < 1e-12);
        }
    }
}
