//! Portable SIMD lane types for the batched (structure-of-arrays)
//! spectral kernels.
//!
//! The batched transforms move the batch dimension innermost: a block of
//! `W` polynomials is transposed into *lane-interleaved* layout, where
//! SoA slot `j` holds the `W` real parts followed by the `W` imaginary
//! parts of coefficient `j` across the batch:
//!
//! ```text
//! slot j:  [ re₀ re₁ … re_{W-1} | im₀ im₁ … im_{W-1} ]   (2W f64, 64B-aligned)
//! ```
//!
//! One twiddle (or one sparse-tape uop) is then applied to all `W` lanes
//! at once by the [`C64x`] operators — plain `W`-length array arithmetic
//! that the compiler turns into vector instructions when the enclosing
//! function is compiled with the right target features. Dispatch is a
//! *runtime* decision made once per process by [`flash_runtime::simd`]
//! (re-exported here): the monomorphized kernels for each lane width are
//! wrapped in `#[target_feature]` functions at their call sites
//! (`NegacyclicFft::forward_batch_into` etc.), so a portable baseline
//! binary still executes AVX2/AVX-512 code paths on capable machines.
//!
//! # Bit-exactness
//!
//! Every lane evaluates exactly the scalar expression sequence
//! (`flash_math::C64` add/sub/mul/scale, in the same order); Rust never
//! contracts `a*b + c` into a fused multiply-add, so batched outputs are
//! **bit-identical** to `W` independent scalar transforms at every lane
//! width, on every dispatch level. The equivalence proptests pin this.

// Per-lane loops instead of `copy_from_slice` (see `F64x::load`), and
// `core::simd`-style explicit `add`/`sub`/`mul`/`neg` method names rather
// than operator traits so the kernels read as lane arithmetic.
#![allow(clippy::manual_memcpy)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::should_implement_trait)]

use flash_math::C64;

pub use flash_runtime::simd::{
    compile_target_features, detected_level, force_level, lanes, level, SimdLevel, MAX_LANES,
};

/// `W` lanes of `f64`. A thin wrapper over `[f64; W]` whose element-wise
/// operators autovectorize; no alignment demands of its own (loads go
/// through slices; the SoA scratch buffers are 64-byte aligned).
#[derive(Clone, Copy, Debug)]
pub struct F64x<const W: usize>(pub [f64; W]);

impl<const W: usize> F64x<W> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        F64x([0.0; W])
    }

    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x([v; W])
    }

    /// Loads `W` consecutive values from `src`.
    ///
    /// Per-lane loop rather than `copy_from_slice`: the latter lowers to
    /// an out-of-line `copy_from_slice_impl` call that pins every lane
    /// vector to the stack and blocks wide codegen in the
    /// `#[target_feature]` dispatch wrappers.
    #[inline(always)]
    pub fn load(src: &[f64]) -> Self {
        let src = &src[..W];
        let mut out = [0.0; W];
        for l in 0..W {
            out[l] = src[l];
        }
        F64x(out)
    }

    /// Stores the lanes into `dst[..W]`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f64]) {
        let dst = &mut dst[..W];
        for l in 0..W {
            dst[l] = self.0[l];
        }
    }

    #[inline(always)]
    fn map2(self, rhs: Self, f: impl Fn(f64, f64) -> f64) -> Self {
        let mut out = [0.0; W];
        for l in 0..W {
            out[l] = f(self.0[l], rhs.0[l]);
        }
        F64x(out)
    }

    /// Lane-wise addition.
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        self.map2(rhs, |a, b| a + b)
    }

    /// Lane-wise subtraction.
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        self.map2(rhs, |a, b| a - b)
    }

    /// Lane-wise multiplication.
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        self.map2(rhs, |a, b| a * b)
    }

    /// Lane-wise multiplication by a scalar.
    #[inline(always)]
    pub fn mul_s(self, s: f64) -> Self {
        let mut out = [0.0; W];
        for l in 0..W {
            out[l] = self.0[l] * s;
        }
        F64x(out)
    }

    /// Lane-wise negation.
    #[inline(always)]
    pub fn neg(self) -> Self {
        let mut out = [0.0; W];
        for l in 0..W {
            out[l] = -self.0[l];
        }
        F64x(out)
    }
}

/// `W` lanes of `u64`, for the lane-parallel Harvey butterflies (the
/// `[0, 4q)` lazy-reduction range needs no per-lane branches, only
/// compare-and-subtract, which vectorizes).
#[derive(Clone, Copy, Debug)]
pub struct U64x<const W: usize>(pub [u64; W]);

impl<const W: usize> U64x<W> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        U64x([0; W])
    }

    /// Loads `W` consecutive values from `src`. Per-lane loop for the
    /// same codegen reason as [`F64x::load`].
    #[inline(always)]
    pub fn load(src: &[u64]) -> Self {
        let src = &src[..W];
        let mut out = [0; W];
        for l in 0..W {
            out[l] = src[l];
        }
        U64x(out)
    }

    /// Stores the lanes into `dst[..W]`.
    #[inline(always)]
    pub fn store(self, dst: &mut [u64]) {
        let dst = &mut dst[..W];
        for l in 0..W {
            dst[l] = self.0[l];
        }
    }

    /// Lane-wise wrapping addition.
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let mut out = [0; W];
        for l in 0..W {
            out[l] = self.0[l].wrapping_add(rhs.0[l]);
        }
        U64x(out)
    }

    /// Lane-wise `x - s` for lanes with `x >= s`, else `x` — the lazy
    /// fold from `[0, 2s)` back to `[0, s)` as a branch-free select.
    #[inline(always)]
    pub fn fold_once(self, s: u64) -> Self {
        let mut out = [0; W];
        for l in 0..W {
            let x = self.0[l];
            out[l] = if x >= s { x - s } else { x };
        }
        U64x(out)
    }
}

/// `W` complex lanes in SoA form: `W` real parts and `W` imaginary parts.
#[derive(Clone, Copy, Debug)]
pub struct C64x<const W: usize> {
    /// Real lanes.
    pub re: F64x<W>,
    /// Imaginary lanes.
    pub im: F64x<W>,
}

impl<const W: usize> C64x<W> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        C64x {
            re: F64x::zero(),
            im: F64x::zero(),
        }
    }

    /// Loads SoA slot `slot` from a lane-interleaved buffer (layout
    /// `[re × W | im × W]` per slot).
    #[inline(always)]
    pub fn load_slot(soa: &[f64], slot: usize) -> Self {
        let base = slot * 2 * W;
        C64x {
            re: F64x::load(&soa[base..]),
            im: F64x::load(&soa[base + W..]),
        }
    }

    /// Stores into SoA slot `slot` of a lane-interleaved buffer.
    #[inline(always)]
    pub fn store_slot(self, soa: &mut [f64], slot: usize) {
        let base = slot * 2 * W;
        self.re.store(&mut soa[base..]);
        self.im.store(&mut soa[base + W..]);
    }

    /// Lane-wise complex addition (`C64::add` per lane).
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        C64x {
            re: self.re.add(rhs.re),
            im: self.im.add(rhs.im),
        }
    }

    /// Lane-wise complex subtraction (`C64::sub` per lane).
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        C64x {
            re: self.re.sub(rhs.re),
            im: self.im.sub(rhs.im),
        }
    }

    /// Multiplies every lane by the same scalar complex `w`, with exactly
    /// the `C64::mul` expression shape (`re·re − im·im`, `re·im + im·re`)
    /// so lanes stay bit-identical to the scalar path.
    #[inline(always)]
    pub fn mul_c(self, w: C64) -> Self {
        C64x {
            re: self.re.mul_s(w.re).sub(self.im.mul_s(w.im)),
            im: self.re.mul_s(w.im).add(self.im.mul_s(w.re)),
        }
    }

    /// Lane-wise complex multiplication (`C64::mul` per lane).
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        C64x {
            re: self.re.mul(rhs.re).sub(self.im.mul(rhs.im)),
            im: self.re.mul(rhs.im).add(self.im.mul(rhs.re)),
        }
    }

    /// Scales every lane by `s` (`C64::scale` per lane).
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        C64x {
            re: self.re.mul_s(s),
            im: self.im.mul_s(s),
        }
    }

    /// Lane-wise multiplication by `i` (`C64::mul_i` per lane).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        C64x {
            re: self.im.neg(),
            im: self.re,
        }
    }

    /// Lane-wise negation.
    #[inline(always)]
    pub fn neg(self) -> Self {
        C64x {
            re: self.re.neg(),
            im: self.im.neg(),
        }
    }
}

/// Vectorized 8-slot tile transposes for the batched FFT boundary
/// transposes (`NegacyclicFft::forward_batch_into` and friends).
///
/// The batched kernels move data between *row* layout (`W` polynomial
/// streams, 8 consecutive coefficients each) and *column* (SoA slot)
/// layout (8 slots of `W` lanes each). Done element-wise that corner
/// turn is 64 scalar moves per tile and dominates the batched transform
/// once the butterfly cascade itself is vector-wide; done as an
/// in-register shuffle network it is ~24 permutes. The functions here
/// are pure data movement — no arithmetic — so they cannot affect the
/// bit-exactness contract of the batched kernels.
///
/// # Safety contract (width ⇒ features)
///
/// The `W = 8` specializations use AVX-512 (`avx512f`) intrinsics and
/// the `W = 4` specializations use AVX2 ones. They are `unsafe fn`:
/// callers must guarantee the matching target features are enabled at
/// the monomorphization site. The batched kernels uphold this by
/// construction — `W = 8` is only ever instantiated inside
/// `#[target_feature(enable = "avx512f,...")]` wrappers and `W = 4`
/// inside `avx2` ones, with the portable fallback pinned to `W = 2`
/// (which takes the scalar path below).
pub mod tile {
    use flash_math::C64;

    /// Best-effort prefetch of the cache line holding `slice[idx]`
    /// (bounds-checked; a no-op out of range or off x86). The strided
    /// tile gathers touch 2·W fresh L2 lines per tile, which is
    /// latency-bound without it.
    #[inline(always)]
    pub fn prefetch<T>(slice: &[T], idx: usize) {
        #[cfg(target_arch = "x86_64")]
        if idx < slice.len() {
            // SAFETY: `idx` is in bounds and prefetch has no
            // architectural effect.
            unsafe {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(slice.as_ptr().add(idx).cast());
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (slice, idx);
    }

    /// Transposes an 8-slot tile from row layout into column layout:
    /// `cols[dj][l] = rows[l][dj]`.
    ///
    /// # Safety
    ///
    /// See the [module contract](self): `W = 8` requires `avx512f`,
    /// `W = 4` requires `avx2` at the monomorphization site.
    #[inline(always)]
    pub unsafe fn rows_to_cols<const W: usize>(rows: &[[f64; 8]; W], cols: &mut [[f64; W]; 8]) {
        #[cfg(target_arch = "x86_64")]
        {
            if W == 8 {
                return x86::tr8x8(rows.as_ptr().cast(), cols.as_mut_ptr().cast());
            }
            if W == 4 {
                return x86::tr4x8(rows.as_ptr().cast(), cols.as_mut_ptr().cast());
            }
        }
        for (l, row) in rows.iter().enumerate() {
            for (dj, col) in cols.iter_mut().enumerate() {
                col[l] = row[dj];
            }
        }
    }

    /// Transposes an 8-slot tile from column layout back into row
    /// layout: `rows[l][dj] = cols[dj][l]`.
    ///
    /// # Safety
    ///
    /// See the [module contract](self): `W = 8` requires `avx512f`,
    /// `W = 4` requires `avx2` at the monomorphization site.
    #[inline(always)]
    pub unsafe fn cols_to_rows<const W: usize>(cols: &[[f64; W]; 8], rows: &mut [[f64; 8]; W]) {
        #[cfg(target_arch = "x86_64")]
        {
            if W == 8 {
                return x86::tr8x8(cols.as_ptr().cast(), rows.as_mut_ptr().cast());
            }
            if W == 4 {
                return x86::tr8x4(cols.as_ptr().cast(), rows.as_mut_ptr().cast());
            }
        }
        for (l, row) in rows.iter_mut().enumerate() {
            for (dj, col) in cols.iter().enumerate() {
                row[dj] = col[l];
            }
        }
    }

    /// Zips a row of 8 real and 8 imaginary parts into 8 `C64` values:
    /// `out[dj] = C64::new(re[dj], im[dj])`.
    ///
    /// # Safety
    ///
    /// See the [module contract](self). `out` must hold at least 8
    /// elements.
    #[inline(always)]
    pub unsafe fn interleave8<const W: usize>(re: &[f64; 8], im: &[f64; 8], out: &mut [C64]) {
        #[cfg(target_arch = "x86_64")]
        {
            if W == 8 {
                return x86::zip8(re.as_ptr(), im.as_ptr(), out.as_mut_ptr().cast());
            }
            if W == 4 {
                return x86::zip8_avx2(re.as_ptr(), im.as_ptr(), out.as_mut_ptr().cast());
            }
        }
        for dj in 0..8 {
            out[dj] = C64::new(re[dj], im[dj]);
        }
    }

    /// Unzips 8 `C64` values into rows of 8 real and 8 imaginary parts.
    ///
    /// # Safety
    ///
    /// See the [module contract](self). `src` must hold at least 8
    /// elements.
    #[inline(always)]
    pub unsafe fn deinterleave8<const W: usize>(src: &[C64], re: &mut [f64; 8], im: &mut [f64; 8]) {
        #[cfg(target_arch = "x86_64")]
        {
            if W == 8 {
                return x86::unzip8(src.as_ptr().cast(), re.as_mut_ptr(), im.as_mut_ptr());
            }
            if W == 4 {
                return x86::unzip8_avx2(src.as_ptr().cast(), re.as_mut_ptr(), im.as_mut_ptr());
            }
        }
        for dj in 0..8 {
            re[dj] = src[dj].re;
            im[dj] = src[dj].im;
        }
    }

    /// The x86 shuffle networks. Every function is `#[inline(always)]`
    /// so it monomorphizes inside the `#[target_feature]` dispatch
    /// wrappers; none carries its own `#[target_feature]` attribute
    /// (that would block inlining), so the *caller* owns the feature
    /// guarantee — see the module contract.
    #[cfg(target_arch = "x86_64")]
    pub(crate) mod x86 {
        use core::arch::x86_64::*;

        /// 8×8 f64 transpose, fully in registers.
        ///
        /// # Safety
        ///
        /// Caller must guarantee `avx512f`.
        #[inline(always)]
        pub unsafe fn tr8x8_regs(r: [__m512d; 8]) -> [__m512d; 8] {
            // Stage 1: interleave row pairs within 128-bit lanes.
            let t0 = _mm512_unpacklo_pd(r[0], r[1]); // [r0₀ r1₀ r0₂ r1₂ r0₄ r1₄ r0₆ r1₆]
            let t1 = _mm512_unpackhi_pd(r[0], r[1]);
            let t2 = _mm512_unpacklo_pd(r[2], r[3]);
            let t3 = _mm512_unpackhi_pd(r[2], r[3]);
            let t4 = _mm512_unpacklo_pd(r[4], r[5]);
            let t5 = _mm512_unpackhi_pd(r[4], r[5]);
            let t6 = _mm512_unpacklo_pd(r[6], r[7]);
            let t7 = _mm512_unpackhi_pd(r[6], r[7]);
            // Stage 2: gather 2-element column fragments of 4 rows.
            let ia = _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13);
            let ib = _mm512_setr_epi64(2, 3, 10, 11, 6, 7, 14, 15);
            let q0 = _mm512_permutex2var_pd(t0, ia, t2); // cols 0,4 of rows 0–3
            let q1 = _mm512_permutex2var_pd(t1, ia, t3); // cols 1,5
            let q2 = _mm512_permutex2var_pd(t0, ib, t2); // cols 2,6
            let q3 = _mm512_permutex2var_pd(t1, ib, t3); // cols 3,7
            let q4 = _mm512_permutex2var_pd(t4, ia, t6); // cols 0,4 of rows 4–7
            let q5 = _mm512_permutex2var_pd(t5, ia, t7);
            let q6 = _mm512_permutex2var_pd(t4, ib, t6);
            let q7 = _mm512_permutex2var_pd(t5, ib, t7);
            // Stage 3: splice the 4-row halves into full columns.
            let lo = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
            let hi = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
            [
                _mm512_permutex2var_pd(q0, lo, q4),
                _mm512_permutex2var_pd(q1, lo, q5),
                _mm512_permutex2var_pd(q2, lo, q6),
                _mm512_permutex2var_pd(q3, lo, q7),
                _mm512_permutex2var_pd(q0, hi, q4),
                _mm512_permutex2var_pd(q1, hi, q5),
                _mm512_permutex2var_pd(q2, hi, q6),
                _mm512_permutex2var_pd(q3, hi, q7),
            ]
        }

        /// 8×8 f64 transpose: `dst[j*8 + i] = src[i*8 + j]`.
        ///
        /// # Safety
        ///
        /// `src` and `dst` must each point at 64 readable/writable
        /// `f64`; caller must guarantee `avx512f`.
        #[inline(always)]
        pub unsafe fn tr8x8(src: *const f64, dst: *mut f64) {
            let c = tr8x8_regs([
                _mm512_loadu_pd(src),
                _mm512_loadu_pd(src.add(8)),
                _mm512_loadu_pd(src.add(16)),
                _mm512_loadu_pd(src.add(24)),
                _mm512_loadu_pd(src.add(32)),
                _mm512_loadu_pd(src.add(40)),
                _mm512_loadu_pd(src.add(48)),
                _mm512_loadu_pd(src.add(56)),
            ]);
            for (i, v) in c.into_iter().enumerate() {
                _mm512_storeu_pd(dst.add(8 * i), v);
            }
        }

        /// 4×4 f64 transpose of four ymm registers.
        ///
        /// # Safety
        ///
        /// Caller must guarantee `avx2`.
        #[inline(always)]
        unsafe fn tr4x4(
            a0: __m256d,
            a1: __m256d,
            a2: __m256d,
            a3: __m256d,
        ) -> (__m256d, __m256d, __m256d, __m256d) {
            let t0 = _mm256_unpacklo_pd(a0, a1); // [a0₀ a1₀ a0₂ a1₂]
            let t1 = _mm256_unpackhi_pd(a0, a1); // [a0₁ a1₁ a0₃ a1₃]
            let t2 = _mm256_unpacklo_pd(a2, a3);
            let t3 = _mm256_unpackhi_pd(a2, a3);
            (
                _mm256_permute2f128_pd(t0, t2, 0x20), // col 0
                _mm256_permute2f128_pd(t1, t3, 0x20), // col 1
                _mm256_permute2f128_pd(t0, t2, 0x31), // col 2
                _mm256_permute2f128_pd(t1, t3, 0x31), // col 3
            )
        }

        /// 4 rows × 8 → 8 cols × 4: `dst[j*4 + i] = src[i*8 + j]`.
        ///
        /// # Safety
        ///
        /// `src` points at 32 readable, `dst` at 32 writable `f64`;
        /// caller must guarantee `avx2`.
        #[inline(always)]
        pub unsafe fn tr4x8(src: *const f64, dst: *mut f64) {
            for blk in 0..2 {
                let (c0, c1, c2, c3) = tr4x4(
                    _mm256_loadu_pd(src.add(4 * blk)),
                    _mm256_loadu_pd(src.add(8 + 4 * blk)),
                    _mm256_loadu_pd(src.add(16 + 4 * blk)),
                    _mm256_loadu_pd(src.add(24 + 4 * blk)),
                );
                _mm256_storeu_pd(dst.add(16 * blk), c0);
                _mm256_storeu_pd(dst.add(16 * blk + 4), c1);
                _mm256_storeu_pd(dst.add(16 * blk + 8), c2);
                _mm256_storeu_pd(dst.add(16 * blk + 12), c3);
            }
        }

        /// 8 rows × 4 → 4 cols × 8: `dst[j*8 + i] = src[i*4 + j]`.
        ///
        /// # Safety
        ///
        /// `src` points at 32 readable, `dst` at 32 writable `f64`;
        /// caller must guarantee `avx2`.
        #[inline(always)]
        pub unsafe fn tr8x4(src: *const f64, dst: *mut f64) {
            for blk in 0..2 {
                let (c0, c1, c2, c3) = tr4x4(
                    _mm256_loadu_pd(src.add(16 * blk)),
                    _mm256_loadu_pd(src.add(16 * blk + 4)),
                    _mm256_loadu_pd(src.add(16 * blk + 8)),
                    _mm256_loadu_pd(src.add(16 * blk + 12)),
                );
                _mm256_storeu_pd(dst.add(4 * blk), c0);
                _mm256_storeu_pd(dst.add(8 + 4 * blk), c1);
                _mm256_storeu_pd(dst.add(16 + 4 * blk), c2);
                _mm256_storeu_pd(dst.add(24 + 4 * blk), c3);
            }
        }

        /// Zips 8 re + 8 im into 16 interleaved f64 (`[re₀ im₀ re₁ …]`).
        ///
        /// # Safety
        ///
        /// `re`/`im` point at 8 readable, `dst` at 16 writable `f64`;
        /// caller must guarantee `avx512f`.
        #[inline(always)]
        pub unsafe fn zip8(re: *const f64, im: *const f64, dst: *mut f64) {
            let r = _mm512_loadu_pd(re);
            let i = _mm512_loadu_pd(im);
            let lo = _mm512_unpacklo_pd(r, i); // [re₀ im₀ re₂ im₂ re₄ im₄ re₆ im₆]
            let hi = _mm512_unpackhi_pd(r, i); // [re₁ im₁ re₃ im₃ re₅ im₅ re₇ im₇]
            let ia = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
            let ib = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
            _mm512_storeu_pd(dst, _mm512_permutex2var_pd(lo, ia, hi));
            _mm512_storeu_pd(dst.add(8), _mm512_permutex2var_pd(lo, ib, hi));
        }

        /// Inverse of [`zip8`]: 16 interleaved f64 → 8 re + 8 im.
        ///
        /// # Safety
        ///
        /// `src` points at 16 readable, `re`/`im` at 8 writable `f64`;
        /// caller must guarantee `avx512f`.
        #[inline(always)]
        pub unsafe fn unzip8(src: *const f64, re: *mut f64, im: *mut f64) {
            let lo = _mm512_loadu_pd(src);
            let hi = _mm512_loadu_pd(src.add(8));
            let ir = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
            let ii = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
            _mm512_storeu_pd(re, _mm512_permutex2var_pd(lo, ir, hi));
            _mm512_storeu_pd(im, _mm512_permutex2var_pd(lo, ii, hi));
        }

        /// AVX2 [`zip8`]: two 4-wide halves.
        ///
        /// # Safety
        ///
        /// Same buffers as [`zip8`]; caller must guarantee `avx2`.
        #[inline(always)]
        pub unsafe fn zip8_avx2(re: *const f64, im: *const f64, dst: *mut f64) {
            for blk in 0..2 {
                let r = _mm256_loadu_pd(re.add(4 * blk));
                let i = _mm256_loadu_pd(im.add(4 * blk));
                let lo = _mm256_unpacklo_pd(r, i); // [re₀ im₀ re₂ im₂]
                let hi = _mm256_unpackhi_pd(r, i); // [re₁ im₁ re₃ im₃]
                _mm256_storeu_pd(dst.add(8 * blk), _mm256_permute2f128_pd(lo, hi, 0x20));
                _mm256_storeu_pd(dst.add(8 * blk + 4), _mm256_permute2f128_pd(lo, hi, 0x31));
            }
        }

        /// AVX2 [`unzip8`]: two 4-wide halves.
        ///
        /// # Safety
        ///
        /// Same buffers as [`unzip8`]; caller must guarantee `avx2`.
        #[inline(always)]
        pub unsafe fn unzip8_avx2(src: *const f64, re: *mut f64, im: *mut f64) {
            for blk in 0..2 {
                let lo = _mm256_loadu_pd(src.add(8 * blk)); // [re₀ im₀ re₁ im₁]
                let hi = _mm256_loadu_pd(src.add(8 * blk + 4)); // [re₂ im₂ re₃ im₃]
                let t0 = _mm256_permute2f128_pd(lo, hi, 0x20); // [re₀ im₀ re₂ im₂]
                let t1 = _mm256_permute2f128_pd(lo, hi, 0x31); // [re₁ im₁ re₃ im₃]
                _mm256_storeu_pd(re.add(4 * blk), _mm256_unpacklo_pd(t0, t1));
                _mm256_storeu_pd(im.add(4 * blk), _mm256_unpackhi_pd(t0, t1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_complex_mul_matches_scalar_bitwise() {
        let w = C64::expi(0.7371);
        let xs = [
            C64::new(1.25, -3.5),
            C64::new(-0.001, 7.75),
            C64::new(1e9, -1e-9),
            C64::new(0.0, 0.0),
        ];
        let mut soa = [0.0f64; 8];
        for (l, x) in xs.iter().enumerate() {
            soa[l] = x.re;
            soa[4 + l] = x.im;
        }
        let v = C64x::<4>::load_slot(&soa, 0).mul_c(w);
        for (l, x) in xs.iter().enumerate() {
            let want = *x * w;
            assert_eq!(v.re.0[l].to_bits(), want.re.to_bits());
            assert_eq!(v.im.0[l].to_bits(), want.im.to_bits());
        }
    }

    #[test]
    fn u64_fold_once_is_exact() {
        let q = 1u64 << 62;
        let v = U64x::<4>([0, q - 1, q, 2 * q - 1]).fold_once(q);
        assert_eq!(v.0, [0, q - 1, 0, q - 1]);
    }

    #[test]
    fn slot_roundtrip() {
        let mut soa = vec![0.0; 4 * 2 * 2];
        let v = C64x::<2> {
            re: F64x([1.0, 2.0]),
            im: F64x([-1.0, -2.0]),
        };
        v.store_slot(&mut soa, 3);
        let back = C64x::<2>::load_slot(&soa, 3);
        assert_eq!(back.re.0, [1.0, 2.0]);
        assert_eq!(back.im.0, [-1.0, -2.0]);
    }
}
