//! Bit-accurate fixed-point negacyclic forward transform.
//!
//! This is FLASH's approximate weight-transform datapath: every stage
//! (the fold/twist plus `log2(N/2)` butterfly stages) carries data in a
//! configurable fixed-point format (`dw_i` of the paper's DSE problem) and
//! multiplies by CSD-quantized twiddles through shift-add networks
//! (quantization level `k_i`). Rounding, truncation and saturation are
//! modelled exactly and counted, so the error seen by downstream BFV
//! decryption is the error real hardware would produce.

use crate::negacyclic::NegacyclicFft;
use crate::twiddle::StageTwiddles;
use flash_math::bitrev::{bit_reverse_permute, log2_exact};
use flash_math::fixed::{requantize, to_f64, FxpFormat, Overflow, QuantStats, Rounding};
use flash_math::C64;
use flash_runtime::{CacheStats, Interner, I128_SCRATCH};
use std::sync::{Arc, OnceLock};

/// Configuration of the approximate fixed-point transform.
///
/// `stage_formats[0]` / `twiddle_k[0]` describe the fold/twist stage;
/// entries `1..` describe the butterfly stages in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxFftConfig {
    n: usize,
    stage_formats: Vec<FxpFormat>,
    twiddle_k: Vec<usize>,
    /// Largest shift allowed in twiddle CSD terms (ROM word length).
    pub max_shift: u32,
    /// Rounding mode applied at shift-add taps and requantization.
    pub rounding: Rounding,
    /// Overflow policy of the datapath registers.
    pub overflow: Overflow,
}

impl ApproxFftConfig {
    /// Number of pipeline stages for ring degree `n`: 1 twist stage +
    /// `log2(n/2)` butterfly stages.
    pub fn stage_count(n: usize) -> usize {
        1 + log2_exact(n / 2) as usize
    }

    /// Creates a configuration with per-stage formats and twiddle levels.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not have exactly
    /// [`ApproxFftConfig::stage_count`]`(n)` entries.
    pub fn new(n: usize, stage_formats: Vec<FxpFormat>, twiddle_k: Vec<usize>) -> Self {
        let stages = Self::stage_count(n);
        assert_eq!(stage_formats.len(), stages, "need one format per stage");
        assert_eq!(twiddle_k.len(), stages, "need one twiddle level per stage");
        Self {
            n,
            stage_formats,
            twiddle_k,
            max_shift: 24,
            rounding: Rounding::NearestEven,
            overflow: Overflow::Saturate,
        }
    }

    /// Creates a configuration with one format and one `k` for all stages
    /// — the paper's "FXP FFT" ablation point.
    pub fn uniform(n: usize, fmt: FxpFormat, k: usize) -> Self {
        let stages = Self::stage_count(n);
        Self::new(n, vec![fmt; stages], vec![k; stages])
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Per-stage data formats.
    pub fn stage_formats(&self) -> &[FxpFormat] {
        &self.stage_formats
    }

    /// Per-stage twiddle quantization levels.
    pub fn twiddle_k(&self) -> &[usize] {
        &self.twiddle_k
    }

    /// Total datapath register bits across stages (a cheap area proxy
    /// used by tests; the real cost model lives in `flash-hw`).
    pub fn total_width_bits(&self) -> u32 {
        self.stage_formats.iter().map(|f| f.total_bits()).sum()
    }

    /// Canonical structural key: two configs compare equal iff they
    /// produce bit-identical plans. Used by [`FixedNegacyclicFft::shared`].
    fn plan_key(&self) -> PlanKey {
        PlanKey {
            n: self.n,
            stage_formats: self
                .stage_formats
                .iter()
                .map(|f| (f.int_bits, f.frac_bits))
                .collect(),
            twiddle_k: self.twiddle_k.clone(),
            max_shift: self.max_shift,
            rounding: self.rounding as u8,
            overflow: self.overflow as u8,
        }
    }
}

/// Ord-comparable image of an [`ApproxFftConfig`] for plan interning.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct PlanKey {
    n: usize,
    stage_formats: Vec<(u32, u32)>,
    twiddle_k: Vec<usize>,
    max_shift: u32,
    rounding: u8,
    overflow: u8,
}

/// Process-wide plan cache: one `FixedNegacyclicFft` per distinct config.
static SHARED_PLANS: Interner<PlanKey, FixedNegacyclicFft> = Interner::bounded(64);

/// A planned fixed-point negacyclic forward transform.
#[derive(Debug, Clone)]
pub struct FixedNegacyclicFft {
    cfg: ApproxFftConfig,
    stages: Vec<StageTwiddles>,
    /// Exact `f64` plan of the same degree, interned process-wide so
    /// many fixed-point plans of one degree share a single copy.
    reference: Arc<NegacyclicFft>,
    /// Lazily computed `(p0, slope)` of the affine analytic spectrum
    /// error power `p0 + slope·Var(input)` (see
    /// [`FixedNegacyclicFft::spectrum_error_power_coeffs`]).
    error_power: OnceLock<(f64, f64)>,
}

impl FixedNegacyclicFft {
    /// Builds the quantized twiddle ROMs for `cfg`.
    pub fn new(cfg: ApproxFftConfig) -> Self {
        let n = cfg.n;
        let log_half = log2_exact(n / 2);
        let mut stages = Vec::with_capacity(1 + log_half as usize);
        stages.push(StageTwiddles::twist_stage(
            n,
            cfg.twiddle_k[0],
            cfg.max_shift,
        ));
        for s in 1..=log_half {
            stages.push(StageTwiddles::fft_stage(
                s,
                cfg.twiddle_k[s as usize],
                cfg.max_shift,
            ));
        }
        Self {
            reference: NegacyclicFft::shared(n),
            cfg,
            stages,
            error_power: OnceLock::new(),
        }
    }

    /// Coefficients `(p0, slope)` of the analytic spectrum error power of
    /// this plan as an affine function of the input coefficient variance:
    /// [`crate::error::analytical_spectrum_error_power`]`(cfg, v) = p0 +
    /// slope·v` (the model's quantization term is input-independent and
    /// its twiddle-MSE term is proportional to the value power). Computed
    /// once per plan — interned plans make the runtime noise guard's
    /// per-band queries free of twiddle-table rebuilds.
    pub fn spectrum_error_power_coeffs(&self) -> (f64, f64) {
        *self.error_power.get_or_init(|| {
            let p0 = crate::error::analytical_spectrum_error_power(&self.cfg, 0.0);
            let p1 = crate::error::analytical_spectrum_error_power(&self.cfg, 1.0);
            (p0, p1 - p0)
        })
    }

    /// Like [`FixedNegacyclicFft::new`], but interned process-wide:
    /// every call with a structurally equal config returns the same
    /// `Arc` without requantizing the twiddle ROMs.
    pub fn shared(cfg: &ApproxFftConfig) -> Arc<Self> {
        SHARED_PLANS.intern_with(cfg.plan_key(), |_| FixedNegacyclicFft::new(cfg.clone()))
    }

    /// Hit/miss counters of the shared per-config plan cache.
    pub fn shared_cache_stats() -> CacheStats {
        SHARED_PLANS.stats()
    }

    /// Drops all shared plans (outstanding `Arc`s stay valid) and resets
    /// the counters.
    pub fn clear_shared_cache() {
        SHARED_PLANS.clear()
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &ApproxFftConfig {
        &self.cfg
    }

    /// The quantized twiddles of stage `s` (0 = twist).
    pub fn stage_twiddles(&self, s: usize) -> &StageTwiddles {
        &self.stages[s]
    }

    /// Forward transform of an integer polynomial through the fixed-point
    /// datapath. Returns the `N/2` complex spectrum as `f64` (for the FP
    /// point-wise multiply that follows in the accelerator) and the
    /// quantization statistics observed on the way.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the ring degree.
    pub fn forward(&self, a: &[i64]) -> (Vec<C64>, QuantStats) {
        let mut out = vec![C64::ZERO; self.cfg.n / 2];
        let stats = self.forward_into(a, &mut out);
        (out, stats)
    }

    /// [`FixedNegacyclicFft::forward`] into a caller-provided spectrum
    /// buffer. The datapath registers come from the scratch pool, so
    /// repeated calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the ring degree or
    /// `out.len() != N/2`.
    pub fn forward_into(&self, a: &[i64], out: &mut [C64]) -> QuantStats {
        let n = self.cfg.n;
        assert_eq!(a.len(), n, "polynomial length must equal ring degree");
        let half = n / 2;
        assert_eq!(out.len(), half, "spectrum length must be N/2");
        let mut stats = QuantStats::new();

        // Stage 0: fold + twist. Input integers enter with frac = 0.
        let fmt0 = self.cfg.stage_formats[0];
        let twist = &self.stages[0];
        let mut re = I128_SCRATCH.take(half);
        let mut im = I128_SCRATCH.take(half);
        // Inputs saturate into the stage-0 integer range *before* the
        // fractional up-shift — a raw `<<` on an oversized input would
        // silently wrap past i128 and zero the spectrum unflagged.
        let int_max = fmt0.max_raw() >> fmt0.frac_bits;
        let int_min = fmt0.min_raw() >> fmt0.frac_bits;
        let clamp_in = |v: i64, stats: &mut QuantStats| -> i128 {
            let c = (v as i128).clamp(int_min, int_max);
            stats.record(flash_math::fixed::QuantFlags {
                rounded: false,
                overflowed: c != v as i128,
            });
            c << fmt0.frac_bits
        };
        for j in 0..half {
            // (a_j + i a_{j+half}) * w, computed in raw integer domain:
            // apply_i128 keeps frac alignment of the operand (0 here), so
            // scale operands up to fmt0.frac first for fractional headroom.
            let xr = clamp_in(a[j], &mut stats);
            let xi = clamp_in(a[j + half], &mut stats);
            let w = twist.get(j);
            let rr = w.re.apply_i128(xr, self.cfg.rounding);
            let ri = w.im.apply_i128(xi, self.cfg.rounding);
            let ir = w.im.apply_i128(xr, self.cfg.rounding);
            let ii = w.re.apply_i128(xi, self.cfg.rounding);
            let (r, f1) = requantize(
                rr - ri,
                fmt0.frac_bits,
                fmt0,
                self.cfg.rounding,
                self.cfg.overflow,
            );
            let (i_, f2) = requantize(
                ir + ii,
                fmt0.frac_bits,
                fmt0,
                self.cfg.rounding,
                self.cfg.overflow,
            );
            stats.record(f1);
            stats.record(f2);
            re[j] = r;
            im[j] = i_;
        }

        // Bit-reverse into butterfly order.
        bit_reverse_permute(&mut re[..]);
        bit_reverse_permute(&mut im[..]);

        // Butterfly stages.
        let log_half = log2_exact(half);
        let mut cur_frac = fmt0.frac_bits;
        for s in 1..=log_half as usize {
            let fmt = self.cfg.stage_formats[s];
            let tw = &self.stages[s];
            let len = 1usize << s;
            let halfb = len / 2;
            for block in (0..half).step_by(len) {
                for j in 0..halfb {
                    let w = tw.get(j);
                    let ur = re[block + j];
                    let ui = im[block + j];
                    let xr = re[block + j + halfb];
                    let xi = im[block + j + halfb];
                    // v = x * w via shift-add
                    let vr = w.re.apply_i128(xr, self.cfg.rounding)
                        - w.im.apply_i128(xi, self.cfg.rounding);
                    let vi = w.im.apply_i128(xr, self.cfg.rounding)
                        + w.re.apply_i128(xi, self.cfg.rounding);
                    // butterfly outputs, requantized into the stage format
                    for (slot, val) in [
                        (block + j, (ur + vr, ui + vi)),
                        (block + j + halfb, (ur - vr, ui - vi)),
                    ] {
                        let (r, f1) =
                            requantize(val.0, cur_frac, fmt, self.cfg.rounding, self.cfg.overflow);
                        let (i_, f2) =
                            requantize(val.1, cur_frac, fmt, self.cfg.rounding, self.cfg.overflow);
                        stats.record(f1);
                        stats.record(f2);
                        re[slot] = r;
                        im[slot] = i_;
                    }
                }
            }
            cur_frac = fmt.frac_bits;
        }

        for (j, o) in out.iter_mut().enumerate() {
            *o = C64::new(to_f64(re[j], cur_frac), to_f64(im[j], cur_frac));
        }
        stats
    }

    /// Batched [`FixedNegacyclicFft::forward_into`] over `ws.len() / N`
    /// concatenated polynomials, merging the quantization statistics.
    ///
    /// The fixed-point datapath models hardware CSD shift-add multipliers
    /// in `i128` registers, which have no `f64` lane representation, so
    /// unlike [`crate::negacyclic::NegacyclicFft::forward_batch_into`]
    /// this groups tape passes rather than interleaving lanes; it exists
    /// so callers can hand whole layers to one call and outputs stay
    /// bit-identical to per-polynomial runs by construction.
    ///
    /// # Panics
    ///
    /// Panics if `ws.len()` is not a multiple of the ring degree or
    /// `out.len()` is not `batch · N/2`.
    pub fn forward_batch_into(&self, ws: &[i64], out: &mut [C64]) -> QuantStats {
        let n = self.cfg.n;
        assert_eq!(
            ws.len() % n,
            0,
            "batch length must be a multiple of the ring degree"
        );
        let batch = ws.len() / n;
        assert_eq!(out.len(), batch * (n / 2), "spectrum length mismatch");
        let mut stats = QuantStats::new();
        for (w, chunk) in ws.chunks_exact(n).zip(out.chunks_exact_mut(n / 2)) {
            stats.merge(&self.forward_into(w, chunk));
        }
        stats
    }

    /// Inverse negacyclic transform through the same fixed-point
    /// datapath: `N/2` spectrum points → `N` real coefficients. Uses the
    /// conjugated twiddle ROMs (negation of the imaginary CSD terms is
    /// free in hardware) and the exact `>> log2(N/2)` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != N/2`.
    pub fn inverse(&self, spectrum: &[C64]) -> (Vec<f64>, QuantStats) {
        let mut out = vec![0.0f64; self.cfg.n];
        let stats = self.inverse_into(spectrum, &mut out);
        (out, stats)
    }

    /// [`FixedNegacyclicFft::inverse`] into a caller-provided coefficient
    /// buffer. The datapath registers come from the scratch pool, so
    /// repeated calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != N/2` or `out.len() != N`.
    pub fn inverse_into(&self, spectrum: &[C64], out: &mut [f64]) -> QuantStats {
        let n = self.cfg.n;
        let half = n / 2;
        assert_eq!(spectrum.len(), half, "spectrum length must be N/2");
        assert_eq!(out.len(), n, "output length must equal ring degree");
        let log_half = log2_exact(half);
        let mut stats = QuantStats::new();

        // Enter the datapath at the first butterfly stage's format.
        let fmt0 = self.cfg.stage_formats[1.min(self.cfg.stage_formats.len() - 1)];
        let mut re = I128_SCRATCH.take(half);
        let mut im = I128_SCRATCH.take(half);
        for (j, c) in spectrum.iter().enumerate() {
            re[j] = flash_math::fixed::from_f64(c.re, fmt0);
            im[j] = flash_math::fixed::from_f64(c.im, fmt0);
        }
        bit_reverse_permute(&mut re[..]);
        bit_reverse_permute(&mut im[..]);

        let mut cur_frac = fmt0.frac_bits;
        for s in 1..=log_half as usize {
            let fmt = self.cfg.stage_formats[s];
            let tw = &self.stages[s];
            let len = 1usize << s;
            let halfb = len / 2;
            for block in (0..half).step_by(len) {
                for j in 0..halfb {
                    let w = tw.get(j);
                    let ur = re[block + j];
                    let ui = im[block + j];
                    let xr = re[block + j + halfb];
                    let xi = im[block + j + halfb];
                    // v = x * conj(w): negated imaginary CSD terms
                    let vr = w.re.apply_i128(xr, self.cfg.rounding)
                        + w.im.apply_i128(xi, self.cfg.rounding);
                    let vi = w.re.apply_i128(xi, self.cfg.rounding)
                        - w.im.apply_i128(xr, self.cfg.rounding);
                    for (slot, val) in [
                        (block + j, (ur + vr, ui + vi)),
                        (block + j + halfb, (ur - vr, ui - vi)),
                    ] {
                        let (r, f1) =
                            requantize(val.0, cur_frac, fmt, self.cfg.rounding, self.cfg.overflow);
                        let (i_, f2) =
                            requantize(val.1, cur_frac, fmt, self.cfg.rounding, self.cfg.overflow);
                        stats.record(f1);
                        stats.record(f2);
                        re[slot] = r;
                        im[slot] = i_;
                    }
                }
            }
            cur_frac = fmt.frac_bits;
        }

        // Scale by 1/(N/2): an exact arithmetic shift in the fraction
        // interpretation, then untwist by conj(ω^j) and unfold.
        let twist = &self.stages[0];
        let scale_frac = cur_frac + log_half; // value/2^log_half
        for j in 0..half {
            let w = twist.get(j);
            let xr = re[j];
            let xi = im[j];
            let rr =
                w.re.apply_i128(xr, self.cfg.rounding) + w.im.apply_i128(xi, self.cfg.rounding);
            let ii =
                w.re.apply_i128(xi, self.cfg.rounding) - w.im.apply_i128(xr, self.cfg.rounding);
            out[j] = to_f64(rr, scale_frac);
            out[j + half] = to_f64(ii, scale_frac);
        }
        stats
    }

    /// The exact `f64` spectrum of the same input (reference datapath).
    pub fn forward_exact(&self, a: &[i64]) -> Vec<C64> {
        let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        self.reference.forward(&af)
    }

    /// Per-output spectrum error `approx − exact`.
    pub fn spectrum_error(&self, a: &[i64]) -> Vec<C64> {
        let (approx, _) = self.forward(a);
        let exact = self.forward_exact(a);
        approx.iter().zip(&exact).map(|(x, y)| *x - *y).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_cfg(n: usize) -> ApproxFftConfig {
        // Generous format: enough integer bits for growth, many frac bits,
        // near-exact twiddles.
        let stages = ApproxFftConfig::stage_count(n);
        let fmts = (0..stages)
            .map(|_| FxpFormat::new(24, 30))
            .collect::<Vec<_>>();
        let mut cfg = ApproxFftConfig::new(n, fmts, vec![24; stages]);
        cfg.max_shift = 30;
        cfg
    }

    #[test]
    fn stage_count_formula() {
        assert_eq!(ApproxFftConfig::stage_count(8), 3); // twist + log2(4)
        assert_eq!(ApproxFftConfig::stage_count(4096), 12); // twist + 11
    }

    #[test]
    fn wide_config_matches_f64_reference() {
        let n = 64;
        let fft = FixedNegacyclicFft::new(wide_cfg(n));
        let a: Vec<i64> = (0..n as i64).map(|i| (i * 5 % 17) - 8).collect();
        let (approx, stats) = fft.forward(&a);
        let exact = fft.forward_exact(&a);
        let max_err = approx
            .iter()
            .zip(&exact)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(max_err < 1e-4, "max_err = {max_err}");
        assert_eq!(stats.overflowed, 0, "wide format must not saturate");
    }

    #[test]
    fn narrow_format_increases_error_monotonically() {
        let n = 128;
        let a: Vec<i64> = (0..n as i64).map(|i| (i * 7 % 15) - 7).collect();
        let mut prev_err = 0.0;
        for frac in [22u32, 14, 8, 4] {
            let stages = ApproxFftConfig::stage_count(n);
            let cfg =
                ApproxFftConfig::new(n, vec![FxpFormat::new(16, frac); stages], vec![20; stages]);
            let fft = FixedNegacyclicFft::new(cfg);
            let err: f64 = fft
                .spectrum_error(&a)
                .iter()
                .map(|e| e.abs2())
                .sum::<f64>()
                .sqrt();
            assert!(
                err >= prev_err / 1.5,
                "error should grow as precision shrinks: frac={frac} err={err} prev={prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err > 1e-3, "4-bit fraction must show visible error");
    }

    #[test]
    fn saturation_is_detected_on_tiny_int_bits() {
        let n = 64;
        let stages = ApproxFftConfig::stage_count(n);
        // 3 integer bits cannot hold sums of 64 inputs of magnitude 8.
        let cfg = ApproxFftConfig::new(n, vec![FxpFormat::new(3, 10); stages], vec![12; stages]);
        let fft = FixedNegacyclicFft::new(cfg);
        let a: Vec<i64> = vec![7; n];
        let (_, stats) = fft.forward(&a);
        assert!(stats.overflowed > 0, "expected saturation events");
    }

    #[test]
    fn twiddle_k_controls_error() {
        let n = 128;
        let a: Vec<i64> = (0..n as i64).map(|i| (i % 13) - 6).collect();
        let stages = ApproxFftConfig::stage_count(n);
        let err_at = |k: usize| {
            let cfg =
                ApproxFftConfig::new(n, vec![FxpFormat::new(18, 22); stages], vec![k; stages]);
            let fft = FixedNegacyclicFft::new(cfg);
            fft.spectrum_error(&a)
                .iter()
                .map(|e| e.abs2())
                .sum::<f64>()
                .sqrt()
        };
        let coarse = err_at(2);
        let fine = err_at(12);
        assert!(fine < coarse, "k=12 ({fine}) must beat k=2 ({coarse})");
    }

    #[test]
    fn forward_inverse_roundtrip_in_fixed_point() {
        let n = 64;
        let fft = FixedNegacyclicFft::new(wide_cfg(n));
        let a: Vec<i64> = (0..n as i64).map(|i| (i * 3 % 17) - 8).collect();
        let (spec, _) = fft.forward(&a);
        let (back, stats) = fft.inverse(&spec);
        for (x, y) in a.iter().zip(&back) {
            assert!((*x as f64 - y).abs() < 1e-3, "{x} vs {y}");
        }
        assert_eq!(stats.overflowed, 0);
    }

    #[test]
    fn inverse_matches_f64_reference() {
        let n = 64;
        let fft = FixedNegacyclicFft::new(wide_cfg(n));
        let reference = crate::negacyclic::NegacyclicFft::new(n);
        // random-ish spectrum from a real polynomial
        let a: Vec<f64> = (0..n).map(|i| ((i * 11 % 23) as f64) - 11.0).collect();
        let spec = reference.forward(&a);
        let want = reference.inverse(&spec);
        let (got, _) = fft.inverse(&spec);
        for (x, y) in want.iter().zip(&got) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn narrow_inverse_degrades_but_stays_finite() {
        let n = 64;
        let stages = ApproxFftConfig::stage_count(n);
        let cfg = ApproxFftConfig::new(n, vec![FxpFormat::new(10, 6); stages], vec![6; stages]);
        let fft = FixedNegacyclicFft::new(cfg);
        let reference = crate::negacyclic::NegacyclicFft::new(n);
        let a: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let spec = reference.forward(&a);
        let (got, _stats) = fft.inverse(&spec);
        assert!(got.iter().all(|v| v.is_finite()));
        // (QuantStats counts requantization events; the shift-add taps
        // round internally without reporting, so only the numeric error
        // is asserted here.)
        let err: f64 = got
            .iter()
            .zip(reference.inverse(&spec))
            .map(|(g, w)| (g - w).abs())
            .fold(0.0, f64::max);
        assert!(err > 1e-6, "visible error expected at 6 fraction bits");
    }

    #[test]
    fn oversized_inputs_saturate_instead_of_wrapping_to_zero() {
        // A legal 92-bit format with huge integer inputs: the stage-0
        // up-shift must saturate (flagged), never wrap i128 silently.
        let n = 8;
        let cfg = ApproxFftConfig::new(
            n,
            vec![FxpFormat::new(1, 90); ApproxFftConfig::stage_count(n)],
            vec![8; ApproxFftConfig::stage_count(n)],
        );
        let fft = FixedNegacyclicFft::new(cfg);
        let (out, stats) = fft.forward(&vec![1i64 << 40; n]);
        assert!(stats.overflowed > 0, "saturation must be flagged");
        assert!(
            out.iter().any(|c| c.re != 0.0 || c.im != 0.0),
            "spectrum must not silently collapse to zero"
        );
    }

    #[test]
    fn zero_input_is_exact() {
        let n = 32;
        let fft = FixedNegacyclicFft::new(wide_cfg(n));
        let (out, stats) = fft.forward(&vec![0i64; n]);
        assert!(out.iter().all(|c| c.re == 0.0 && c.im == 0.0));
        assert_eq!(stats.rounded, 0);
    }
}
