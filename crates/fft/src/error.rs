//! Error models for the approximate transform.
//!
//! The DSE of Section IV-C needs two things fast: the *error variance of
//! HConv outputs* for a candidate configuration (the paper uses
//! "analytical simulations") and a cross-check by bit-accurate Monte
//! Carlo. Both live here.
//!
//! The analytical model tracks two injection sources per stage `s`:
//! datapath requantization (variance `Δ_s²/12` per real component) and
//! twiddle quantization (relative error `ε_s` scaled by the value power at
//! that stage). Each injection is amplified by the remaining butterfly
//! stages (error variance doubles per stage, since every output is the
//! sum/difference of two prior values).

use crate::fixed_fft::{ApproxFftConfig, FixedNegacyclicFft};
use flash_math::stats::RunningStats;
use flash_math::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary of an error distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorReport {
    /// Variance of the per-coefficient error.
    pub variance: f64,
    /// Largest absolute error observed.
    pub max_abs: f64,
    /// Mean error (should hover near zero for unbiased rounding).
    pub mean: f64,
    /// Number of coefficients sampled.
    pub samples: u64,
}

impl ErrorReport {
    fn from_stats(s: &RunningStats) -> Self {
        Self {
            variance: s.variance(),
            max_abs: s.max().abs().max(s.min().abs()),
            mean: s.mean(),
            samples: s.count(),
        }
    }
}

/// Per-coefficient error of a negacyclic product where only the *weight*
/// transform runs on the approximate datapath (activation transform,
/// point-wise product and inverse stay in `f64`, as in FLASH).
pub fn product_error(fixed: &FixedNegacyclicFft, weight: &[i64], activation: &[f64]) -> Vec<f64> {
    let n = fixed.config().degree();
    assert_eq!(weight.len(), n);
    assert_eq!(activation.len(), n);
    let reference = crate::negacyclic::NegacyclicFft::shared(n);
    let fw_exact = fixed.forward_exact(weight);
    let (fw_approx, _) = fixed.forward(weight);
    let fx = reference.forward(activation);
    let exact: Vec<C64> = fw_exact.iter().zip(&fx).map(|(w, x)| *w * *x).collect();
    let approx: Vec<C64> = fw_approx.iter().zip(&fx).map(|(w, x)| *w * *x).collect();
    let e = reference.inverse(
        &approx
            .iter()
            .zip(&exact)
            .map(|(a, b)| *a - *b)
            .collect::<Vec<_>>(),
    );
    e
}

/// Workload description for Monte-Carlo error estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorWorkload {
    /// Weight coefficients are drawn uniformly from
    /// `[-weight_mag, weight_mag]`.
    pub weight_mag: i64,
    /// Number of non-zero weight coefficients per polynomial (coefficient
    /// encoding leaves weight plaintexts sparse).
    pub weight_nnz: usize,
    /// Activation coefficients are drawn uniformly from
    /// `[-act_mag, act_mag]` (center-lifted ciphertext coefficients are
    /// summarised by their magnitude).
    pub act_mag: f64,
}

impl Default for ErrorWorkload {
    fn default() -> Self {
        Self {
            weight_mag: 8,
            weight_nnz: 9,
            act_mag: 128.0,
        }
    }
}

/// Bit-accurate Monte-Carlo estimate of the HConv output error variance
/// for a configuration.
pub fn monte_carlo_error<R: Rng>(
    cfg: &ApproxFftConfig,
    workload: ErrorWorkload,
    trials: usize,
    rng: &mut R,
) -> ErrorReport {
    let fixed = FixedNegacyclicFft::shared(cfg);
    let n = cfg.degree();
    // One seed per trial, drawn sequentially up front, so the parallel
    // fan-out below produces the same trials for any worker count.
    let seeds: Vec<u64> = (0..trials).map(|_| rng.next_u64()).collect();
    let per_trial: Vec<Vec<f64>> = flash_runtime::parallel_map(&seeds, |&seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0i64; n];
        for _ in 0..workload.weight_nnz {
            let idx = rng.gen_range(0..n);
            w[idx] = rng.gen_range(-workload.weight_mag..=workload.weight_mag);
        }
        let x: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(-workload.act_mag..=workload.act_mag).round())
            .collect();
        product_error(&fixed, &w, &x)
    });
    let mut stats = RunningStats::new();
    for e in per_trial.into_iter().flatten() {
        stats.push(e);
    }
    ErrorReport::from_stats(&stats)
}

/// Analytical estimate of the spectrum error power `E|ε_u|²` of the
/// approximate weight transform for a configuration, given the variance
/// of an input coefficient.
///
/// Twiddle quantization error uses the *measured* mean-squared error of
/// the actual CSD tables (the paper's DSE likewise evaluates real twiddle
/// sets analytically rather than worst-case bounds).
pub fn analytical_spectrum_error_power(cfg: &ApproxFftConfig, input_var: f64) -> f64 {
    use crate::twiddle::StageTwiddles;
    let n = cfg.degree();
    let total_stages = cfg.stage_formats().len(); // 1 + log2(m)
    let butterfly_stages = total_stages - 1;
    let mut acc = 0.0;
    for (s, fmt) in cfg.stage_formats().iter().enumerate() {
        // Requantization noise: Δ²/12 per real component, two components.
        let delta = fmt.lsb();
        let quant_var = delta * delta / 6.0;
        // Twiddle quantization: measured MSE of the stage's quantized ROM.
        let k = cfg.twiddle_k()[s];
        let table = if s == 0 {
            StageTwiddles::twist_stage(n, k, cfg.max_shift)
        } else {
            StageTwiddles::fft_stage(s as u32, k, cfg.max_shift)
        };
        let tw_mse = (0..table.len())
            .map(|j| {
                let t = table.get(j);
                (t.value() - t.exact).abs2()
            })
            .sum::<f64>()
            / table.len() as f64;
        // Power of the value entering the multiplier: a node at depth s−1
        // is a partial sum of 2^{s-1} folded inputs, each of complex power
        // 2·input_var (stage 0 multiplies the folded input directly).
        let depth_gain = if s == 0 {
            1.0
        } else {
            (1u64 << (s - 1)) as f64
        };
        let value_power = 2.0 * input_var * depth_gain;
        let inject = quant_var + tw_mse * value_power;
        // Amplification by remaining stages (variance doubles per stage).
        let remaining = (butterfly_stages - s.min(butterfly_stages)) as u32;
        acc += inject * (1u64 << remaining) as f64;
    }
    acc
}

/// Analytical estimate of the per-coefficient error variance of the HConv
/// output: `Var(e_j) ≈ E|ε_u|² · σ_x²` (see module docs for the
/// derivation through the inverse transform).
pub fn analytical_product_error_variance(
    cfg: &ApproxFftConfig,
    weight_var: f64,
    act_var: f64,
) -> f64 {
    analytical_spectrum_error_power(cfg, weight_var) * act_var
}

/// Worst-case value error of a `k`-term CSD quantization with shifts up to
/// `max_shift`: each greedy term at least halves the residual, and the
/// resolution floor is `2^{-max_shift-1}`.
#[allow(dead_code)]
fn csd_worst_error(k: usize, max_shift: u32) -> f64 {
    let greedy = (0.5f64).powi(k as i32); // residual after k halvings of 1.0
    let floor = (0.5f64).powi(max_shift as i32 + 1);
    greedy.max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::fixed::FxpFormat;
    use rand::SeedableRng;

    fn cfg(n: usize, int_bits: u32, frac: u32, k: usize) -> ApproxFftConfig {
        ApproxFftConfig::uniform(n, FxpFormat::new(int_bits, frac), k)
    }

    #[test]
    fn product_error_is_zero_for_wide_datapath() {
        let c = cfg(64, 24, 30, 24);
        let fixed = FixedNegacyclicFft::new(c);
        let mut w = vec![0i64; 64];
        w[3] = 5;
        w[17] = -7;
        let x: Vec<f64> = (0..64).map(|i| ((i * 31 % 256) as f64) - 128.0).collect();
        let e = product_error(&fixed, &w, &x);
        let max = e.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max < 1e-3, "wide datapath should be near-exact, got {max}");
    }

    #[test]
    fn monte_carlo_error_grows_with_coarser_format() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let coarse = monte_carlo_error(&cfg(128, 16, 6, 6), ErrorWorkload::default(), 3, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let fine = monte_carlo_error(&cfg(128, 16, 20, 20), ErrorWorkload::default(), 3, &mut rng);
        assert!(
            coarse.variance > fine.variance * 10.0,
            "coarse {} vs fine {}",
            coarse.variance,
            fine.variance
        );
        assert!(coarse.samples == 3 * 128);
    }

    #[test]
    fn analytical_tracks_monte_carlo_within_two_orders() {
        let c = cfg(256, 16, 10, 8);
        let wl = ErrorWorkload::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mc = monte_carlo_error(&c, wl, 4, &mut rng);
        // weight coefficient variance: nnz/n occupancy × uniform variance
        let w_var = (wl.weight_nnz as f64 / 256.0)
            * (wl.weight_mag as f64 * (wl.weight_mag as f64 + 1.0) / 3.0);
        let act_var = wl.act_mag * wl.act_mag / 3.0;
        let ana = analytical_product_error_variance(&c, w_var, act_var);
        let ratio = ana / mc.variance.max(1e-30);
        assert!(
            (0.01..100.0).contains(&ratio),
            "analytical {ana} vs monte-carlo {} (ratio {ratio})",
            mc.variance
        );
    }

    #[test]
    fn analytical_is_monotone_in_precision() {
        let mut prev = f64::INFINITY;
        for frac in [18u32, 12, 8, 5] {
            let v = analytical_product_error_variance(&cfg(4096, 16, frac, 18), 0.2, 5000.0);
            assert!(v < prev || prev == f64::INFINITY || v > 0.0);
            assert!(v.is_finite());
            prev = v;
        }
        // Coarser fraction must produce strictly larger estimates.
        let fine = analytical_product_error_variance(&cfg(4096, 16, 18, 18), 0.2, 5000.0);
        let coarse = analytical_product_error_variance(&cfg(4096, 16, 5, 18), 0.2, 5000.0);
        assert!(coarse > fine * 100.0);
    }

    #[test]
    #[allow(dead_code)]
    fn csd_worst_error_bounds() {
        assert!(csd_worst_error(1, 24) == 0.5);
        assert!(csd_worst_error(24, 8) > csd_worst_error(24, 24));
        assert!(csd_worst_error(5, 24) == (0.5f64).powi(5));
    }
}
