//! FFT-based negacyclic polynomial multiplication — exact (`f64`) and
//! approximate (fixed-point), the core numerics of FLASH.
//!
//! The paper replaces the modular NTT by a floating/fixed-point FFT
//! (Figure 4(b), after Klemsa's extended Fourier transform): a real
//! negacyclic convolution of length `N` folds into an `N/2`-point complex
//! FFT preceded by a "twist" by powers of `ω = e^{iπ/N}`. This crate
//! provides:
//!
//! * [`dft`] — naive `O(m²)` complex DFT reference.
//! * [`fft64`] — iterative radix-2 Cooley–Tukey FFT over [`flash_math::C64`].
//! * [`negacyclic`] — the fold/twist negacyclic transform and exact-in-
//!   practice `f64` polynomial products, including products of ring
//!   elements mod `q`.
//! * [`twiddle`] — plain and CSD-quantized twiddle tables (the paper's
//!   shift-add multipliers, quantization level `k`).
//! * [`fixed_fft`] — a bit-accurate fixed-point forward transform with
//!   per-stage data widths and quantized twiddles (the approximate weight
//!   transform of the FLASH PE).
//! * [`error`] — Monte-Carlo and analytical error models that drive the
//!   DSE of Section IV-C.
//! * [`simd`] — portable lane types and the runtime dispatch behind the
//!   batched structure-of-arrays transforms
//!   ([`NegacyclicFft::forward_batch_into`] /
//!   [`NegacyclicFft::inverse_batch_into`]), bit-identical to the scalar
//!   path at every lane width.
//!
//! # Examples
//!
//! ```
//! use flash_fft::negacyclic::NegacyclicFft;
//! let plan = NegacyclicFft::new(8);
//! // (1 + X) * X^7 = X^7 - 1 in Z[X]/(X^8+1)
//! let a = [1i64, 1, 0, 0, 0, 0, 0, 0];
//! let b = [0i64, 0, 0, 0, 0, 0, 0, 1];
//! let c = plan.polymul_i64(&a, &b);
//! assert_eq!(c[0], -1);
//! assert_eq!(c[7], 1);
//! ```

pub mod dft;
pub mod error;
pub mod fft64;
pub mod fixed_fft;
pub mod negacyclic;
pub mod radix4;
pub mod simd;
pub mod twiddle;

pub use fixed_fft::ApproxFftConfig;
pub use negacyclic::{NegacyclicFft, C64_SCRATCH};
