//! Negacyclic polynomial multiplication via the folded FFT.
//!
//! A real polynomial `a ∈ R[X]/(X^N + 1)` is determined on the odd powers
//! of `ω = e^{iπ/N}`; conjugate symmetry leaves `N/2` independent
//! evaluations. Folding `c_j = a_j + i·a_{j+N/2}` and twisting by `ω^j`
//! reduces the transform to an `N/2`-point complex FFT with positive
//! exponent:
//!
//! ```text
//! A_{2u} = Σ_j (a_j + i a_{j+N/2}) ω^j · e^{+2πi u j / (N/2)}
//! ```
//!
//! Point-wise products in this domain realize the negacyclic convolution
//! (Klemsa's extended FT / the classic TFHE trick), which is the paper's
//! Figure 4(b) pipeline and the source of its "N/2-point FFT vs N-point
//! NTT" accounting.

use crate::dft::Direction;
use crate::fft64::FftPlan;
use crate::simd::{self, tile, C64x, F64x, SimdLevel};
use flash_math::bitrev::bit_reverse as bitrev;
use flash_math::modular::{center_lift, Barrett};
use flash_math::C64;
use flash_runtime::{CacheStats, Interner, F64_SCRATCH};
use std::sync::Arc;

flash_runtime::scratch_pool! {
    /// Thread-local `C64` scratch pool shared by every spectrum staging
    /// buffer in the workspace (negacyclic/fixed-point/sparse paths).
    pub static C64_SCRATCH: C64
}

/// A reusable negacyclic FFT plan for ring degree `n`.
#[derive(Debug, Clone)]
pub struct NegacyclicFft {
    n: usize,
    plan: FftPlan,
    /// Twist factors `ω^j = e^{iπ j/N}` for `j` in `0..n/2`.
    twist: Vec<C64>,
    /// Inverse twist factors `ω^{-j}`.
    twist_inv: Vec<C64>,
}

/// Process-wide plan cache: one `NegacyclicFft` per distinct degree.
static SHARED_PLANS: Interner<usize, NegacyclicFft> = Interner::bounded(64);

impl NegacyclicFft {
    /// Creates a plan for degree `n` (a power of two, at least 4).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "degree must be a power of two >= 4"
        );
        let half = n / 2;
        let twist: Vec<C64> = (0..half)
            .map(|j| C64::expi(std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let twist_inv = twist.iter().map(|w| w.conj()).collect();
        Self {
            n,
            plan: FftPlan::new(half),
            twist,
            twist_inv,
        }
    }

    /// Like [`NegacyclicFft::new`], but interned process-wide: every
    /// call with the same degree returns the same `Arc` without
    /// rebuilding twist tables or the FFT plan.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn shared(n: usize) -> Arc<Self> {
        SHARED_PLANS.intern_with(n, |&n| NegacyclicFft::new(n))
    }

    /// Hit/miss counters of the shared per-degree plan cache.
    pub fn shared_cache_stats() -> CacheStats {
        SHARED_PLANS.stats()
    }

    /// Drops all shared plans (outstanding `Arc`s stay valid) and resets
    /// the counters.
    pub fn clear_shared_cache() {
        SHARED_PLANS.clear()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The underlying `N/2`-point FFT plan (shared with the fixed-point
    /// and sparse executors so all dataflows agree on stage structure).
    #[inline]
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Twist factor `ω^j` for `j < N/2`.
    #[inline]
    pub fn twist(&self, j: usize) -> C64 {
        self.twist[j]
    }

    /// Folds and twists a real polynomial into the complex half vector
    /// `d_j = (a_j + i·a_{j+N/2}) ω^j` — the input of the butterfly
    /// network.
    pub fn fold_twist(&self, a: &[f64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.n / 2];
        self.fold_twist_into(a, &mut out);
        out
    }

    /// [`NegacyclicFft::fold_twist`] into a caller-provided half vector.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N` or `out.len() != N/2`.
    pub fn fold_twist_into(&self, a: &[f64], out: &mut [C64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        let half = self.n / 2;
        assert_eq!(out.len(), half, "output length must be N/2");
        for (j, o) in out.iter_mut().enumerate() {
            *o = C64::new(a[j], a[j + half]) * self.twist[j];
        }
    }

    /// Forward negacyclic transform: `N` real coefficients → `N/2` complex
    /// evaluations at `ω^{4u+1}`.
    pub fn forward(&self, a: &[f64]) -> Vec<C64> {
        let mut d = vec![C64::ZERO; self.n / 2];
        self.forward_into(a, &mut d);
        d
    }

    /// [`NegacyclicFft::forward`] into a caller-provided spectrum buffer
    /// (no allocations).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N` or `out.len() != N/2`.
    pub fn forward_into(&self, a: &[f64], out: &mut [C64]) {
        self.fold_twist_into(a, out);
        self.plan.transform(out, Direction::Positive);
    }

    /// Forward transform of a residue polynomial: fuses the
    /// `u64 → (−q/2, q/2] → f64` center lift into the fold-and-twist
    /// stage, so no staged `f64` buffer is needed. This is the integer
    /// entry point of the lifted ciphertext backends (prime and
    /// power-of-two alike — only the center lift depends on `q`).
    ///
    /// Bit-identical to center-lifting into a buffer and calling
    /// [`NegacyclicFft::forward_into`]: the lift, the fold, and the
    /// twist multiply are the same operations in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N` or `out.len() != N/2`.
    pub fn forward_residues_into(&self, a: &[u64], q: u64, out: &mut [C64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        let half = self.n / 2;
        assert_eq!(out.len(), half, "output length must be N/2");
        for (j, o) in out.iter_mut().enumerate() {
            *o = C64::new(
                center_lift(a[j], q) as f64,
                center_lift(a[j + half], q) as f64,
            ) * self.twist[j];
        }
        self.plan.transform(out, Direction::Positive);
    }

    /// Inverse negacyclic transform: `N/2` complex evaluations → `N` real
    /// coefficients. The spectrum is staged through the scratch pool (the
    /// input slice is left untouched); callers that own a mutable
    /// spectrum should use [`NegacyclicFft::inverse_into`] directly.
    pub fn inverse(&self, spectrum: &[C64]) -> Vec<f64> {
        let mut d = C64_SCRATCH.take_copied(spectrum);
        let mut out = vec![0.0; self.n];
        self.inverse_into(&mut d, &mut out);
        out
    }

    /// In-place inverse transform: consumes the spectrum buffer (its
    /// contents are destroyed) and writes the `N` real coefficients into
    /// `out`. Performs no allocations.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != N/2` or `out.len() != N`.
    pub fn inverse_into(&self, spectrum: &mut [C64], out: &mut [f64]) {
        let half = self.n / 2;
        assert_eq!(spectrum.len(), half, "spectrum length must be N/2");
        assert_eq!(out.len(), self.n, "output length must equal degree");
        self.plan.transform(spectrum, Direction::Negative);
        let scale = 1.0 / half as f64;
        for j in 0..half {
            let c = spectrum[j].scale(scale) * self.twist_inv[j];
            out[j] = c.re;
            out[j + half] = c.im;
        }
    }

    /// Batched forward transform over `batch = inputs.len() / N`
    /// polynomials stored consecutively in `inputs`; spectrum `l` is
    /// written to `out[l·N/2 .. (l+1)·N/2]`.
    ///
    /// Blocks of `W = flash_runtime::simd::lanes()` polynomials are
    /// transposed into a lane-interleaved SoA scratch buffer and run
    /// through one butterfly cascade (one twiddle load per `W` lanes, see
    /// [`crate::simd`]); remainder lanes are zero-padded. Outputs are
    /// **bit-identical** to `batch` independent
    /// [`NegacyclicFft::forward_into`] calls at every lane width — the
    /// scalar fallback (`W = 1`) literally makes those calls. Performs no
    /// allocations (SoA staging comes from the scratch pool).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `N` or
    /// `out.len() != inputs.len() / 2`.
    pub fn forward_batch_into(&self, inputs: &[f64], out: &mut [C64]) {
        let (n, half) = (self.n, self.n / 2);
        assert_eq!(inputs.len() % n, 0, "inputs must be whole polynomials");
        let batch = inputs.len() / n;
        assert_eq!(out.len(), batch * half, "output must hold batch spectra");
        let level = simd::level();
        if level == SimdLevel::Scalar {
            for (a, o) in inputs.chunks_exact(n).zip(out.chunks_exact_mut(half)) {
                self.forward_into(a, o);
            }
            return;
        }
        let w = level.lanes();
        let mut done = 0;
        while done < batch {
            let used = (batch - done).min(w);
            let ins = &inputs[done * n..(done + used) * n];
            let outs = &mut out[done * half..(done + used) * half];
            // Narrow tails take the narrowest kernel that still covers
            // them (see [`SimdLevel::narrowed`]); a single polynomial
            // skips the SoA staging entirely.
            if used == 1 {
                self.forward_into(ins, outs);
            } else {
                match level.narrowed(used) {
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx512 => unsafe { self.forward_batch_soa_avx512(ins, used, outs) },
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx2 => unsafe { self.forward_batch_soa_avx2(ins, used, outs) },
                    _ => self.forward_batch_soa::<2>(ins, used, outs),
                }
            }
            done += used;
        }
    }

    /// Batched inverse transform: spectrum `l` is read from
    /// `spectra[l·N/2 ..]` (left untouched) and polynomial `l` written to
    /// `out[l·N ..]`. Same SoA batching, zero-padding, bit-identity to
    /// [`NegacyclicFft::inverse_into`], and no-allocation guarantees as
    /// [`NegacyclicFft::forward_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics if `spectra.len()` is not a multiple of `N/2` or
    /// `out.len() != 2 * spectra.len()`.
    pub fn inverse_batch_into(&self, spectra: &[C64], out: &mut [f64]) {
        let (n, half) = (self.n, self.n / 2);
        assert_eq!(spectra.len() % half, 0, "spectra must be whole spectra");
        let batch = spectra.len() / half;
        assert_eq!(out.len(), batch * n, "output must hold batch polynomials");
        let level = simd::level();
        if level == SimdLevel::Scalar {
            let mut d = C64_SCRATCH.take(half);
            for (s, o) in spectra.chunks_exact(half).zip(out.chunks_exact_mut(n)) {
                d.copy_from_slice(s);
                self.inverse_into(&mut d, o);
            }
            return;
        }
        let w = level.lanes();
        let mut done = 0;
        while done < batch {
            let used = (batch - done).min(w);
            let ins = &spectra[done * half..(done + used) * half];
            let outs = &mut out[done * n..(done + used) * n];
            // Narrow tails: same kernel narrowing as the forward path; a
            // single spectrum stages through scratch and runs scalar.
            if used == 1 {
                let mut d = C64_SCRATCH.take_copied(ins);
                self.inverse_into(&mut d, outs);
            } else {
                match level.narrowed(used) {
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx512 => unsafe { self.inverse_batch_soa_avx512(ins, used, outs) },
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx2 => unsafe { self.inverse_batch_soa_avx2(ins, used, outs) },
                    _ => self.inverse_batch_soa::<2>(ins, used, outs),
                }
            }
            done += used;
        }
    }

    /// SoA forward kernel: `used ≤ W` polynomials from `inputs`
    /// (consecutive, length `N` each) → `used` spectra in `out`. The
    /// fold/twist is fused into the transpose-in (writing slot
    /// `bitrev(j)` replaces the scalar path's explicit permutation).
    #[inline(always)]
    fn forward_batch_soa<const W: usize>(&self, inputs: &[f64], used: usize, out: &mut [C64]) {
        let (n, half) = (self.n, self.n / 2);
        let bits = self.plan.stages();
        let mut soa = F64_SCRATCH.take(half * 2 * W);
        // Tiled transposes: the W polynomial streams sit a power-of-two
        // stride apart, so element-at-a-time column access would
        // conflict-miss on every touch (all streams alias into one
        // cache set). Instead each stream is copied a full 8-element
        // row at a time (contiguous vector moves) and the 8×W corner
        // turn happens in registers via the `simd::tile` shuffle
        // networks — pure data movement, so lane values are untouched.
        let tile = half.min(8);
        #[cfg(target_arch = "x86_64")]
        let fused = W == 8 && tile == 8;
        #[cfg(not(target_arch = "x86_64"))]
        let fused = false;
        if fused {
            // SAFETY: `W = 8` monomorphizations of this kernel only
            // exist inside the `avx512` dispatch wrapper below.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                fused8::forward_in(inputs, n, used, &self.twist, bits, &mut soa)
            };
        } else {
            let mut rre = [[0.0f64; 8]; W];
            let mut rim = [[0.0f64; 8]; W];
            let mut tre = [[0.0f64; W]; 8];
            let mut tim = [[0.0f64; W]; 8];
            for jb in (0..half).step_by(tile) {
                if tile == 8 {
                    for (l, a) in inputs.chunks_exact(n).take(used).enumerate() {
                        tile::prefetch(a, jb + 8);
                        tile::prefetch(a, jb + half + 8);
                        let (re, im) = (&a[jb..jb + 8], &a[jb + half..jb + half + 8]);
                        #[allow(clippy::manual_memcpy)] // per-lane: see `F64x::load`
                        for dj in 0..8 {
                            rre[l][dj] = re[dj];
                            rim[l][dj] = im[dj];
                        }
                    }
                    // SAFETY: `W = 4` monomorphizations of this kernel
                    // only exist inside the matching `#[target_feature]`
                    // wrappers below (see `simd::tile`).
                    unsafe {
                        tile::rows_to_cols::<W>(&rre, &mut tre);
                        tile::rows_to_cols::<W>(&rim, &mut tim);
                    }
                } else {
                    for (l, a) in inputs.chunks_exact(n).take(used).enumerate() {
                        for dj in 0..tile {
                            tre[dj][l] = a[jb + dj];
                            tim[dj][l] = a[jb + dj + half];
                        }
                    }
                }
                for (dj, (re, im)) in tre.iter().zip(&tim).enumerate().take(tile) {
                    let j = jb + dj;
                    // One lane-parallel twist multiply straight out of
                    // the tile registers. `mul_c` has exactly the
                    // `C64::mul` expression shape, so every lane matches
                    // the scalar path's `C64::new(a[j], a[j + half]) * tw`
                    // bit for bit (padding lanes hold zeros, never read
                    // back).
                    C64x::<W> {
                        re: F64x(*re),
                        im: F64x(*im),
                    }
                    .mul_c(self.twist[j])
                    .store_slot(&mut soa, bitrev(j, bits));
                }
            }
        }
        self.plan
            .transform_bitrev_soa::<W>(&mut soa, Direction::Positive);
        if fused {
            // SAFETY: as above — `W = 8` implies `avx512f`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                fused8::forward_out(&soa, half, used, out)
            };
        } else {
            let mut rre = [[0.0f64; 8]; W];
            let mut rim = [[0.0f64; 8]; W];
            let mut tre = [[0.0f64; W]; 8];
            let mut tim = [[0.0f64; W]; 8];
            for jb in (0..half).step_by(tile) {
                for (dj, (re, im)) in tre.iter_mut().zip(&mut tim).enumerate().take(tile) {
                    let slot = &soa[(jb + dj) * 2 * W..][..2 * W];
                    #[allow(clippy::manual_memcpy)] // per-lane: see `F64x::load`
                    for l in 0..W {
                        re[l] = slot[l];
                        im[l] = slot[W + l];
                    }
                }
                if tile == 8 {
                    // SAFETY: as above — lane width implies target
                    // features.
                    unsafe {
                        tile::cols_to_rows::<W>(&tre, &mut rre);
                        tile::cols_to_rows::<W>(&tim, &mut rim);
                        for (l, (rr, ri)) in rre.iter().zip(&rim).enumerate().take(used) {
                            let o = &mut out[l * half + jb..];
                            tile::prefetch(o, 8);
                            tile::prefetch(o, 12);
                            tile::interleave8::<W>(rr, ri, o);
                        }
                    }
                } else {
                    for l in 0..used {
                        for (dj, (re, im)) in tre.iter().zip(&tim).enumerate().take(tile) {
                            out[l * half + jb + dj] = C64::new(re[l], im[l]);
                        }
                    }
                }
            }
        }
    }

    /// SoA inverse kernel: `used ≤ W` spectra → `used` polynomials. The
    /// scale + untwist epilogue runs lane-parallel.
    #[inline(always)]
    fn inverse_batch_soa<const W: usize>(&self, spectra: &[C64], used: usize, out: &mut [f64]) {
        let (n, half) = (self.n, self.n / 2);
        let bits = self.plan.stages();
        let mut soa = F64_SCRATCH.take(half * 2 * W);
        // Same tiled transposes as the forward kernel (see there for
        // why): contiguous row moves plus in-register corner turns.
        let tile = half.min(8);
        #[cfg(target_arch = "x86_64")]
        let fused = W == 8 && tile == 8;
        #[cfg(not(target_arch = "x86_64"))]
        let fused = false;
        if fused {
            // SAFETY: `W = 8` monomorphizations of this kernel only
            // exist inside the `avx512` dispatch wrapper below.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                fused8::inverse_in(spectra, half, used, bits, &mut soa)
            };
        } else {
            let mut rre = [[0.0f64; 8]; W];
            let mut rim = [[0.0f64; 8]; W];
            let mut tre = [[0.0f64; W]; 8];
            let mut tim = [[0.0f64; W]; 8];
            for jb in (0..half).step_by(tile) {
                if tile == 8 {
                    // SAFETY: lane width implies target features — see
                    // `simd::tile` and the dispatch wrappers below.
                    unsafe {
                        for (l, s) in spectra.chunks_exact(half).take(used).enumerate() {
                            tile::prefetch(s, jb + 8);
                            tile::prefetch(s, jb + 12);
                            tile::deinterleave8::<W>(&s[jb..], &mut rre[l], &mut rim[l]);
                        }
                        tile::rows_to_cols::<W>(&rre, &mut tre);
                        tile::rows_to_cols::<W>(&rim, &mut tim);
                    }
                } else {
                    for (l, s) in spectra.chunks_exact(half).take(used).enumerate() {
                        for dj in 0..tile {
                            let c = s[jb + dj];
                            tre[dj][l] = c.re;
                            tim[dj][l] = c.im;
                        }
                    }
                }
                for (dj, (re, im)) in tre.iter().zip(&tim).enumerate().take(tile) {
                    C64x::<W> {
                        re: F64x(*re),
                        im: F64x(*im),
                    }
                    .store_slot(&mut soa, bitrev(jb + dj, bits));
                }
            }
        }
        self.plan
            .transform_bitrev_soa::<W>(&mut soa, Direction::Negative);
        let scale = 1.0 / half as f64;
        if fused {
            // SAFETY: as above — `W = 8` implies `avx512f`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                fused8::inverse_out(&soa, n, used, scale, &self.twist_inv, out)
            };
        } else {
            let mut rre = [[0.0f64; 8]; W];
            let mut rim = [[0.0f64; 8]; W];
            let mut tre = [[0.0f64; W]; 8];
            let mut tim = [[0.0f64; W]; 8];
            for jb in (0..half).step_by(tile) {
                for dj in 0..tile {
                    let j = jb + dj;
                    let c = C64x::<W>::load_slot(&soa, j)
                        .scale(scale)
                        .mul_c(self.twist_inv[j]);
                    tre[dj] = c.re.0;
                    tim[dj] = c.im.0;
                }
                if tile == 8 {
                    // SAFETY: as above — lane width implies target
                    // features.
                    unsafe {
                        tile::cols_to_rows::<W>(&tre, &mut rre);
                        tile::cols_to_rows::<W>(&tim, &mut rim);
                    }
                    for (l, o) in out.chunks_exact_mut(n).take(used).enumerate() {
                        tile::prefetch(o, jb + 8);
                        tile::prefetch(o, jb + half + 8);
                        let (or, oi) = o.split_at_mut(half);
                        let (or, oi) = (&mut or[jb..jb + 8], &mut oi[jb..jb + 8]);
                        #[allow(clippy::manual_memcpy)] // per-lane: see `F64x::load`
                        for dj in 0..8 {
                            or[dj] = rre[l][dj];
                            oi[dj] = rim[l][dj];
                        }
                    }
                } else {
                    for (l, o) in out.chunks_exact_mut(n).take(used).enumerate() {
                        for (dj, (re, im)) in tre.iter().zip(&tim).enumerate().take(tile) {
                            o[jb + dj] = re[l];
                            o[jb + dj + half] = im[l];
                        }
                    }
                }
            }
        }
    }

    /// AVX2 monomorphization of the forward SoA kernel (`W = 4`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 — guaranteed by the [`simd::level`]
    /// dispatch in [`NegacyclicFft::forward_batch_into`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn forward_batch_soa_avx2(&self, inputs: &[f64], used: usize, out: &mut [C64]) {
        self.forward_batch_soa::<4>(inputs, used, out);
    }

    /// AVX-512 monomorphization of the forward SoA kernel (`W = 8`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F/DQ — guaranteed by the dispatch.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn forward_batch_soa_avx512(&self, inputs: &[f64], used: usize, out: &mut [C64]) {
        self.forward_batch_soa::<8>(inputs, used, out);
    }

    /// AVX2 monomorphization of the inverse SoA kernel (`W = 4`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 — guaranteed by the dispatch.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn inverse_batch_soa_avx2(&self, spectra: &[C64], used: usize, out: &mut [f64]) {
        self.inverse_batch_soa::<4>(spectra, used, out);
    }

    /// AVX-512 monomorphization of the inverse SoA kernel (`W = 8`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F/DQ — guaranteed by the dispatch.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn inverse_batch_soa_avx512(&self, spectra: &[C64], used: usize, out: &mut [f64]) {
        self.inverse_batch_soa::<8>(spectra, used, out);
    }

    /// Negacyclic product of two real polynomials in `f64`.
    pub fn polymul_f64(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.polymul_f64_into(a, b, &mut out);
        out
    }

    /// [`NegacyclicFft::polymul_f64`] into a caller-provided buffer; all
    /// spectrum staging comes from the scratch pool (no allocations).
    ///
    /// # Panics
    ///
    /// Panics if any length differs from the ring degree.
    pub fn polymul_f64_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let half = self.n / 2;
        let mut fa = C64_SCRATCH.take(half);
        let mut fb = C64_SCRATCH.take(half);
        self.forward_into(a, &mut fa);
        self.forward_into(b, &mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x *= *y;
        }
        self.inverse_into(&mut fa, out);
    }

    /// Negacyclic product of two integer polynomials, rounded to the
    /// nearest integer. Exact whenever the true product coefficients and
    /// intermediate magnitudes stay within `f64`'s 53-bit mantissa
    /// headroom (Klemsa's error-free regime).
    pub fn polymul_i64(&self, a: &[i64], b: &[i64]) -> Vec<i128> {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        assert_eq!(b.len(), self.n, "polynomial length must equal degree");
        let mut af = F64_SCRATCH.take(self.n);
        let mut bf = F64_SCRATCH.take(self.n);
        for (o, &x) in af.iter_mut().zip(a) {
            *o = x as f64;
        }
        for (o, &x) in bf.iter_mut().zip(b) {
            *o = x as f64;
        }
        let mut prod = F64_SCRATCH.take(self.n);
        self.polymul_f64_into(&af, &bf, &mut prod);
        prod.iter().map(|&x| x.round_ties_even() as i128).collect()
    }

    /// Negacyclic product of two ring elements mod `q`, computed through
    /// the FFT with center-lifted operands. Rounding errors below the
    /// noise budget are tolerated by BFV decryption (the paper's
    /// kernel-level robustness); for small operands the result is exact.
    pub fn polymul_mod(&self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        assert_eq!(b.len(), self.n, "polynomial length must equal degree");
        let mut af = F64_SCRATCH.take(self.n);
        let mut bf = F64_SCRATCH.take(self.n);
        for (o, &x) in af.iter_mut().zip(a) {
            *o = center_lift(x, q) as f64;
        }
        for (o, &x) in bf.iter_mut().zip(b) {
            *o = center_lift(x, q) as f64;
        }
        let mut prod = F64_SCRATCH.take(self.n);
        self.polymul_f64_into(&af, &bf, &mut prod);
        let br = Barrett::new(q);
        prod.iter()
            .map(|&x| br.from_signed_i128(x.round_ties_even() as i128))
            .collect()
    }
}

/// Fully register-resident boundary transposes for the `W = 8`
/// (AVX-512) monomorphization: each tile is loaded straight into
/// `__m512d` registers, corner-turned with the in-register 8×8 shuffle
/// network, twist-multiplied lane-parallel, and stored — no stack
/// staging between the stages. Every lane evaluates exactly the scalar
/// expression sequence (explicit mul/add/sub intrinsics, never FMA), so
/// outputs stay bit-identical to the scalar path; padding lanes hold
/// zeros and are never read back.
///
/// # Safety
///
/// All functions here require `avx512f` and are `#[inline(always)]`
/// without their own `#[target_feature]`: they inherit the features of
/// their caller, and the only callers are `forward_batch_soa::<8>` /
/// `inverse_batch_soa::<8>`, which are instantiated exclusively inside
/// the `avx512f,avx512dq` dispatch wrappers above.
#[cfg(target_arch = "x86_64")]
mod fused8 {
    use crate::simd::tile::{self, x86::tr8x8_regs};
    use core::arch::x86_64::*;
    use flash_math::bitrev::bit_reverse as bitrev;
    use flash_math::C64;

    /// Forward fold + twist + transpose-in: `used` length-`n` polynomial
    /// rows become bit-reverse-scattered SoA slots of 8 lanes each.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `avx512f` (see module docs) and
    /// `used <= 8`; slice geometry is asserted.
    #[inline(always)]
    pub unsafe fn forward_in(
        inputs: &[f64],
        n: usize,
        used: usize,
        twist: &[C64],
        bits: u32,
        soa: &mut [f64],
    ) {
        let half = n / 2;
        assert_eq!(soa.len(), half * 16);
        assert_eq!(twist.len(), half);
        assert!(used <= 8 && used * n <= inputs.len());
        let mut re = [_mm512_setzero_pd(); 8];
        let mut im = [_mm512_setzero_pd(); 8];
        for jb in (0..half).step_by(8) {
            for (l, a) in inputs.chunks_exact(n).take(used).enumerate() {
                tile::prefetch(a, jb + 8);
                tile::prefetch(a, jb + half + 8);
                re[l] = _mm512_loadu_pd(a.as_ptr().add(jb));
                im[l] = _mm512_loadu_pd(a.as_ptr().add(jb + half));
            }
            let tre = tr8x8_regs(re);
            let tim = tr8x8_regs(im);
            for dj in 0..8 {
                let j = jb + dj;
                let w = twist[j];
                let wr = _mm512_set1_pd(w.re);
                let wi = _mm512_set1_pd(w.im);
                // `C64::mul` shape: (re·wr − im·wi, re·wi + im·wr).
                let or = _mm512_sub_pd(_mm512_mul_pd(tre[dj], wr), _mm512_mul_pd(tim[dj], wi));
                let oi = _mm512_add_pd(_mm512_mul_pd(tre[dj], wi), _mm512_mul_pd(tim[dj], wr));
                let p = soa.as_mut_ptr().add(bitrev(j, bits) * 16);
                _mm512_storeu_pd(p, or);
                _mm512_storeu_pd(p.add(8), oi);
            }
        }
    }

    /// Forward transpose-out: natural-order SoA slots back to `used`
    /// interleaved spectrum rows of `half` complex points each.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `avx512f` (see module docs) and
    /// `used <= 8`; slice geometry is asserted.
    #[inline(always)]
    pub unsafe fn forward_out(soa: &[f64], half: usize, used: usize, out: &mut [C64]) {
        assert_eq!(soa.len(), half * 16);
        assert!(used <= 8 && used * half <= out.len());
        let ia = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
        let ib = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
        let mut re = [_mm512_setzero_pd(); 8];
        let mut im = [_mm512_setzero_pd(); 8];
        for jb in (0..half).step_by(8) {
            for dj in 0..8 {
                let p = soa.as_ptr().add((jb + dj) * 16);
                re[dj] = _mm512_loadu_pd(p);
                im[dj] = _mm512_loadu_pd(p.add(8));
            }
            let rr = tr8x8_regs(re);
            let ri = tr8x8_regs(im);
            for (l, (r, i)) in rr.iter().zip(&ri).enumerate().take(used) {
                tile::prefetch(out, l * half + jb + 8);
                tile::prefetch(out, l * half + jb + 12);
                let o: *mut f64 = out.as_mut_ptr().add(l * half + jb).cast();
                let lo = _mm512_unpacklo_pd(*r, *i);
                let hi = _mm512_unpackhi_pd(*r, *i);
                _mm512_storeu_pd(o, _mm512_permutex2var_pd(lo, ia, hi));
                _mm512_storeu_pd(o.add(8), _mm512_permutex2var_pd(lo, ib, hi));
            }
        }
    }

    /// Inverse transpose-in: `used` interleaved spectrum rows become
    /// bit-reverse-scattered SoA slots.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `avx512f` (see module docs) and
    /// `used <= 8`; slice geometry is asserted.
    #[inline(always)]
    pub unsafe fn inverse_in(
        spectra: &[C64],
        half: usize,
        used: usize,
        bits: u32,
        soa: &mut [f64],
    ) {
        assert_eq!(soa.len(), half * 16);
        assert!(used <= 8 && used * half <= spectra.len());
        let ir = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
        let ii = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
        let mut re = [_mm512_setzero_pd(); 8];
        let mut im = [_mm512_setzero_pd(); 8];
        for jb in (0..half).step_by(8) {
            for (l, s) in spectra.chunks_exact(half).take(used).enumerate() {
                tile::prefetch(s, jb + 8);
                tile::prefetch(s, jb + 12);
                let p: *const f64 = s.as_ptr().add(jb).cast();
                let lo = _mm512_loadu_pd(p);
                let hi = _mm512_loadu_pd(p.add(8));
                re[l] = _mm512_permutex2var_pd(lo, ir, hi);
                im[l] = _mm512_permutex2var_pd(lo, ii, hi);
            }
            let tre = tr8x8_regs(re);
            let tim = tr8x8_regs(im);
            for dj in 0..8 {
                let p = soa.as_mut_ptr().add(bitrev(jb + dj, bits) * 16);
                _mm512_storeu_pd(p, tre[dj]);
                _mm512_storeu_pd(p.add(8), tim[dj]);
            }
        }
    }

    /// Inverse scale + untwist + transpose-out: natural-order SoA slots
    /// back to `used` length-`n` real/imag polynomial rows.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `avx512f` (see module docs) and
    /// `used <= 8`; slice geometry is asserted.
    #[inline(always)]
    pub unsafe fn inverse_out(
        soa: &[f64],
        n: usize,
        used: usize,
        scale: f64,
        twist_inv: &[C64],
        out: &mut [f64],
    ) {
        let half = n / 2;
        assert_eq!(soa.len(), half * 16);
        assert_eq!(twist_inv.len(), half);
        assert!(used <= 8 && used * n <= out.len());
        let sc = _mm512_set1_pd(scale);
        let mut re = [_mm512_setzero_pd(); 8];
        let mut im = [_mm512_setzero_pd(); 8];
        for jb in (0..half).step_by(8) {
            for dj in 0..8 {
                let j = jb + dj;
                let p = soa.as_ptr().add(j * 16);
                // `C64::scale` then `C64::mul`, exactly as the scalar
                // epilogue orders them.
                let sr = _mm512_mul_pd(_mm512_loadu_pd(p), sc);
                let si = _mm512_mul_pd(_mm512_loadu_pd(p.add(8)), sc);
                let w = twist_inv[j];
                let wr = _mm512_set1_pd(w.re);
                let wi = _mm512_set1_pd(w.im);
                re[dj] = _mm512_sub_pd(_mm512_mul_pd(sr, wr), _mm512_mul_pd(si, wi));
                im[dj] = _mm512_add_pd(_mm512_mul_pd(sr, wi), _mm512_mul_pd(si, wr));
            }
            let rr = tr8x8_regs(re);
            let ri = tr8x8_regs(im);
            for (l, o) in out.chunks_exact_mut(n).take(used).enumerate() {
                tile::prefetch(o, jb + 8);
                tile::prefetch(o, jb + half + 8);
                let p = o.as_mut_ptr();
                _mm512_storeu_pd(p.add(jb), rr[l]);
                _mm512_storeu_pd(p.add(jb + half), ri[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::prime::ntt_prime;
    use flash_ntt::polymul::negacyclic_mul_naive;
    use flash_ntt::NttTables;
    use rand::{Rng, SeedableRng};

    #[test]
    fn forward_matches_direct_evaluation() {
        let n = 8;
        let plan = NegacyclicFft::new(n);
        let a: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let f = plan.forward(&a);
        // F_u should equal a(ω^{4u+1}) with ω = e^{iπ/N}.
        for (u, &fu) in f.iter().enumerate() {
            let x = C64::expi(std::f64::consts::PI * (4 * u + 1) as f64 / n as f64);
            let mut val = C64::ZERO;
            let mut xp = C64::ONE;
            for &c in &a {
                val += xp.scale(c);
                xp *= x;
            }
            assert!((fu - val).abs() < 1e-9, "u={u}: {fu} vs {val}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 64;
        let plan = NegacyclicFft::new(n);
        let a: Vec<f64> = (0..n).map(|i| ((i * i) % 23) as f64 - 11.0).collect();
        let back = plan.inverse(&plan.forward(&a));
        for (x, y) in a.iter().zip(&back) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        let n = 8;
        let plan = NegacyclicFft::new(n);
        // X^7 * X = -1
        let mut a = vec![0i64; n];
        a[7] = 1;
        let mut b = vec![0i64; n];
        b[1] = 1;
        let c = plan.polymul_i64(&a, &b);
        assert_eq!(c[0], -1);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn fused_residue_forward_is_bit_identical_to_staged_lift() {
        let n = 256usize;
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1F7);
        for q in [ntt_prime(36, n as u64).unwrap(), 1u64 << 62] {
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let staged: Vec<f64> = a.iter().map(|&x| center_lift(x, q) as f64).collect();
            let mut want = vec![C64::ZERO; n / 2];
            plan.forward_into(&staged, &mut want);
            let mut got = vec![C64::ZERO; n / 2];
            plan.forward_residues_into(&a, q, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "q={q}");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "q={q}");
            }
        }
    }

    #[test]
    fn matches_ntt_over_small_modulus() {
        let n = 64usize;
        let q = ntt_prime(20, n as u64).unwrap();
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..128)).collect();
            let got = plan.polymul_mod(&a, &b, q);
            let want = negacyclic_mul_naive(&a, &b, q);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn matches_ntt_at_n4096_small_weights() {
        // The FLASH operating point: N = 4096, ~39-bit ciphertext modulus,
        // 4-bit weights. f64 FFT must land within the noise budget; for
        // this magnitude regime it is exact.
        let n = 4096usize;
        let q = ntt_prime(36, n as u64).unwrap();
        let t = NttTables::new(n, q).unwrap();
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        // sparse small weights (4-bit signed)
        let mut b = vec![0u64; n];
        for _ in 0..9 {
            let idx = rng.gen_range(0..n);
            let w: i64 = rng.gen_range(-8..8);
            b[idx] = flash_math::modular::from_signed(w, q);
        }
        let got = plan.polymul_mod(&a, &b, q);
        let want = flash_ntt::polymul::negacyclic_mul_ntt(&a, &b, &t);
        assert_eq!(got, want);
    }

    #[test]
    fn float_product_matches_schoolbook() {
        let n = 16;
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let got = plan.polymul_f64(&a, &b);
        for (k, &gk) in got.iter().enumerate() {
            let mut want = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                for (j, &bj) in b.iter().enumerate() {
                    if (i + j) % n == k {
                        let sign = if i + j >= n { -1.0 } else { 1.0 };
                        want += sign * ai * bj;
                    }
                }
            }
            assert!((gk - want).abs() < 1e-8, "k={k}");
        }
    }
}
