//! Negacyclic polynomial multiplication via the folded FFT.
//!
//! A real polynomial `a ∈ R[X]/(X^N + 1)` is determined on the odd powers
//! of `ω = e^{iπ/N}`; conjugate symmetry leaves `N/2` independent
//! evaluations. Folding `c_j = a_j + i·a_{j+N/2}` and twisting by `ω^j`
//! reduces the transform to an `N/2`-point complex FFT with positive
//! exponent:
//!
//! ```text
//! A_{2u} = Σ_j (a_j + i a_{j+N/2}) ω^j · e^{+2πi u j / (N/2)}
//! ```
//!
//! Point-wise products in this domain realize the negacyclic convolution
//! (Klemsa's extended FT / the classic TFHE trick), which is the paper's
//! Figure 4(b) pipeline and the source of its "N/2-point FFT vs N-point
//! NTT" accounting.

use crate::dft::Direction;
use crate::fft64::FftPlan;
use flash_math::modular::{center_lift, from_signed_i128};
use flash_math::C64;
use flash_runtime::{CacheStats, Interner, F64_SCRATCH};
use std::sync::Arc;

flash_runtime::scratch_pool! {
    /// Thread-local `C64` scratch pool shared by every spectrum staging
    /// buffer in the workspace (negacyclic/fixed-point/sparse paths).
    pub static C64_SCRATCH: C64
}

/// A reusable negacyclic FFT plan for ring degree `n`.
#[derive(Debug, Clone)]
pub struct NegacyclicFft {
    n: usize,
    plan: FftPlan,
    /// Twist factors `ω^j = e^{iπ j/N}` for `j` in `0..n/2`.
    twist: Vec<C64>,
    /// Inverse twist factors `ω^{-j}`.
    twist_inv: Vec<C64>,
}

/// Process-wide plan cache: one `NegacyclicFft` per distinct degree.
static SHARED_PLANS: Interner<usize, NegacyclicFft> = Interner::new();

impl NegacyclicFft {
    /// Creates a plan for degree `n` (a power of two, at least 4).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "degree must be a power of two >= 4"
        );
        let half = n / 2;
        let twist: Vec<C64> = (0..half)
            .map(|j| C64::expi(std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let twist_inv = twist.iter().map(|w| w.conj()).collect();
        Self {
            n,
            plan: FftPlan::new(half),
            twist,
            twist_inv,
        }
    }

    /// Like [`NegacyclicFft::new`], but interned process-wide: every
    /// call with the same degree returns the same `Arc` without
    /// rebuilding twist tables or the FFT plan.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn shared(n: usize) -> Arc<Self> {
        SHARED_PLANS.intern_with(n, |&n| NegacyclicFft::new(n))
    }

    /// Hit/miss counters of the shared per-degree plan cache.
    pub fn shared_cache_stats() -> CacheStats {
        SHARED_PLANS.stats()
    }

    /// Drops all shared plans (outstanding `Arc`s stay valid) and resets
    /// the counters.
    pub fn clear_shared_cache() {
        SHARED_PLANS.clear()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The underlying `N/2`-point FFT plan (shared with the fixed-point
    /// and sparse executors so all dataflows agree on stage structure).
    #[inline]
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Twist factor `ω^j` for `j < N/2`.
    #[inline]
    pub fn twist(&self, j: usize) -> C64 {
        self.twist[j]
    }

    /// Folds and twists a real polynomial into the complex half vector
    /// `d_j = (a_j + i·a_{j+N/2}) ω^j` — the input of the butterfly
    /// network.
    pub fn fold_twist(&self, a: &[f64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.n / 2];
        self.fold_twist_into(a, &mut out);
        out
    }

    /// [`NegacyclicFft::fold_twist`] into a caller-provided half vector.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N` or `out.len() != N/2`.
    pub fn fold_twist_into(&self, a: &[f64], out: &mut [C64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        let half = self.n / 2;
        assert_eq!(out.len(), half, "output length must be N/2");
        for (j, o) in out.iter_mut().enumerate() {
            *o = C64::new(a[j], a[j + half]) * self.twist[j];
        }
    }

    /// Forward negacyclic transform: `N` real coefficients → `N/2` complex
    /// evaluations at `ω^{4u+1}`.
    pub fn forward(&self, a: &[f64]) -> Vec<C64> {
        let mut d = vec![C64::ZERO; self.n / 2];
        self.forward_into(a, &mut d);
        d
    }

    /// [`NegacyclicFft::forward`] into a caller-provided spectrum buffer
    /// (no allocations).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N` or `out.len() != N/2`.
    pub fn forward_into(&self, a: &[f64], out: &mut [C64]) {
        self.fold_twist_into(a, out);
        self.plan.transform(out, Direction::Positive);
    }

    /// Inverse negacyclic transform: `N/2` complex evaluations → `N` real
    /// coefficients. The spectrum is staged through the scratch pool (the
    /// input slice is left untouched); callers that own a mutable
    /// spectrum should use [`NegacyclicFft::inverse_into`] directly.
    pub fn inverse(&self, spectrum: &[C64]) -> Vec<f64> {
        let mut d = C64_SCRATCH.take_copied(spectrum);
        let mut out = vec![0.0; self.n];
        self.inverse_into(&mut d, &mut out);
        out
    }

    /// In-place inverse transform: consumes the spectrum buffer (its
    /// contents are destroyed) and writes the `N` real coefficients into
    /// `out`. Performs no allocations.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != N/2` or `out.len() != N`.
    pub fn inverse_into(&self, spectrum: &mut [C64], out: &mut [f64]) {
        let half = self.n / 2;
        assert_eq!(spectrum.len(), half, "spectrum length must be N/2");
        assert_eq!(out.len(), self.n, "output length must equal degree");
        self.plan.transform(spectrum, Direction::Negative);
        let scale = 1.0 / half as f64;
        for j in 0..half {
            let c = spectrum[j].scale(scale) * self.twist_inv[j];
            out[j] = c.re;
            out[j + half] = c.im;
        }
    }

    /// Negacyclic product of two real polynomials in `f64`.
    pub fn polymul_f64(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.polymul_f64_into(a, b, &mut out);
        out
    }

    /// [`NegacyclicFft::polymul_f64`] into a caller-provided buffer; all
    /// spectrum staging comes from the scratch pool (no allocations).
    ///
    /// # Panics
    ///
    /// Panics if any length differs from the ring degree.
    pub fn polymul_f64_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let half = self.n / 2;
        let mut fa = C64_SCRATCH.take(half);
        let mut fb = C64_SCRATCH.take(half);
        self.forward_into(a, &mut fa);
        self.forward_into(b, &mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x *= *y;
        }
        self.inverse_into(&mut fa, out);
    }

    /// Negacyclic product of two integer polynomials, rounded to the
    /// nearest integer. Exact whenever the true product coefficients and
    /// intermediate magnitudes stay within `f64`'s 53-bit mantissa
    /// headroom (Klemsa's error-free regime).
    pub fn polymul_i64(&self, a: &[i64], b: &[i64]) -> Vec<i128> {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        assert_eq!(b.len(), self.n, "polynomial length must equal degree");
        let mut af = F64_SCRATCH.take(self.n);
        let mut bf = F64_SCRATCH.take(self.n);
        for (o, &x) in af.iter_mut().zip(a) {
            *o = x as f64;
        }
        for (o, &x) in bf.iter_mut().zip(b) {
            *o = x as f64;
        }
        let mut prod = F64_SCRATCH.take(self.n);
        self.polymul_f64_into(&af, &bf, &mut prod);
        prod.iter().map(|&x| x.round_ties_even() as i128).collect()
    }

    /// Negacyclic product of two ring elements mod `q`, computed through
    /// the FFT with center-lifted operands. Rounding errors below the
    /// noise budget are tolerated by BFV decryption (the paper's
    /// kernel-level robustness); for small operands the result is exact.
    pub fn polymul_mod(&self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        assert_eq!(a.len(), self.n, "polynomial length must equal degree");
        assert_eq!(b.len(), self.n, "polynomial length must equal degree");
        let mut af = F64_SCRATCH.take(self.n);
        let mut bf = F64_SCRATCH.take(self.n);
        for (o, &x) in af.iter_mut().zip(a) {
            *o = center_lift(x, q) as f64;
        }
        for (o, &x) in bf.iter_mut().zip(b) {
            *o = center_lift(x, q) as f64;
        }
        let mut prod = F64_SCRATCH.take(self.n);
        self.polymul_f64_into(&af, &bf, &mut prod);
        prod.iter()
            .map(|&x| from_signed_i128(x.round_ties_even() as i128, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::prime::ntt_prime;
    use flash_ntt::polymul::negacyclic_mul_naive;
    use flash_ntt::NttTables;
    use rand::{Rng, SeedableRng};

    #[test]
    fn forward_matches_direct_evaluation() {
        let n = 8;
        let plan = NegacyclicFft::new(n);
        let a: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let f = plan.forward(&a);
        // F_u should equal a(ω^{4u+1}) with ω = e^{iπ/N}.
        for (u, &fu) in f.iter().enumerate() {
            let x = C64::expi(std::f64::consts::PI * (4 * u + 1) as f64 / n as f64);
            let mut val = C64::ZERO;
            let mut xp = C64::ONE;
            for &c in &a {
                val += xp.scale(c);
                xp *= x;
            }
            assert!((fu - val).abs() < 1e-9, "u={u}: {fu} vs {val}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 64;
        let plan = NegacyclicFft::new(n);
        let a: Vec<f64> = (0..n).map(|i| ((i * i) % 23) as f64 - 11.0).collect();
        let back = plan.inverse(&plan.forward(&a));
        for (x, y) in a.iter().zip(&back) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        let n = 8;
        let plan = NegacyclicFft::new(n);
        // X^7 * X = -1
        let mut a = vec![0i64; n];
        a[7] = 1;
        let mut b = vec![0i64; n];
        b[1] = 1;
        let c = plan.polymul_i64(&a, &b);
        assert_eq!(c[0], -1);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn matches_ntt_over_small_modulus() {
        let n = 64usize;
        let q = ntt_prime(20, n as u64).unwrap();
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..128)).collect();
            let got = plan.polymul_mod(&a, &b, q);
            let want = negacyclic_mul_naive(&a, &b, q);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn matches_ntt_at_n4096_small_weights() {
        // The FLASH operating point: N = 4096, ~39-bit ciphertext modulus,
        // 4-bit weights. f64 FFT must land within the noise budget; for
        // this magnitude regime it is exact.
        let n = 4096usize;
        let q = ntt_prime(36, n as u64).unwrap();
        let t = NttTables::new(n, q).unwrap();
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        // sparse small weights (4-bit signed)
        let mut b = vec![0u64; n];
        for _ in 0..9 {
            let idx = rng.gen_range(0..n);
            let w: i64 = rng.gen_range(-8..8);
            b[idx] = flash_math::modular::from_signed(w, q);
        }
        let got = plan.polymul_mod(&a, &b, q);
        let want = flash_ntt::polymul::negacyclic_mul_ntt(&a, &b, &t);
        assert_eq!(got, want);
    }

    #[test]
    fn float_product_matches_schoolbook() {
        let n = 16;
        let plan = NegacyclicFft::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let got = plan.polymul_f64(&a, &b);
        for (k, &gk) in got.iter().enumerate() {
            let mut want = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                for (j, &bj) in b.iter().enumerate() {
                    if (i + j) % n == k {
                        let sign = if i + j >= n { -1.0 } else { 1.0 };
                        want += sign * ai * bj;
                    }
                }
            }
            assert!((gk - want).abs() < 1e-8, "k={k}");
        }
    }
}
