//! Iterative radix-2 Cooley–Tukey FFT over `f64` complex numbers.
//!
//! This is the full-precision dataflow of Figure 3: bit-reverse the input,
//! then `log2 m` stages of CT butterflies. The same stage structure is
//! reused by the fixed-point simulator and the sparse symbolic executor,
//! so the twiddle indexing here is the reference for both.

use crate::dft::Direction;
use flash_math::bitrev::{bit_reverse_permute, log2_exact};
use flash_math::C64;

/// A reusable FFT plan for a fixed size `m` (power of two).
#[derive(Debug, Clone)]
pub struct FftPlan {
    m: usize,
    log_m: u32,
    /// `e^{+2πi j/m}` for `j` in `0..m/2` — negated on the fly for the
    /// negative direction.
    roots_pos: Vec<C64>,
}

impl FftPlan {
    /// Creates a plan for `m`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two or `m < 2`.
    pub fn new(m: usize) -> Self {
        let log_m = log2_exact(m);
        assert!(m >= 2, "FFT size must be at least 2");
        let roots_pos = (0..m / 2)
            .map(|j| C64::expi(2.0 * std::f64::consts::PI * j as f64 / m as f64))
            .collect();
        Self {
            m,
            log_m,
            roots_pos,
        }
    }

    /// Transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.m
    }

    /// Number of butterfly stages (`log2 m`).
    #[inline]
    pub fn stages(&self) -> u32 {
        self.log_m
    }

    /// The twiddle `e^{sign·2πi j/m}` for `j < m/2`.
    #[inline]
    pub fn root(&self, j: usize, dir: Direction) -> C64 {
        let w = self.roots_pos[j];
        match dir {
            Direction::Positive => w,
            Direction::Negative => w.conj(),
        }
    }

    /// In-place FFT (no normalization). Input in natural order, output in
    /// natural order (an internal bit-reverse permutation is applied).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn transform(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.m, "data length must equal plan size");
        bit_reverse_permute(data);
        self.transform_bitrev_input(data, dir);
    }

    /// In-place FFT over *already bit-reversed* input — the raw butterfly
    /// cascade of Figure 3, used directly by the accelerator model where
    /// the permutation is free address wiring.
    pub fn transform_bitrev_input(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.m, "data length must equal plan size");
        let m = self.m;
        let mut len = 2usize; // butterfly block size at this stage
        while len <= m {
            let half = len / 2;
            let stride = m / len; // twiddle index stride
            for block in (0..m).step_by(len) {
                for j in 0..half {
                    let w = self.root(j * stride, dir);
                    let u = data[block + j];
                    let v = data[block + j + half] * w;
                    data[block + j] = u + v;
                    data[block + j + half] = u - v;
                }
            }
            len *= 2;
        }
    }

    /// Convenience: forward transform (negative exponent) of a copy.
    pub fn forward(&self, data: &[C64]) -> Vec<C64> {
        let mut v = data.to_vec();
        self.transform(&mut v, Direction::Negative);
        v
    }

    /// Convenience: unnormalized inverse (positive exponent) of a copy.
    /// Divide by `m` to invert [`FftPlan::forward`].
    pub fn backward(&self, data: &[C64]) -> Vec<C64> {
        let mut v = data.to_vec();
        self.transform(&mut v, Direction::Positive);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_both_directions() {
        for m in [2usize, 4, 8, 32, 128] {
            let plan = FftPlan::new(m);
            let x: Vec<C64> = (0..m)
                .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 1.7).cos()))
                .collect();
            for dir in [Direction::Negative, Direction::Positive] {
                let fast = {
                    let mut v = x.clone();
                    plan.transform(&mut v, dir);
                    v
                };
                let slow = dft(&x, dir);
                assert!(max_err(&fast, &slow) < 1e-9, "m={m} dir={dir:?}");
            }
        }
    }

    #[test]
    fn forward_backward_roundtrip() {
        let m = 256;
        let plan = FftPlan::new(m);
        let x: Vec<C64> = (0..m)
            .map(|i| C64::new(i as f64, -(i as f64) / 3.0))
            .collect();
        let y = plan.forward(&x);
        let z: Vec<C64> = plan
            .backward(&y)
            .iter()
            .map(|v| v.scale(1.0 / m as f64))
            .collect();
        assert!(max_err(&x, &z) < 1e-9);
    }

    #[test]
    fn convolution_theorem_cyclic() {
        // Cyclic convolution via FFT matches the schoolbook result.
        let m = 16;
        let plan = FftPlan::new(m);
        let a: Vec<f64> = (0..m).map(|i| (i as f64 * 0.9).sin()).collect();
        let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.4).cos()).collect();
        let fa = plan.forward(&a.iter().map(|&x| C64::from(x)).collect::<Vec<_>>());
        let fb = plan.forward(&b.iter().map(|&x| C64::from(x)).collect::<Vec<_>>());
        let prod: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        let c: Vec<C64> = plan
            .backward(&prod)
            .iter()
            .map(|v| v.scale(1.0 / m as f64))
            .collect();
        for k in 0..m {
            let mut want = 0.0;
            for i in 0..m {
                want += a[i] * b[(m + k - i) % m];
            }
            assert!((c[k].re - want).abs() < 1e-9);
            assert!(c[k].im.abs() < 1e-9);
        }
    }

    #[test]
    fn bitrev_entry_point_consistent() {
        let m = 64;
        let plan = FftPlan::new(m);
        let x: Vec<C64> = (0..m)
            .map(|i| C64::new((i * i) as f64 % 17.0, 0.0))
            .collect();
        let via_natural = plan.forward(&x);
        let mut pre = x.clone();
        flash_math::bitrev::bit_reverse_permute(&mut pre);
        plan.transform_bitrev_input(&mut pre, Direction::Negative);
        assert!(max_err(&via_natural, &pre) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "plan size")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut v = vec![C64::ZERO; 4];
        plan.transform(&mut v, Direction::Negative);
    }
}
