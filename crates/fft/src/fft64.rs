//! Iterative radix-2 Cooley–Tukey FFT over `f64` complex numbers.
//!
//! This is the full-precision dataflow of Figure 3: bit-reverse the input,
//! then `log2 m` stages of CT butterflies. The same stage structure is
//! reused by the fixed-point simulator and the sparse symbolic executor,
//! so the twiddle indexing here is the reference for both.

use crate::dft::Direction;
use flash_math::bitrev::{bit_reverse_permute, log2_exact};
use flash_math::C64;

/// A reusable FFT plan for a fixed size `m` (power of two).
#[derive(Debug, Clone)]
pub struct FftPlan {
    m: usize,
    log_m: u32,
    /// `e^{+2πi j/m}` for `j` in `0..m/2` — negated on the fly for the
    /// negative direction.
    roots_pos: Vec<C64>,
}

impl FftPlan {
    /// Creates a plan for `m`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two or `m < 2`.
    pub fn new(m: usize) -> Self {
        let log_m = log2_exact(m);
        assert!(m >= 2, "FFT size must be at least 2");
        let roots_pos = (0..m / 2)
            .map(|j| C64::expi(2.0 * std::f64::consts::PI * j as f64 / m as f64))
            .collect();
        Self {
            m,
            log_m,
            roots_pos,
        }
    }

    /// Transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.m
    }

    /// Number of butterfly stages (`log2 m`).
    #[inline]
    pub fn stages(&self) -> u32 {
        self.log_m
    }

    /// The twiddle `e^{sign·2πi j/m}` for `j < m/2`.
    #[inline]
    pub fn root(&self, j: usize, dir: Direction) -> C64 {
        let w = self.roots_pos[j];
        match dir {
            Direction::Positive => w,
            Direction::Negative => w.conj(),
        }
    }

    /// In-place FFT (no normalization). Input in natural order, output in
    /// natural order (an internal bit-reverse permutation is applied).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn transform(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.m, "data length must equal plan size");
        bit_reverse_permute(data);
        self.transform_bitrev_input(data, dir);
    }

    /// In-place FFT over *already bit-reversed* input — the raw butterfly
    /// cascade of Figure 3, used directly by the accelerator model where
    /// the permutation is free address wiring.
    pub fn transform_bitrev_input(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.m, "data length must equal plan size");
        let m = self.m;
        let mut len = 2usize; // butterfly block size at this stage
        while len <= m {
            let half = len / 2;
            let stride = m / len; // twiddle index stride
            for block in (0..m).step_by(len) {
                for j in 0..half {
                    let w = self.root(j * stride, dir);
                    let u = data[block + j];
                    let v = data[block + j + half] * w;
                    data[block + j] = u + v;
                    data[block + j + half] = u - v;
                }
            }
            len *= 2;
        }
    }

    /// The butterfly cascade of [`FftPlan::transform_bitrev_input`] over a
    /// lane-interleaved SoA batch: `soa` holds `m` slots of `W` complex
    /// lanes (`[re × W | im × W]` per slot, see [`crate::simd`]), already
    /// bit-reverse permuted along the slot axis. One twiddle load serves
    /// all `W` lanes; per lane the arithmetic sequence is exactly the
    /// scalar cascade, so outputs are bit-identical to `W` independent
    /// scalar transforms.
    ///
    /// Kept `inline(always)` so the `#[target_feature]` dispatch wrappers
    /// in `negacyclic.rs` monomorphize it *inside* their feature scope and
    /// the lane loops vectorize at the dispatched width.
    ///
    /// # Panics
    ///
    /// Panics if `soa.len() != 2 * W * self.size()`.
    /// One unfused butterfly stage at block size `len` over SoA slots.
    #[inline(always)]
    fn soa_stage<const W: usize>(&self, soa: &mut [f64], len: usize, dir: Direction) {
        use crate::simd::C64x;
        let m = self.m;
        let half = len / 2;
        let stride = m / len;
        for block in (0..m).step_by(len) {
            for j in 0..half {
                let w = self.root(j * stride, dir);
                let u = C64x::<W>::load_slot(soa, block + j);
                let v = C64x::<W>::load_slot(soa, block + j + half).mul_c(w);
                u.add(v).store_slot(soa, block + j);
                u.sub(v).store_slot(soa, block + j + half);
            }
        }
    }

    /// Two fused stages (`len`, `2·len`) over SoA slots: four slots per
    /// group stay in registers across both stages.
    #[inline(always)]
    fn soa_stage_pair<const W: usize>(&self, soa: &mut [f64], len: usize, dir: Direction) {
        use crate::simd::C64x;
        let m = self.m;
        let half = len / 2;
        let stride1 = m / len;
        let stride2 = m / (2 * len);
        for block in (0..m).step_by(2 * len) {
            for j in 0..half {
                let w1 = self.root(j * stride1, dir);
                // Stage `len`, both sub-blocks (they share `w1`).
                let a0 = C64x::<W>::load_slot(soa, block + j);
                let b0 = C64x::<W>::load_slot(soa, block + j + half).mul_c(w1);
                let u0 = a0.add(b0);
                let v0 = a0.sub(b0);
                let a1 = C64x::<W>::load_slot(soa, block + len + j);
                let b1 = C64x::<W>::load_slot(soa, block + len + j + half).mul_c(w1);
                let u1 = a1.add(b1);
                let v1 = a1.sub(b1);
                // Stage `2·len`: `(j, j+len)` and `(j+half, j+half+len)`.
                let t0 = u1.mul_c(self.root(j * stride2, dir));
                u0.add(t0).store_slot(soa, block + j);
                u0.sub(t0).store_slot(soa, block + len + j);
                let t1 = v1.mul_c(self.root((j + half) * stride2, dir));
                v0.add(t1).store_slot(soa, block + j + half);
                v0.sub(t1).store_slot(soa, block + len + j + half);
            }
        }
    }

    /// Three fused stages (`len`, `2·len`, `4·len`) over SoA slots: eight
    /// slots per group stay in registers across all three stages.
    #[inline(always)]
    fn soa_stage_triple<const W: usize>(&self, soa: &mut [f64], len: usize, dir: Direction) {
        use crate::simd::C64x;
        let m = self.m;
        let half = len / 2;
        let stride1 = m / len;
        let stride2 = m / (2 * len);
        let stride3 = m / (4 * len);
        for block in (0..m).step_by(4 * len) {
            for j in 0..half {
                // Stage `len`: four sub-blocks, all sharing `w1`.
                let w1 = self.root(j * stride1, dir);
                let (mut s, mut t) = ([C64x::<W>::zero(); 4], [C64x::<W>::zero(); 4]);
                for k in 0..4 {
                    let a = C64x::<W>::load_slot(soa, block + k * len + j);
                    let b = C64x::<W>::load_slot(soa, block + k * len + j + half).mul_c(w1);
                    s[k] = a.add(b);
                    t[k] = a.sub(b);
                }
                // Stage `2·len`: pairs `(s0,s1)`, `(s2,s3)` at index `j`
                // and `(t0,t1)`, `(t2,t3)` at index `j + half`.
                let w2a = self.root(j * stride2, dir);
                let w2b = self.root((j + half) * stride2, dir);
                let (u0, u1) = (s[0], s[1].mul_c(w2a));
                let (p0, p2) = (u0.add(u1), u0.sub(u1));
                let (u2, u3) = (s[2], s[3].mul_c(w2a));
                let (p4, p6) = (u2.add(u3), u2.sub(u3));
                let (v0, v1) = (t[0], t[1].mul_c(w2b));
                let (p1, p3) = (v0.add(v1), v0.sub(v1));
                let (v2, v3) = (t[2], t[3].mul_c(w2b));
                let (p5, p7) = (v2.add(v3), v2.sub(v3));
                // Stage `4·len`: pairs at indices `j`, `j+half`, `j+len`,
                // `j+len+half`.
                let q = p4.mul_c(self.root(j * stride3, dir));
                p0.add(q).store_slot(soa, block + j);
                p0.sub(q).store_slot(soa, block + 2 * len + j);
                let q = p5.mul_c(self.root((j + half) * stride3, dir));
                p1.add(q).store_slot(soa, block + j + half);
                p1.sub(q).store_slot(soa, block + 2 * len + j + half);
                let q = p6.mul_c(self.root((j + len) * stride3, dir));
                p2.add(q).store_slot(soa, block + len + j);
                p2.sub(q).store_slot(soa, block + 3 * len + j);
                let q = p7.mul_c(self.root((j + len + half) * stride3, dir));
                p3.add(q).store_slot(soa, block + len + j + half);
                p3.sub(q).store_slot(soa, block + 3 * len + j + half);
            }
        }
    }

    /// The SoA buffer is `W×` a single transform, so unlike the scalar
    /// cascade it lives in L2, and every stage pays a full read+write
    /// sweep of it. Stages are therefore fused — in triples (radix-2³)
    /// with a pair/single prologue to absorb `log2 m mod 3` — cutting
    /// the sweeps from `log2 m` to about a third. Per lane the
    /// expression tree is unchanged: each fused stage consumes exactly
    /// the values the unfused stage would have stored, so outputs stay
    /// bit-identical to the scalar cascade.
    #[inline(always)]
    pub fn transform_bitrev_soa<const W: usize>(&self, soa: &mut [f64], dir: Direction) {
        let m = self.m;
        assert_eq!(soa.len(), 2 * W * m, "SoA batch must hold m slots");
        let mut len = 2usize;
        let mut rem = self.log_m;
        if rem % 3 == 1 {
            self.soa_stage::<W>(soa, len, dir);
            len *= 2;
            rem -= 1;
        } else if rem % 3 == 2 {
            self.soa_stage_pair::<W>(soa, len, dir);
            len *= 4;
            rem -= 2;
        }
        while rem > 0 {
            self.soa_stage_triple::<W>(soa, len, dir);
            len *= 8;
            rem -= 3;
        }
    }

    /// Convenience: forward transform (negative exponent) of a copy.
    pub fn forward(&self, data: &[C64]) -> Vec<C64> {
        let mut v = data.to_vec();
        self.transform(&mut v, Direction::Negative);
        v
    }

    /// Convenience: unnormalized inverse (positive exponent) of a copy.
    /// Divide by `m` to invert [`FftPlan::forward`].
    pub fn backward(&self, data: &[C64]) -> Vec<C64> {
        let mut v = data.to_vec();
        self.transform(&mut v, Direction::Positive);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_both_directions() {
        for m in [2usize, 4, 8, 32, 128] {
            let plan = FftPlan::new(m);
            let x: Vec<C64> = (0..m)
                .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 1.7).cos()))
                .collect();
            for dir in [Direction::Negative, Direction::Positive] {
                let fast = {
                    let mut v = x.clone();
                    plan.transform(&mut v, dir);
                    v
                };
                let slow = dft(&x, dir);
                assert!(max_err(&fast, &slow) < 1e-9, "m={m} dir={dir:?}");
            }
        }
    }

    #[test]
    fn forward_backward_roundtrip() {
        let m = 256;
        let plan = FftPlan::new(m);
        let x: Vec<C64> = (0..m)
            .map(|i| C64::new(i as f64, -(i as f64) / 3.0))
            .collect();
        let y = plan.forward(&x);
        let z: Vec<C64> = plan
            .backward(&y)
            .iter()
            .map(|v| v.scale(1.0 / m as f64))
            .collect();
        assert!(max_err(&x, &z) < 1e-9);
    }

    #[test]
    fn convolution_theorem_cyclic() {
        // Cyclic convolution via FFT matches the schoolbook result.
        let m = 16;
        let plan = FftPlan::new(m);
        let a: Vec<f64> = (0..m).map(|i| (i as f64 * 0.9).sin()).collect();
        let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.4).cos()).collect();
        let fa = plan.forward(&a.iter().map(|&x| C64::from(x)).collect::<Vec<_>>());
        let fb = plan.forward(&b.iter().map(|&x| C64::from(x)).collect::<Vec<_>>());
        let prod: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        let c: Vec<C64> = plan
            .backward(&prod)
            .iter()
            .map(|v| v.scale(1.0 / m as f64))
            .collect();
        for k in 0..m {
            let mut want = 0.0;
            for i in 0..m {
                want += a[i] * b[(m + k - i) % m];
            }
            assert!((c[k].re - want).abs() < 1e-9);
            assert!(c[k].im.abs() < 1e-9);
        }
    }

    #[test]
    fn bitrev_entry_point_consistent() {
        let m = 64;
        let plan = FftPlan::new(m);
        let x: Vec<C64> = (0..m)
            .map(|i| C64::new((i * i) as f64 % 17.0, 0.0))
            .collect();
        let via_natural = plan.forward(&x);
        let mut pre = x.clone();
        flash_math::bitrev::bit_reverse_permute(&mut pre);
        plan.transform_bitrev_input(&mut pre, Direction::Negative);
        assert!(max_err(&via_natural, &pre) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "plan size")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut v = vec![C64::ZERO; 4];
        plan.transform(&mut v, Direction::Negative);
    }
}
