//! Naive discrete Fourier transform — the correctness oracle for the fast
//! transforms.

use flash_math::C64;

/// Sign convention of the transform exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-2πi jk/m}` (the usual engineering "forward").
    Negative,
    /// `e^{+2πi jk/m}`.
    Positive,
}

impl Direction {
    /// The sign as a float multiplier.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Negative => -1.0,
            Direction::Positive => 1.0,
        }
    }
}

/// Computes the `O(m²)` DFT of `data` with the given exponent sign.
/// No normalization is applied.
pub fn dft(data: &[C64], dir: Direction) -> Vec<C64> {
    let m = data.len();
    let sign = dir.sign();
    (0..m)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % m) as f64 / m as f64;
                acc += x * C64::expi(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![C64::ZERO; 8];
        x[0] = C64::ONE;
        for dir in [Direction::Negative, Direction::Positive] {
            let y = dft(&x, dir);
            for v in y {
                assert!((v - C64::ONE).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dft_inverse_pair_roundtrips() {
        let x: Vec<C64> = (0..16)
            .map(|i| C64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = dft(&x, Direction::Negative);
        let z = dft(&y, Direction::Positive);
        for (a, b) in x.iter().zip(&z) {
            assert!((*a - b.scale(1.0 / 16.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<C64> = (0..8).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let y = dft(&x, Direction::Negative);
        let ex: f64 = x.iter().map(|v| v.abs2()).sum();
        let ey: f64 = y.iter().map(|v| v.abs2()).sum();
        assert!((ey - 8.0 * ex).abs() < 1e-8);
    }
}
