//! End-to-end private-inference runs over all linear layers of a network
//! — the data of Table IV (latency, accuracy) and Figure 11(d)(e)
//! (energy ablation).

use crate::config::FlashConfig;
use crate::schedule::{layer_chip_energy_uj, layer_energy, schedule_layer, LayerPerf};
use crate::workload::{layer_workload, LayerWorkload};
use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_hw::baselines::ChamModel;
use flash_hw::cost::CostModel;
use flash_hw::energy::{f1_chip_energy_uj, DesignPoint, EnergyReport};
use flash_nn::quant::Requantizer;
use flash_nn::robustness::{layer_flip_rate, MarginModel};
use flash_nn::Network;
use rand::SeedableRng;

/// One layer's results within a network run.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// The extracted workload.
    pub workload: LayerWorkload,
    /// Scheduled performance.
    pub perf: LayerPerf,
    /// Bottom-up datapath energy.
    pub energy: EnergyReport,
    /// Chip-level energy in µJ.
    pub chip_energy_uj: f64,
}

/// Whole-network results.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Network name.
    pub name: String,
    /// Per-layer results.
    pub layers: Vec<LayerRun>,
    /// Total FLASH latency over all linear layers (seconds), summing each
    /// layer's busiest engine including the point-wise array.
    pub total_latency_s: f64,
    /// Transform-side latency with cross-layer overlap (seconds): the
    /// busiest of the weight array and the FP array over the whole
    /// network. This is the Table-IV metric — the paper's latency counts
    /// transform work and explicitly leaves the point-wise stage as the
    /// "new bottleneck … focus of future research".
    pub transform_latency_s: f64,
    /// Total chip-level energy (power × busy time, µJ).
    pub total_chip_energy_uj: f64,
    /// Total bottom-up datapath energy (µJ).
    pub total_datapath_energy_uj: f64,
    /// CHAM-model latency for the same layers (seconds).
    pub cham_latency_s: f64,
    /// F1 energy for the same workload: chip-level transform energy plus
    /// its modular point-wise datapath (µJ).
    pub f1_energy_uj: f64,
}

impl NetworkRun {
    /// FLASH speedup over the CHAM model (Table IV; transform-side
    /// latency on both sides).
    pub fn speedup_vs_cham(&self) -> f64 {
        self.cham_latency_s / self.transform_latency_s
    }

    /// Energy reduction vs F1 (the paper's 87 % headline). FLASH is
    /// charged its bottom-up datapath energy scaled by the chip overhead
    /// (buffers/control share of the architecture power); F1 is charged
    /// its published chip-level transform efficiency plus its modular
    /// point-wise datapath.
    pub fn energy_reduction_vs_f1(&self) -> f64 {
        1.0 - self.total_datapath_energy_uj * CHIP_OVERHEAD / self.f1_energy_uj
    }

    /// Total transform work in normalized units.
    pub fn transform_work_units(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.workload.transform_work_units())
            .sum()
    }
}

/// Buffer/control overhead multiplier applied to FLASH's datapath energy
/// for chip-level comparisons (from the Figure-12 breakdown, buffers and
/// control are a modest share of total power).
const CHIP_OVERHEAD: f64 = 1.25;

/// Runs the performance model over every conv layer of a network.
pub fn run_network(net: &Network, cfg: &FlashConfig) -> NetworkRun {
    let _t = flash_telemetry::span!("model.run_network");
    let model = CostModel::cmos28();
    let flash_point = DesignPoint {
        label: "FLASH",
        weight_bu: flash_hw::units::BuKind::flash_approx(),
        sparse: true,
    };
    let cham = ChamModel::default();
    let mut layers = Vec::with_capacity(net.convs.len());
    let mut total_latency = 0.0;
    let mut total_chip_uj = 0.0;
    let mut total_datapath_uj = 0.0;
    let mut cham_latency = 0.0;
    let mut work_units = 0.0;
    let mut total_pointwise = 0u64;
    let mut weight_cycles_sum = 0u64;
    let mut fp_cycles_sum = 0u64;
    // conv layers plus the final fully-connected layer: workload
    // extraction (symbolic sparsity analysis) and the per-layer
    // perf/energy models are independent across layers, so both fan out;
    // the totals fold below stays sequential in layer order.
    let mut workloads: Vec<LayerWorkload> =
        flash_runtime::parallel_map(&net.convs, |spec| layer_workload(spec, cfg.n()));
    for &(ni, no) in &net.fcs {
        workloads.push(crate::workload::fc_workload(ni, no, cfg.n()));
    }
    let evaluated = flash_runtime::parallel_map(&workloads, |w| {
        let perf = schedule_layer(w, &cfg.arch, &cfg.pe);
        let energy = layer_energy(w, &flash_point, &model);
        let chip_uj = layer_chip_energy_uj(&perf, &cfg.arch, &model);
        (perf, energy, chip_uj)
    });
    for (w, (perf, energy, chip_uj)) in workloads.into_iter().zip(evaluated) {
        weight_cycles_sum += perf.weight_cycles;
        fp_cycles_sum += perf.fp_fft_cycles;
        total_latency += perf.latency_s;
        total_chip_uj += chip_uj;
        total_datapath_uj += energy.total_pj() / 1e6;
        // CHAM runs every transform dense (weights, activations, inverse)
        // plus the modular point-wise work.
        let transforms = w.weight_transforms + w.act_transforms + w.inverse_transforms;
        cham_latency += cham.latency_s(transforms, cfg.n(), w.pointwise);
        work_units += w.transform_work_units();
        total_pointwise += w.pointwise;
        layers.push(LayerRun {
            workload: w,
            perf,
            energy,
            chip_energy_uj: chip_uj,
        });
    }
    // F1's point-wise products run on its 14 nm modular multipliers.
    let f1_pw_pj = flash_hw::cost::TechNode::n14()
        .scale(model.modular_mult_barrett(32))
        .energy_per_cycle_pj();
    NetworkRun {
        name: net.name.clone(),
        layers,
        total_latency_s: total_latency,
        transform_latency_s: weight_cycles_sum.max(fp_cycles_sum) as f64
            / (cfg.arch.freq_ghz * 1e9),
        total_chip_energy_uj: total_chip_uj,
        total_datapath_energy_uj: total_datapath_uj,
        cham_latency_s: cham_latency,
        f1_energy_uj: f1_chip_energy_uj(work_units) + total_pointwise as f64 * f1_pw_pj / 1e6,
    }
}

/// The five-bar ablation of Figure 11(d)(e): total weight-transform and
/// whole-HConv energy of a network at each design point, in µJ.
pub fn ablation_energy(net: &Network, cfg: &FlashConfig) -> Vec<(&'static str, f64, f64)> {
    let model = CostModel::cmos28();
    let workloads: Vec<LayerWorkload> =
        flash_runtime::parallel_map(&net.convs, |s| layer_workload(s, cfg.n()));
    let points = DesignPoint::ablation_points();
    flash_runtime::parallel_map(&points, |p| {
        let mut weight = 0.0;
        let mut total = 0.0;
        for w in &workloads {
            let e = layer_energy(w, p, &model);
            weight += e.weight_pj / 1e6;
            total += e.total_pj() / 1e6;
        }
        (p.label, weight, total)
    })
}

/// Estimates the network accuracy under FLASH's approximate numerics:
/// Monte-Carlo HConv error at the configured numerics → re-quantization
/// flip rate → margin-model accuracy (the documented ImageNet
/// substitution).
pub fn accuracy_estimate(cfg: &FlashConfig, baseline_acc: f64, seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Representative layer statistics: 9-tap weight polys, share-domain
    // activations spanning the plaintext ring.
    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: 9,
        act_mag: (cfg.he.t / 2) as f64,
    };
    let err = monte_carlo_error(&cfg.numerics, wl, 2, &mut rng);
    // Errors live in the q-domain; decryption scales them by t/q.
    let sp_error_std = err.variance.sqrt() * cfg.he.t as f64 / cfg.he.q as f64;
    // Representative re-quantization: W4A4, C*k^2 = 576 taps.
    let requant = Requantizer::calibrate(576 * 8 * 8, 4);
    let sps: Vec<i64> = (-(576 * 64)..(576 * 64)).step_by(97).collect();
    let flip = layer_flip_rate(&requant, &sps, sp_error_std, &mut rng);
    MarginModel::new(baseline_acc).accuracy(flip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_nn::{resnet18_conv_layers, resnet50_conv_layers};

    #[test]
    fn resnet18_run_matches_paper_regime() {
        let cfg = FlashConfig::paper_default();
        let run = run_network(&resnet18_conv_layers(), &cfg);
        // Paper Table IV: FLASH 1.64 ms, CHAM 35.9 ms, 21.84x.
        assert!(
            (0.3e-3..20e-3).contains(&run.total_latency_s),
            "latency {} s",
            run.total_latency_s
        );
        let s = run.speedup_vs_cham();
        assert!((5.0..120.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn resnet50_is_slower_and_speedup_larger() {
        let cfg = FlashConfig::paper_default();
        let r18 = run_network(&resnet18_conv_layers(), &cfg);
        let r50 = run_network(&resnet50_conv_layers(), &cfg);
        assert!(r50.total_latency_s > r18.total_latency_s);
        // ResNet-50's 1x1-heavy layers are sparser, so the paper's CHAM
        // gap grows (64x vs 21.8x).
        assert!(r50.speedup_vs_cham() > r18.speedup_vs_cham() * 0.8);
    }

    #[test]
    fn energy_reduction_vs_f1_in_paper_regime() {
        // Paper: ~87 % energy reduction vs F1 for HConv.
        let cfg = FlashConfig::paper_default();
        for net in [resnet18_conv_layers(), resnet50_conv_layers()] {
            let run = run_network(&net, &cfg);
            let red = run.energy_reduction_vs_f1();
            assert!((0.5..0.99).contains(&red), "{}: reduction {red}", net.name);
        }
    }

    #[test]
    fn ablation_bars_ordered() {
        let cfg = FlashConfig::paper_default();
        let bars = ablation_energy(&resnet18_conv_layers(), &cfg);
        assert_eq!(bars.len(), 5);
        let get = |label: &str| bars.iter().find(|b| b.0 == label).unwrap().1;
        let fp = get("FFT (FP)");
        let flash = get("FLASH");
        assert!(get("FXP FFT") < fp);
        assert!(get("Sparse FFT (FP)") < 0.25 * fp);
        assert!(get("Approx FFT") < 0.25 * fp);
        // combined optimizations: ~1-4 % of the FP weight-transform energy
        assert!(flash < 0.05 * fp, "flash {flash} vs fp {fp}");
    }

    #[test]
    fn accuracy_proxy_close_to_baseline_at_paper_point() {
        let cfg = FlashConfig::paper_default();
        let acc = accuracy_estimate(&cfg, 0.7424, 3);
        // paper: 74.24 -> 74.19 (drop 0.05 pts); allow up to ~1.5 pts in
        // the proxy.
        assert!(acc <= 0.7424 + 1e-9);
        assert!(acc > 0.72, "acc {acc}");
    }
}
