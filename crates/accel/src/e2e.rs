//! End-to-end private inference: HE convolutions, 2PC non-linear layers.
//!
//! This module drives complete quantized networks through the hybrid
//! protocol the rest of the workspace models: every convolution runs
//! homomorphically over additive shares
//! ([`FlashHconv::run_layer_shared`]), every non-linearity — ReLU,
//! re-quantization, pooling, the classifier and the final argmax — runs
//! on the executable 2PC suite ([`NonlinearSession`]), and activations
//! stay secret-shared between the stages. Nothing is ever reconstructed
//! until the argmax reveals the predicted class.
//!
//! Two workloads are wired up:
//!
//! * [`run_synthetic_e2e`] — a [`SyntheticCnn`], whose labels are its
//!   own exact argmax, so private/plaintext agreement is the direct
//!   measure of protocol correctness;
//! * [`run_resnet_e2e`] — a width/resolution-reduced ResNet-18
//!   ([`QuantResnet`]) with the full residual topology from
//!   [`flash_nn::resnet`]: stem, max-pool, identity and projection
//!   shortcuts, global average pooling, classifier, argmax.
//!
//! Every layer reports HE latency/ciphertext bytes and 2PC
//! latency/payload/wire bytes next to the [`NonlinearModel`] prediction
//! for the same element count, so the measured traffic cross-checks the
//! analytical communication model end to end.
//!
//! [`NonlinearModel`]: flash_2pc::NonlinearModel

use std::time::Instant;

use crate::config::FlashConfig;
use crate::hconv::FlashHconv;
use flash_2pc::error::FlashError;
use flash_2pc::nonlinear::exec::{NonlinearSession, NonlinearStats};
use flash_2pc::nonlinear::NonlinearModel;
use flash_2pc::protocol::ProtocolStats;
use flash_2pc::transport::TransportConfig;
use flash_he::{HeParams, PolyMulBackend, SecretKey};
use flash_nn::layers::ConvLayerSpec;
use flash_nn::quant::{Quantizer, Requantizer};
use flash_nn::resnet::QuantResnet;
use flash_nn::synthetic::SyntheticCnn;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The end-to-end operating point: `N = 256` with a power-of-two
/// ciphertext modulus (`q = 2^62`, exact wrapping MAC path) and the
/// paper's `l = 21` share ring, small enough that a full reduced
/// ResNet-18 runs in test time while keeping the paper's plaintext
/// width.
pub fn e2e_config() -> FlashConfig {
    let mut cfg = FlashConfig::test_small();
    cfg.he = HeParams::new_pow2(256, 62, 1 << 21, 3.2);
    cfg
}

/// Options of one end-to-end run.
#[derive(Debug, Clone)]
pub struct E2eOptions {
    /// Inference samples to run (agreement is measured across them).
    pub samples: usize,
    /// Seed for keys, inputs, shares and protocol masks.
    pub seed: u64,
    /// Wire configuration for *both* the HE and the 2PC links (fault
    /// plans propagate to every transport, salted per direction).
    pub transport: TransportConfig,
}

impl Default for E2eOptions {
    fn default() -> Self {
        Self {
            samples: 5,
            seed: 0xf1a5_4e2e,
            transport: TransportConfig::default(),
        }
    }
}

/// Latency and communication of one network layer, summed over samples.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name (conv layers keep their torchvision names).
    pub name: String,
    /// `"conv"`, `"pool"`, `"fc"` or `"argmax"`.
    pub kind: &'static str,
    /// Wall-clock milliseconds in the HE convolution protocol.
    pub he_ms: f64,
    /// Ciphertext bytes both directions (HE upload + download).
    pub he_bytes: u64,
    /// Wall-clock milliseconds in the 2PC non-linear suite.
    pub nonlinear_ms: f64,
    /// 2PC payload bytes both directions, framing excluded.
    pub nonlinear_payload_bytes: u64,
    /// 2PC framed wire bytes, headers/checksums/retransmissions
    /// included.
    pub nonlinear_wire_bytes: u64,
    /// The [`flash_2pc::NonlinearModel`] payload prediction for this
    /// layer's element count.
    pub predicted_bytes: f64,
    /// Elements through the layer's non-linear stage.
    pub elems: u64,
    /// Faulty frames detected (HE + 2PC wires).
    pub faults_detected: u64,
    /// Retransmissions requested (HE + 2PC wires).
    pub frames_retried: u64,
}

/// One end-to-end private-inference report.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// Network name.
    pub network: String,
    /// Samples run.
    pub samples: usize,
    /// Fraction of samples whose securely-revealed argmax equals the
    /// plaintext reference argmax.
    pub agreement: f64,
    /// Per-layer accounting, summed over all samples.
    pub layers: Vec<LayerReport>,
}

impl E2eReport {
    /// Total HE milliseconds.
    pub fn he_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.he_ms).sum()
    }

    /// Total 2PC milliseconds.
    pub fn nonlinear_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.nonlinear_ms).sum()
    }

    /// Total HE ciphertext bytes.
    pub fn he_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.he_bytes).sum()
    }

    /// Total 2PC payload bytes.
    pub fn nonlinear_payload_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.nonlinear_payload_bytes).sum()
    }

    /// Total 2PC framed wire bytes.
    pub fn nonlinear_wire_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.nonlinear_wire_bytes).sum()
    }

    /// Total predicted 2PC payload bytes.
    pub fn predicted_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.predicted_bytes).sum()
    }

    /// Faulty frames detected across every wire.
    pub fn faults_detected(&self) -> u64 {
        self.layers.iter().map(|l| l.faults_detected).sum()
    }

    /// Retransmissions across every wire.
    pub fn frames_retried(&self) -> u64 {
        self.layers.iter().map(|l| l.frames_retried).sum()
    }

    /// Measured 2PC payload over the model prediction — the end-to-end
    /// cross-check that the executed traffic tracks the analytical
    /// communication model (the acceptance band is `[0.5, 2]`).
    pub fn byte_model_ratio(&self) -> f64 {
        self.nonlinear_payload_bytes() as f64 / self.predicted_bytes().max(1.0)
    }
}

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Per-sample execution context: the engine, the session and the report
/// rows this sample produced (merged into the run totals afterwards).
struct SampleCtx<'a> {
    engine: &'a FlashHconv,
    sk: &'a SecretKey,
    session: &'a mut NonlinearSession,
    rng: &'a mut StdRng,
    layers: Vec<LayerReport>,
}

/// Shares of one activation tensor.
type Shares = (Vec<u64>, Vec<u64>);

impl SampleCtx<'_> {
    fn he_conv(
        &mut self,
        spec: &ConvLayerSpec,
        weights: &[i64],
        xc: &[u64],
        xs: &[u64],
    ) -> Result<(Shares, f64, ProtocolStats), FlashError> {
        let t0 = Instant::now();
        let (shares, stats) = self
            .engine
            .run_layer_shared(self.sk, spec, xc, xs, weights, self.rng)?;
        Ok((shares, ms(t0), stats))
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        name: &str,
        kind: &'static str,
        he: Option<(f64, &ProtocolStats)>,
        nl_ms: f64,
        d: &NonlinearStats,
        predicted: f64,
        elems: u64,
    ) {
        let (he_ms, he_bytes, he_faults, he_retries) = match he {
            Some((t, s)) => (
                t,
                (s.upload_bytes + s.download_bytes) as u64,
                s.faults_detected as u64,
                s.frames_retried as u64,
            ),
            None => (0.0, 0, 0, 0),
        };
        self.layers.push(LayerReport {
            name: name.to_string(),
            kind,
            he_ms,
            he_bytes,
            nonlinear_ms: nl_ms,
            nonlinear_payload_bytes: d.payload_bytes,
            nonlinear_wire_bytes: d.wire_bytes,
            predicted_bytes: predicted,
            elems,
            faults_detected: he_faults + d.faults_detected,
            frames_retried: he_retries + d.frames_retried,
        });
    }

    /// One conv layer plus its complete non-linear stage (ReLU +
    /// re-quantization), reported as a single row.
    fn conv_relu_requant(
        &mut self,
        spec: &ConvLayerSpec,
        weights: &[i64],
        rq: Requantizer,
        xc: &[u64],
        xs: &[u64],
    ) -> Result<Shares, FlashError> {
        let ((yc, ys), he_ms, he_stats) = self.he_conv(spec, weights, xc, xs)?;
        let elems = yc.len() as u64;
        let before = self.session.stats();
        let t0 = Instant::now();
        let out = self.session.relu_requant(&yc, &ys, rq, self.rng)?;
        let nl_ms = ms(t0);
        let d = self.session.stats().since(&before);
        let predicted = self.session.model().layer_bytes(elems);
        self.push(
            &spec.name,
            "conv",
            Some((he_ms, &he_stats)),
            nl_ms,
            &d,
            predicted,
            elems,
        );
        Ok(out)
    }
}

/// Bytes one ring element occupies on the wire.
fn elem_bytes(l: u32) -> f64 {
    l.div_ceil(8) as f64
}

/// Payload prediction of a `k×k` max-pool: a pairwise tournament does
/// `k² − 1` compare+select pairs per window.
fn maxpool_predicted(model: &NonlinearModel, windows: usize, k: usize) -> f64 {
    (windows * (k * k - 1)) as f64 * model.relu().bytes_per_elem
}

/// Payload prediction of the secure argmax over `n` logits: `n − 1`
/// tournament pairs of one compare + two selects, plus the two-value
/// index reveal.
fn argmax_predicted(model: &NonlinearModel, n: usize, l: u32) -> f64 {
    (n - 1) as f64 * (model.compare.bytes_per_elem + 2.0 * model.select.bytes_per_elem)
        + 2.0 * elem_bytes(l)
}

/// Runs the synthetic CNN privately for `opts.samples` inputs and
/// reports per-layer cost plus argmax agreement against the exact
/// plaintext reference. The network's task *is* its own exact argmax,
/// so any disagreement is a protocol defect, not model noise.
///
/// # Errors
///
/// Returns [`FlashError`] when the HE protocol or a 2PC primitive fails
/// unrecoverably.
///
/// # Panics
///
/// Panics when `cfg.he.t` is not a power of two (the share ring needs
/// `t = 2^l`) or `opts.samples` is zero.
pub fn run_synthetic_e2e(
    net: &SyntheticCnn,
    cfg: &FlashConfig,
    opts: &E2eOptions,
) -> Result<E2eReport, FlashError> {
    assert!(opts.samples > 0, "need at least one sample");
    let engine = FlashHconv::with_backend(cfg.clone(), PolyMulBackend::Pow2)
        .with_transport_config(opts.transport.clone());
    let ring = engine.ring();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let mut session = NonlinearSession::new(ring, opts.transport.clone(), opts.seed ^ 0x5e55);
    let model = session.model();
    let aq = Quantizer::a4();

    let mut layers: Vec<LayerReport> = Vec::new();
    let mut agree = 0usize;
    for _ in 0..opts.samples {
        let x: Vec<i64> = (0..net.input_len()).map(|_| aq.sample(&mut rng)).collect();
        let expected = SyntheticCnn::argmax(&net.logits(&x));
        let (mut xc, mut xs) = ring.share_vec(&x, &mut rng);
        let mut ctx = SampleCtx {
            engine: &engine,
            sk: &sk,
            session: &mut session,
            rng: &mut rng,
            layers: Vec::new(),
        };
        for (i, spec) in net.layer_specs().iter().enumerate() {
            (xc, xs) =
                ctx.conv_relu_requant(spec, net.layer_weights(i), net.requantizer(i), &xc, &xs)?;
        }

        let last = net.layer_specs().last().expect("at least one layer");
        let (channels, spatial) = (last.m, last.out_h() * last.out_w());
        let before = ctx.session.stats();
        let t0 = Instant::now();
        let (pc, ps) = ctx
            .session
            .avgpool_global(&xc, &xs, channels, spatial, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = channels as f64 * model.truncation.bytes_per_elem;
        ctx.push(
            "avgpool",
            "pool",
            None,
            nl_ms,
            &d,
            predicted,
            channels as u64,
        );

        let (ni, no) = net.fc_dims();
        let before = ctx.session.stats();
        let t0 = Instant::now();
        let (fc, fs) = ctx
            .session
            .fc(&pc, &ps, net.fc_weights(), ni, no, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = (ni + no) as f64 * elem_bytes(ring.bits());
        ctx.push("fc", "fc", None, nl_ms, &d, predicted, no as u64);

        let before = ctx.session.stats();
        let t0 = Instant::now();
        let idx = ctx.session.argmax(&fc, &fs, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = argmax_predicted(&model, no, ring.bits());
        ctx.push("argmax", "argmax", None, nl_ms, &d, predicted, no as u64);

        if idx == expected {
            agree += 1;
        }
        merge_layers(&mut layers, ctx.layers);
    }
    Ok(E2eReport {
        network: "synthetic-cnn".into(),
        samples: opts.samples,
        agreement: agree as f64 / opts.samples as f64,
        layers,
    })
}

/// Runs a reduced ResNet-18 privately end to end — stem, max-pool,
/// every residual block (identity and projection shortcuts over
/// shares), global average pooling, classifier, secure argmax — and
/// reports per-layer cost plus agreement with the plaintext reference.
///
/// # Errors
///
/// Returns [`FlashError`] when the HE protocol or a 2PC primitive fails
/// unrecoverably.
///
/// # Panics
///
/// Panics when `cfg.he.t` is not a power of two or `opts.samples` is
/// zero.
pub fn run_resnet_e2e(
    net: &QuantResnet,
    cfg: &FlashConfig,
    opts: &E2eOptions,
) -> Result<E2eReport, FlashError> {
    assert!(opts.samples > 0, "need at least one sample");
    let engine = FlashHconv::with_backend(cfg.clone(), PolyMulBackend::Pow2)
        .with_transport_config(opts.transport.clone());
    let ring = engine.ring();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let mut session = NonlinearSession::new(ring, opts.transport.clone(), opts.seed ^ 0x18e5);
    let model = session.model();
    let aq = Quantizer::a4();

    let mut layers: Vec<LayerReport> = Vec::new();
    let mut agree = 0usize;
    for _ in 0..opts.samples {
        let x: Vec<i64> = (0..net.input_len()).map(|_| aq.sample(&mut rng)).collect();
        let expected = SyntheticCnn::argmax(&net.logits(&x));
        let (mut xc, mut xs) = ring.share_vec(&x, &mut rng);
        let mut ctx = SampleCtx {
            engine: &engine,
            sk: &sk,
            session: &mut session,
            rng: &mut rng,
            layers: Vec::new(),
        };

        // Stem conv + ReLU + requant, then the 3×3/2 max-pool.
        (xc, xs) =
            ctx.conv_relu_requant(&net.stem.spec, &net.stem.weights, net.stem.rq, &xc, &xs)?;
        let (mut c, mut h, mut w) = (
            net.stem.spec.m,
            net.stem.spec.out_h(),
            net.stem.spec.out_w(),
        );
        let (pk, pstride, ppad) = net.pool;
        let before = ctx.session.stats();
        let t0 = Instant::now();
        (xc, xs) = ctx
            .session
            .maxpool(&xc, &xs, (c, h, w), pk, pstride, ppad, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        h = (h + 2 * ppad - pk) / pstride + 1;
        w = (w + 2 * ppad - pk) / pstride + 1;
        let windows = c * h * w;
        let predicted = maxpool_predicted(&model, windows, pk);
        ctx.push(
            "maxpool",
            "pool",
            None,
            nl_ms,
            &d,
            predicted,
            windows as u64,
        );

        for b in &net.blocks {
            // Residual branch: conv1 + ReLU + requant, then conv2 whose
            // requant/ReLU straddle the shortcut add.
            let (tc, ts) =
                ctx.conv_relu_requant(&b.conv1.spec, &b.conv1.weights, b.conv1.rq, &xc, &xs)?;
            let ((y2c, y2s), he2_ms, he2_stats) =
                ctx.he_conv(&b.conv2.spec, &b.conv2.weights, &tc, &ts)?;
            let elems = y2c.len() as u64;

            // Shortcut: 1×1 projection (conv + requant, no ReLU) on
            // stage boundaries, the identity shares otherwise.
            let (sc, ss) = match &b.down {
                Some(dunit) => {
                    let ((ydc, yds), hed_ms, hed_stats) =
                        ctx.he_conv(&dunit.spec, &dunit.weights, &xc, &xs)?;
                    let before = ctx.session.stats();
                    let t0 = Instant::now();
                    let out = ctx.session.requant(&ydc, &yds, dunit.rq, ctx.rng)?;
                    let nl_ms = ms(t0);
                    let dd = ctx.session.stats().since(&before);
                    let predicted = ydc.len() as f64 * model.truncation.bytes_per_elem;
                    ctx.push(
                        &dunit.spec.name,
                        "conv",
                        Some((hed_ms, &hed_stats)),
                        nl_ms,
                        &dd,
                        predicted,
                        ydc.len() as u64,
                    );
                    out
                }
                None => (xc.clone(), xs.clone()),
            };

            // conv2 requant, shortcut add (local on shares), ReLU.
            let before = ctx.session.stats();
            let t0 = Instant::now();
            let (zc, zs) = ctx.session.requant(&y2c, &y2s, b.conv2.rq, ctx.rng)?;
            let sum_c: Vec<u64> = zc.iter().zip(&sc).map(|(&a, &b)| ring.add(a, b)).collect();
            let sum_s: Vec<u64> = zs.iter().zip(&ss).map(|(&a, &b)| ring.add(a, b)).collect();
            (xc, xs) = ctx.session.relu(&sum_c, &sum_s, ctx.rng)?;
            let nl_ms = ms(t0);
            let d = ctx.session.stats().since(&before);
            let predicted =
                elems as f64 * (model.truncation.bytes_per_elem + model.relu().bytes_per_elem);
            ctx.push(
                &b.conv2.spec.name,
                "conv",
                Some((he2_ms, &he2_stats)),
                nl_ms,
                &d,
                predicted,
                elems,
            );
            (c, h, w) = (b.conv2.spec.m, b.conv2.spec.out_h(), b.conv2.spec.out_w());
        }

        let spatial = h * w;
        let before = ctx.session.stats();
        let t0 = Instant::now();
        let (pc, ps) = ctx.session.avgpool_global(&xc, &xs, c, spatial, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = c as f64 * model.truncation.bytes_per_elem;
        ctx.push("avgpool", "pool", None, nl_ms, &d, predicted, c as u64);

        let (ni, no) = net.fc;
        let before = ctx.session.stats();
        let t0 = Instant::now();
        let (fc, fs) = ctx.session.fc(&pc, &ps, &net.fc_weights, ni, no, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = (ni + no) as f64 * elem_bytes(ring.bits());
        ctx.push("fc", "fc", None, nl_ms, &d, predicted, no as u64);

        let before = ctx.session.stats();
        let t0 = Instant::now();
        let idx = ctx.session.argmax(&fc, &fs, ctx.rng)?;
        let nl_ms = ms(t0);
        let d = ctx.session.stats().since(&before);
        let predicted = argmax_predicted(&model, no, ring.bits());
        ctx.push("argmax", "argmax", None, nl_ms, &d, predicted, no as u64);

        if idx == expected {
            agree += 1;
        }
        merge_layers(&mut layers, ctx.layers);
    }
    Ok(E2eReport {
        network: net.name.clone(),
        samples: opts.samples,
        agreement: agree as f64 / opts.samples as f64,
        layers,
    })
}

/// The deterministic workload behind `BENCH_e2e.json`'s `fixture_ms`
/// regression key: one private inference of a fixed 2-conv synthetic
/// CNN over a clean wire, returning its wall-clock milliseconds. Both
/// the `bench_e2e` artifact writer and `bench_perf --check-regression`
/// call this, so the committed baseline and the fresh measurement are
/// always the same workload.
///
/// # Panics
///
/// Panics if the private run fails or disagrees with the plaintext
/// reference — a regression gate must not time a broken protocol.
pub fn fixture_run_ms() -> f64 {
    let mut rng = StdRng::seed_from_u64(0x2e2e);
    let spec = |name: &str, c: usize, m: usize| ConvLayerSpec {
        name: name.into(),
        c,
        h: 6,
        w: 6,
        m,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let net = SyntheticCnn::generate(vec![spec("conv1", 2, 4), spec("conv2", 4, 4)], 5, &mut rng);
    let opts = E2eOptions {
        samples: 1,
        ..E2eOptions::default()
    };
    let t0 = Instant::now();
    let report = run_synthetic_e2e(&net, &e2e_config(), &opts).expect("fixture run");
    assert_eq!(report.agreement, 1.0, "fixture must stay exact");
    ms(t0)
}

/// Merges one sample's layer rows into the run totals (the layer
/// sequence is identical every sample).
fn merge_layers(total: &mut Vec<LayerReport>, sample: Vec<LayerReport>) {
    if total.is_empty() {
        *total = sample;
        return;
    }
    assert_eq!(total.len(), sample.len(), "layer sequence must be stable");
    for (t, s) in total.iter_mut().zip(sample) {
        assert_eq!(t.name, s.name, "layer sequence must be stable");
        t.he_ms += s.he_ms;
        t.he_bytes += s.he_bytes;
        t.nonlinear_ms += s.nonlinear_ms;
        t.nonlinear_payload_bytes += s.nonlinear_payload_bytes;
        t.nonlinear_wire_bytes += s.nonlinear_wire_bytes;
        t.predicted_bytes += s.predicted_bytes;
        t.elems += s.elems;
        t.faults_detected += s.faults_detected;
        t.frames_retried += s.frames_retried;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_2pc::transport::{FaultConfig, FaultPlan};

    fn tiny_net(rng: &mut StdRng) -> SyntheticCnn {
        let spec = |name: &str, c: usize, m: usize| ConvLayerSpec {
            name: name.into(),
            c,
            h: 6,
            w: 6,
            m,
            k: 3,
            stride: 1,
            pad: 1,
        };
        SyntheticCnn::generate(vec![spec("conv1", 2, 4), spec("conv2", 4, 4)], 5, rng)
    }

    #[test]
    fn synthetic_private_inference_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = tiny_net(&mut rng);
        let opts = E2eOptions {
            samples: 3,
            ..E2eOptions::default()
        };
        let report = run_synthetic_e2e(&net, &e2e_config(), &opts).expect("e2e run");
        assert_eq!(report.agreement, 1.0, "exact protocol must agree");
        // 2 convs + avgpool + fc + argmax
        assert_eq!(report.layers.len(), 5);
        assert!(report.he_ms() > 0.0 && report.nonlinear_ms() > 0.0);
        assert!(report.he_bytes() > 0);
        let ratio = report.byte_model_ratio();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "measured/predicted bytes ratio {ratio}"
        );
    }

    #[test]
    fn synthetic_e2e_survives_chaos_wire() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = tiny_net(&mut rng);
        let opts = E2eOptions {
            samples: 1,
            transport: TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(77))),
            ..E2eOptions::default()
        };
        let clean = run_synthetic_e2e(
            &net,
            &e2e_config(),
            &E2eOptions {
                samples: 1,
                ..E2eOptions::default()
            },
        )
        .expect("clean run");
        let chaos = run_synthetic_e2e(&net, &e2e_config(), &opts).expect("chaos run");
        assert!(chaos.faults_detected() > 0, "chaos plan must inject");
        assert!(chaos.frames_retried() > 0, "recovery must retransmit");
        // recovery is exact: the chaotic wire changes nothing observable
        assert_eq!(chaos.agreement, 1.0);
        assert_eq!(clean.agreement, 1.0);
    }

    #[test]
    fn resnet_reduced_private_inference_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = QuantResnet::reduced_resnet18(16, 16, 8, &mut rng);
        let opts = E2eOptions {
            samples: 1,
            ..E2eOptions::default()
        };
        let report = run_resnet_e2e(&net, &e2e_config(), &opts).expect("e2e run");
        assert_eq!(report.agreement, 1.0, "exact protocol must agree");
        // 20 convs + maxpool + avgpool + fc + argmax
        assert_eq!(report.layers.len(), 24);
        assert_eq!(report.layers[0].name, "conv1");
        assert_eq!(report.layers[1].name, "maxpool");
        let ratio = report.byte_model_ratio();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "measured/predicted bytes ratio {ratio}"
        );
        // every conv row carries both HE and 2PC traffic
        for l in report.layers.iter().filter(|l| l.kind == "conv") {
            assert!(l.he_bytes > 0, "{}", l.name);
            assert!(l.nonlinear_payload_bytes > 0, "{}", l.name);
        }
    }
}
