//! Per-layer workload extraction: how many transforms of what kind a
//! convolution layer induces under the Cheetah-encoded protocol, and how
//! many multiplications the sparse dataflow leaves in each.
//!
//! Counting conventions (matching the paper's Figure 1 / Table III
//! accounting):
//!
//! * every ciphertext ⊠ plaintext product needs one *weight transform*
//!   per weight polynomial (computed on the fly — precomputation is the
//!   23 GB memory blow-up the paper rejects);
//! * each uploaded ciphertext contributes two *activation transforms*
//!   (`c0`, `c1`);
//! * results are packed before the inverse transform (Cheetah's LWE
//!   repacking), so inverse transforms scale with the *output tensor
//!   size*, not with `bands × out-channels`;
//! * stride-2 layers decompose into 4 stride-1 phases sharing output
//!   accumulation.

use flash_he::encoding::{ConvEncoder, TileAlignment};
use flash_hw::energy::HconvOps;
use flash_nn::layers::ConvLayerSpec;
use flash_ntt::ops::negacyclic_fft_ops;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::{analyze_cached, twist_mults};

/// The transform/operation inventory of one convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Layer name.
    pub name: String,
    /// Ring degree.
    pub n: usize,
    /// Weight transforms (forward, on approximate PEs).
    pub weight_transforms: u64,
    /// Sparse-dataflow complex mults of one weight transform
    /// (twist + butterfly network).
    pub weight_mults_sparse_each: u64,
    /// Dense complex mults of one transform (twist + `m/2·log m`).
    pub weight_mults_dense_each: u64,
    /// Activation forward transforms (on FP PEs; two per ciphertext).
    pub act_transforms: u64,
    /// Inverse transforms after output packing (on FP PEs).
    pub inverse_transforms: u64,
    /// Point-wise complex multiplications.
    pub pointwise: u64,
    /// Spectrum-domain accumulation additions.
    pub accum_adds: u64,
    /// Weight-polynomial sparsity (fraction of zero coefficients).
    pub sparsity: f64,
}

impl LayerWorkload {
    /// Total sparse weight-transform mults.
    pub fn weight_mults_sparse(&self) -> u64 {
        self.weight_transforms * self.weight_mults_sparse_each
    }

    /// Total dense weight-transform mults.
    pub fn weight_mults_dense(&self) -> u64 {
        self.weight_transforms * self.weight_mults_dense_each
    }

    /// Total FP-side transform mults (activation + inverse, dense).
    pub fn act_mults(&self) -> u64 {
        (self.act_transforms + self.inverse_transforms) * self.weight_mults_dense_each
    }

    /// Fraction of weight-transform multiplications eliminated by the
    /// sparse dataflow.
    pub fn sparse_reduction(&self) -> f64 {
        1.0 - self.weight_mults_sparse_each as f64 / self.weight_mults_dense_each as f64
    }

    /// Transform work in Table III's normalized units (one `N = 4096` NTT
    /// ≡ one `N = 2048` FFT): weight + activation + inverse transforms.
    pub fn transform_work_units(&self) -> f64 {
        let per = flash_hw::throughput::fft_work_units(self.n);
        (self.weight_transforms + self.act_transforms + self.inverse_transforms) as f64 * per
    }

    /// Maps the workload into the energy model's operation counts.
    pub fn to_hconv_ops(&self) -> HconvOps {
        HconvOps {
            weight_mults_dense: self.weight_mults_dense(),
            weight_mults_sparse: self.weight_mults_sparse(),
            act_mults: self.act_mults(),
            pointwise: self.pointwise,
            accums: self.accum_adds,
        }
    }

    /// Element-wise accumulation of another workload (phases of a
    /// stride-2 layer, or whole-network totals).
    pub fn accumulate(&mut self, other: &LayerWorkload) {
        self.weight_transforms += other.weight_transforms;
        self.act_transforms += other.act_transforms;
        self.inverse_transforms += other.inverse_transforms;
        self.pointwise += other.pointwise;
        self.accum_adds += other.accum_adds;
    }
}

/// Extracts the workload of one conv layer at ring degree `n`.
///
/// # Panics
///
/// Panics for strides other than 1 or 2, or kernels that cannot tile into
/// the ring.
pub fn layer_workload(spec: &ConvLayerSpec, n: usize) -> LayerWorkload {
    let phases = if spec.stride == 2 { 4u64 } else { 1 };
    let shape = spec.encoded_shape();
    // FLASH's sparse dataflow assumes the power-of-two-aligned layout
    // ("when H and W are powers of two ... become contiguous after
    // bit-reverse").
    let enc = ConvEncoder::with_alignment(shape, n, TileAlignment::PowerOfTwo);
    let groups = enc.groups() as u64;
    let bands = enc.bands() as u64;
    let m_out = shape.m as u64;

    // Sparse dataflow cost of one weight transform (band-0 geometry; other
    // bands only shrink the pattern).
    let idx = enc.weight_indices(0);
    let poly_pattern = SparsityPattern::from_indices(n, idx.iter().copied());
    let folded = fold_pattern(&poly_pattern);
    // Layers of one stage share a fold pattern, so the memoized analysis
    // runs once per distinct geometry per process.
    let counts = analyze_cached(&folded.bit_reversed()).0;
    let sparse_each = counts.mults() + twist_mults(&folded);
    let dense = negacyclic_fft_ops(n);
    let dense_each = dense.mults;

    // Output packing: inverse transforms scale with the packed output
    // volume (Cheetah LWE extraction + repacking), two polys per packed
    // ciphertext.
    let out_elems = (spec.m * spec.out_h() * spec.out_w()) as u64;
    let packed_cts = out_elems.div_ceil(n as u64).max(1);

    LayerWorkload {
        name: spec.name.clone(),
        n,
        weight_transforms: phases * groups * m_out,
        weight_mults_sparse_each: sparse_each,
        weight_mults_dense_each: dense_each,
        act_transforms: phases * 2 * groups * bands,
        inverse_transforms: 2 * packed_cts,
        pointwise: phases * groups * bands * m_out * n as u64,
        accum_adds: (phases * groups - 1) * bands * m_out * n as u64,
        sparsity: poly_pattern.sparsity(),
    }
}

/// Extracts the workload of a fully-connected layer (`no×ni` matrix) at
/// ring degree `n`. FC weight polynomials are dense, so the sparse
/// dataflow gives no benefit here — only the approximate datapath does.
pub fn fc_workload(ni: usize, no: usize, n: usize) -> LayerWorkload {
    let enc = flash_he::matvec::MatVecEncoder::new(ni, no, n);
    let dense = negacyclic_fft_ops(n).mults;
    let packed_cts = (no as u64).div_ceil(n as u64).max(1);
    LayerWorkload {
        name: format!("fc.{ni}x{no}"),
        n,
        weight_transforms: enc.weight_polys() as u64,
        weight_mults_sparse_each: dense, // no sparsity to exploit
        weight_mults_dense_each: dense,
        act_transforms: 2 * enc.col_chunks() as u64,
        inverse_transforms: 2 * packed_cts,
        pointwise: (enc.weight_polys() * n) as u64,
        accum_adds: (enc.col_chunks() as u64 - 1) * (enc.row_blocks() * n) as u64,
        sparsity: 0.0,
    }
}

/// Folds a degree-`n` coefficient pattern into the `n/2` complex FFT
/// slots.
fn fold_pattern(p: &SparsityPattern) -> SparsityPattern {
    let n = p.len();
    let half = n / 2;
    SparsityPattern::from_mask((0..half).map(|j| p.get(j) || p.get(j + half)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_nn::resnet::{resnet50_conv_layers, resnet50_residual_block};

    const N: usize = 4096;

    fn spec(
        name: &str,
        c: usize,
        h: usize,
        m: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> ConvLayerSpec {
        ConvLayerSpec {
            name: name.into(),
            c,
            h,
            w: h,
            m,
            k,
            stride,
            pad,
        }
    }

    #[test]
    fn weight_transforms_dominate_3x3_layer() {
        // 64ch 56x56 3x3 -> 64ch: the Figure-1 regime.
        let w = layer_workload(&spec("l", 64, 56, 64, 3, 1, 1), N);
        assert!(w.weight_transforms > 10 * (w.act_transforms + w.inverse_transforms));
        assert!(
            w.sparse_reduction() > 0.86,
            "reduction {}",
            w.sparse_reduction()
        );
        assert!(w.sparsity > 0.95);
    }

    #[test]
    fn sparse_reduction_exceeds_paper_claim_on_resnet50() {
        // The paper: > 86 % of computations skipped across layers.
        let net = resnet50_conv_layers();
        let mut total_sparse = 0u64;
        let mut total_dense = 0u64;
        for l in net.convs.iter().filter(|l| l.h >= 14) {
            let w = layer_workload(l, N);
            total_sparse += w.weight_mults_sparse();
            total_dense += w.weight_mults_dense();
        }
        let reduction = 1.0 - total_sparse as f64 / total_dense as f64;
        assert!(reduction > 0.8, "overall reduction {reduction}");
    }

    #[test]
    fn stride2_layer_has_four_phases() {
        let w1 = layer_workload(&spec("s1", 64, 56, 64, 3, 1, 1), N);
        let w2 = layer_workload(&spec("s2", 64, 56, 64, 3, 2, 1), N);
        // 4 phases over quarter-size images: weight transforms differ by
        // the channel-grouping granularity but stay within ~8x.
        assert!(w2.weight_transforms >= w1.weight_transforms / 4);
        assert!(w2.act_transforms >= w1.act_transforms / 2);
    }

    #[test]
    fn residual_block_workload_matches_fig1_shape() {
        // Weight transforms must account for the bulk of transform work in
        // a ResNet-50 residual block (Figure 1's breakdown).
        let mut weight = 0u64;
        let mut act = 0u64;
        for l in resnet50_residual_block() {
            let w = layer_workload(&l, N);
            weight += w.weight_mults_dense();
            act += w.act_mults();
        }
        assert!(weight > 5 * act, "weight {weight} vs act {act}");
    }

    #[test]
    fn one_by_one_conv_workload() {
        let w = layer_workload(&spec("pw", 256, 14, 1024, 1, 1, 0), N);
        // aligned layout: 14x14 -> 16-wide rows, 256-coefficient channel
        // stride -> 16 channels per poly -> 16 groups
        assert_eq!(w.weight_transforms, 16 * 1024);
        assert!(w.sparsity > 0.99);
        // power-of-two progressions collapse to a tiny sub-network
        assert!(
            w.sparse_reduction() > 0.97,
            "reduction {}",
            w.sparse_reduction()
        );
    }

    #[test]
    fn workload_accumulate() {
        let mut a = layer_workload(&spec("a", 16, 14, 16, 3, 1, 1), N);
        let b = a.clone();
        let before = a.weight_transforms;
        a.accumulate(&b);
        assert_eq!(a.weight_transforms, 2 * before);
        assert_eq!(a.pointwise, 2 * b.pointwise);
    }

    #[test]
    fn hconv_ops_mapping() {
        let w = layer_workload(&spec("m", 32, 28, 32, 3, 1, 1), N);
        let ops = w.to_hconv_ops();
        assert_eq!(ops.weight_mults_sparse, w.weight_mults_sparse());
        assert_eq!(ops.pointwise, w.pointwise);
        assert!(ops.weight_mults_sparse < ops.weight_mults_dense / 4);
    }
}
