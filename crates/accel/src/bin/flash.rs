//! `flash` — command-line interface to the FLASH accelerator models.
//!
//! ```text
//! flash report <resnet18|resnet50|vgg16>     network latency/energy report
//! flash layer <c> <h> <m> <k> [stride] [pad]
//!                                      one layer's workload & schedule
//! flash sparsity <resnet18|resnet50|vgg16>   per-layer weight sparsity
//! flash dse <layer-index> [evals]      explore ResNet-50 layer numerics
//! flash gantt <resnet18|resnet50|vgg16>   simulated engine occupancy
//! flash demo                           run a small private convolution
//! ```

use flash_accel::config::FlashConfig;
use flash_accel::inference::run_network;
use flash_accel::schedule::schedule_layer;
use flash_accel::workload::layer_workload;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers, vgg16_conv_layers};
use flash_nn::Network;

fn usage() -> ! {
    eprintln!(
        "usage:\n  flash report <resnet18|resnet50|vgg16>\n  flash layer <c> <h> <m> <k> [stride] [pad]\n  flash sparsity <resnet18|resnet50|vgg16>\n  flash dse <layer-index> [evals]\n  flash gantt <resnet18|resnet50|vgg16>\n  flash demo"
    );
    std::process::exit(2)
}

fn network(name: &str) -> Network {
    match name {
        "resnet18" => resnet18_conv_layers(),
        "resnet50" => resnet50_conv_layers(),
        "vgg16" => vgg16_conv_layers(),
        other => {
            eprintln!("unknown network '{other}' (expected resnet18|resnet50|vgg16)");
            std::process::exit(2)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(&network(args.get(1).map(String::as_str).unwrap_or(""))),
        Some("layer") => cmd_layer(&args[1..]),
        Some("sparsity") => cmd_sparsity(&network(args.get(1).map(String::as_str).unwrap_or(""))),
        Some("dse") => cmd_dse(&args[1..]),
        Some("gantt") => cmd_gantt(&network(args.get(1).map(String::as_str).unwrap_or(""))),
        Some("demo") => cmd_demo(),
        _ => usage(),
    }
}

fn cmd_gantt(net: &Network) {
    use flash_accel::sim::simulate_layer;
    let cfg = FlashConfig::paper_default();
    println!("per-layer engine occupancy (simulated; each bar spans the layer makespan)");
    println!(
        "{:<24} {:>10}  {:<22} {:<22}",
        "layer", "cycles", "weight PEs", "point-wise"
    );
    for spec in &net.convs {
        let w = layer_workload(spec, cfg.n());
        let sim = simulate_layer(&w, &cfg.arch, &cfg.pe);
        let bar = |util: f64| -> String {
            let filled = (util.clamp(0.0, 1.0) * 20.0).round() as usize;
            format!("[{}{}]", "#".repeat(filled), ".".repeat(20 - filled))
        };
        println!(
            "{:<24} {:>10}  {} {:>4.0}% {} {:>4.0}%",
            spec.name,
            sim.finish,
            bar(sim.weight_utilization),
            sim.weight_utilization * 100.0,
            bar(sim.pointwise_utilization),
            sim.pointwise_utilization * 100.0
        );
    }
}

fn cmd_report(net: &Network) {
    let cfg = FlashConfig::paper_default();
    let run = run_network(net, &cfg);
    println!(
        "network: {} ({} conv layers + fc)",
        run.name,
        net.convs.len()
    );
    println!(
        "transform latency: {:.3} ms   (CHAM model: {:.1} ms, speedup {:.1}x)",
        run.transform_latency_s * 1e3,
        run.cham_latency_s * 1e3,
        run.speedup_vs_cham()
    );
    println!(
        "full-system latency (incl. point-wise): {:.3} ms",
        run.total_latency_s * 1e3
    );
    println!(
        "datapath energy: {:.2} mJ   energy reduction vs F1: {:.1} %",
        run.total_datapath_energy_uj / 1e3,
        run.energy_reduction_vs_f1() * 100.0
    );
    println!();
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>9} {:>22}",
        "layer", "wt-xfms", "sparse/ea", "cycles", "energy uJ", "bottleneck"
    );
    for l in &run.layers {
        println!(
            "{:<26} {:>8} {:>10} {:>10} {:>9.1} {:>22}",
            l.workload.name,
            l.workload.weight_transforms,
            l.workload.weight_mults_sparse_each,
            l.perf.cycles,
            l.energy.total_pj() / 1e6,
            l.perf.bottleneck
        );
    }
}

fn cmd_layer(args: &[String]) {
    if args.len() < 4 {
        usage();
    }
    let p = |i: usize, d: usize| args.get(i).map(|s| s.parse().unwrap_or(d)).unwrap_or(d);
    let spec = ConvLayerSpec {
        name: "cli.layer".into(),
        c: p(0, 1),
        h: p(1, 8),
        w: p(1, 8),
        m: p(2, 1),
        k: p(3, 3),
        stride: p(4, 1),
        pad: p(5, 0),
    };
    let cfg = FlashConfig::paper_default();
    let w = layer_workload(&spec, cfg.n());
    let perf = schedule_layer(&w, &cfg.arch, &cfg.pe);
    println!(
        "layer: {}x{}x{} -> {} ch, {}x{} kernel, stride {}, pad {}",
        spec.c, spec.h, spec.w, spec.m, spec.k, spec.k, spec.stride, spec.pad
    );
    println!(
        "weight polynomials: {} (sparsity {:.2} %)",
        w.weight_transforms,
        w.sparsity * 100.0
    );
    println!(
        "mults per weight transform: {} sparse vs {} dense ({:.1} % reduced)",
        w.weight_mults_sparse_each,
        w.weight_mults_dense_each,
        w.sparse_reduction() * 100.0
    );
    println!(
        "transforms: {} activation + {} inverse; point-wise: {} complex muls",
        w.act_transforms, w.inverse_transforms, w.pointwise
    );
    println!(
        "schedule: {} cycles ({:.2} us @1 GHz), bottleneck: {}",
        perf.cycles,
        perf.latency_s * 1e6,
        perf.bottleneck
    );
}

fn cmd_sparsity(net: &Network) {
    println!(
        "{:<26} {:>6} {:>10} {:>10} {:>10}",
        "layer", "kernel", "valid", "sparsity", "polys"
    );
    for l in &net.convs {
        let s = flash_nn::sparsity::layer_weight_sparsity(l, 4096);
        println!(
            "{:<26} {:>4}x{} {:>10} {:>9.2}% {:>10}",
            l.name,
            l.k,
            l.k,
            s.valid_per_poly,
            s.sparsity * 100.0,
            s.weight_polys
        );
    }
}

fn cmd_dse(args: &[String]) {
    use flash_dse::bayesopt::{optimize_multi, BoConfig};
    use flash_dse::objective::Objective;
    use flash_dse::pareto::pareto_front;
    use flash_dse::space::DesignSpace;
    use rand::SeedableRng;

    let layer_idx: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(28);
    let evals_budget: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let net = resnet50_conv_layers();
    let spec = net.layer(layer_idx);
    let he = flash_he::HeParams::flash_default();
    let sp = flash_nn::sparsity::layer_weight_sparsity(spec, he.n);
    println!(
        "DSE for layer {layer_idx} = {} ({} valid coeffs)",
        spec.name, sp.valid_per_poly
    );
    let space = DesignSpace::flash_default(he.n);
    let obj = Objective::from_layer(space, sp.valid_per_poly, 8.0, (he.t / 2) as f64);
    let per_weight = (evals_budget / 4).max(8);
    let cfg = BoConfig {
        init: per_weight / 3,
        iters: per_weight - per_weight / 3,
        candidates: 128,
        ..BoConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(layer_idx as u64);
    let evals = optimize_multi(&obj, &[0.2, 0.4, 0.6, 0.8], &cfg, &mut rng);
    let front = pareto_front(&evals);
    println!(
        "{} evaluations, {} Pareto-optimal:",
        evals.len(),
        front.len()
    );
    for e in &front {
        println!(
            "  power {:.3} mW, error variance {:.3e}, mean dw {:.1}, mean k {:.1}",
            e.power,
            e.error_variance,
            e.point.mean_width(obj.space()),
            e.point.k.iter().sum::<usize>() as f64 / e.point.k.len() as f64
        );
    }
}

fn cmd_demo() {
    use flash_accel::hconv::FlashHconv;
    use flash_he::SecretKey;
    use flash_nn::quant::Quantizer;
    use rand::SeedableRng;

    let cfg = FlashConfig::test_small();
    let layer = ConvLayerSpec {
        name: "demo".into(),
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let x = layer.sample_input(Quantizer::a4(), &mut rng);
    let w = layer.sample_weights(Quantizer::w4(), &mut rng);
    let engine = FlashHconv::new(cfg);
    let (y, stats) = engine
        .run_layer(&sk, &layer, &x, &w, &mut rng)
        .expect("protocol run failed");
    let want: Vec<i64> = flash_nn::layers::conv_reference(&x, &w, &layer)
        .iter()
        .map(|&v| engine.ring().to_signed(engine.ring().reduce(v)))
        .collect();
    assert_eq!(y, want);
    println!(
        "private conv OK: {} outputs, {} B up / {} B down, {} weight transforms",
        y.len(),
        stats.upload_bytes,
        stats.download_bytes,
        stats.weight_transforms
    );
}
