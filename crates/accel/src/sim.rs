//! Discrete-event simulation of one layer on the FLASH engine arrays.
//!
//! The analytic model in [`crate::schedule`] assumes perfect pipelining
//! (layer latency = busiest engine). This simulator tracks the actual
//! dependency chain — activation spectra and weight spectra must exist
//! before point-wise products, which must finish before the inverse
//! transforms — at transform-job granularity, with the point-wise array
//! modeled as a fluid server. It bounds how much the dependency structure
//! can stretch the analytic estimate.

use crate::workload::LayerWorkload;
use flash_hw::arch::FlashArch;
use flash_sparse::schedule::PeModel;

/// Simulation outcome for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Cycle at which the last activation/weight transform finishes.
    pub transforms_done: u64,
    /// Cycle at which the point-wise stream drains.
    pub pointwise_done: u64,
    /// Cycle at which the last inverse transform finishes (= layer done).
    pub finish: u64,
    /// Utilization of the weight-PE array over the makespan.
    pub weight_utilization: f64,
    /// Utilization of the point-wise array over the makespan.
    pub pointwise_utilization: f64,
}

/// Completion cycle of job `k` (0-based) in a pool of `p` identical
/// servers running `len`-cycle jobs from cycle 0.
#[inline]
fn pool_completion(k: u64, p: u64, len: u64) -> u64 {
    (k / p + 1) * len
}

/// Simulates one layer.
pub fn simulate_layer(w: &LayerWorkload, arch: &FlashArch, pe: &PeModel) -> SimResult {
    let m = w.n / 2;
    let stages = m.trailing_zeros() as u64 * pe.stage_overhead as u64;
    let sparse_len = w.weight_mults_sparse_each.div_ceil(pe.bus_per_pe as u64) + stages;
    let dense_len = w.weight_mults_dense_each.div_ceil(pe.bus_per_pe as u64) + stages;

    let p_w = arch.approx_pes as u64;
    let p_fp = arch.fp_pes as u64;
    let pw_rate = arch.pointwise_muls as u64; // complex muls per cycle

    // --- activation transforms run first on the FP pool.
    let act_jobs = w.act_transforms;
    let act_done = if act_jobs == 0 {
        0
    } else {
        pool_completion(act_jobs - 1, p_fp, dense_len)
    };

    // --- weight transforms stream on the approximate pool; each
    // completed weight polynomial releases its share of point-wise work.
    let weight_jobs = w.weight_transforms.max(1);
    let pw_per_weight = w.pointwise / weight_jobs;
    let mut backlog: u64 = 0; // released, unprocessed point-wise work
    let mut now: u64 = 0;
    let mut pw_done_at: u64 = 0;
    let waves = weight_jobs.div_ceil(p_w);
    let mut transforms_done = act_done;
    for wave in 0..waves {
        let t = (wave + 1) * sparse_len;
        let jobs_in_wave = if wave == waves - 1 {
            weight_jobs - wave * p_w
        } else {
            p_w
        };
        // point-wise for this wave's weight polys also needs the
        // activation spectra; drain the backlog until the release time
        let release = t.max(act_done);
        let drained = release.saturating_sub(now) * pw_rate;
        backlog = backlog.saturating_sub(drained);
        now = now.max(release);
        backlog += jobs_in_wave * pw_per_weight;
        pw_done_at = now + backlog.div_ceil(pw_rate);
        transforms_done = transforms_done.max(t);
    }
    // account for rounding remainder
    let residual_pw = w.pointwise - pw_per_weight * weight_jobs;
    backlog += residual_pw;
    let pointwise_done = now + backlog.div_ceil(pw_rate);
    let pointwise_done = pointwise_done.max(pw_done_at);

    // --- inverse transforms start once their inputs are accumulated
    // (conservatively: after the point-wise stream drains) and share the
    // FP pool with the (already finished) activation transforms.
    let inv_jobs = w.inverse_transforms;
    let finish = if inv_jobs == 0 {
        pointwise_done
    } else {
        pointwise_done.max(act_done) + pool_completion(inv_jobs - 1, p_fp, dense_len)
    };

    let weight_busy = weight_jobs * sparse_len / p_w.min(weight_jobs).max(1);
    SimResult {
        transforms_done,
        pointwise_done,
        finish,
        weight_utilization: weight_busy as f64 / finish.max(1) as f64,
        pointwise_utilization: (w.pointwise as f64 / pw_rate as f64) / finish.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule_layer;
    use crate::workload::layer_workload;
    use flash_nn::layers::ConvLayerSpec;

    fn spec(c: usize, h: usize, m: usize, k: usize) -> ConvLayerSpec {
        ConvLayerSpec {
            name: "sim".into(),
            c,
            h,
            w: h,
            m,
            k,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn simulation_brackets_analytic_model() {
        let arch = FlashArch::paper_default();
        let pe = PeModel::default();
        for layer in [
            spec(64, 56, 64, 3),
            spec(32, 28, 64, 3),
            spec(256, 14, 256, 1),
        ] {
            let w = layer_workload(&layer, 4096);
            let analytic = schedule_layer(&w, &arch, &pe);
            let sim = simulate_layer(&w, &arch, &pe);
            // dependencies can only lengthen the schedule...
            assert!(
                sim.finish >= analytic.cycles.saturating_sub(analytic.cycles / 10),
                "{}: sim {} below analytic {}",
                layer.name,
                sim.finish,
                analytic.cycles
            );
            // ...but the pipeline overlap keeps it within the serial sum.
            let serial = analytic.weight_cycles
                + analytic.fp_fft_cycles
                + analytic.pointwise_cycles
                + analytic.accum_cycles;
            assert!(
                sim.finish <= serial + 2 * analytic.cycles,
                "{}: sim {} vs serial {serial}",
                layer.name,
                sim.finish
            );
        }
    }

    #[test]
    fn utilizations_are_sane() {
        let arch = FlashArch::paper_default();
        let pe = PeModel::default();
        let w = layer_workload(&spec(64, 56, 64, 3), 4096);
        let sim = simulate_layer(&w, &arch, &pe);
        assert!(sim.weight_utilization > 0.0 && sim.weight_utilization <= 1.0 + 1e-9);
        assert!(sim.pointwise_utilization > 0.0 && sim.pointwise_utilization <= 1.0 + 1e-9);
        assert!(sim.transforms_done <= sim.finish);
        assert!(sim.pointwise_done <= sim.finish);
    }

    #[test]
    fn pointwise_heavy_layer_is_pointwise_bound_in_sim_too() {
        let arch = FlashArch::paper_default();
        let pe = PeModel::default();
        let w = layer_workload(&spec(64, 56, 64, 3), 4096);
        let sim = simulate_layer(&w, &arch, &pe);
        // the point-wise drain dominates the transform completion
        assert!(sim.pointwise_done > sim.transforms_done);
        assert!(sim.pointwise_utilization > 0.3);
    }

    #[test]
    fn tiny_layer_simulates_quickly_and_finishes() {
        let arch = FlashArch::paper_default();
        let pe = PeModel::default();
        let w = layer_workload(&spec(2, 8, 2, 3), 4096);
        let sim = simulate_layer(&w, &arch, &pe);
        assert!(sim.finish > 0);
        assert!(sim.finish < 100_000);
    }
}
