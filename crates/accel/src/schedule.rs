//! Scheduling one layer's workload onto the FLASH architecture.
//!
//! The engines run as a pipeline (weight PEs → point-wise multipliers →
//! accumulators, with FP PEs feeding activation spectra and draining
//! inverse transforms), so the steady-state layer latency is set by the
//! busiest engine plus a small pipeline-fill term.

use crate::workload::LayerWorkload;
use flash_hw::arch::FlashArch;
use flash_hw::cost::CostModel;
use flash_hw::energy::{hconv_energy, DesignPoint, EnergyReport};
use flash_sparse::schedule::PeModel;

/// Per-engine busy cycles and the resulting latency of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Busy cycles of the approximate (weight) PE array.
    pub weight_cycles: u64,
    /// Busy cycles of the FP PE array (activation + inverse).
    pub fp_fft_cycles: u64,
    /// Busy cycles of the point-wise multiplier array.
    pub pointwise_cycles: u64,
    /// Busy cycles of the accumulator array.
    pub accum_cycles: u64,
    /// Steady-state total cycles (max engine + fill).
    pub cycles: u64,
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// The limiting engine.
    pub bottleneck: &'static str,
}

/// Schedules a workload onto an architecture.
pub fn schedule_layer(w: &LayerWorkload, arch: &FlashArch, pe: &PeModel) -> LayerPerf {
    let m = w.n / 2;
    // Weight transforms: each PE runs one transform at a time.
    let sparse_cycles_each = w.weight_mults_sparse_each.div_ceil(pe.bus_per_pe as u64)
        + m.trailing_zeros() as u64 * pe.stage_overhead as u64;
    let weight_waves = w.weight_transforms.div_ceil(arch.approx_pes as u64);
    let weight_cycles = weight_waves * sparse_cycles_each;

    // FP transforms (dense).
    let dense_cycles_each = w.weight_mults_dense_each.div_ceil(pe.bus_per_pe as u64)
        + m.trailing_zeros() as u64 * pe.stage_overhead as u64;
    let fp_waves = (w.act_transforms + w.inverse_transforms).div_ceil(arch.fp_pes as u64);
    let fp_fft_cycles = fp_waves * dense_cycles_each;

    // Point-wise and accumulation arrays.
    let pointwise_cycles = w.pointwise.div_ceil(arch.pointwise_muls as u64);
    let accum_cycles = w.accum_adds.div_ceil(arch.fp_accs as u64);

    let cycles_max = weight_cycles
        .max(fp_fft_cycles)
        .max(pointwise_cycles)
        .max(accum_cycles);
    let bottleneck = if cycles_max == weight_cycles {
        "weight transforms"
    } else if cycles_max == pointwise_cycles {
        "point-wise multiply"
    } else if cycles_max == fp_fft_cycles {
        "FP transforms"
    } else {
        "accumulation"
    };
    let fill = sparse_cycles_each + dense_cycles_each;
    let cycles = cycles_max + fill;
    LayerPerf {
        weight_cycles,
        fp_fft_cycles,
        pointwise_cycles,
        accum_cycles,
        cycles,
        latency_s: cycles as f64 / (arch.freq_ghz * 1e9),
        bottleneck,
    }
}

/// Energy of one layer at a design point (bottom-up tally).
pub fn layer_energy(w: &LayerWorkload, point: &DesignPoint, model: &CostModel) -> EnergyReport {
    hconv_energy(&w.to_hconv_ops(), point, model)
}

/// Chip-level energy of one layer: engine power × layer latency,
/// attributing each component's power over the whole layer time (the
/// whole chip is on). This is what compares against F1's chip-level
/// energy.
pub fn layer_chip_energy_uj(perf: &LayerPerf, arch: &FlashArch, model: &CostModel) -> f64 {
    let p_w = arch.total_cost(model).power_w();
    p_w * perf.latency_s * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::layer_workload;
    use flash_hw::units::BuKind;
    use flash_nn::layers::ConvLayerSpec;

    fn spec(c: usize, h: usize, m: usize, k: usize) -> ConvLayerSpec {
        ConvLayerSpec {
            name: "t".into(),
            c,
            h,
            w: h,
            m,
            k,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn weight_transforms_are_no_longer_the_bottleneck() {
        // After sparsifying weight transforms, the paper observes the
        // bottleneck moves to the FP side (point-wise products and the
        // dense ciphertext transforms) for wide 3x3 layers.
        let w = layer_workload(&spec(64, 56, 64, 3), 4096);
        let perf = schedule_layer(&w, &FlashArch::paper_default(), &PeModel::default());
        assert_ne!(perf.bottleneck, "weight transforms");
        assert!(perf.pointwise_cycles > perf.weight_cycles);
    }

    #[test]
    fn dense_weight_transforms_would_bottleneck() {
        // With the dense dataflow (no sparsity), weight transforms
        // dominate — the original Figure 1 situation.
        let w = layer_workload(&spec(64, 56, 64, 3), 4096);
        let dense_each = w.weight_mults_dense_each;
        let mut dense_w = w.clone();
        dense_w.weight_mults_sparse_each = dense_each;
        let perf = schedule_layer(&dense_w, &FlashArch::paper_default(), &PeModel::default());
        assert_eq!(perf.bottleneck, "weight transforms");
    }

    #[test]
    fn latency_positive_and_consistent() {
        let w = layer_workload(&spec(32, 28, 32, 3), 4096);
        let arch = FlashArch::paper_default();
        let perf = schedule_layer(&w, &arch, &PeModel::default());
        assert!(perf.cycles >= perf.weight_cycles);
        assert!((perf.latency_s - perf.cycles as f64 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn chip_energy_scales_with_latency() {
        let w = layer_workload(&spec(32, 28, 32, 3), 4096);
        let arch = FlashArch::paper_default();
        let model = CostModel::cmos28();
        let perf = schedule_layer(&w, &arch, &PeModel::default());
        let e = layer_chip_energy_uj(&perf, &arch, &model);
        assert!(e > 0.0);
        let mut w2 = w.clone();
        w2.accumulate(&w);
        let perf2 = schedule_layer(&w2, &arch, &PeModel::default());
        let e2 = layer_chip_energy_uj(&perf2, &arch, &model);
        assert!(e2 > 1.5 * e);
    }

    #[test]
    fn flash_layer_energy_below_fp_baseline() {
        let w = layer_workload(&spec(64, 28, 64, 3), 4096);
        let model = CostModel::cmos28();
        let flash = layer_energy(
            &w,
            &DesignPoint {
                label: "FLASH",
                weight_bu: BuKind::flash_approx(),
                sparse: true,
            },
            &model,
        );
        let fp = layer_energy(
            &w,
            &DesignPoint {
                label: "FFT (FP)",
                weight_bu: BuKind::flash_fp(),
                sparse: false,
            },
            &model,
        );
        assert!(flash.weight_pj < 0.05 * fp.weight_pj);
        assert!(flash.total_pj() < fp.total_pj());
    }
}
