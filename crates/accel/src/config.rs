//! The FLASH operating configuration: HE parameters, architecture and
//! approximate-FFT numerics.

use flash_fft::ApproxFftConfig;
use flash_he::HeParams;
use flash_hw::arch::FlashArch;
use flash_math::fixed::FxpFormat;
use flash_sparse::schedule::PeModel;

/// A complete FLASH configuration.
#[derive(Debug, Clone)]
pub struct FlashConfig {
    /// BFV parameters (`N`, `q`, `t`).
    pub he: HeParams,
    /// Architecture (PE counts, frequency).
    pub arch: FlashArch,
    /// PE cycle model.
    pub pe: PeModel,
    /// Per-stage numerics of the approximate weight transform.
    pub numerics: ApproxFftConfig,
}

impl FlashConfig {
    /// The paper's operating point: `N = 4096`, 39-bit `q`, `t = 2^21`,
    /// 27-bit datapath, twiddle quantization `k = 5` (the
    /// approximation-aware-trained level).
    pub fn paper_default() -> Self {
        let he = HeParams::flash_default();
        Self {
            arch: FlashArch::paper_default(),
            pe: PeModel::default(),
            numerics: Self::numerics_for(he.n, 27, 5),
            he,
        }
    }

    /// The untrained operating point (`k ≈ 18` keeps accuracy within 1 %
    /// without retraining).
    pub fn untrained_default() -> Self {
        let he = HeParams::flash_default();
        Self {
            arch: FlashArch::paper_default(),
            pe: PeModel::default(),
            numerics: Self::numerics_for(he.n, 27, 18),
            he,
        }
    }

    /// A small configuration for functional tests (`N = 256`), with wide
    /// numerics so HConv results stay kernel-exact.
    pub fn test_small() -> Self {
        let he = HeParams::test_256();
        let mut numerics = ApproxFftConfig::uniform(he.n, FxpFormat::new(18, 34), 30);
        numerics.max_shift = 30;
        Self {
            arch: FlashArch::paper_default(),
            pe: PeModel::default(),
            numerics,
            he,
        }
    }

    /// Builds the uniform numerics for a total data width `dw`
    /// (1 sign + 15 integer + remaining fraction bits) and twiddle level
    /// `k`.
    pub fn numerics_for(n: usize, dw: u32, k: usize) -> ApproxFftConfig {
        assert!(dw > 17, "data width must exceed sign + integer bits");
        let int_bits = 15;
        let frac = dw - 1 - int_bits;
        ApproxFftConfig::uniform(n, FxpFormat::new(int_bits, frac), k)
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.he.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_consistency() {
        let c = FlashConfig::paper_default();
        assert_eq!(c.n(), 4096);
        assert_eq!(c.numerics.degree(), 4096);
        assert_eq!(c.arch.approx_pes, 60);
        assert_eq!(c.numerics.stage_formats()[0].total_bits(), 27);
        assert_eq!(c.numerics.twiddle_k()[0], 5);
    }

    #[test]
    fn untrained_uses_higher_k() {
        let c = FlashConfig::untrained_default();
        assert_eq!(c.numerics.twiddle_k()[0], 18);
    }

    #[test]
    fn numerics_width_math() {
        let n = 256;
        let cfg = FlashConfig::numerics_for(n, 27, 5);
        assert!(cfg.stage_formats().iter().all(|f| f.total_bits() == 27));
    }
}
