//! FLASH — the accelerator simulator (the paper's primary contribution).
//!
//! This crate composes every substrate of the workspace into the system
//! the paper evaluates:
//!
//! * a **functional path** — homomorphic convolutions executed through the
//!   hybrid HE/2PC protocol with FLASH's approximate-FFT backend,
//!   bit-accurate against the exact NTT baseline ([`hconv`]);
//! * a **performance path** — per-layer workload extraction (tiling,
//!   sparsity, transform counts), scheduling onto the 60+4-PE architecture
//!   and energy accounting ([`workload`], [`schedule`]);
//! * **end-to-end runs** over all linear layers of ResNet-18/-50 with
//!   CHAM latency and F1 chip-energy baselines and the accuracy proxy
//!   ([`inference`]) — the data behind Tables III/IV and Figure 11(d)(e).
//!
//! # Examples
//!
//! ```
//! use flash_accel::config::FlashConfig;
//! use flash_accel::inference::run_network;
//!
//! let cfg = FlashConfig::paper_default();
//! let run = run_network(&flash_nn::resnet18_conv_layers(), &cfg);
//! assert!(run.total_latency_s > 0.0);
//! assert!(run.speedup_vs_cham() > 5.0);
//! ```

pub mod config;
pub mod e2e;
pub mod hconv;
pub mod inference;
pub mod schedule;
pub mod sim;
pub mod workload;

pub use config::FlashConfig;
pub use e2e::{e2e_config, run_resnet_e2e, run_synthetic_e2e, E2eOptions, E2eReport, LayerReport};
pub use inference::{run_network, NetworkRun};
pub use workload::{layer_workload, LayerWorkload};
