//! Functional homomorphic convolution on the FLASH numerics.
//!
//! Wraps the hybrid HE/2PC protocol with FLASH's approximate-FFT backend
//! and drives arbitrary (stride 1/2, padded) quantized conv layers,
//! reconstructing and validating the secret-shared outputs. This is the
//! bit-level truth the performance model's workloads correspond to.

use crate::config::FlashConfig;
use flash_2pc::error::FlashError;
use flash_2pc::protocol::{ConvProtocol, ProtocolStats};
use flash_2pc::shares::ShareRing;
use flash_2pc::transport::TransportConfig;
use flash_he::encoding::{pad_input, stride2_decompose, strided_out_dims, ConvShape};
use flash_he::{PolyMulBackend, SecretKey};
use flash_nn::layers::ConvLayerSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of [`FlashHconv::run_layer_shared`]: the still-secret
/// `(client, server)` share pair of the conv output, plus the
/// protocol's communication and fault statistics.
pub type SharedLayerOutput = ((Vec<u64>, Vec<u64>), ProtocolStats);

/// A functional FLASH HConv engine.
#[derive(Debug, Clone)]
pub struct FlashHconv {
    cfg: FlashConfig,
    backend: PolyMulBackend,
    sparse_weights: bool,
    transport: TransportConfig,
    /// Noise-guard margin override; `None` keeps the protocol default
    /// (`FLASH_NOISE_MARGIN` / 1.0).
    noise_margin: Option<f64>,
}

impl FlashHconv {
    /// Builds the engine with the configuration's approximate backend.
    pub fn new(cfg: FlashConfig) -> Self {
        let backend = PolyMulBackend::approx(cfg.numerics.clone());
        Self::with_backend(cfg, backend)
    }

    /// Builds the engine with an explicit backend (e.g. the exact NTT for
    /// baseline comparison).
    pub fn with_backend(cfg: FlashConfig, backend: PolyMulBackend) -> Self {
        Self {
            cfg,
            backend,
            sparse_weights: true,
            transport: TransportConfig::default(),
            noise_margin: None,
        }
    }

    /// Enables or disables the compiled sparse weight-transform path in
    /// the underlying protocols (on by default; outputs are identical
    /// either way). See [`ConvProtocol::with_sparse_weights`].
    pub fn with_sparse_weights(mut self, enabled: bool) -> Self {
        self.sparse_weights = enabled;
        self
    }

    /// Sets the wire configuration of the underlying protocols. See
    /// [`ConvProtocol::with_transport_config`].
    pub fn with_transport_config(mut self, cfg: TransportConfig) -> Self {
        self.transport = cfg;
        self
    }

    /// Overrides the noise-guard margin of the underlying protocols. See
    /// [`ConvProtocol::with_noise_margin`].
    pub fn with_noise_margin(mut self, margin: f64) -> Self {
        self.noise_margin = Some(margin);
        self
    }

    fn protocol(&self, shape: ConvShape) -> ConvProtocol {
        let mut proto = ConvProtocol::new(self.cfg.he.clone(), shape, self.backend.clone())
            .with_sparse_weights(self.sparse_weights)
            .with_transport_config(self.transport.clone());
        if let Some(m) = self.noise_margin {
            proto = proto.with_noise_margin(m);
        }
        proto
    }

    /// The share ring of the configured plaintext modulus.
    pub fn ring(&self) -> ShareRing {
        ShareRing::new(self.cfg.he.t.trailing_zeros())
    }

    /// Runs one quantized conv layer privately and returns the
    /// reconstructed signed outputs (`m·out_h·out_w`) plus aggregated
    /// protocol statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError`] when the underlying protocol fails — wire
    /// recovery exhausted, deserialization/validation rejected a payload,
    /// or the noise guard found an unrecoverable overflow.
    ///
    /// # Panics
    ///
    /// Panics for strides other than 1 or 2 or on size mismatches.
    pub fn run_layer<R: Rng>(
        &self,
        sk: &SecretKey,
        spec: &ConvLayerSpec,
        x: &[i64],
        weights: &[i64],
        rng: &mut R,
    ) -> Result<(Vec<i64>, ProtocolStats), FlashError> {
        let _t = flash_telemetry::span!("hconv.layer");
        assert_eq!(x.len(), spec.c * spec.h * spec.w, "input size mismatch");
        let xp = pad_input(x, spec.c, spec.h, spec.w, spec.pad);
        let (hp, wp) = (spec.h + 2 * spec.pad, spec.w + 2 * spec.pad);
        match spec.stride {
            1 => {
                let shape = ConvShape {
                    c: spec.c,
                    h: hp,
                    w: wp,
                    m: spec.m,
                    k: spec.k,
                };
                let proto = self.protocol(shape);
                let (shares, stats) = proto.run(sk, &xp, weights, rng)?;
                Ok((proto.reconstruct(&shares), stats))
            }
            2 => {
                let shape = ConvShape {
                    c: spec.c,
                    h: hp,
                    w: wp,
                    m: spec.m,
                    k: spec.k,
                };
                let (sub, parts) = stride2_decompose(&xp, weights, &shape);
                let (oh, ow) = strided_out_dims(hp, wp, spec.k, 2);
                let ring = self.ring();
                let mut sum = vec![0i64; spec.m * sub.out_h() * sub.out_w()];
                let mut stats = ProtocolStats::default();
                // One seed per phase, drawn sequentially up front, so the
                // four stride-2 phases can run in parallel with the same
                // results for any worker count.
                let phase_seeds: Vec<u64> = parts.iter().map(|_| rng.next_u64()).collect();
                let phase_results = flash_runtime::parallel_gen(parts.len(), |i| {
                    let (xs, fs) = &parts[i];
                    let proto = self.protocol(sub);
                    let mut phase_rng = StdRng::seed_from_u64(phase_seeds[i]);
                    let (shares, s) = proto.run(sk, xs, fs, &mut phase_rng)?;
                    Ok::<_, FlashError>((proto.reconstruct(&shares), s))
                });
                for phase in phase_results {
                    let (y, s) = phase?;
                    for (acc, v) in sum.iter_mut().zip(&y) {
                        *acc = ring.to_signed(ring.add(ring.reduce(*acc), ring.reduce(*v)));
                    }
                    stats = merge_stats(stats, s);
                }
                // The strided output is the top-left oh×ow block of the
                // phase-summed sub-convolution output.
                let mut out = vec![0i64; spec.m * oh * ow];
                for oc in 0..spec.m {
                    for p in 0..oh {
                        for q in 0..ow {
                            out[(oc * oh + p) * ow + q] =
                                sum[(oc * sub.out_h() + p) * sub.out_w() + q];
                        }
                    }
                }
                Ok((out, stats))
            }
            s => panic!("unsupported stride {s}"),
        }
    }

    /// Runs one quantized conv layer on an *already secret-shared*
    /// activation and keeps the output secret-shared — the linear stage
    /// of a full private pipeline, where the share pair chains into the
    /// 2PC non-linear layer instead of being reconstructed.
    ///
    /// Padding and the stride-2 phase decomposition are pure reindexing,
    /// so they apply to each share independently (`(0, 0)` is a valid
    /// share of the zero padding); the four stride-2 phase outputs sum
    /// share-wise in the ring.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::run_layer`].
    ///
    /// # Panics
    ///
    /// Panics for strides other than 1 or 2 or on size mismatches.
    pub fn run_layer_shared<R: Rng>(
        &self,
        sk: &SecretKey,
        spec: &ConvLayerSpec,
        xc: &[u64],
        xs: &[u64],
        weights: &[i64],
        rng: &mut R,
    ) -> Result<SharedLayerOutput, FlashError> {
        let _t = flash_telemetry::span!("hconv.layer");
        assert_eq!(xc.len(), spec.c * spec.h * spec.w, "input size mismatch");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        let as_raw = |share: &[u64]| -> Vec<i64> { share.iter().map(|&v| v as i64).collect() };
        let xc_pad = pad_input(&as_raw(xc), spec.c, spec.h, spec.w, spec.pad);
        let xs_pad = pad_input(&as_raw(xs), spec.c, spec.h, spec.w, spec.pad);
        let back = |v: &[i64]| -> Vec<u64> { v.iter().map(|&x| x as u64).collect() };
        let (hp, wp) = (spec.h + 2 * spec.pad, spec.w + 2 * spec.pad);
        let shape = ConvShape {
            c: spec.c,
            h: hp,
            w: wp,
            m: spec.m,
            k: spec.k,
        };
        match spec.stride {
            1 => {
                let proto = self.protocol(shape);
                let (shares, stats) =
                    proto.run_shared(sk, &back(&xc_pad), &back(&xs_pad), weights, rng)?;
                Ok(((shares.client, shares.server), stats))
            }
            2 => {
                // Decompose each share with the same weights: the phase
                // kernels are identical, only the reindexed activations
                // differ.
                let (sub, parts_c) = stride2_decompose(&xc_pad, weights, &shape);
                let (_, parts_s) = stride2_decompose(&xs_pad, weights, &shape);
                let (oh, ow) = strided_out_dims(hp, wp, spec.k, 2);
                let ring = self.ring();
                let sub_len = spec.m * sub.out_h() * sub.out_w();
                let mut sum_c = vec![0u64; sub_len];
                let mut sum_s = vec![0u64; sub_len];
                let mut stats = ProtocolStats::default();
                let phase_seeds: Vec<u64> = parts_c.iter().map(|_| rng.next_u64()).collect();
                let phase_results = flash_runtime::parallel_gen(parts_c.len(), |i| {
                    let (pxc, fs) = &parts_c[i];
                    let (pxs, _) = &parts_s[i];
                    let proto = self.protocol(sub);
                    let mut phase_rng = StdRng::seed_from_u64(phase_seeds[i]);
                    proto.run_shared(sk, &back(pxc), &back(pxs), fs, &mut phase_rng)
                });
                for phase in phase_results {
                    let (shares, s) = phase?;
                    for (acc, v) in sum_c.iter_mut().zip(&shares.client) {
                        *acc = ring.add(*acc, *v);
                    }
                    for (acc, v) in sum_s.iter_mut().zip(&shares.server) {
                        *acc = ring.add(*acc, *v);
                    }
                    stats = merge_stats(stats, s);
                }
                let mut out_c = vec![0u64; spec.m * oh * ow];
                let mut out_s = vec![0u64; spec.m * oh * ow];
                for oc in 0..spec.m {
                    for p in 0..oh {
                        for q in 0..ow {
                            let dst = (oc * oh + p) * ow + q;
                            let src = (oc * sub.out_h() + p) * sub.out_w() + q;
                            out_c[dst] = sum_c[src];
                            out_s[dst] = sum_s[src];
                        }
                    }
                }
                Ok(((out_c, out_s), stats))
            }
            s => panic!("unsupported stride {s}"),
        }
    }
}

fn merge_stats(a: ProtocolStats, b: ProtocolStats) -> ProtocolStats {
    ProtocolStats {
        upload_bytes: a.upload_bytes + b.upload_bytes,
        download_bytes: a.download_bytes + b.download_bytes,
        ciphertexts_up: a.ciphertexts_up + b.ciphertexts_up,
        ciphertexts_down: a.ciphertexts_down + b.ciphertexts_down,
        weight_transforms: a.weight_transforms + b.weight_transforms,
        sparse_weight_transforms: a.sparse_weight_transforms + b.sparse_weight_transforms,
        activation_transforms: a.activation_transforms + b.activation_transforms,
        inverse_transforms: a.inverse_transforms + b.inverse_transforms,
        pointwise_muls: a.pointwise_muls + b.pointwise_muls,
        upload_wire_bytes: a.upload_wire_bytes + b.upload_wire_bytes,
        download_wire_bytes: a.download_wire_bytes + b.download_wire_bytes,
        faults_detected: a.faults_detected + b.faults_detected,
        frames_retried: a.frames_retried + b.frames_retried,
        ntt_fallbacks: a.ntt_fallbacks + b.ntt_fallbacks,
        pow2_fallbacks: a.pow2_fallbacks + b.pow2_fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_nn::layers::conv_reference;
    use flash_nn::quant::Quantizer;
    use rand::SeedableRng;

    fn run_and_check(spec: ConvLayerSpec, seed: u64) {
        let cfg = FlashConfig::test_small();
        let engine = FlashHconv::new(cfg.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&cfg.he, &mut rng);
        let x = spec.sample_input(Quantizer::a4(), &mut rng);
        let w = spec.sample_weights(Quantizer::w4(), &mut rng);
        let (got, stats) = engine.run_layer(&sk, &spec, &x, &w, &mut rng).unwrap();
        let ring = engine.ring();
        let want: Vec<i64> = conv_reference(&x, &w, &spec)
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        assert_eq!(got, want, "{}", spec.name);
        assert!(stats.upload_bytes > 0);
        assert!(stats.weight_transforms > 0);
    }

    #[test]
    fn stride1_padded_layer_on_flash_numerics() {
        run_and_check(
            ConvLayerSpec {
                name: "s1".into(),
                c: 2,
                h: 6,
                w: 6,
                m: 2,
                k: 3,
                stride: 1,
                pad: 1,
            },
            1,
        );
    }

    #[test]
    fn stride2_layer_on_flash_numerics() {
        run_and_check(
            ConvLayerSpec {
                name: "s2".into(),
                c: 2,
                h: 8,
                w: 8,
                m: 2,
                k: 3,
                stride: 2,
                pad: 1,
            },
            2,
        );
    }

    #[test]
    fn pointwise_1x1_layer() {
        run_and_check(
            ConvLayerSpec {
                name: "pw".into(),
                c: 4,
                h: 5,
                w: 5,
                m: 3,
                k: 1,
                stride: 1,
                pad: 0,
            },
            3,
        );
    }

    #[test]
    fn downsample_1x1_stride2() {
        run_and_check(
            ConvLayerSpec {
                name: "ds".into(),
                c: 2,
                h: 8,
                w: 8,
                m: 4,
                k: 1,
                stride: 2,
                pad: 0,
            },
            4,
        );
    }

    #[test]
    fn sparse_and_dense_weight_paths_agree_across_strides() {
        let cfg = FlashConfig::test_small();
        for (spec, seed) in [
            (
                ConvLayerSpec {
                    name: "s1".into(),
                    c: 2,
                    h: 6,
                    w: 6,
                    m: 2,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                31,
            ),
            (
                ConvLayerSpec {
                    name: "s2".into(),
                    c: 2,
                    h: 8,
                    w: 8,
                    m: 2,
                    k: 3,
                    stride: 2,
                    pad: 1,
                },
                32,
            ),
        ] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sk = SecretKey::generate(&cfg.he, &mut rng);
            let x = spec.sample_input(Quantizer::a4(), &mut rng);
            let w = spec.sample_weights(Quantizer::w4(), &mut rng);
            let sparse = FlashHconv::new(cfg.clone());
            let dense = FlashHconv::new(cfg.clone()).with_sparse_weights(false);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed + 100);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed + 100);
            let (ya, sa) = sparse.run_layer(&sk, &spec, &x, &w, &mut rng_a).unwrap();
            let (yb, sb) = dense.run_layer(&sk, &spec, &x, &w, &mut rng_b).unwrap();
            assert_eq!(ya, yb, "{}: sparse path changed outputs", spec.name);
            assert!(
                sa.sparse_weight_transforms > 0,
                "{}: sparse path did not engage",
                spec.name
            );
            assert_eq!(sb.sparse_weight_transforms, 0, "{}", spec.name);
        }
    }

    #[test]
    fn approx_backend_agrees_with_ntt_backend() {
        let cfg = FlashConfig::test_small();
        let spec = ConvLayerSpec {
            name: "x".into(),
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
            stride: 1,
            pad: 0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = SecretKey::generate(&cfg.he, &mut rng);
        let x = spec.sample_input(Quantizer::a4(), &mut rng);
        let w = spec.sample_weights(Quantizer::w4(), &mut rng);

        let approx = FlashHconv::new(cfg.clone());
        let exact = FlashHconv::with_backend(cfg.clone(), PolyMulBackend::Ntt);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(6);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(6);
        let (ya, _) = approx.run_layer(&sk, &spec, &x, &w, &mut rng_a).unwrap();
        let (yb, _) = exact.run_layer(&sk, &spec, &x, &w, &mut rng_b).unwrap();
        assert_eq!(ya, yb);
    }
}
