//! End-to-end bit-identity of the SIMD dispatch: a full HConv layer must
//! produce the same ciphertexts, shares, and decoded outputs whether the
//! spectral kernels run scalar or lane-parallel.
//!
//! The batched SoA paths promise per-lane expression sequences identical
//! to the scalar kernels (integer-exact NTT, no-FMA f64 FFT), so this is
//! an equality test — not a tolerance test.
//!
//! Single test function: `force_level` is process-global, so the runs at
//! different lane widths must not interleave with other tests.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_fft::simd::{self, SimdLevel};
use flash_he::SecretKey;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::quant::Quantizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn layer_output_is_bit_identical_across_simd_levels() {
    let cfg = FlashConfig::test_small();
    let layers = [
        ConvLayerSpec {
            name: "s1".into(),
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
            stride: 1,
            pad: 1,
        },
        ConvLayerSpec {
            name: "s2".into(),
            c: 2,
            h: 8,
            w: 8,
            m: 2,
            k: 3,
            stride: 2,
            pad: 1,
        },
    ];
    let levels: Vec<SimdLevel> = [
        SimdLevel::Scalar,
        SimdLevel::Portable,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ]
    .into_iter()
    .filter(|&l| l <= simd::detected_level())
    .collect();
    if levels.len() < 2 {
        // A `FLASH_SIMD=off`/`scalar` cap leaves only one dispatch level;
        // there is no second kernel to compare against.
        eprintln!("skipping: only {} available", levels[0].name());
        return;
    }

    for spec in &layers {
        let mut results = Vec::new();
        for &level in &levels {
            simd::force_level(Some(level));
            let engine = FlashHconv::new(cfg.clone());
            let mut rng = StdRng::seed_from_u64(7);
            let sk = SecretKey::generate(&cfg.he, &mut rng);
            let x = spec.sample_input(Quantizer::a4(), &mut rng);
            let w = spec.sample_weights(Quantizer::w4(), &mut rng);
            let out = engine.run_layer(&sk, spec, &x, &w, &mut rng).unwrap();
            simd::force_level(None);
            results.push(out);
        }
        for (level, got) in levels.iter().zip(&results).skip(1) {
            assert_eq!(
                &results[0],
                got,
                "layer {} diverges between scalar and {} dispatch",
                spec.name,
                level.name()
            );
        }
    }
}
