//! End-to-end determinism of the parallel runtime: the performance model
//! and the functional HConv engine must produce bit-identical results at
//! one worker and at eight.
//!
//! Single test function: `set_threads` is process-global, so the runs at
//! different worker counts must not interleave with other tests.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_accel::inference::{ablation_energy, run_network, NetworkRun};
use flash_he::SecretKey;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::quant::Quantizer;
use flash_nn::resnet18_conv_layers;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_summary(run: &NetworkRun) -> Vec<u64> {
    let mut v = vec![
        run.total_latency_s.to_bits(),
        run.transform_latency_s.to_bits(),
        run.total_chip_energy_uj.to_bits(),
        run.total_datapath_energy_uj.to_bits(),
        run.cham_latency_s.to_bits(),
        run.f1_energy_uj.to_bits(),
    ];
    for l in &run.layers {
        v.push(l.workload.weight_transforms);
        v.push(l.workload.weight_mults_sparse_each);
        v.push(l.perf.weight_cycles);
        v.push(l.chip_energy_uj.to_bits());
    }
    v
}

#[test]
fn network_model_and_hconv_are_worker_count_invariant() {
    let cfg = FlashConfig::paper_default();
    let net = resnet18_conv_layers();

    // --- Analytic model: run_network + ablation_energy.
    let (run_seq, abl_seq) = {
        let _guard = flash_runtime::ThreadOverrideGuard::set(1);
        (
            run_summary(&run_network(&net, &cfg)),
            ablation_energy(&net, &cfg),
        )
    };
    let (run_par, abl_par) = {
        let _guard = flash_runtime::ThreadOverrideGuard::set(8);
        (
            run_summary(&run_network(&net, &cfg)),
            ablation_energy(&net, &cfg),
        )
    };
    assert_eq!(run_seq, run_par, "run_network must not depend on workers");
    assert_eq!(abl_seq.len(), abl_par.len());
    for (a, b) in abl_seq.iter().zip(&abl_par) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }

    // --- Functional engine: one stride-1 and one stride-2 layer.
    let small = FlashConfig::test_small();
    let layers = [
        ConvLayerSpec {
            name: "s1".into(),
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
            stride: 1,
            pad: 1,
        },
        ConvLayerSpec {
            name: "s2".into(),
            c: 2,
            h: 8,
            w: 8,
            m: 2,
            k: 3,
            stride: 2,
            pad: 1,
        },
    ];
    for spec in &layers {
        let mut results = Vec::new();
        for threads in [1usize, 8] {
            let _guard = flash_runtime::ThreadOverrideGuard::set(threads);
            let engine = FlashHconv::new(small.clone());
            let mut rng = StdRng::seed_from_u64(7);
            let sk = SecretKey::generate(&small.he, &mut rng);
            let x = spec.sample_input(Quantizer::a4(), &mut rng);
            let w = spec.sample_weights(Quantizer::w4(), &mut rng);
            let (y, stats) = engine.run_layer(&sk, spec, &x, &w, &mut rng).unwrap();
            results.push((y, stats));
        }
        assert_eq!(
            results[0], results[1],
            "layer {} must be worker-count invariant",
            spec.name
        );
    }
}
