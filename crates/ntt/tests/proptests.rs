//! Property-based equivalence tests for the lazy-reduction NTT.
//!
//! The butterflies keep intermediates in `[0, 4q)` (forward) and `[0, 2q)`
//! (inverse) and normalize once at the end, so these tests pin the two
//! properties that matter: outputs are *fully reduced* and the whole
//! pipeline is *exactly* the negacyclic product — across random moduli
//! and degrees, not just the fixtures the unit tests use.

use flash_math::modular::{mul_mod, pow_mod};
use flash_math::prime::ntt_prime;
use flash_ntt::polymul::{negacyclic_mul_naive, negacyclic_mul_ntt, negacyclic_mul_ntt_into};
use flash_ntt::transform::{forward, inverse, pointwise_mul, pointwise_mul_assign};
use flash_ntt::NttTables;
use proptest::prelude::*;

/// A random (modulus bit-width, log2 degree) pair that always admits an
/// NTT-friendly prime: `q ≡ 1 (mod 2n)` needs `bits > log_n + 1`.
fn params() -> impl Strategy<Value = (u64, usize)> {
    (2u32..=8, 0u32..=40).prop_map(|(log_n, bit_slack)| {
        let n = 1usize << log_n;
        let bits = (log_n + 14 + bit_slack).min(55);
        let q = ntt_prime(bits, n as u64).expect("prime exists");
        (q, n)
    })
}

fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    // splitmix64: deterministic operands without threading a Strategy
    // through variable-length vectors (the vendored stub has no vec()).
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % q
        })
        .collect()
}

proptest! {
    /// The lazy-butterfly NTT product equals the naive O(n²) negacyclic
    /// product for random moduli and degrees.
    #[test]
    fn ntt_product_matches_naive(pq in params(), seed in any::<u64>()) {
        let (q, n) = pq;
        let tables = NttTables::new(n, q).unwrap();
        let a = random_poly(n, q, seed);
        let b = random_poly(n, q, seed ^ 0xDEAD_BEEF);
        prop_assert_eq!(
            negacyclic_mul_ntt(&a, &b, &tables),
            negacyclic_mul_naive(&a, &b, q)
        );
    }

    /// The scratch-backed `_into` variant is bit-identical to the
    /// allocating form.
    #[test]
    fn into_variant_matches_allocating(pq in params(), seed in any::<u64>()) {
        let (q, n) = pq;
        let tables = NttTables::new(n, q).unwrap();
        let a = random_poly(n, q, seed);
        let b = random_poly(n, q, seed.rotate_left(17));
        let mut out = vec![0u64; n];
        negacyclic_mul_ntt_into(&mut out, &a, &b, &tables);
        prop_assert_eq!(out, negacyclic_mul_ntt(&a, &b, &tables));
    }

    /// Forward then inverse is the identity, and every intermediate
    /// output is fully normalized into `[0, q)` despite the lazy
    /// butterflies.
    #[test]
    fn roundtrip_and_normalization(pq in params(), seed in any::<u64>()) {
        let (q, n) = pq;
        let tables = NttTables::new(n, q).unwrap();
        let a = random_poly(n, q, seed);
        let mut v = a.clone();
        forward(&mut v, &tables);
        prop_assert!(v.iter().all(|&x| x < q), "forward output not reduced");
        inverse(&mut v, &tables);
        prop_assert!(v.iter().all(|&x| x < q), "inverse output not reduced");
        prop_assert_eq!(v, a);
    }

    /// The in-place pointwise product agrees with the allocating one and
    /// stays reduced.
    #[test]
    fn pointwise_assign_matches(pq in params(), seed in any::<u64>()) {
        let (q, n) = pq;
        let tables = NttTables::new(n, q).unwrap();
        let a = random_poly(n, q, seed);
        let b = random_poly(n, q, !seed);
        let want = pointwise_mul(&a, &b, &tables);
        let mut got = a.clone();
        pointwise_mul_assign(&mut got, &b, &tables);
        prop_assert!(got.iter().all(|&x| x < q));
        prop_assert_eq!(got, want);
    }

    /// Direct evaluation check: for small degrees, forward-transform
    /// coefficient `k` (in bit-reversed order) must equal `a(ψ·ω^k)` —
    /// the negacyclic NTT *is* multipoint evaluation at odd powers of ψ.
    #[test]
    fn forward_is_evaluation_at_psi_powers(log_n in 2u32..=6, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let q = ntt_prime(30, n as u64).expect("prime exists");
        let tables = NttTables::new(n, q).unwrap();
        let psi = tables.psi();
        let a = random_poly(n, q, seed);
        let mut v = a.clone();
        forward(&mut v, &tables);
        for k in 0..n {
            // ω = ψ², so evaluation point k is ψ^(2·k + 1).
            let point = pow_mod(psi, (2 * k + 1) as u64, q);
            let mut want = 0u64;
            let mut x = 1u64;
            for &c in &a {
                want = (want + mul_mod(c, x, q)) % q;
                x = mul_mod(x, point, q);
            }
            let idx = flash_math::bitrev::bit_reverse(k, log_n);
            prop_assert_eq!(v[idx], want, "mismatch at evaluation point {}", k);
        }
    }
}
