//! Arithmetic operation counts for the dense transforms.
//!
//! These closed-form counts feed the hardware cost model and normalize the
//! throughput comparisons of Table III ("count of transforms performed per
//! second … normalized to N = 4096 for NTT or N = 2048 for FFT").

/// Operation counts of one transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Multiplications (modular or complex, depending on datapath).
    pub mults: u64,
    /// Additions/subtractions.
    pub adds: u64,
}

impl OpCount {
    /// Element-wise sum of two counts.
    pub fn combine(self, other: OpCount) -> OpCount {
        OpCount {
            mults: self.mults + other.mults,
            adds: self.adds + other.adds,
        }
    }

    /// Scales a count by a repetition factor.
    pub fn scaled(self, k: u64) -> OpCount {
        OpCount {
            mults: self.mults * k,
            adds: self.adds * k,
        }
    }
}

/// Counts for a dense `n`-point NTT: `n/2 · log2 n` butterflies, one
/// modular multiplication and two modular add/subs each.
pub fn ntt_ops(n: usize) -> OpCount {
    let n = n as u64;
    let log = n.trailing_zeros() as u64;
    OpCount {
        mults: n / 2 * log,
        adds: n * log,
    }
}

/// Counts for a dense `m`-point *complex* FFT in units of complex
/// operations: `m/2 · log2 m` butterflies, one complex multiplication and
/// two complex add/subs each.
pub fn fft_complex_ops(m: usize) -> OpCount {
    ntt_ops(m)
}

/// Counts for the negacyclic real-to-complex transform of a length-`n`
/// real polynomial: the fold-and-twist (`n/2` complex multiplications)
/// plus an `n/2`-point complex FFT.
pub fn negacyclic_fft_ops(n: usize) -> OpCount {
    let twist = OpCount {
        mults: n as u64 / 2,
        adds: 0,
    };
    twist.combine(fft_complex_ops(n / 2))
}

/// Counts for a schoolbook negacyclic product where one operand has `nnz`
/// non-zero coefficients: `nnz · n` multiplications (the direct
/// coefficient-domain baseline of Figure 11(a)).
pub fn direct_sparse_ops(n: usize, nnz: usize) -> OpCount {
    OpCount {
        mults: (nnz * n) as u64,
        adds: (nnz * n) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntt_counts_match_formula() {
        let c = ntt_ops(4096);
        assert_eq!(c.mults, 2048 * 12);
        assert_eq!(c.adds, 4096 * 12);
    }

    #[test]
    fn negacyclic_fft_is_cheaper_than_ntt() {
        // The paper's claim: multiplications in the N/2-point FFT are less
        // than half those of the N-point NTT (plus the twist).
        for n in [1024usize, 4096, 16384] {
            let ntt = ntt_ops(n);
            let fft = negacyclic_fft_ops(n);
            assert!(
                fft.mults < ntt.mults / 2 + n as u64 / 2 + 1,
                "n={n}: fft {} vs ntt {}",
                fft.mults,
                ntt.mults
            );
            assert!(fft.mults < ntt.mults);
        }
    }

    #[test]
    fn combine_and_scale() {
        let a = OpCount { mults: 3, adds: 4 };
        let b = OpCount { mults: 10, adds: 1 };
        assert_eq!(a.combine(b), OpCount { mults: 13, adds: 5 });
        assert_eq!(a.scaled(3), OpCount { mults: 9, adds: 12 });
    }

    #[test]
    fn direct_sparse_scales_with_nnz() {
        let c = direct_sparse_ops(4096, 9);
        assert_eq!(c.mults, 9 * 4096);
    }
}
