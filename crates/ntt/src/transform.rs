//! In-place negacyclic NTT transforms with lazy reduction.
//!
//! The forward transform is the merged Cooley–Tukey negacyclic NTT
//! (Longa–Naehrig formulation): the multiplication by ψ-powers that turns
//! a cyclic NTT into a negacyclic one is folded into the butterfly
//! twiddles. The inverse uses Gentleman–Sande butterflies with ψ⁻¹ powers
//! and a final scaling by `N⁻¹`.
//!
//! Both directions use **Harvey lazy reduction**: butterflies keep
//! residues in `[0, 2q)` (inverse) / `[0, 4q)` (forward) via
//! [`Shoup::mul_lazy`] instead of fully reducing every intermediate, and
//! a single normalization at the end brings the result back to `[0, q)`.
//! The Shoup constants are unchanged and the output is bit-identical to
//! the eager formulation — only the per-butterfly compare-subtracts are
//! saved. This requires `q < 2^62` (four residues must fit in a `u64`),
//! which [`NttTables`](crate::tables::NttTables) already guarantees.
//!
//! Outputs of [`forward`] are in bit-reversed order; [`inverse`] consumes
//! bit-reversed order and returns natural order, so
//! `inverse(forward(a)) == a` without explicit permutation — exactly how
//! hardware pipelines chain the two.

use crate::tables::NttTables;
use flash_math::modular::{add_mod, Shoup};
use flash_runtime::simd::{self, SimdLevel};
use flash_runtime::U64_SCRATCH;

/// Forward Cooley–Tukey butterfly cascade over a lane-interleaved buffer:
/// `soa` holds `n` coefficient slots of `lanes` polynomials each
/// (`soa[j·lanes + l]` = coefficient `j` of polynomial `l`), so one Shoup
/// twiddle drives `t·lanes` *contiguous* elements — the compare/add/sub
/// portion of the Harvey butterfly vectorizes and the `u128` multiplies
/// pipeline. `lanes == 1` is exactly the scalar transform. Leaves
/// residues in `[0, 4q)`; callers normalize.
///
/// Every operation is exact modular integer arithmetic, so any lane
/// count produces bit-identical results.
#[inline(always)]
fn forward_butterflies(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    let n = tables.degree();
    debug_assert_eq!(soa.len(), n * lanes);
    let q = tables.modulus();
    debug_assert!(q < 1 << 62, "lazy reduction needs 4q to fit in u64");
    let two_q = 2 * q;
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        let span = t * lanes;
        for i in 0..m {
            let s = tables.psi_rev(m + i);
            let base = 2 * i * span;
            let (us, vs) = soa[base..base + 2 * span].split_at_mut(span);
            for (up, vp) in us.iter_mut().zip(vs.iter_mut()) {
                // Lazy CT butterfly: inputs are in [0, 4q); u is pulled
                // back to [0, 2q) and v = s·a[j+t] lands in [0, 2q) for
                // any unreduced operand, so both outputs stay in [0, 4q).
                let mut u = *up;
                if u >= two_q {
                    u -= two_q;
                }
                let v = s.mul_lazy(*vp, q);
                *up = u + v;
                *vp = u + two_q - v;
            }
        }
        m *= 2;
    }
}

/// Inverse Gentleman–Sande butterfly cascade over the same lane layout as
/// [`forward_butterflies`]; leaves residues unnormalized (the caller's
/// `N⁻¹` Shoup multiply fully reduces).
#[inline(always)]
fn inverse_butterflies(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    let n = tables.degree();
    debug_assert_eq!(soa.len(), n * lanes);
    let q = tables.modulus();
    debug_assert!(q < 1 << 62, "lazy reduction needs 4q to fit in u64");
    let two_q = 2 * q;
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let span = t * lanes;
        let mut base = 0;
        for i in 0..h {
            let s = tables.psi_inv_rev(h + i);
            let (us, vs) = soa[base..base + 2 * span].split_at_mut(span);
            for (up, vp) in us.iter_mut().zip(vs.iter_mut()) {
                // Lazy GS butterfly with the [0, 2q) invariant: the sum is
                // folded back below 2q, the difference (shifted into
                // [0, 4q)) re-enters [0, 2q) through the lazy multiply.
                let u = *up;
                let v = *vp;
                let mut sum = u + v;
                if sum >= two_q {
                    sum -= two_q;
                }
                *up = sum;
                *vp = s.mul_lazy(u + two_q - v, q);
            }
            base += 2 * span;
        }
        t *= 2;
        m = h;
    }
}

/// Final normalization `[0, 4q) → [0, q)` after the forward cascade.
#[inline(always)]
fn normalize_forward(soa: &mut [u64], q: u64) {
    let two_q = 2 * q;
    for x in soa.iter_mut() {
        let mut v = *x;
        if v >= two_q {
            v -= two_q;
        }
        if v >= q {
            v -= q;
        }
        *x = v;
    }
}

/// `N⁻¹` scaling epilogue of the inverse; the eager Shoup multiply fully
/// reduces any `u64` operand, so it doubles as the normalization.
#[inline(always)]
fn normalize_inverse(soa: &mut [u64], tables: &NttTables) {
    let q = tables.modulus();
    let n_inv = tables.n_inv();
    for x in soa.iter_mut() {
        *x = n_inv.mul(*x, q);
    }
}

/// In-place forward negacyclic NTT (Cooley–Tukey, natural input →
/// bit-reversed output).
///
/// # Panics
///
/// Panics if `a.len()` differs from the table degree.
pub fn forward(a: &mut [u64], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    forward_butterflies(a, 1, tables);
    normalize_forward(a, tables.modulus());
}

/// In-place inverse negacyclic NTT (Gentleman–Sande, bit-reversed input →
/// natural output), including the `N⁻¹` scaling.
///
/// # Panics
///
/// Panics if `a.len()` differs from the table degree.
pub fn inverse(a: &mut [u64], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    inverse_butterflies(a, 1, tables);
    normalize_inverse(a, tables);
}

/// AVX2 monomorphization of the full forward SoA pipeline.
///
/// # Safety
///
/// The CPU must support AVX2 (guaranteed by the `simd::level` dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn forward_lanes_avx2(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    forward_butterflies(soa, lanes, tables);
    normalize_forward(soa, tables.modulus());
}

/// AVX-512 monomorphization of the full forward SoA pipeline.
///
/// # Safety
///
/// The CPU must support AVX-512F/DQ (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn forward_lanes_avx512(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    forward_butterflies(soa, lanes, tables);
    normalize_forward(soa, tables.modulus());
}

/// AVX2 monomorphization of the full inverse SoA pipeline.
///
/// # Safety
///
/// The CPU must support AVX2 (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn inverse_lanes_avx2(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    inverse_butterflies(soa, lanes, tables);
    normalize_inverse(soa, tables);
}

/// AVX-512 monomorphization of the full inverse SoA pipeline.
///
/// # Safety
///
/// The CPU must support AVX-512F/DQ (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn inverse_lanes_avx512(soa: &mut [u64], lanes: usize, tables: &NttTables) {
    inverse_butterflies(soa, lanes, tables);
    normalize_inverse(soa, tables);
}

/// Shared driver for the batched transforms: chunk the batch into blocks
/// of `W = simd::lanes()`, transpose each block into a lane-interleaved
/// SoA scratch buffer, run one butterfly cascade over all lanes, and
/// transpose back. Lane count is the *actual* block width (no zero
/// padding needed — modular arithmetic has no remainder-lane hazards).
fn batch_lanes<F>(polys: &mut [u64], tables: &NttTables, scalar: fn(&mut [u64], &NttTables), run: F)
where
    F: Fn(&mut [u64], usize, &NttTables, SimdLevel),
{
    let n = tables.degree();
    assert_eq!(
        polys.len() % n,
        0,
        "batch length must be a multiple of the ring degree"
    );
    let batch = polys.len() / n;
    let level = simd::level();
    let w = level.lanes();
    if w == 1 || batch < 2 {
        for chunk in polys.chunks_exact_mut(n) {
            scalar(chunk, tables);
        }
        return;
    }
    let mut soa = U64_SCRATCH.take(n * w);
    let mut done = 0;
    while done < batch {
        let used = (batch - done).min(w);
        let chunk = &mut polys[done * n..(done + used) * n];
        if used == 1 {
            scalar(chunk, tables);
        } else {
            let soa = &mut soa[..n * used];
            for j in 0..n {
                for l in 0..used {
                    soa[j * used + l] = chunk[l * n + j];
                }
            }
            run(soa, used, tables, level);
            for j in 0..n {
                for l in 0..used {
                    chunk[l * n + j] = soa[j * used + l];
                }
            }
        }
        done += used;
    }
}

/// Batched in-place forward NTT over `polys.len() / n` consecutive
/// polynomials. Blocks of `W = flash_runtime::simd::lanes()` polynomials
/// share one butterfly cascade in lane-interleaved layout (one twiddle
/// per `t·W` contiguous residues); outputs are **bit-identical** to
/// per-polynomial [`forward`] calls at every lane width.
///
/// # Panics
///
/// Panics if `polys.len()` is not a multiple of the table degree.
pub fn forward_batch(polys: &mut [u64], tables: &NttTables) {
    batch_lanes(
        polys,
        tables,
        forward,
        |soa, lanes, tables, level| match level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { forward_lanes_avx512(soa, lanes, tables) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { forward_lanes_avx2(soa, lanes, tables) },
            _ => {
                forward_butterflies(soa, lanes, tables);
                normalize_forward(soa, tables.modulus());
            }
        },
    );
}

/// Batched in-place inverse NTT; same batching, layout, and bit-identity
/// contract as [`forward_batch`].
///
/// # Panics
///
/// Panics if `polys.len()` is not a multiple of the table degree.
pub fn inverse_batch(polys: &mut [u64], tables: &NttTables) {
    batch_lanes(
        polys,
        tables,
        inverse,
        |soa, lanes, tables, level| match level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { inverse_lanes_avx512(soa, lanes, tables) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { inverse_lanes_avx2(soa, lanes, tables) },
            _ => {
                inverse_butterflies(soa, lanes, tables);
                normalize_inverse(soa, tables);
            }
        },
    );
}

/// Point-wise product of two NTT-domain vectors (the "point-wise
/// multiplication" unit of the accelerator).
///
/// Allocates the result; on hot paths prefer [`pointwise_mul_assign`] or
/// [`pointwise_mul_into`], which reuse existing storage.
///
/// # Panics
///
/// Panics on length mismatch with the tables.
pub fn pointwise_mul(a: &[u64], b: &[u64], tables: &NttTables) -> Vec<u64> {
    let n = tables.degree();
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    let q = tables.modulus();
    a.iter()
        .zip(b)
        .map(|(&x, &y)| flash_math::modular::mul_mod(x, y, q))
        .collect()
}

/// In-place point-wise product: `a[i] = a[i] · b[i] mod q`.
///
/// # Panics
///
/// Panics on length mismatch with the tables.
pub fn pointwise_mul_assign(a: &mut [u64], b: &[u64], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    let q = tables.modulus();
    for (x, &y) in a.iter_mut().zip(b) {
        *x = flash_math::modular::mul_mod(*x, y, q);
    }
}

/// Point-wise product written into a caller-provided buffer:
/// `out[i] = a[i] · b[i] mod q`.
///
/// # Panics
///
/// Panics on length mismatch with the tables.
pub fn pointwise_mul_into(out: &mut [u64], a: &[u64], b: &[u64], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(out.len(), n);
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    let q = tables.modulus();
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = flash_math::modular::mul_mod(x, y, q);
    }
}

/// Accumulating point-wise multiply-add: `acc += a ⊙ b` in the NTT domain.
pub fn pointwise_mul_acc(acc: &mut [u64], a: &[u64], b: &[u64], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(acc.len(), n);
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    let q = tables.modulus();
    for i in 0..n {
        acc[i] = add_mod(acc[i], flash_math::modular::mul_mod(a[i], b[i], q), q);
    }
}

/// [`pointwise_mul_acc`] with Shoup-precomputed right-hand residues:
/// `acc += a ⊙ b` where `b` carries one [`Shoup`] constant per
/// coefficient, so each product costs two multiplies instead of a
/// widening remainder. Bit-identical to the plain form.
///
/// Precomputing the constants costs one division per coefficient — the
/// win comes from reusing a *fixed* residue vector (a registered model's
/// weights) across many activations.
///
/// # Panics
///
/// Panics on length mismatch with the tables.
pub fn pointwise_mul_acc_shoup(acc: &mut [u64], a: &[u64], b: &[Shoup], tables: &NttTables) {
    let n = tables.degree();
    assert_eq!(acc.len(), n);
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    let q = tables.modulus();
    match simd::level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { acc_shoup_avx512(acc, a, b, q) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { acc_shoup_avx2(acc, a, b, q) },
        _ => acc_shoup_scalar(acc, a, b, q),
    }
}

/// The branchless Shoup MAC loop all [`pointwise_mul_acc_shoup`]
/// dispatch targets share: compare-subtract selects instead of branches
/// so the auto-vectorizer can turn the whole body into lane-parallel
/// multiply/select chains.
#[inline(always)]
fn acc_shoup_scalar(acc: &mut [u64], a: &[u64], b: &[Shoup], q: u64) {
    for i in 0..acc.len() {
        let r = b[i].mul(a[i], q);
        let s = acc[i] + r; // both < q < 2^63: no overflow
        acc[i] = if s >= q { s - q } else { s };
    }
}

/// # Safety
///
/// The CPU must support AVX2 (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn acc_shoup_avx2(acc: &mut [u64], a: &[u64], b: &[Shoup], q: u64) {
    acc_shoup_scalar(acc, a, b, q);
}

/// # Safety
///
/// The CPU must support AVX-512F/DQ (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn acc_shoup_avx512(acc: &mut [u64], a: &[u64], b: &[Shoup], q: u64) {
    acc_shoup_scalar(acc, a, b, q);
}

/// Lazy structure-of-arrays variant of [`pointwise_mul_acc_shoup`]:
/// `acc[i] += a[i] · w[i]` with the Shoup constants split into plain
/// (`w`) and precomputed (`w_shoup`) streams and **no reductions at
/// all** — each call grows every accumulator entry by less than `2q`
/// (Harvey's lazy product bound), and the caller reduces once at the
/// end (e.g. [`flash_math::modular::Barrett::reduce_slice`]).
///
/// The split layout feeds the vectorizer contiguous full-width loads
/// instead of interleaved `(w, w')` pairs, and dropping the per-element
/// compare-subtracts shortens the lane dependency chains; together with
/// the deferred reduction this is the fastest MAC form for a modulus
/// with headroom.
///
/// The caller owns the overflow budget: at most
/// `⌊(2^64 − 1) / 2q⌋` calls may target the same accumulator between
/// reductions. Reducing afterwards recovers exactly the value the
/// eager form computes — the unreduced entry is the true integer sum.
///
/// # Panics
///
/// Panics on length mismatch with the tables.
pub fn pointwise_mul_acc_shoup_lazy(
    acc: &mut [u64],
    a: &[u64],
    w: &[u64],
    w_shoup: &[u64],
    tables: &NttTables,
) {
    let n = tables.degree();
    assert_eq!(acc.len(), n);
    assert_eq!(a.len(), n);
    assert_eq!(w.len(), n);
    assert_eq!(w_shoup.len(), n);
    let q = tables.modulus();
    match simd::level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { acc_shoup_lazy_avx512(acc, a, w, w_shoup, q) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { acc_shoup_lazy_avx2(acc, a, w, w_shoup, q) },
        _ => acc_shoup_lazy_scalar(acc, a, w, w_shoup, q),
    }
}

/// Shared loop of the [`pointwise_mul_acc_shoup_lazy`] dispatch targets;
/// the body is [`Shoup::mul_lazy`] inlined over split streams.
#[inline(always)]
fn acc_shoup_lazy_scalar(acc: &mut [u64], a: &[u64], w: &[u64], w_shoup: &[u64], q: u64) {
    for i in 0..acc.len() {
        let ai = a[i];
        let hi = ((w_shoup[i] as u128 * ai as u128) >> 64) as u64;
        let r = w[i].wrapping_mul(ai).wrapping_sub(hi.wrapping_mul(q));
        acc[i] = acc[i].wrapping_add(r);
    }
}

/// # Safety
///
/// The CPU must support AVX2 (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn acc_shoup_lazy_avx2(acc: &mut [u64], a: &[u64], w: &[u64], w_shoup: &[u64], q: u64) {
    acc_shoup_lazy_scalar(acc, a, w, w_shoup, q);
}

/// # Safety
///
/// The CPU must support AVX-512F/DQ (guaranteed by the dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn acc_shoup_lazy_avx512(acc: &mut [u64], a: &[u64], w: &[u64], w_shoup: &[u64], q: u64) {
    acc_shoup_lazy_scalar(acc, a, w, w_shoup, q);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::modular::{mul_mod, pow_mod};
    use flash_math::prime::ntt_prime;

    fn tables(n: usize, bits: u32) -> NttTables {
        let q = ntt_prime(bits, n as u64).unwrap();
        NttTables::new(n, q).unwrap()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 8, 64, 1024] {
            let t = tables(n, 30);
            let q = t.modulus();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let orig = a.clone();
            forward(&mut a, &t);
            assert_ne!(a, orig, "transform should change the vector");
            inverse(&mut a, &t);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn outputs_are_fully_normalized() {
        // Lazy reduction must not leak unreduced residues: every output
        // of forward and inverse sits in [0, q), even at a large modulus
        // near the 2^62 headroom bound.
        let n = 256;
        let q = ntt_prime(61, n as u64).unwrap();
        let t = NttTables::new(n, q).unwrap();
        let mut a: Vec<u64> = (0..n as u64)
            .map(|i| (q - 1).wrapping_sub(i * 37) % q)
            .collect();
        forward(&mut a, &t);
        assert!(a.iter().all(|&x| x < q), "forward must normalize");
        inverse(&mut a, &t);
        assert!(a.iter().all(|&x| x < q), "inverse must normalize");
    }

    #[test]
    fn transform_is_linear() {
        let t = tables(16, 30);
        let q = t.modulus();
        let a: Vec<u64> = (0..16).map(|i| (i * i + 1) % q).collect();
        let b: Vec<u64> = (0..16).map(|i| (i * 31 + 5) % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        forward(&mut fa, &t);
        forward(&mut fb, &t);
        forward(&mut fs, &t);
        for i in 0..16 {
            assert_eq!(fs[i], add_mod(fa[i], fb[i], q));
        }
    }

    #[test]
    fn forward_evaluates_at_odd_psi_powers() {
        // The negacyclic NTT evaluates a(X) at X = ψ^(2k+1). Check against
        // direct evaluation for a small case.
        let n = 8usize;
        let t = tables(n, 20);
        let q = t.modulus();
        let psi = t.psi();
        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut f = a.clone();
        forward(&mut f, &t);
        // Output index j (bit-reversed order) holds a(ψ^{2*bitrev(j)+1}).
        assert_eq!(f.len(), n);
        for (j, &fj) in f.iter().enumerate() {
            let k = flash_math::bitrev::bit_reverse(j, 3);
            let x = pow_mod(psi, (2 * k + 1) as u64, q);
            let mut val = 0u64;
            let mut xp = 1u64;
            for &c in &a {
                val = add_mod(val, mul_mod(c, xp, q), q);
                xp = mul_mod(xp, x, q);
            }
            assert_eq!(fj, val, "output {j}");
        }
    }

    #[test]
    fn pointwise_ops() {
        let t = tables(8, 20);
        let q = t.modulus();
        let a = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let b = vec![2u64; 8];
        let p = pointwise_mul(&a, &b, &t);
        assert_eq!(p, vec![2, 4, 6, 8, 10, 12, 14, 16]);
        let mut acc = vec![1u64; 8];
        pointwise_mul_acc(&mut acc, &a, &b, &t);
        for (i, &ai) in acc.iter().enumerate() {
            assert_eq!(ai, (1 + 2 * (i as u64 + 1)) % q);
        }
    }

    #[test]
    fn pointwise_shoup_matches_plain() {
        let t = tables(64, 30);
        let q = t.modulus();
        let mut x = 1u64;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x % q
        };
        let a: Vec<u64> = (0..64).map(|_| next()).collect();
        let b: Vec<u64> = (0..64).map(|_| next()).collect();
        let bs: Vec<Shoup> = b.iter().map(|&w| Shoup::new(w, q)).collect();
        let mut acc_plain: Vec<u64> = (0..64).map(|_| next()).collect();
        let mut acc_shoup = acc_plain.clone();
        pointwise_mul_acc(&mut acc_plain, &a, &b, &t);
        pointwise_mul_acc_shoup(&mut acc_shoup, &a, &bs, &t);
        assert_eq!(acc_plain, acc_shoup);
    }

    #[test]
    fn lazy_shoup_macs_match_eager_after_reduction() {
        // Several stacked lazy MACs, reduced once at the end, must equal
        // the eager per-call-reduced chain bit for bit.
        let t = tables(64, 30);
        let q = t.modulus();
        let mut x = 9u64;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x % q
        };
        let rounds = 8;
        let mut acc_eager: Vec<u64> = (0..64).map(|_| next()).collect();
        let mut acc_lazy = acc_eager.clone();
        for _ in 0..rounds {
            let a: Vec<u64> = (0..64).map(|_| next()).collect();
            let w: Vec<u64> = (0..64).map(|_| next()).collect();
            let ws: Vec<Shoup> = w.iter().map(|&v| Shoup::new(v, q)).collect();
            // The raw precomputed constants, via Shoup::new's formula.
            let w_shoup: Vec<u64> = w
                .iter()
                .map(|&v| (((v as u128) << 64) / q as u128) as u64)
                .collect();
            pointwise_mul_acc_shoup(&mut acc_eager, &a, &ws, &t);
            pointwise_mul_acc_shoup_lazy(&mut acc_lazy, &a, &w, &w_shoup, &t);
        }
        let br = flash_math::modular::Barrett::new(q);
        br.reduce_slice(&mut acc_lazy);
        assert_eq!(acc_eager, acc_lazy);
    }

    #[test]
    fn pointwise_variants_agree() {
        let t = tables(16, 25);
        let q = t.modulus();
        let a: Vec<u64> = (0..16).map(|i| (i * 977 + 13) % q).collect();
        let b: Vec<u64> = (0..16).map(|i| (i * 31 + 5) % q).collect();
        let want = pointwise_mul(&a, &b, &t);
        let mut into = vec![0u64; 16];
        pointwise_mul_into(&mut into, &a, &b, &t);
        assert_eq!(into, want);
        let mut assign = a.clone();
        pointwise_mul_assign(&mut assign, &b, &t);
        assert_eq!(assign, want);
    }

    #[test]
    #[should_panic(expected = "ring degree")]
    fn length_mismatch_panics() {
        let t = tables(8, 20);
        let mut a = vec![0u64; 4];
        forward(&mut a, &t);
    }
}
