//! Negacyclic polynomial multiplication.
//!
//! [`negacyclic_mul_ntt`] is the exact product in `Z_q[X]/(X^N + 1)` via
//! forward NTT → point-wise product → inverse NTT, i.e. Figure 4(a) of the
//! paper. [`negacyclic_mul_naive`] is the `O(N²)` schoolbook reference
//! (also the "direct computation in the coefficient domain" baseline of
//! Figure 11(a)).

use crate::tables::NttTables;
use crate::transform::{
    forward, forward_batch, inverse, inverse_batch, pointwise_mul_assign, pointwise_mul_into,
};
use flash_math::modular::{add_mod, mul_mod, sub_mod};
use flash_runtime::U64_SCRATCH;

/// Exact negacyclic product via the NTT.
///
/// Allocates the result vector; the operand transforms run in pooled
/// scratch. On hot paths that already own an output buffer, prefer
/// [`negacyclic_mul_ntt_into`], which allocates nothing in steady state.
///
/// # Panics
///
/// Panics if the operand lengths differ from the table degree.
pub fn negacyclic_mul_ntt(a: &[u64], b: &[u64], tables: &NttTables) -> Vec<u64> {
    let mut out = vec![0u64; tables.degree()];
    negacyclic_mul_ntt_into(&mut out, a, b, tables);
    out
}

/// Exact negacyclic product via the NTT, written into a caller-provided
/// buffer. All intermediate storage comes from the thread-local scratch
/// pool, so repeated calls perform no allocations.
///
/// # Panics
///
/// Panics if `out` or the operand lengths differ from the table degree.
pub fn negacyclic_mul_ntt_into(out: &mut [u64], a: &[u64], b: &[u64], tables: &NttTables) {
    let mut fa = U64_SCRATCH.take_copied(a);
    let mut fb = U64_SCRATCH.take_copied(b);
    forward(&mut fa, tables);
    forward(&mut fb, tables);
    pointwise_mul_into(out, &fa, &fb, tables);
    inverse(out, tables);
}

/// Exact negacyclic products of a batch of polynomials against one shared
/// operand, written into `out` (`batch × n`, concatenated). Both transform
/// legs run through the lane-interleaved batched kernels
/// ([`forward_batch`] / [`inverse_batch`]), so `W` polynomials at a time
/// share each twiddle; results are bit-identical to per-polynomial
/// [`negacyclic_mul_ntt_into`] calls.
///
/// # Panics
///
/// Panics if `out.len() != polys.len()`, if `polys.len()` is not a
/// multiple of the table degree, or if `shared.len()` differs from it.
pub fn negacyclic_mul_ntt_batch_into(
    out: &mut [u64],
    polys: &[u64],
    shared: &[u64],
    tables: &NttTables,
) {
    let n = tables.degree();
    assert_eq!(out.len(), polys.len(), "output batch length must match");
    assert_eq!(
        polys.len() % n,
        0,
        "batch length must be a multiple of the ring degree"
    );
    let mut fs = U64_SCRATCH.take_copied(shared);
    forward(&mut fs, tables);
    out.copy_from_slice(polys);
    forward_batch(out, tables);
    for chunk in out.chunks_exact_mut(n) {
        pointwise_mul_assign(chunk, &fs, tables);
    }
    inverse_batch(out, tables);
}

/// Schoolbook negacyclic product: `c_k = Σ_{i+j=k} a_i b_j − Σ_{i+j=k+N}
/// a_i b_j (mod q)`.
///
/// # Panics
///
/// Panics if the operands have different lengths.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    let n = a.len();
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if bj == 0 {
                continue;
            }
            let p = mul_mod(ai, bj, q);
            let k = i + j;
            if k < n {
                c[k] = add_mod(c[k], p, q);
            } else {
                c[k - n] = sub_mod(c[k - n], p, q);
            }
        }
    }
    c
}

/// Negacyclic product of a dense polynomial with a *sparse* polynomial
/// given as `(index, coefficient)` pairs — the direct coefficient-domain
/// method FLASH compares its sparse dataflow against.
pub fn negacyclic_mul_sparse(dense: &[u64], sparse: &[(usize, u64)], q: u64) -> Vec<u64> {
    let n = dense.len();
    let mut c = vec![0u64; n];
    for &(j, w) in sparse {
        assert!(j < n, "sparse index {j} out of range");
        if w == 0 {
            continue;
        }
        for (i, &x) in dense.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let p = mul_mod(x, w, q);
            let k = i + j;
            if k < n {
                c[k] = add_mod(c[k], p, q);
            } else {
                c[k - n] = sub_mod(c[k - n], p, q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::prime::ntt_prime;
    use rand::{Rng, SeedableRng};

    fn tables(n: usize, bits: u32) -> NttTables {
        let q = ntt_prime(bits, n as u64).unwrap();
        NttTables::new(n, q).unwrap()
    }

    #[test]
    fn x_pow_wraps_with_sign() {
        // X^(N-1) * X = X^N = -1 in the negacyclic ring.
        let t = tables(8, 20);
        let q = t.modulus();
        let mut a = vec![0u64; 8];
        a[7] = 1;
        let mut b = vec![0u64; 8];
        b[1] = 1;
        let c = negacyclic_mul_ntt(&a, &b, &t);
        let mut want = vec![0u64; 8];
        want[0] = q - 1;
        assert_eq!(c, want);
        assert_eq!(negacyclic_mul_naive(&a, &b, q), want);
    }

    #[test]
    fn ntt_matches_naive_random() {
        let t = tables(64, 30);
        let q = t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            assert_eq!(
                negacyclic_mul_ntt(&a, &b, &t),
                negacyclic_mul_naive(&a, &b, q)
            );
        }
    }

    #[test]
    fn identity_and_zero() {
        let t = tables(16, 20);
        let q = t.modulus();
        let a: Vec<u64> = (0..16).map(|i| (i * 3 + 1) % q).collect();
        let mut one = vec![0u64; 16];
        one[0] = 1;
        assert_eq!(negacyclic_mul_ntt(&a, &one, &t), a);
        let zero = vec![0u64; 16];
        assert_eq!(negacyclic_mul_ntt(&a, &zero, &t), zero);
    }

    #[test]
    fn sparse_matches_dense() {
        let t = tables(32, 25);
        let q = t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dense: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q)).collect();
        let mut sparse_poly = vec![0u64; 32];
        let entries = [(0usize, 5u64), (7, q - 2), (31, 1)];
        for &(i, v) in &entries {
            sparse_poly[i] = v;
        }
        assert_eq!(
            negacyclic_mul_sparse(&dense, &entries, q),
            negacyclic_mul_naive(&dense, &sparse_poly, q)
        );
    }

    #[test]
    fn batched_mul_matches_per_polynomial() {
        let t = tables(64, 40);
        let q = t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let shared: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
        for batch in [0usize, 1, 3, 8, 9] {
            let polys: Vec<u64> = (0..batch * 64).map(|_| rng.gen_range(0..q)).collect();
            let mut got = vec![0u64; polys.len()];
            negacyclic_mul_ntt_batch_into(&mut got, &polys, &shared, &t);
            for b in 0..batch {
                let mut want = vec![0u64; 64];
                negacyclic_mul_ntt_into(&mut want, &polys[b * 64..(b + 1) * 64], &shared, &t);
                assert_eq!(&got[b * 64..(b + 1) * 64], &want[..], "batch={batch} b={b}");
            }
        }
    }

    #[test]
    fn multiplication_commutes_and_associates() {
        let t = tables(16, 25);
        let q = t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..16).map(|_| rng.gen_range(0..q)).collect();
        let b: Vec<u64> = (0..16).map(|_| rng.gen_range(0..q)).collect();
        let c: Vec<u64> = (0..16).map(|_| rng.gen_range(0..q)).collect();
        assert_eq!(
            negacyclic_mul_ntt(&a, &b, &t),
            negacyclic_mul_ntt(&b, &a, &t)
        );
        let ab_c = negacyclic_mul_ntt(&negacyclic_mul_ntt(&a, &b, &t), &c, &t);
        let a_bc = negacyclic_mul_ntt(&a, &negacyclic_mul_ntt(&b, &c, &t), &t);
        assert_eq!(ab_c, a_bc);
    }
}
