//! Exact negacyclic Number Theoretic Transform (NTT).
//!
//! This crate is the *baseline* that FLASH replaces: polynomial
//! multiplication in `Z_q[X]/(X^N + 1)` via the negacyclic NTT with
//! Cooley–Tukey (forward) and Gentleman–Sande (inverse) butterflies, using
//! Shoup-precomputed twiddle multiplication — the structure of the CHAM /
//! F1 modular datapaths the paper compares against.
//!
//! * [`tables`] — per-`(N, q)` precomputed ψ-power tables.
//! * [`transform`] — in-place forward/inverse negacyclic NTT.
//! * [`polymul`] — NTT-based and naive `O(N²)` negacyclic multiplication.
//! * [`pow2`] — exact products on power-of-two rings via a two-limb
//!   CRT-NTT lift (key operations of the `Pow2` ciphertext backend).
//! * [`ops`] — arithmetic operation counts for the cost models.
//!
//! # Examples
//!
//! ```
//! use flash_ntt::tables::NttTables;
//! use flash_ntt::polymul::negacyclic_mul_ntt;
//!
//! let q = flash_math::prime::ntt_prime(30, 8).unwrap();
//! let t = NttTables::new(8, q).unwrap();
//! // (1 + X) * X^7 = X^7 + X^8 = X^7 - 1  (negacyclic wrap)
//! let a = [1, 1, 0, 0, 0, 0, 0, 0];
//! let b = [0, 0, 0, 0, 0, 0, 0, 1];
//! let c = negacyclic_mul_ntt(&a, &b, &t);
//! assert_eq!(c[0], q - 1);
//! assert_eq!(c[7], 1);
//! ```

pub mod ops;
pub mod polymul;
pub mod pow2;
pub mod tables;
pub mod transform;

pub use tables::NttTables;
