//! Exact negacyclic multiplication over a power-of-two ring `Z_{2^l}`.
//!
//! A power-of-two ciphertext modulus buys free reduction on the MAC path
//! (see `flash_math::pow2`), but the NTT itself needs a prime with
//! `q ≡ 1 (mod 2N)` — `2^l` has no roots of unity of the right order. The
//! handful of places that still need an *exact* dense product on the
//! power-of-two ring (key-side `a·s` and `p·u` multiplies during
//! encryption/decryption, where the operands are too dense for the
//! schoolbook fallback) lift instead through a two-limb CRT of
//! NTT-friendly primes:
//!
//! 1. center-lift both operands out of `Z_{2^l}` into signed integers,
//! 2. multiply exactly modulo each helper prime with the shared
//!    Shoup-NTT kernels,
//! 3. Garner-reconstruct the centered integer product and truncate it
//!    back modulo `2^l` (a wrapping cast + mask).
//!
//! Exactness requires the true integer product to fit the CRT range:
//! every coefficient of `a·b mod (X^N + 1)` is a sum of `N` terms bounded
//! by `(q/2)·‖b‖_∞`, so the basis product `P ≈ 2^100` covers
//! `N·(q/2)·‖b‖_∞ < P/2` — comfortable for the ternary secrets and
//! encryption randomness this path serves (`‖b‖_∞ ≤ 1` leaves > 25 bits
//! of slack at `N = 4096`, `q = 2^62`), but *not* for a product of two
//! full-magnitude operands. The API is therefore named and guarded for a
//! small second operand.

use crate::polymul::negacyclic_mul_ntt_into;
use crate::tables::NttTables;
use flash_math::crt::CrtBasis;
use flash_math::modular::{center_lift, from_signed};
use flash_math::pow2::is_pow2_modulus;
use flash_runtime::U64_SCRATCH;
use std::sync::Arc;

/// Bit width of the CRT helper primes. Two limbs give `P > 2^98`, enough
/// for `N·(q/2)·‖b‖_∞` with `N ≤ 2^13`, `q ≤ 2^62` and small `b`.
const LIMB_BITS: u32 = 50;

/// Precomputed context for exact products on `Z_{2^l}[X]/(X^N + 1)`:
/// the power-of-two modulus plus the two-limb CRT-NTT lift.
#[derive(Debug)]
pub struct Pow2Ring {
    q: u64,
    mask: u64,
    limbs: Vec<Arc<NttTables>>,
    crt: CrtBasis,
    /// Largest `‖b‖_∞` for which the CRT lift is provably exact.
    max_small: u64,
}

impl Pow2Ring {
    /// Builds the ring context for degree `n` and modulus `2^l`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a supported transform size or `l` is outside
    /// `2..=62`.
    pub fn new(n: usize, l: u32) -> Self {
        assert!(
            (2..=62).contains(&l),
            "power-of-two modulus exponent {l} outside 2..=62"
        );
        let q = 1u64 << l;
        let primes = flash_math::prime::ntt_primes(LIMB_BITS, n as u64, 2);
        assert_eq!(primes.len(), 2, "no CRT helper primes for N = {n}");
        let limbs: Vec<Arc<NttTables>> = primes
            .iter()
            .map(|&p| NttTables::shared(n, p).expect("helper prime admits an NTT"))
            .collect();
        let crt = CrtBasis::new(primes);
        // N · (q/2) · max_small < P/2  ⇒  max_small < P / (N·q).
        let max_small = (crt.product() / (n as u128 * q as u128) / 2) as u64;
        assert!(max_small >= 1, "CRT range too small for N = {n}, q = 2^{l}");
        Self {
            q,
            mask: q - 1,
            limbs,
            crt,
            max_small,
        }
    }

    /// The modulus `2^l`.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The reduction mask `2^l − 1`.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// The ring degree `N`.
    pub fn degree(&self) -> usize {
        self.limbs[0].degree()
    }

    /// Largest `‖b‖_∞` (after center lift) accepted by
    /// [`negacyclic_mul_small_into`](Self::negacyclic_mul_small_into).
    pub fn max_small_norm(&self) -> u64 {
        self.max_small
    }

    /// Exact negacyclic product `out = a · b mod (X^N + 1, 2^l)` where
    /// `b` is *small*: its center-lifted coefficients must satisfy
    /// `‖b‖_∞ ≤ max_small_norm()` (≈ `2^36` at `N = 4096`, `q = 2^62`)
    /// so the integer product fits the CRT range. Ternary secrets and
    /// encryption randomness always qualify.
    ///
    /// Cost: two Shoup-NTT multiplies plus a Garner recombination —
    /// this runs once per key operation, never on the MAC path.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch; debug-asserts the smallness bound and
    /// operand reduction.
    pub fn negacyclic_mul_small_into(&self, out: &mut [u64], a: &[u64], b: &[u64]) {
        let n = self.degree();
        assert_eq!(out.len(), n, "output length mismatch");
        assert_eq!(a.len(), n, "operand length mismatch");
        assert_eq!(b.len(), n, "operand length mismatch");
        debug_assert!(
            b.iter()
                .all(|&x| center_lift(x & self.mask, self.q).unsigned_abs() <= self.max_small),
            "second operand too large for an exact CRT lift"
        );

        let mut la = U64_SCRATCH.take(n);
        let mut lb = U64_SCRATCH.take(n);
        let mut prod0 = U64_SCRATCH.take(n);
        let mut prod1 = U64_SCRATCH.take(n);
        for (limb, prod) in self.limbs.iter().zip([&mut prod0[..], &mut prod1[..]]) {
            let p = limb.modulus();
            for ((la, lb), (&ai, &bi)) in la.iter_mut().zip(lb.iter_mut()).zip(a.iter().zip(b)) {
                *la = from_signed(center_lift(ai & self.mask, self.q), p);
                *lb = from_signed(center_lift(bi & self.mask, self.q), p);
            }
            negacyclic_mul_ntt_into(prod, &la, &lb, limb);
        }
        for ((o, &r0), &r1) in out.iter_mut().zip(prod0.iter()).zip(prod1.iter()) {
            // i128 → u64 truncation is reduction mod 2^64; the mask
            // finishes the reduction mod 2^l.
            *o = (self.crt.reconstruct_centered(&[r0, r1]) as u64) & self.mask;
        }
    }

    /// Allocating convenience wrapper over
    /// [`negacyclic_mul_small_into`](Self::negacyclic_mul_small_into).
    pub fn negacyclic_mul_small(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.degree()];
        self.negacyclic_mul_small_into(&mut out, a, b);
        out
    }
}

impl PartialEq for Pow2Ring {
    fn eq(&self, other: &Self) -> bool {
        self.q == other.q && self.degree() == other.degree()
    }
}

/// Checks that `q` is a modulus [`Pow2Ring`] supports.
pub fn supported_modulus(q: u64) -> bool {
    is_pow2_modulus(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::pow2::negacyclic_mul_wrapping;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn matches_wrapping_schoolbook_for_ternary_operand() {
        let ring = Pow2Ring::new(64, 62);
        let q = ring.modulus();
        let mut s = 0xABCDu64;
        let a: Vec<u64> = (0..64).map(|_| lcg(&mut s) & (q - 1)).collect();
        let b: Vec<u64> = (0..64)
            .map(|_| match lcg(&mut s) % 3 {
                0 => 0,
                1 => 1,
                _ => q - 1, // −1 mod 2^62
            })
            .collect();
        assert_eq!(
            ring.negacyclic_mul_small(&a, &b),
            negacyclic_mul_wrapping(&a, &b, q)
        );
    }

    #[test]
    fn matches_wrapping_schoolbook_for_moderate_operand() {
        // Exercise the full advertised smallness range at a modest
        // degree, where max_small_norm is far above the weights the
        // scheme actually uses.
        let ring = Pow2Ring::new(32, 40);
        let q = ring.modulus();
        let bound = ring.max_small_norm().min(1 << 20);
        let mut s = 0x77u64;
        let a: Vec<u64> = (0..32).map(|_| lcg(&mut s) & (q - 1)).collect();
        let b: Vec<u64> = (0..32)
            .map(|_| {
                let v = (lcg(&mut s) % (2 * bound + 1)) as i64 - bound as i64;
                v.rem_euclid(q as i64) as u64
            })
            .collect();
        assert_eq!(
            ring.negacyclic_mul_small(&a, &b),
            negacyclic_mul_wrapping(&a, &b, q)
        );
    }

    #[test]
    fn smallness_bound_is_generous_for_keys() {
        let ring = Pow2Ring::new(4096, 62);
        // Ternary secrets need ‖b‖ ≤ 1; the exactness bound must leave
        // wide margin beyond that.
        assert!(ring.max_small_norm() > 1 << 20);
        assert_eq!(ring.degree(), 4096);
        assert_eq!(ring.modulus(), 1 << 62);
        assert_eq!(ring.mask(), (1 << 62) - 1);
    }

    #[test]
    #[should_panic(expected = "outside 2..=62")]
    fn rejects_full_word_modulus() {
        Pow2Ring::new(64, 63);
    }
}
