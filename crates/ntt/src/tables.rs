//! Precomputed twiddle tables for the negacyclic NTT.
//!
//! For ring degree `N` and prime `q ≡ 1 (mod 2N)`, a primitive `2N`-th
//! root of unity ψ exists. The merged negacyclic NTT consumes powers of ψ
//! in bit-reversed order; the inverse consumes powers of ψ⁻¹. All powers
//! carry Shoup precomputations so the hot loop needs no division.

use flash_math::bitrev::{bit_reverse, log2_exact};
use flash_math::modular::{inv_mod, mul_mod, Shoup};
use flash_math::prime::{is_prime, primitive_nth_root};
use flash_runtime::{CacheStats, Interner};
use std::fmt;
use std::sync::Arc;

/// Errors from table construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttError {
    /// `n` is not a power of two.
    DegreeNotPowerOfTwo(usize),
    /// `q` is not prime.
    ModulusNotPrime(u64),
    /// `q ≢ 1 (mod 2N)`, so no primitive `2N`-th root exists.
    ModulusNotNttFriendly { q: u64, n: usize },
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::DegreeNotPowerOfTwo(n) => {
                write!(f, "ring degree {n} is not a power of two")
            }
            NttError::ModulusNotPrime(q) => write!(f, "modulus {q} is not prime"),
            NttError::ModulusNotNttFriendly { q, n } => {
                write!(f, "modulus {q} is not congruent to 1 mod {}", 2 * n)
            }
        }
    }
}

impl std::error::Error for NttError {}

/// Precomputed tables for a negacyclic NTT of degree `n` modulo `q`.
#[derive(Debug, Clone)]
pub struct NttTables {
    n: usize,
    q: u64,
    log_n: u32,
    /// ψ^bitrev(i) with Shoup precomputation (forward twiddles).
    psi_rev: Vec<Shoup>,
    /// ψ^{-bitrev(i)} with Shoup precomputation (inverse twiddles).
    psi_inv_rev: Vec<Shoup>,
    /// N^{-1} mod q for the inverse transform scaling.
    n_inv: Shoup,
}

impl NttTables {
    /// Builds tables for degree `n` (a power of two) and prime
    /// `q ≡ 1 (mod 2n)`, `q < 2^62`.
    ///
    /// # Errors
    ///
    /// Returns an [`NttError`] when the parameters do not admit a
    /// negacyclic NTT.
    pub fn new(n: usize, q: u64) -> Result<Self, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError::DegreeNotPowerOfTwo(n));
        }
        if !is_prime(q) {
            return Err(NttError::ModulusNotPrime(q));
        }
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::ModulusNotNttFriendly { q, n });
        }
        let log_n = log2_exact(n);
        let psi = primitive_nth_root(2 * n as u64, q);
        let psi_inv = inv_mod(psi, q).expect("psi invertible mod prime");

        let mut psi_pows = vec![0u64; n];
        let mut psi_inv_pows = vec![0u64; n];
        psi_pows[0] = 1;
        psi_inv_pows[0] = 1;
        for i in 1..n {
            psi_pows[i] = mul_mod(psi_pows[i - 1], psi, q);
            psi_inv_pows[i] = mul_mod(psi_inv_pows[i - 1], psi_inv, q);
        }
        let psi_rev = (0..n)
            .map(|i| Shoup::new(psi_pows[bit_reverse(i, log_n)], q))
            .collect();
        let psi_inv_rev = (0..n)
            .map(|i| Shoup::new(psi_inv_pows[bit_reverse(i, log_n)], q))
            .collect();
        let n_inv = Shoup::new(inv_mod(n as u64, q).expect("n invertible"), q);
        Ok(Self {
            n,
            q,
            log_n,
            psi_rev,
            psi_inv_rev,
            n_inv,
        })
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// `log2(N)` — the number of butterfly stages.
    #[inline]
    pub fn log_degree(&self) -> u32 {
        self.log_n
    }

    /// Forward twiddle `ψ^bitrev(i)`.
    #[inline]
    pub(crate) fn psi_rev(&self, i: usize) -> &Shoup {
        &self.psi_rev[i]
    }

    /// Inverse twiddle `ψ^{-bitrev(i)}`.
    #[inline]
    pub(crate) fn psi_inv_rev(&self, i: usize) -> &Shoup {
        &self.psi_inv_rev[i]
    }

    /// `N^{-1} mod q`.
    #[inline]
    pub(crate) fn n_inv(&self) -> &Shoup {
        &self.n_inv
    }

    /// The primitive 2N-th root ψ used by this table (ψ^bitrev(1) = ψ^{N/2}
    /// … exposed for testing and for twiddle-storage cost modeling).
    pub fn psi(&self) -> u64 {
        // bitrev(1) over log_n bits is n/2, so psi_rev[1] = psi^{n/2}.
        // Recover psi itself from the stored power of smallest exponent:
        // psi_rev covers all exponents 0..n; exponent 1 sits at index
        // bitrev(1) = n/2.
        self.psi_rev[self.n / 2].value()
    }

    /// Twiddle ROM size in entries (forward + inverse), for memory cost
    /// modeling: `2N` words of `ceil(log2 q)` bits.
    pub fn rom_entries(&self) -> usize {
        2 * self.n
    }
}

/// Process-wide table cache: one `NttTables` per distinct `(n, q)`.
static SHARED_TABLES: Interner<(usize, u64), NttTables> = Interner::bounded(64);

impl NttTables {
    /// Like [`NttTables::new`], but interned process-wide: every call
    /// with the same `(n, q)` returns the same `Arc` without rebuilding
    /// the twiddle tables. Construction errors are not cached.
    pub fn shared(n: usize, q: u64) -> Result<Arc<NttTables>, NttError> {
        SHARED_TABLES.try_intern_with((n, q), |&(n, q)| NttTables::new(n, q))
    }

    /// Hit/miss counters of the shared `(n, q)` cache.
    pub fn shared_cache_stats() -> CacheStats {
        SHARED_TABLES.stats()
    }

    /// Drops all shared tables (outstanding `Arc`s stay valid) and
    /// resets the counters.
    pub fn clear_shared_cache() {
        SHARED_TABLES.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::modular::pow_mod;
    use flash_math::prime::ntt_prime;

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            NttTables::new(6, 97),
            Err(NttError::DegreeNotPowerOfTwo(6))
        ));
        assert!(matches!(
            NttTables::new(8, 100),
            Err(NttError::ModulusNotPrime(100))
        ));
        // 97 - 1 = 96 is divisible by 16 but not by 64.
        assert!(matches!(
            NttTables::new(32, 97),
            Err(NttError::ModulusNotNttFriendly { .. })
        ));
    }

    #[test]
    fn psi_has_order_2n() {
        let q = ntt_prime(20, 16).unwrap();
        let t = NttTables::new(16, q).unwrap();
        let psi = t.psi();
        assert_eq!(pow_mod(psi, 32, q), 1);
        assert_ne!(pow_mod(psi, 16, q), 1);
        // psi^N = -1: the negacyclic signature.
        assert_eq!(pow_mod(psi, 16, q), q - 1);
    }

    #[test]
    fn table_sizes() {
        let q = ntt_prime(30, 64).unwrap();
        let t = NttTables::new(64, q).unwrap();
        assert_eq!(t.degree(), 64);
        assert_eq!(t.log_degree(), 6);
        assert_eq!(t.rom_entries(), 128);
        assert_eq!(t.modulus(), q);
    }

    #[test]
    fn large_degree_4096_builds() {
        let q = ntt_prime(39, 4096).unwrap();
        let t = NttTables::new(4096, q).unwrap();
        assert_eq!(pow_mod(t.psi(), 4096, q), q - 1);
    }
}
