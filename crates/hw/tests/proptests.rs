//! Property-based tests for the hardware cost model: costs must be
//! positive, monotone in every size parameter, and additive.

use flash_hw::cost::{CostModel, TechNode};
use flash_hw::energy::{hconv_energy, DesignPoint, HconvOps};
use flash_hw::throughput::{fft_work_units, ntt_work_units};
use flash_hw::units::BuKind;
use proptest::prelude::*;

proptest! {
    #[test]
    fn unit_costs_positive_and_monotone(b1 in 4u32..64, b2 in 4u32..64) {
        let m = CostModel::cmos28();
        let c = m.int_mult(b1, b2);
        prop_assert!(c.area_um2 > 0.0 && c.power_mw > 0.0);
        let bigger = m.int_mult(b1 + 1, b2 + 1);
        prop_assert!(bigger.area_um2 > c.area_um2);
        prop_assert!(m.adder(b1 + 1).area_um2 > m.adder(b1).area_um2);
    }

    #[test]
    fn shift_add_monotone_in_k_and_width(bits in 16u32..64, k in 1u32..24) {
        let m = CostModel::cmos28();
        let c = m.shift_add_complex_mult(bits, k, 8);
        let ck = m.shift_add_complex_mult(bits, k + 1, 8);
        let cw = m.shift_add_complex_mult(bits + 4, k, 8);
        prop_assert!(ck.power_mw > c.power_mw);
        prop_assert!(cw.area_um2 > c.area_um2);
    }

    #[test]
    fn approx_bu_cheaper_than_fp_bu_at_any_k_below_natural(k in 1u32..12) {
        let m = CostModel::cmos28();
        let approx = BuKind::Approx { data_bits: 39, k, mux_inputs: 8 }.cost(&m);
        let fp = BuKind::flash_fp().cost(&m);
        prop_assert!(approx.power_mw < fp.power_mw, "k={k}");
    }

    #[test]
    fn node_scaling_shrinks_costs(area in 1.0f64..1e6, power in 0.001f64..1e3) {
        let c = flash_hw::cost::UnitCost::new(area, power);
        for node in [TechNode::n14(), TechNode::n12(), TechNode::n7()] {
            let s = node.scale(c);
            prop_assert!(s.area_um2 < c.area_um2);
            prop_assert!(s.power_mw < c.power_mw);
        }
    }

    #[test]
    fn work_units_scale_with_n(log_n in 10u32..18) {
        let n = 1usize << log_n;
        prop_assert!(ntt_work_units(2 * n) > 2.0 * ntt_work_units(n));
        prop_assert!(fft_work_units(n) > 0.0);
    }

    #[test]
    fn energy_additive_in_ops(
        w in 1u64..1_000_000,
        a in 1u64..1_000_000,
        p in 1u64..1_000_000,
    ) {
        let m = CostModel::cmos28();
        let point = DesignPoint {
            label: "FLASH",
            weight_bu: BuKind::flash_approx(),
            sparse: true,
        };
        let ops = HconvOps {
            weight_mults_dense: 10 * w,
            weight_mults_sparse: w,
            act_mults: a,
            pointwise: p,
            accums: p,
        };
        let double = HconvOps {
            weight_mults_dense: 20 * w,
            weight_mults_sparse: 2 * w,
            act_mults: 2 * a,
            pointwise: 2 * p,
            accums: 2 * p,
        };
        let e1 = hconv_energy(&ops, &point, &m).total_pj();
        let e2 = hconv_energy(&double, &point, &m).total_pj();
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-6 * e2.max(1.0));
    }

    #[test]
    fn sparse_never_costs_more_than_dense(w in 1u64..1_000_000) {
        let m = CostModel::cmos28();
        let ops = HconvOps {
            weight_mults_dense: 10 * w,
            weight_mults_sparse: w,
            act_mults: 0,
            pointwise: 0,
            accums: 0,
        };
        let sparse = hconv_energy(
            &ops,
            &DesignPoint { label: "s", weight_bu: BuKind::flash_approx(), sparse: true },
            &m,
        );
        let dense = hconv_energy(
            &ops,
            &DesignPoint { label: "d", weight_bu: BuKind::flash_approx(), sparse: false },
            &m,
        );
        prop_assert!(sparse.weight_pj <= dense.weight_pj);
    }
}
