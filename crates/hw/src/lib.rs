//! Hardware cost, architecture and energy models of FLASH and its
//! baselines.
//!
//! The paper evaluates synthesized RTL (Synopsys DC, 28 nm, 1 GHz) and
//! estimates DSE candidates with a pre-synthesized LUT of butterfly-unit
//! costs. We substitute an analytical gate-level model *calibrated to the
//! paper's own Table II anchors* (see DESIGN.md §3): component constants
//! are fit so the modular, complex-FP and shift-add multiplier rows
//! reproduce within a few percent, then every larger structure (butterfly
//! units, PEs, the full accelerator) composes from those components.
//!
//! * [`cost`] — unit cost model (adders, multipliers, muxes, FP units,
//!   modular multipliers, memories) with technology scaling.
//! * [`units`] — butterfly-unit and point-wise-unit compositions.
//! * [`arch`] — the FLASH architecture (60 approximate PEs × 4 BUs +
//!   4 FP PEs + point-wise FP multipliers/accumulators) and its area/power
//!   breakdown (Figure 12).
//! * [`baselines`] — published numbers of HEAX/CHAM/F1/BTS/ARK
//!   (Table III) and a CHAM performance model for Table IV.
//! * [`throughput`] — transform-rate normalization (N=4096 NTT ↔ N=2048
//!   FFT) and MOPS efficiency metrics.
//! * [`energy`] — per-operation and per-layer energy accounting for the
//!   ablation studies (Figure 11(d)(e)).

pub mod arch;
pub mod baselines;
pub mod cost;
pub mod energy;
pub mod throughput;
pub mod units;

pub use arch::FlashArch;
pub use cost::{CostModel, UnitCost};
