//! The FLASH accelerator architecture and its area/power breakdown.
//!
//! Figure 6 of the paper: 60 approximate FFT PEs (4 BUs each) carry the
//! weight transforms; 4 FP PEs (4 BUs each) carry the activation
//! transforms; arrays of FP multipliers and FP accumulators execute the
//! point-wise products and channel accumulation. Everything runs at 1 GHz
//! in 28 nm.

use crate::cost::{CostModel, UnitCost};
use crate::units::{fp_accumulator, pointwise_fp_mult, twiddle_rom, BuKind};

/// Architecture parameters of a FLASH-like accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashArch {
    /// Approximate (weight-transform) PEs.
    pub approx_pes: u32,
    /// Butterfly units per approximate PE.
    pub approx_bus_per_pe: u32,
    /// The approximate BU flavour.
    pub approx_bu: BuKind,
    /// FP (activation-transform) PEs.
    pub fp_pes: u32,
    /// Butterfly units per FP PE.
    pub fp_bus_per_pe: u32,
    /// Point-wise complex FP multipliers.
    pub pointwise_muls: u32,
    /// FP accumulators.
    pub fp_accs: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Ring degree the twiddle ROMs are sized for.
    pub n: usize,
}

impl FlashArch {
    /// The paper's FLASH configuration.
    pub fn paper_default() -> Self {
        Self {
            approx_pes: 60,
            approx_bus_per_pe: 4,
            approx_bu: BuKind::flash_approx(),
            fp_pes: 4,
            fp_bus_per_pe: 4,
            pointwise_muls: 128,
            fp_accs: 128,
            freq_ghz: 1.0,
            n: 4096,
        }
    }

    /// Total approximate BUs.
    pub fn approx_bus(&self) -> u32 {
        self.approx_pes * self.approx_bus_per_pe
    }

    /// Total FP BUs.
    pub fn fp_bus(&self) -> u32 {
        self.fp_pes * self.fp_bus_per_pe
    }

    /// Area/power breakdown by component (the Figure 12 data).
    pub fn breakdown(&self, m: &CostModel) -> ArchBreakdown {
        let k = match self.approx_bu {
            BuKind::Approx { k, .. } => k,
            _ => 5,
        };
        // Twiddle ROM is shared across the PE array (the twiddle set is
        // identical for every polynomial, as the paper notes).
        let approx_bu = self.approx_bu.cost(m) * self.approx_bus() as f64
            + twiddle_rom(m, self.n as u64 / 2, k, 6);
        let fp_bu = BuKind::flash_fp().cost(m) * self.fp_bus() as f64;
        let fp_mul = pointwise_fp_mult(m) * self.pointwise_muls as f64;
        let fp_acc = fp_accumulator(m) * self.fp_accs as f64;
        // Buffers: weight spectra stream through the pipeline; only the
        // activation spectra and point-wise staging are double-buffered
        // (2 complex polys per FP PE + staging for the multiplier array).
        let words = (2 * self.fp_pes as u64 + 8) * (self.n as u64 / 2);
        let buffers = m.memory(words * 96) + m.register(4096);
        ArchBreakdown {
            approx_bu,
            fp_bu,
            fp_mul,
            fp_acc,
            buffers,
        }
    }

    /// The weight-transform engine alone (the paper's "Weight transforms"
    /// row of Table III).
    pub fn weight_engine_cost(&self, m: &CostModel) -> UnitCost {
        let k = match self.approx_bu {
            BuKind::Approx { k, .. } => k,
            _ => 5,
        };
        self.approx_bu.cost(m) * self.approx_bus() as f64 + twiddle_rom(m, self.n as u64 / 2, k, 6)
    }

    /// The complete accelerator (the "All transforms in HConv" row).
    pub fn total_cost(&self, m: &CostModel) -> UnitCost {
        self.breakdown(m).total()
    }
}

/// Component-level cost breakdown (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchBreakdown {
    /// Approximate butterfly units + twiddle ROMs.
    pub approx_bu: UnitCost,
    /// FP butterfly units.
    pub fp_bu: UnitCost,
    /// Point-wise FP multipliers.
    pub fp_mul: UnitCost,
    /// FP accumulators.
    pub fp_acc: UnitCost,
    /// Buffers and control.
    pub buffers: UnitCost,
}

impl ArchBreakdown {
    /// Sum over all components.
    pub fn total(&self) -> UnitCost {
        self.approx_bu + self.fp_bu + self.fp_mul + self.fp_acc + self.buffers
    }

    /// `(label, cost)` rows for reporting.
    pub fn rows(&self) -> Vec<(&'static str, UnitCost)> {
        vec![
            ("Approx BU", self.approx_bu),
            ("FP BU", self.fp_bu),
            ("FP MUL", self.fp_mul),
            ("FP ACC", self.fp_acc),
            ("Buffers+Ctrl", self.buffers),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arch_shape() {
        let a = FlashArch::paper_default();
        assert_eq!(a.approx_bus(), 240);
        assert_eq!(a.fp_bus(), 16);
    }

    #[test]
    fn weight_engine_near_paper_row() {
        // Table III: weight transforms at 0.74 mm², 0.27 W.
        let a = FlashArch::paper_default();
        let m = CostModel::cmos28();
        let c = a.weight_engine_cost(&m);
        assert!(
            (0.4..1.5).contains(&c.area_mm2()),
            "weight engine area {} mm²",
            c.area_mm2()
        );
        assert!(
            (0.1..0.6).contains(&c.power_w()),
            "weight engine power {} W",
            c.power_w()
        );
    }

    #[test]
    fn total_near_paper_row() {
        // Table III: all transforms at 4.22 mm², 2.56 W.
        let a = FlashArch::paper_default();
        let m = CostModel::cmos28();
        let c = a.total_cost(&m);
        assert!(
            (2.0..7.0).contains(&c.area_mm2()),
            "total area {} mm²",
            c.area_mm2()
        );
        assert!(
            (1.2..5.0).contains(&c.power_w()),
            "total power {} W",
            c.power_w()
        );
    }

    #[test]
    fn pointwise_dominates_fp_side() {
        // The paper's observation: point-wise multiplication becomes the
        // new bottleneck once weight transforms are optimized.
        let a = FlashArch::paper_default();
        let m = CostModel::cmos28();
        let b = a.breakdown(&m);
        assert!(b.fp_mul.power_mw > b.approx_bu.power_mw);
        assert!(b.fp_mul.power_mw > b.fp_bu.power_mw);
        assert!(b.fp_mul.area_um2 > b.fp_acc.area_um2);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = FlashArch::paper_default();
        let m = CostModel::cmos28();
        let b = a.breakdown(&m);
        let sum: f64 = b.rows().iter().map(|(_, c)| c.area_um2).sum();
        assert!((sum - b.total().area_um2).abs() < 1e-6);
    }
}
