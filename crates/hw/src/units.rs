//! Butterfly units and point-wise units composed from the cost model.
//!
//! A butterfly unit (BU) executes one radix-2 butterfly per cycle:
//! one complex multiplication (`v·ω`) plus a complex add and subtract.
//! FLASH instantiates three flavours:
//!
//! * the **approximate BU** (weight transforms): shift-add complex
//!   multiplier with CSD twiddles at quantization level `k`;
//! * the **FP BU** (activation transforms): complex FP multiplier;
//! * the **modular BU** (baseline NTT datapaths).

use crate::cost::{CostModel, UnitCost};

/// Butterfly-unit flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuKind {
    /// Shift-add CSD multiplier: `data_bits` wide, `k` terms per twiddle
    /// component, `mux_inputs`-way shift MUXes.
    Approx {
        data_bits: u32,
        k: u32,
        mux_inputs: u32,
    },
    /// Generic fixed-point complex multiplier (the "FXP FFT" ablation).
    Fxp { data_bits: u32 },
    /// Floating point with `exp`/`mant` bits.
    Fp { exp: u32, mant: u32 },
    /// Modular (`bits`-wide ciphertext words), CHAM-style multiplier.
    Modular { bits: u32 },
    /// Power-of-two-modulus MAC lane: a plain integer multiplier and two
    /// plain adders. Reduction mod `2^bits` is wiring (keep the low
    /// bits), so there is no reduction datapath at all — no shift-add
    /// tree, no conditional subtract, no Barrett stages — and none of the
    /// modular-path activity overhead.
    Pow2Wrap { bits: u32 },
}

impl BuKind {
    /// The FLASH approximate BU operating point (39-bit data, k = 5).
    pub fn flash_approx() -> Self {
        BuKind::Approx {
            data_bits: 39,
            k: 5,
            mux_inputs: 8,
        }
    }

    /// The FLASH FP BU (8+1+39, enough for exactness vs a 39-bit NTT).
    pub fn flash_fp() -> Self {
        BuKind::Fp { exp: 8, mant: 39 }
    }

    /// The 27-bit FXP ablation point of Figure 5(b).
    pub fn fxp27() -> Self {
        BuKind::Fxp { data_bits: 27 }
    }

    /// CHAM's 39-bit modular BU.
    pub fn cham_modular() -> Self {
        BuKind::Modular { bits: 39 }
    }

    /// The FLASH power-of-two MAC lane (62-bit ciphertext words,
    /// `q = 2^62`).
    pub fn flash_pow2() -> Self {
        BuKind::Pow2Wrap { bits: 62 }
    }

    /// Total cost of one butterfly unit.
    pub fn cost(&self, m: &CostModel) -> UnitCost {
        match *self {
            BuKind::Approx {
                data_bits,
                k,
                mux_inputs,
            } => {
                // complex CSD mult + complex add & sub (4 real adders) +
                // pipeline registers for the complex pair
                m.shift_add_complex_mult(data_bits, k, mux_inputs)
                    + m.adder(data_bits) * 4.0
                    + m.register(4 * data_bits)
            }
            BuKind::Fxp { data_bits } => {
                m.complex_fxp_mult(data_bits) + m.adder(data_bits) * 4.0 + m.register(4 * data_bits)
            }
            BuKind::Fp { exp, mant } => {
                m.complex_fp_mult(exp, mant)
                    + m.fp_adder(exp, mant) * 4.0
                    + m.register(4 * (exp + mant + 1))
            }
            BuKind::Modular { bits } => {
                m.modular_mult_shiftadd(bits) + m.modular_adder(bits) * 2.0 + m.register(2 * bits)
            }
            BuKind::Pow2Wrap { bits } => {
                m.int_mult(bits, bits) + m.adder(bits) * 2.0 + m.register(2 * bits)
            }
        }
    }

    /// Energy of one butterfly (or one multiply-equivalent operation) in
    /// pJ at 1 GHz.
    pub fn energy_per_op_pj(&self, m: &CostModel) -> f64 {
        self.cost(m).energy_per_cycle_pj()
    }
}

/// The point-wise multiply unit (complex FP multiplier) of the FLASH
/// datapath.
pub fn pointwise_fp_mult(m: &CostModel) -> UnitCost {
    m.complex_fp_mult(8, 39) + m.register(2 * 48)
}

/// The FP accumulator unit (complex FP adder + register).
pub fn fp_accumulator(m: &CostModel) -> UnitCost {
    m.fp_adder(8, 39) * 2.0 + m.register(2 * 48)
}

/// Twiddle ROM cost for one approximate PE: `entries` quantized twiddles
/// of `2k` CSD terms, each term one sign bit + `shift_bits` of shift
/// select.
pub fn twiddle_rom(m: &CostModel, entries: u64, k: u32, shift_bits: u32) -> UnitCost {
    let bits_per_entry = 2 * k * (1 + shift_bits);
    m.memory(entries * bits_per_entry as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_bu_is_cheapest_per_op() {
        let m = CostModel::cmos28();
        let approx = BuKind::flash_approx().energy_per_op_pj(&m);
        let fp = BuKind::flash_fp().energy_per_op_pj(&m);
        let modular = BuKind::cham_modular().energy_per_op_pj(&m);
        let fxp = BuKind::fxp27().energy_per_op_pj(&m);
        assert!(approx < fxp, "approx {approx} < fxp27 {fxp}");
        assert!(fxp < fp, "fxp27 {fxp} < fp {fp}");
        assert!(approx < modular, "approx {approx} < modular {modular}");
        // the paper's magnitude: FP BU several times the approximate BU
        assert!(fp / approx > 4.0, "fp/approx = {}", fp / approx);
    }

    #[test]
    fn pow2_wrap_lane_beats_modular_lanes_at_equal_width() {
        // The wrapping MAC lane drops the whole reduction datapath, so at
        // the same word width it must undercut both modular multiplier
        // styles in energy and area.
        let m = CostModel::cmos28();
        for bits in [39u32, 62] {
            let wrap = BuKind::Pow2Wrap { bits }.cost(&m);
            let cham = BuKind::Modular { bits }.cost(&m);
            let barrett =
                m.modular_mult_barrett(bits) + m.modular_adder(bits) * 2.0 + m.register(2 * bits);
            assert!(
                wrap.energy_per_cycle_pj() < cham.energy_per_cycle_pj(),
                "{bits}-bit wrap energy must beat shift-add modular"
            );
            assert!(
                wrap.energy_per_cycle_pj() < barrett.energy_per_cycle_pj(),
                "{bits}-bit wrap energy must beat Barrett modular"
            );
            assert!(wrap.area_mm2() < cham.area_mm2());
        }
        // Across widths the multiplier's quadratic area means a 62-bit
        // lane can't undercut a 39-bit one outright; the honest metric is
        // energy per bit of ciphertext modulus, where the wrap lane's
        // missing reduction datapath wins.
        let wrap62 = BuKind::flash_pow2().energy_per_op_pj(&m) / 62.0;
        let cham39 = BuKind::cham_modular().energy_per_op_pj(&m) / 39.0;
        assert!(
            wrap62 < cham39,
            "per modulus bit: wrap {wrap62} < modular {cham39}"
        );
    }

    #[test]
    fn bu_costs_are_positive_and_ordered_in_k() {
        let m = CostModel::cmos28();
        let k5 = BuKind::Approx {
            data_bits: 39,
            k: 5,
            mux_inputs: 8,
        }
        .cost(&m);
        let k18 = BuKind::Approx {
            data_bits: 39,
            k: 18,
            mux_inputs: 8,
        }
        .cost(&m);
        assert!(k5.area_um2 > 0.0 && k5.power_mw > 0.0);
        assert!(k18.power_mw > 2.0 * k5.power_mw, "k18 {k18} vs k5 {k5}");
    }

    #[test]
    fn pointwise_and_accumulator_costs() {
        let m = CostModel::cmos28();
        let pw = pointwise_fp_mult(&m);
        let acc = fp_accumulator(&m);
        assert!(pw.area_um2 > 10_000.0);
        assert!(acc.area_um2 < pw.area_um2);
    }

    #[test]
    fn rom_scales_with_k() {
        let m = CostModel::cmos28();
        let small = twiddle_rom(&m, 2048, 5, 6);
        let big = twiddle_rom(&m, 2048, 18, 6);
        assert!(big.area_um2 > 3.0 * small.area_um2);
    }
}
