//! Unit hardware cost model, calibrated to the paper's Table II.
//!
//! All constants are for a commercial 28 nm node at 1 GHz (the paper's
//! synthesis point); [`TechNode`] rescales results to other nodes using
//! published logic-density/power factors. Calibration anchors:
//!
//! | Unit | Anchor |
//! |------|--------|
//! | Approx. FXP complex-by-CSD-twiddle mult, 39 b, k = 5 | 3211 µm², 1.11 mW |
//! | Complex FP mult, 8+1+39 | 11744 µm², 8.26 mW |
//! | CHAM modular mult, 39 b @28 nm | 3517 µm², 3.79 mW |
//! | F1 modular mult, 32 b @14/12 nm | 1817 µm², 4.10 mW |

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Area (µm²) and power (mW) of a hardware unit at the model's node and
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UnitCost {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Power in mW at 1 GHz.
    pub power_mw: f64,
}

impl UnitCost {
    /// A zero cost.
    pub const ZERO: UnitCost = UnitCost {
        area_um2: 0.0,
        power_mw: 0.0,
    };

    /// Creates a cost.
    pub fn new(area_um2: f64, power_mw: f64) -> Self {
        Self { area_um2, power_mw }
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 / 1e6
    }

    /// Power in W.
    pub fn power_w(&self) -> f64 {
        self.power_mw / 1e3
    }

    /// Energy per clock cycle in pJ (power / frequency at 1 GHz).
    pub fn energy_per_cycle_pj(&self) -> f64 {
        self.power_mw // 1 mW @ 1 GHz = 1 pJ/cycle
    }
}

impl Add for UnitCost {
    type Output = UnitCost;
    fn add(self, rhs: UnitCost) -> UnitCost {
        UnitCost::new(self.area_um2 + rhs.area_um2, self.power_mw + rhs.power_mw)
    }
}

impl AddAssign for UnitCost {
    fn add_assign(&mut self, rhs: UnitCost) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for UnitCost {
    type Output = UnitCost;
    fn mul(self, k: f64) -> UnitCost {
        UnitCost::new(self.area_um2 * k, self.power_mw * k)
    }
}

impl fmt::Display for UnitCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} µm², {:.2} mW", self.area_um2, self.power_mw)
    }
}

/// Technology node with area/power scaling factors relative to 28 nm
/// (approximate published logic-density and energy ratios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size label in nm.
    pub nm: u32,
    /// Area multiplier relative to 28 nm.
    pub area_scale: f64,
    /// Power multiplier relative to 28 nm (same frequency).
    pub power_scale: f64,
}

impl TechNode {
    /// The model's native 28 nm node.
    pub fn n28() -> Self {
        Self {
            nm: 28,
            area_scale: 1.0,
            power_scale: 1.0,
        }
    }

    /// 14 nm (≈2.2× density, ≈40 % less power).
    pub fn n14() -> Self {
        Self {
            nm: 14,
            area_scale: 0.45,
            power_scale: 0.60,
        }
    }

    /// 12 nm.
    pub fn n12() -> Self {
        Self {
            nm: 12,
            area_scale: 0.40,
            power_scale: 0.55,
        }
    }

    /// 7 nm.
    pub fn n7() -> Self {
        Self {
            nm: 7,
            area_scale: 0.18,
            power_scale: 0.35,
        }
    }

    /// Rescales a 28 nm cost to this node.
    pub fn scale(&self, c: UnitCost) -> UnitCost {
        UnitCost::new(c.area_um2 * self.area_scale, c.power_mw * self.power_scale)
    }
}

/// The calibrated 28 nm component cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Ripple/CLA adder: µm² per bit.
    pub add_area: f64,
    /// Adder power: µW per bit.
    pub add_power: f64,
    /// Array multiplier: µm² per bit².
    pub mult_area: f64,
    /// Array multiplier power: µW per bit².
    pub mult_power: f64,
    /// MUX: µm² per input·bit.
    pub mux_area: f64,
    /// MUX power: µW per input·bit.
    pub mux_power: f64,
    /// Register: µm² per bit.
    pub reg_area: f64,
    /// Register power: µW per bit.
    pub reg_power: f64,
    /// FP packaging overhead (exponent datapath, normalization): µm²/bit.
    pub fp_ovh_area: f64,
    /// FP packaging overhead power: µW per bit.
    pub fp_ovh_power: f64,
    /// Activity factor of modular datapaths (long carry chains toggle
    /// more than the FP average the multiplier constants were fit on).
    pub modular_activity: f64,
    /// SRAM: µm² per bit.
    pub sram_area: f64,
    /// SRAM dynamic power: µW per bit (amortized access).
    pub sram_power: f64,
}

impl CostModel {
    /// The calibrated 28 nm / 1 GHz model (see module docs for anchors).
    pub fn cmos28() -> Self {
        Self {
            add_area: 1.5,
            add_power: 0.9,
            mult_area: 1.65,
            mult_power: 1.19,
            mux_area: 0.813,
            mux_power: 0.226,
            reg_area: 0.9,
            reg_power: 0.35,
            fp_ovh_area: 20.0,
            fp_ovh_power: 10.0,
            modular_activity: 1.6,
            sram_area: 0.25,
            sram_power: 0.005,
        }
    }

    /// A `bits`-wide adder.
    pub fn adder(&self, bits: u32) -> UnitCost {
        UnitCost::new(
            self.add_area * bits as f64,
            self.add_power * bits as f64 / 1e3,
        )
    }

    /// A `b1 × b2` array multiplier.
    pub fn int_mult(&self, b1: u32, b2: u32) -> UnitCost {
        let bb = (b1 * b2) as f64;
        UnitCost::new(self.mult_area * bb, self.mult_power * bb / 1e3)
    }

    /// An `inputs`-to-1 MUX over a `bits`-wide word.
    pub fn mux(&self, inputs: u32, bits: u32) -> UnitCost {
        let ib = (inputs * bits) as f64;
        UnitCost::new(self.mux_area * ib, self.mux_power * ib / 1e3)
    }

    /// A `bits`-wide register.
    pub fn register(&self, bits: u32) -> UnitCost {
        UnitCost::new(
            self.reg_area * bits as f64,
            self.reg_power * bits as f64 / 1e3,
        )
    }

    /// The complex-by-quantized-twiddle shift-add multiplier of Figure 9:
    /// `2k` shift MUXes (`mux_inputs`-to-1) and a `2k`-adder tree per
    /// complex product, on `bits`-wide data. This is Table II's
    /// "Approx. FXP Mul".
    pub fn shift_add_complex_mult(&self, bits: u32, k: u32, mux_inputs: u32) -> UnitCost {
        let taps = 2 * k; // k per real/imaginary twiddle component
        let mux = self.mux(mux_inputs, bits) * taps as f64;
        // adder tree: taps adders (tap sums + the final cross add/sub),
        // slightly widened for carry growth
        let adders = self.adder(bits + 6) * taps as f64;
        mux + adders
    }

    /// A complex floating-point multiplier with `exp` exponent and `mant`
    /// mantissa bits (4 real mantissa multipliers, 2 wide adders, exponent
    /// and normalization overhead). Table II's "Complex FP Mul".
    pub fn complex_fp_mult(&self, exp: u32, mant: u32) -> UnitCost {
        let m1 = mant + 1; // hidden bit
        self.int_mult(m1, m1) * 4.0
            + self.adder(2 * m1) * 2.0
            + UnitCost::new(
                self.fp_ovh_area * (exp + mant + 1) as f64,
                self.fp_ovh_power * (exp + mant + 1) as f64 / 1e3,
            )
    }

    /// A floating-point adder (align shifter, mantissa adder, normalize).
    pub fn fp_adder(&self, exp: u32, mant: u32) -> UnitCost {
        let m1 = mant + 1;
        self.adder(m1) * 3.0
            + self.mux(4, m1) * 2.0
            + UnitCost::new(
                self.fp_ovh_area * exp as f64 * 0.5,
                self.fp_ovh_power * exp as f64 * 0.5 / 1e3,
            )
    }

    /// CHAM-style modular multiplier (special moduli with 3 non-zero
    /// bits): full integer multiplier plus a shift-add reduction of wide
    /// partial results. Matches Table II's CHAM row.
    pub fn modular_mult_shiftadd(&self, bits: u32) -> UnitCost {
        let core = self.int_mult(bits, bits) + self.adder(2 * bits) * 6.0 + self.mux(2, 2 * bits);
        UnitCost::new(core.area_um2, core.power_mw * self.modular_activity)
    }

    /// F1-style modular multiplier (optimized Barrett/Montgomery with one
    /// multiplier stage removed — ≈2.5 multiplier equivalents).
    pub fn modular_mult_barrett(&self, bits: u32) -> UnitCost {
        let core = self.int_mult(bits, bits) * 2.5 + self.adder(2 * bits) * 4.0;
        UnitCost::new(core.area_um2, core.power_mw * self.modular_activity)
    }

    /// A modular adder (add + conditional subtract).
    pub fn modular_adder(&self, bits: u32) -> UnitCost {
        self.adder(bits) * 2.0 + self.mux(2, bits)
    }

    /// A generic fixed-point complex multiplier (4 array multipliers + 2
    /// adders) — the datapath of the non-CSD "FXP FFT" ablation point.
    pub fn complex_fxp_mult(&self, bits: u32) -> UnitCost {
        self.int_mult(bits, bits) * 4.0 + self.adder(2 * bits) * 2.0
    }

    /// SRAM/ROM storage cost for `bits` of memory.
    pub fn memory(&self, bits: u64) -> UnitCost {
        UnitCost::new(
            self.sram_area * bits as f64,
            self.sram_power * bits as f64 / 1e3,
        )
    }
}

/// The paper's Table II anchor values for regression tests and the
/// table-regeneration bench.
pub mod anchors {
    use super::UnitCost;

    /// F1's 32-bit modular multiplier at 14/12 nm.
    pub const F1_MODULAR_32: UnitCost = UnitCost {
        area_um2: 1817.0,
        power_mw: 4.10,
    };
    /// CHAM's 35/39-bit modular multiplier at 28 nm.
    pub const CHAM_MODULAR_39: UnitCost = UnitCost {
        area_um2: 3517.0,
        power_mw: 3.79,
    };
    /// FLASH's complex FP multiplier (8+1+39) at 28 nm.
    pub const FLASH_FP_COMPLEX: UnitCost = UnitCost {
        area_um2: 11744.0,
        power_mw: 8.26,
    };
    /// FLASH's approximate FXP multiplier (39 b, k = 5) at 28 nm.
    pub const FLASH_APPROX_FXP: UnitCost = UnitCost {
        area_um2: 3211.0,
        power_mw: 1.11,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(model: UnitCost, anchor: UnitCost, tol: f64) -> bool {
        (model.area_um2 - anchor.area_um2).abs() / anchor.area_um2 <= tol
            && (model.power_mw - anchor.power_mw).abs() / anchor.power_mw <= tol
    }

    #[test]
    fn approx_fxp_mult_matches_anchor() {
        let m = CostModel::cmos28();
        let c = m.shift_add_complex_mult(39, 5, 8);
        assert!(
            within(c, anchors::FLASH_APPROX_FXP, 0.10),
            "model {c} vs anchor {}",
            anchors::FLASH_APPROX_FXP
        );
    }

    #[test]
    fn complex_fp_mult_matches_anchor() {
        let m = CostModel::cmos28();
        let c = m.complex_fp_mult(8, 39);
        assert!(
            within(c, anchors::FLASH_FP_COMPLEX, 0.10),
            "model {c} vs anchor {}",
            anchors::FLASH_FP_COMPLEX
        );
    }

    #[test]
    fn cham_modular_mult_matches_anchor() {
        let m = CostModel::cmos28();
        let c = m.modular_mult_shiftadd(39);
        assert!(
            within(c, anchors::CHAM_MODULAR_39, 0.15),
            "model {c} vs anchor {}",
            anchors::CHAM_MODULAR_39
        );
    }

    #[test]
    fn f1_modular_mult_in_range() {
        // Cross-node comparison: stay within 40 % of the published value.
        let m = CostModel::cmos28();
        let c = TechNode::n14().scale(m.modular_mult_barrett(32));
        assert!(
            within(c, anchors::F1_MODULAR_32, 0.40),
            "model {c} vs anchor {}",
            anchors::F1_MODULAR_32
        );
    }

    #[test]
    fn paper_power_ratio_preserved() {
        // Table II's headline: the k=5 shift-add multiplier is ~3.4x more
        // power-efficient than CHAM's modular multiplier and ~7.4x better
        // than the complex FP multiplier.
        let m = CostModel::cmos28();
        let approx = m.shift_add_complex_mult(39, 5, 8).power_mw;
        let cham = m.modular_mult_shiftadd(39).power_mw;
        let fp = m.complex_fp_mult(8, 39).power_mw;
        assert!(
            (2.5..4.5).contains(&(cham / approx)),
            "cham/approx = {}",
            cham / approx
        );
        assert!(
            (6.0..9.0).contains(&(fp / approx)),
            "fp/approx = {}",
            fp / approx
        );
    }

    #[test]
    fn costs_scale_monotonically() {
        let m = CostModel::cmos28();
        assert!(m.int_mult(32, 32).area_um2 < m.int_mult(64, 64).area_um2);
        assert!(
            m.shift_add_complex_mult(39, 5, 8).power_mw
                < m.shift_add_complex_mult(39, 18, 8).power_mw
        );
        assert!(m.adder(16).power_mw < m.adder(64).power_mw);
        assert!(m.complex_fxp_mult(27).power_mw < m.complex_fxp_mult(39).power_mw);
    }

    #[test]
    fn node_scaling() {
        let c = UnitCost::new(1000.0, 10.0);
        let s = TechNode::n7().scale(c);
        assert!(s.area_um2 < 250.0);
        assert!(s.power_mw < 4.0);
        assert_eq!(TechNode::n28().scale(c), c);
    }

    #[test]
    fn unit_cost_arithmetic() {
        let a = UnitCost::new(100.0, 1.0);
        let b = UnitCost::new(50.0, 0.5);
        let s = a + b * 2.0;
        assert_eq!(s.area_um2, 200.0);
        assert_eq!(s.power_mw, 2.0);
        assert_eq!(s.area_mm2(), 200.0 / 1e6);
        assert_eq!(s.energy_per_cycle_pj(), 2.0);
    }
}
