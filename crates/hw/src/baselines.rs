//! Published baseline accelerator data (Table III) and the CHAM
//! performance model used for Table IV.

use crate::throughput::Efficiency;

/// One row of the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorRow {
    /// Accelerator name.
    pub name: &'static str,
    /// Ring degree `N` the design targets.
    pub n: usize,
    /// Technology node label.
    pub technology: &'static str,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Normalized throughput in MOPS (may be absent for FPGA rows).
    pub mops: f64,
    /// Area in mm² (absent for FPGA designs).
    pub area_mm2: Option<f64>,
    /// Power in W (absent for FPGA designs).
    pub power_w: Option<f64>,
}

impl AcceleratorRow {
    /// Efficiency metrics when area/power are published.
    pub fn efficiency(&self) -> Option<Efficiency> {
        Some(Efficiency {
            mops: self.mops,
            area_mm2: self.area_mm2?,
            power_w: self.power_w?,
        })
    }
}

/// The published baselines of Table III.
pub fn published_baselines() -> Vec<AcceleratorRow> {
    vec![
        AcceleratorRow {
            name: "HEAX",
            n: 1 << 12,
            technology: "FPGA",
            freq_ghz: 0.3,
            mops: 1.95,
            area_mm2: None,
            power_w: None,
        },
        AcceleratorRow {
            name: "CHAM",
            n: 1 << 12,
            technology: "FPGA",
            freq_ghz: 0.3,
            mops: 2.93,
            area_mm2: None,
            power_w: None,
        },
        AcceleratorRow {
            name: "F1",
            n: 1 << 14,
            technology: "14nm/12nm",
            freq_ghz: 1.0,
            mops: 583.33,
            area_mm2: Some(36.32),
            power_w: Some(76.80),
        },
        AcceleratorRow {
            name: "BTS",
            n: 1 << 17,
            technology: "7nm",
            freq_ghz: 1.2,
            mops: 200.00,
            area_mm2: Some(19.45),
            power_w: Some(24.92),
        },
        AcceleratorRow {
            name: "ARK",
            n: 1 << 16,
            technology: "7nm",
            freq_ghz: 1.0,
            mops: 333.33,
            area_mm2: Some(34.90),
            power_w: Some(39.60),
        },
    ]
}

/// The paper's reported FLASH rows (for regression comparison in the
/// bench harness).
pub mod paper_flash_rows {
    /// Weight transforms: (MOPS, mm², W, MOPS/mm², MOPS/W).
    pub const WEIGHT: (f64, f64, f64, f64, f64) = (186.34, 0.74, 0.27, 250.23, 688.82);
    /// All transforms in HConv.
    pub const ALL: (f64, f64, f64, f64, f64) = (187.90, 4.22, 2.56, 44.54, 73.48);
}

/// Table IV's published CHAM end-to-end results.
pub mod paper_table4 {
    /// (latency ms, accuracy %) for ResNet-18 linear layers on CHAM.
    pub const CHAM_RESNET18: (f64, f64) = (35.9, 68.45);
    /// ResNet-50 on CHAM.
    pub const CHAM_RESNET50: (f64, f64) = (317.26, 74.24);
    /// FLASH ResNet-18: (latency ms, speedup, accuracy %).
    pub const FLASH_RESNET18: (f64, f64, f64) = (1.64, 21.84, 68.15);
    /// FLASH ResNet-50.
    pub const FLASH_RESNET50: (f64, f64, f64) = (4.96, 64.02, 74.19);
}

/// A performance model of CHAM for Table IV: the same BU count as FLASH
/// (60 PEs × 4 modular BUs) at FPGA frequency, running *dense* NTTs of the
/// full ring degree (no sparsity, no approximation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChamModel {
    /// Processing elements (matches FLASH's 60).
    pub pes: u32,
    /// Modular BUs per PE.
    pub bus_per_pe: u32,
    /// FPGA clock in GHz.
    pub freq_ghz: f64,
}

impl Default for ChamModel {
    fn default() -> Self {
        Self {
            pes: 60,
            bus_per_pe: 4,
            freq_ghz: 0.3,
        }
    }
}

impl ChamModel {
    /// Cycles for one dense `n`-point NTT on one PE.
    pub fn ntt_cycles(&self, n: usize) -> u64 {
        let log = n.trailing_zeros() as u64;
        (n as u64 / 2 * log).div_ceil(self.bus_per_pe as u64)
    }

    /// Seconds to run `transforms` dense NTTs of degree `n` across the
    /// PE array, plus `pointwise` modular MACs (1 per BU-cycle).
    pub fn latency_s(&self, transforms: u64, n: usize, pointwise: u64) -> f64 {
        let cyc_ntt = transforms.div_ceil(self.pes as u64) * self.ntt_cycles(n);
        let cyc_pw = pointwise.div_ceil((self.pes * self.bus_per_pe) as u64);
        (cyc_ntt + cyc_pw) as f64 / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rows_present() {
        let rows = published_baselines();
        assert_eq!(rows.len(), 5);
        let f1 = rows.iter().find(|r| r.name == "F1").unwrap();
        let e = f1.efficiency().unwrap();
        assert!((e.area_eff() - 16.06).abs() < 0.05);
        assert!((e.power_eff() - 7.60).abs() < 0.05);
        let bts = rows.iter().find(|r| r.name == "BTS").unwrap();
        let e = bts.efficiency().unwrap();
        assert!((e.area_eff() - 10.28).abs() < 0.05);
        assert!((e.power_eff() - 8.03).abs() < 0.05);
        let ark = rows.iter().find(|r| r.name == "ARK").unwrap();
        let e = ark.efficiency().unwrap();
        assert!((e.area_eff() - 9.55).abs() < 0.05);
        assert!((e.power_eff() - 8.42).abs() < 0.05);
    }

    #[test]
    fn fpga_rows_have_no_silicon_metrics() {
        for r in published_baselines() {
            if r.technology == "FPGA" {
                assert!(r.efficiency().is_none());
            }
        }
    }

    #[test]
    fn cham_model_cycles() {
        let c = ChamModel::default();
        // dense 4096-pt NTT: 2048*12/4 = 6144 cycles
        assert_eq!(c.ntt_cycles(4096), 6144);
        // 60 transforms in one wave: one NTT time at 300 MHz = 20.5 µs
        let t = c.latency_s(60, 4096, 0);
        assert!((t - 6144.0 / 0.3e9).abs() < 1e-12);
    }
}
