//! Per-operation and per-layer energy accounting — the substrate of the
//! ablation study (Figure 11(d)(e)) and the "87 % energy reduction vs F1"
//! headline.
//!
//! Energy is accumulated bottom-up: every counted complex multiplication
//! (dense or sparse) costs one BU-cycle of the executing unit's energy;
//! point-wise products and accumulations cost their FP units' energy.

use crate::cost::CostModel;
use crate::units::{fp_accumulator, pointwise_fp_mult, BuKind};

/// Energy tally of one homomorphic convolution (or one layer), in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Weight-transform energy.
    pub weight_pj: f64,
    /// Activation-transform (forward + inverse) energy.
    pub act_pj: f64,
    /// Point-wise multiplication energy.
    pub pointwise_pj: f64,
    /// Accumulation energy.
    pub accum_pj: f64,
}

impl EnergyReport {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.weight_pj + self.act_pj + self.pointwise_pj + self.accum_pj
    }

    /// Total energy in µJ.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            weight_pj: self.weight_pj + other.weight_pj,
            act_pj: self.act_pj + other.act_pj,
            pointwise_pj: self.pointwise_pj + other.pointwise_pj,
            accum_pj: self.accum_pj + other.accum_pj,
        }
    }
}

/// An ablation design point: which BU executes weight transforms and
/// whether the sparse dataflow is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Human-readable label.
    pub label: &'static str,
    /// The weight-transform butterfly unit.
    pub weight_bu: BuKind,
    /// Whether skipping/merging is applied to weight transforms.
    pub sparse: bool,
}

impl DesignPoint {
    /// The five bars of Figure 11(d)(e).
    pub fn ablation_points() -> Vec<DesignPoint> {
        vec![
            DesignPoint {
                label: "FFT (FP)",
                weight_bu: BuKind::flash_fp(),
                sparse: false,
            },
            DesignPoint {
                label: "FXP FFT",
                weight_bu: BuKind::fxp27(),
                sparse: false,
            },
            DesignPoint {
                label: "Sparse FFT (FP)",
                weight_bu: BuKind::flash_fp(),
                sparse: true,
            },
            DesignPoint {
                label: "Approx FFT",
                weight_bu: BuKind::flash_approx(),
                sparse: false,
            },
            DesignPoint {
                label: "FLASH",
                weight_bu: BuKind::flash_approx(),
                sparse: true,
            },
        ]
    }
}

/// Operation counts of one HConv workload (all in complex-op units).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HconvOps {
    /// Weight-transform multiplications with the *dense* dataflow.
    pub weight_mults_dense: u64,
    /// Weight-transform multiplications with the *sparse* dataflow.
    pub weight_mults_sparse: u64,
    /// Activation-side transform multiplications (forward + inverse,
    /// dense; runs on FP BUs).
    pub act_mults: u64,
    /// Point-wise complex multiplications.
    pub pointwise: u64,
    /// Accumulation additions.
    pub accums: u64,
}

/// Computes the energy of one workload at a design point.
pub fn hconv_energy(ops: &HconvOps, point: &DesignPoint, m: &CostModel) -> EnergyReport {
    let weight_ops = if point.sparse {
        ops.weight_mults_sparse
    } else {
        ops.weight_mults_dense
    };
    let e_weight = point.weight_bu.energy_per_op_pj(m);
    let e_fp_bu = BuKind::flash_fp().energy_per_op_pj(m);
    let e_pw = pointwise_fp_mult(m).energy_per_cycle_pj();
    let e_acc = fp_accumulator(m).energy_per_cycle_pj();
    EnergyReport {
        weight_pj: weight_ops as f64 * e_weight,
        act_pj: ops.act_mults as f64 * e_fp_bu,
        pointwise_pj: ops.pointwise as f64 * e_pw,
        accum_pj: ops.accums as f64 * e_acc,
    }
}

/// *Chip-level* energy of a workload on F1, derived from its published
/// efficiency (76.8 W at 583.33 normalized M-transforms/s): the full-chip
/// energy per unit of transform work, including memories and
/// interconnect. This is the comparison behind the paper's "87 % energy
/// reduction" headline (the datapath-only comparison of
/// [`modular_baseline_energy`] is far smaller, since F1's raw multipliers
/// are competitive — its overhead is chip-level).
pub fn f1_chip_energy_uj(transform_work_units: f64) -> f64 {
    // J per normalized transform = P / throughput.
    let j_per_transform = 76.8 / 583.33e6;
    transform_work_units * j_per_transform * 1e6
}

/// Energy of the same workload on a CHAM-style all-modular *datapath*
/// (every transform dense on modular BUs, point-wise on modular
/// multipliers) — the unit-level ablation baseline.
pub fn modular_baseline_energy(ops: &HconvOps, m: &CostModel) -> EnergyReport {
    let e_bu = BuKind::cham_modular().energy_per_op_pj(m);
    let e_mult = m.modular_mult_shiftadd(39).energy_per_cycle_pj();
    let e_add = m.modular_adder(39).energy_per_cycle_pj();
    EnergyReport {
        weight_pj: ops.weight_mults_dense as f64 * e_bu,
        act_pj: ops.act_mults as f64 * e_bu,
        pointwise_pj: ops.pointwise as f64 * e_mult,
        accum_pj: ops.accums as f64 * e_add,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> HconvOps {
        // A ResNet-50-ish layer tile: weight transforms dominate the
        // dense op count (many output channels), activation shared.
        HconvOps {
            weight_mults_dense: 11264 * 64, // 64 weight polys, dense 2048-pt FFT
            weight_mults_sparse: 1500 * 64, // ~87 % reduced
            act_mults: 11264 * 4,           // shared activation + inverse
            pointwise: 2048 * 2 * 64,
            accums: 2048 * 64,
        }
    }

    #[test]
    fn ablation_ordering_matches_paper() {
        let m = CostModel::cmos28();
        let ops = sample_ops();
        let points = DesignPoint::ablation_points();
        let weight_energy: Vec<f64> = points
            .iter()
            .map(|p| hconv_energy(&ops, p, &m).weight_pj)
            .collect();
        let fp = weight_energy[0];
        let fxp = weight_energy[1];
        let sparse = weight_energy[2];
        let approx = weight_energy[3];
        let flash = weight_energy[4];
        // each single optimization reduces cost to roughly 10-50 %
        assert!(fxp < 0.5 * fp, "fxp {fxp} vs fp {fp}");
        assert!(sparse < 0.2 * fp, "sparse {sparse} vs fp {fp}");
        assert!(approx < 0.2 * fp, "approx {approx} vs fp {fp}");
        // combined: about 1-3 % of the FP baseline
        assert!(flash < 0.05 * fp, "flash {flash} vs fp {fp}");
        assert!(flash < sparse.min(approx));
    }

    #[test]
    fn flash_beats_modular_datapath_baseline() {
        // Datapath-only view: FLASH's weight-side savings are partially
        // offset by FP point-wise units, so the unit-level reduction is
        // moderate; the paper's 87 % headline is the *chip-level*
        // comparison against F1 (see f1_chip_energy_uj and the
        // flash-accel crate).
        let m = CostModel::cmos28();
        let ops = sample_ops();
        let flash = hconv_energy(
            &ops,
            &DesignPoint {
                label: "FLASH",
                weight_bu: BuKind::flash_approx(),
                sparse: true,
            },
            &m,
        );
        let baseline = modular_baseline_energy(&ops, &m);
        let reduction = 1.0 - flash.total_pj() / baseline.total_pj();
        assert!(
            (0.1..0.97).contains(&reduction),
            "energy reduction {reduction}"
        );
    }

    #[test]
    fn f1_chip_energy_matches_published_efficiency() {
        // One normalized transform on F1 costs ~131.6 nJ at chip level.
        let e = f1_chip_energy_uj(1.0);
        assert!((e - 0.1316).abs() < 0.001, "e = {e} µJ");
        // Chip-level F1 energy dwarfs its datapath energy: the gap is the
        // source of FLASH's headline reduction.
        let m = CostModel::cmos28();
        let per_bfly_pj = BuKind::cham_modular().energy_per_op_pj(&m);
        let datapath_uj = 24576.0 * per_bfly_pj / 1e6;
        assert!(e > 0.5 * datapath_uj, "chip {e} vs datapath {datapath_uj}");
    }

    #[test]
    fn report_arithmetic() {
        let a = EnergyReport {
            weight_pj: 1.0,
            act_pj: 2.0,
            pointwise_pj: 3.0,
            accum_pj: 4.0,
        };
        assert_eq!(a.total_pj(), 10.0);
        let b = a.add(&a);
        assert_eq!(b.total_pj(), 20.0);
        assert!((a.total_uj() - 1e-5).abs() < 1e-18);
    }
}
