//! Transform-rate normalization and efficiency metrics (Table III).
//!
//! The paper's "Norm. Throughput" counts transforms per second normalized
//! to an `N = 4096` NTT or an `N = 2048` complex FFT (the same work by the
//! fold/twist equivalence). Transforms at other sizes scale by their
//! `(N/2)·log2 N` butterfly work.

/// The reference work unit: one `N = 4096` NTT (≡ one `N = 2048` FFT).
pub const REF_NTT_N: usize = 4096;

/// Work of one `n`-point NTT relative to the reference.
pub fn ntt_work_units(n: usize) -> f64 {
    let w = |n: usize| (n as f64 / 2.0) * (n as f64).log2();
    w(n) / w(REF_NTT_N)
}

/// Work of one negacyclic FFT for ring degree `n` (an `n/2`-point complex
/// FFT) relative to the reference.
pub fn fft_work_units(n: usize) -> f64 {
    let w = |m: usize| (m as f64 / 2.0) * (m as f64).log2();
    w(n / 2) / w(REF_NTT_N / 2)
}

/// Mega-transforms per second ("MOPS" in the paper's normalization) from
/// a per-transform cycle count.
pub fn mops(transforms_per_sec: f64) -> f64 {
    transforms_per_sec / 1e6
}

/// Efficiency metrics of one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Normalized throughput in MOPS.
    pub mops: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in W.
    pub power_w: f64,
}

impl Efficiency {
    /// MOPS per mm².
    pub fn area_eff(&self) -> f64 {
        self.mops / self.area_mm2
    }

    /// MOPS per W.
    pub fn power_eff(&self) -> f64 {
        self.mops / self.power_w
    }
}

/// Sustained normalized throughput of a PE array: `pes` processing
/// elements each finishing one transform every `cycles_per_transform`
/// cycles at `freq_ghz`, with each transform worth `work_units`.
pub fn array_mops(pes: u32, cycles_per_transform: f64, freq_ghz: f64, work_units: f64) -> f64 {
    let per_pe = freq_ghz * 1e9 / cycles_per_transform;
    mops(pes as f64 * per_pe * work_units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_work_is_unity() {
        assert!((ntt_work_units(4096) - 1.0).abs() < 1e-12);
        assert!((fft_work_units(4096) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn work_scales_superlinearly() {
        assert!(ntt_work_units(8192) > 2.0);
        assert!(ntt_work_units(2048) < 0.5);
        // N=2^17 (BTS) is ~45x the reference work
        let w = ntt_work_units(1 << 17);
        assert!((40.0..50.0).contains(&w), "w = {w}");
    }

    #[test]
    fn efficiency_metrics() {
        let e = Efficiency {
            mops: 100.0,
            area_mm2: 4.0,
            power_w: 2.0,
        };
        assert_eq!(e.area_eff(), 25.0);
        assert_eq!(e.power_eff(), 50.0);
    }

    #[test]
    fn array_throughput() {
        // 60 PEs, 2838 cycles per dense 2048-point FFT at 1 GHz:
        let m = array_mops(60, 2838.0, 1.0, 1.0);
        assert!((20.0..22.5).contains(&m), "mops = {m}");
        // sparse transforms (~390 cycles) reach the paper's ~186 MOPS
        let m = array_mops(60, 390.0, 1.0, 1.0);
        assert!((140.0..170.0).contains(&m), "mops = {m}");
    }
}
