//! Acceptance for the resilience layer of the serving stack.
//!
//! Each test isolates one mechanism of [`ResiliencePolicy`] — deadline
//! eviction, admission shedding (and the `High`-priority bypass),
//! quarantine via the error-rate circuit breaker, panic containment
//! with batch bisection, the worker watchdog, and draining shutdown —
//! and asserts the terminal-outcome contract throughout: every request
//! whose dispatch returns `Ok` is answered by exactly one RESPONSE xor
//! one REFUSED frame.

use flash_2pc::transport::{FaultConfig, FaultPlan, TransportConfig};
use flash_2pc::SharedTransport;
use flash_2pc::Transport;
use flash_he::encoding::ConvShape;
use flash_he::{HeParams, PolyMulBackend};
use flash_serve::wire::{self, Response};
use flash_serve::{
    BatchPolicy, ChaosAction, Client, InferenceServer, ModelSpec, Priority, RefusalReason,
    ResiliencePolicy, ServeError, SessionHealth,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const SERVER_SEED: u64 = 42;
const MODEL: u64 = 1;

fn shape() -> ConvShape {
    ConvShape {
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
    }
}

fn weights() -> Vec<i64> {
    let s = shape();
    (0..s.m * s.kernel_len())
        .map(|i| ((i as i64 * 3 + 1) % 15) - 7)
        .collect()
}

fn start_server(policy: BatchPolicy, workers: usize) -> InferenceServer {
    let server = InferenceServer::start(policy, SERVER_SEED, workers);
    server
        .register_model(ModelSpec::new(
            MODEL,
            HeParams::test_256(),
            shape(),
            PolyMulBackend::FftF64,
            weights(),
        ))
        .unwrap();
    server
}

fn connect(server: &InferenceServer, tag: u64) -> (Client, StdRng) {
    connect_with(
        server,
        tag,
        TransportConfig::default(),
        TransportConfig::default(),
    )
}

fn connect_with(
    server: &InferenceServer,
    tag: u64,
    cfg_up: TransportConfig,
    cfg_down: TransportConfig,
) -> (Client, StdRng) {
    let mut rng = StdRng::seed_from_u64(1000 + tag);
    let client = Client::connect(
        server,
        MODEL,
        tag,
        HeParams::test_256(),
        shape(),
        cfg_up,
        cfg_down,
        Duration::from_secs(10),
        &mut rng,
    )
    .unwrap();
    (client, rng)
}

fn activation(rng: &mut StdRng) -> Vec<i64> {
    (0..shape().input_len())
        .map(|_| rng.gen_range(-8..8))
        .collect()
}

/// An expired ticket is evicted before batching, refused typed, and
/// never strikes the session's breaker (the backlog is the server's
/// condition, not the client's fault).
#[test]
fn expired_tickets_are_refused_typed_without_striking_the_session() {
    let policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        request_deadline: Some(Duration::ZERO),
        ..ResiliencePolicy::default()
    });
    let server = start_server(policy, 1);
    let (mut client, mut rng) = connect(&server, 0);
    let x = activation(&mut rng);
    let prepared = client.prepare(0, &x, &mut rng);
    client.dispatch(&server, &prepared).unwrap();
    assert!(server.wait_for_timeout(1, Duration::from_secs(30)));
    match client.collect() {
        Err(ServeError::Refused { req_id, reason }) => {
            assert_eq!(req_id, 0);
            assert_eq!(reason, RefusalReason::Expired);
        }
        other => panic!("expected an Expired refusal, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.requests_refused, 1);
    assert_eq!(stats.requests_ok, 0);
    assert_eq!(stats.requests_failed, 0);
    let snap = &server.session_snapshots()[0];
    assert_eq!(snap.health, SessionHealth::Healthy);
    assert_eq!(snap.requests_refused, 1);
    server.shutdown();
}

/// With a full queue, a `Normal` session is shed typed while a `High`
/// session blocks for a slot and is eventually answered. The refused
/// request resubmits under the same id via [`Client::retry_prepare`]
/// and — masks being per-`(session, req, unit)` — receives exactly the
/// answer the first attempt would have.
#[test]
fn overload_sheds_normal_priority_and_blocks_high() {
    let mut policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        shed: true,
        ..ResiliencePolicy::default()
    });
    policy.queue_depth = 1;
    let server = start_server(policy, 1);
    // Stall the sacrificial first request so the single worker is
    // pinned while the queue fills deterministically.
    server.set_chaos_hook(Some(Arc::new(|_sid, req| {
        if req == 0 {
            ChaosAction::Stall(Duration::from_millis(600))
        } else {
            ChaosAction::None
        }
    })));
    let (mut client, mut rng) = connect(&server, 0);
    let reqs: Vec<_> = (0..4u64)
        .map(|r| client.prepare(r, &activation(&mut rng), &mut rng))
        .collect();
    // req 0: popped by the worker, stalling.
    client.dispatch(&server, &reqs[0]).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // req 1: sits in the queue (len == depth == 1).
    client.dispatch(&server, &reqs[1]).unwrap();
    // req 2: Normal priority at the watermark → shed.
    client.dispatch(&server, &reqs[2]).unwrap();
    // req 3: High priority blocks for a slot instead of shedding.
    assert!(server.set_session_priority(client.session_id(), Priority::High));
    client.dispatch(&server, &reqs[3]).unwrap();
    assert!(server.wait_for_timeout(4, Duration::from_secs(30)));

    let mut answered = BTreeMap::new();
    let mut refused = Vec::new();
    for _ in 0..4 {
        match client.collect() {
            Ok((req_id, y)) => {
                answered.insert(req_id, y);
            }
            Err(ServeError::Refused { req_id, reason }) => refused.push((req_id, reason)),
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert_eq!(refused, vec![(2, RefusalReason::Shed)]);
    assert_eq!(
        answered.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 3],
        "the High-priority request must be answered, not shed"
    );
    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.requests_ok, 3);

    // Resubmission under the same req_id: fresh shares, same answer.
    server.set_chaos_hook(None);
    server.set_session_priority(client.session_id(), Priority::Normal);
    let retry = client.retry_prepare(&reqs[2], &mut rng);
    assert_eq!(retry.req_id, 2);
    client.dispatch(&server, &retry).unwrap();
    assert!(server.wait_for_timeout(5, Duration::from_secs(30)));
    let (req_id, y_retry) = client.collect().unwrap();
    assert_eq!(req_id, 2);
    let y_server = server.take_result(client.session_id(), 2).unwrap();
    // Reconstruct and compare against the cleartext reference: the
    // retried request is answered as if never refused.
    let ring = flash_2pc::ShareRing::new(HeParams::test_256().t.trailing_zeros());
    let got = ring.reconstruct_vec(&y_retry, &y_server);
    let want = flash_2pc::expected_conv_mod(&reqs[2].activation, &weights(), &shape(), ring);
    assert_eq!(got, want);
    server.shutdown();
}

/// Repeated invalid requests degrade and then quarantine a session;
/// once quarantined every request — valid or not — is refused at
/// admission, and other sessions are untouched.
#[test]
fn invalid_requests_trip_the_circuit_breaker_into_quarantine() {
    let policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        degrade_after: 1,
        quarantine_after: 2,
        ..ResiliencePolicy::default()
    });
    let server = start_server(policy, 1);
    // Drive the wire by hand: the Client type cannot be persuaded to
    // send malformed requests.
    let uplink = SharedTransport::with_timeout(TransportConfig::default(), Duration::from_secs(5));
    let downlink =
        SharedTransport::with_timeout(TransportConfig::default(), Duration::from_secs(5));
    uplink.clone().send(&wire::encode_hello(MODEL, 7)).unwrap();
    let sid = server.accept(uplink.clone(), downlink.clone()).unwrap();
    let _ack = downlink.clone().recv().unwrap();
    let share = vec![0i64; shape().input_len()];

    let refusal_for = |req: u64, downlink: &SharedTransport| match wire::decode_response(
        &downlink.clone().recv().unwrap(),
    )
    .unwrap()
    {
        Response::Refused { req_id, reason } => {
            assert_eq!(req_id, req);
            reason
        }
        other => panic!("expected a refusal, got {other:?}"),
    };

    // Two empty-blob requests: both refused Invalid, both striking the
    // breaker.
    for req in 0..2u64 {
        uplink
            .clone()
            .send(&wire::encode_request(req, &[]))
            .unwrap();
        server.ingest(sid, req, &share).unwrap();
        assert!(matches!(
            refusal_for(req, &downlink),
            RefusalReason::Invalid(_)
        ));
        let expected = if req == 0 {
            SessionHealth::Degraded
        } else {
            SessionHealth::Quarantined
        };
        assert_eq!(server.session_snapshots()[0].health, expected);
    }
    // The circuit is open: the next request is refused at admission
    // without validation.
    uplink.clone().send(&wire::encode_request(2, &[])).unwrap();
    server.ingest(sid, 2, &share).unwrap();
    assert_eq!(refusal_for(2, &downlink), RefusalReason::Quarantined);

    let stats = server.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.requests_refused, 3);
    assert_eq!(stats.requests_failed, 0);

    // A fresh session on the same server serves normally.
    let (mut client, mut rng) = connect(&server, 8);
    let prepared = client.prepare(0, &activation(&mut rng), &mut rng);
    client.dispatch(&server, &prepared).unwrap();
    assert!(server.wait_for_timeout(4, Duration::from_secs(30)));
    client.collect().unwrap();
    server.shutdown();
}

/// A ticket that panics inside the batch core is bisected out and
/// refused [`RefusalReason::Poisoned`]; its co-batched clean tickets
/// are recomputed **bit-exactly** (the masks are per-`(session, req,
/// unit)` and the batched kernels width-invariant, so batch composition
/// never shows in the bytes).
#[test]
fn panic_containment_bisects_the_poisoned_ticket_out_of_the_batch() {
    let n_sessions = 5u64;
    let poisoned_tag = 2u64;
    let run = |hook: bool| {
        let server = start_server(BatchPolicy::batched(), 1);
        if hook {
            server.set_chaos_hook(Some(Arc::new(move |sid, req| {
                // The sacrificial client connects first (sid 1); tags
                // 0..n map to sids 2.. in connect order.
                if req == 100 {
                    ChaosAction::Stall(Duration::from_millis(400))
                } else if sid == (poisoned_tag + 2) as u32 && req == 0 {
                    ChaosAction::Panic
                } else {
                    ChaosAction::None
                }
            })));
        }
        // The sacrificial client connects in both runs so the session-id
        // → mask-seed mapping of the real sessions is identical, but
        // only the chaotic run dispatches through it: its stalled
        // ticket pins the single worker so the real requests coalesce
        // into one batch behind it.
        let (mut sacrificial, mut sac_rng) = connect(&server, 100);
        let mut clients: Vec<_> = (0..n_sessions).map(|t| connect(&server, t)).collect();
        if hook {
            let p = sacrificial.prepare(100, &activation(&mut sac_rng), &mut sac_rng);
            sacrificial.dispatch(&server, &p).unwrap();
            std::thread::sleep(Duration::from_millis(100));
        }
        let mut outcomes = BTreeMap::new();
        for (client, rng) in clients.iter_mut() {
            let x = activation(rng);
            let prepared = client.prepare(0, &x, rng);
            client.dispatch(&server, &prepared).unwrap();
        }
        let expect = n_sessions + hook as u64;
        assert!(server.wait_for_timeout(expect, Duration::from_secs(60)));
        if hook {
            sacrificial.collect().unwrap();
        }
        for (tag, (client, _)) in clients.iter_mut().enumerate() {
            match client.collect() {
                Ok((req_id, y)) => {
                    let y_server = server.take_result(client.session_id(), req_id).unwrap();
                    outcomes.insert((tag as u64, req_id), Ok((y, y_server)));
                }
                Err(ServeError::Refused { req_id, reason }) => {
                    outcomes.insert((tag as u64, req_id), Err(reason));
                }
                Err(e) => panic!("session {tag}: unexpected {e:?}"),
            }
        }
        let stats = server.stats();
        server.shutdown();
        (outcomes, stats)
    };

    let (baseline, base_stats) = run(false);
    assert_eq!(base_stats.poisoned, 0);
    let (chaotic, stats) = run(true);
    assert_eq!(stats.poisoned, 1);
    assert_eq!(stats.requests_ok, n_sessions); // 4 clean + the sacrificial
    for tag in 0..n_sessions {
        if tag == poisoned_tag {
            assert_eq!(
                chaotic[&(tag, 0)],
                Err(RefusalReason::Poisoned),
                "the poisoned ticket must fail alone"
            );
        } else {
            assert_eq!(
                chaotic[&(tag, 0)],
                baseline[&(tag, 0)],
                "clean co-batched session {tag} must be bit-exact"
            );
        }
    }
}

/// With containment disabled an injected panic kills the worker thread;
/// the watchdog respawns it and later requests are served. A long stall
/// raises a watchdog alarm without killing anything.
#[test]
fn watchdog_respawns_dead_workers_and_flags_stalls() {
    // Part 1: uncontained panic → dead worker → respawn.
    let policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        contain_panics: false,
        watchdog_interval: Duration::from_millis(10),
        ..ResiliencePolicy::default()
    });
    let server = start_server(policy, 1);
    server.set_chaos_hook(Some(Arc::new(|_sid, req| {
        if req == 0 {
            ChaosAction::Panic
        } else {
            ChaosAction::None
        }
    })));
    let (mut client, mut rng) = connect(&server, 0);
    let doomed = client.prepare(0, &activation(&mut rng), &mut rng);
    client.dispatch(&server, &doomed).unwrap();
    // The worker dies on req 0 (its ticket never terminates — that is
    // exactly what contain_panics=false documents); the watchdog
    // respawns a worker which then serves req 1.
    std::thread::sleep(Duration::from_millis(200));
    let next = client.prepare(1, &activation(&mut rng), &mut rng);
    client.dispatch(&server, &next).unwrap();
    let (req_id, _y) = client.collect().unwrap();
    assert_eq!(req_id, 1);
    // Stats are bumped just before the terminal-outcome count, so wait
    // on that count instead of racing the worker's bookkeeping.
    assert!(server.wait_for_timeout(1, Duration::from_secs(10)));
    let stats = server.stats();
    assert!(
        stats.watchdog_kicks >= 1,
        "the dead worker must be respawned: {stats:?}"
    );
    assert_eq!(stats.requests_ok, 1);
    // Skip shutdown's drain of the never-terminating ticket: it already
    // completed nothing, and the queue is empty.
    server.shutdown();

    // Part 2: a stall (no panic) raises an alarm and still answers.
    let policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        watchdog_interval: Duration::from_millis(10),
        watchdog_stall: Duration::from_millis(40),
        ..ResiliencePolicy::default()
    });
    let server = start_server(policy, 1);
    server.set_chaos_hook(Some(Arc::new(|_sid, _req| {
        ChaosAction::Stall(Duration::from_millis(150))
    })));
    let (mut client, mut rng) = connect(&server, 0);
    let slow = client.prepare(0, &activation(&mut rng), &mut rng);
    client.dispatch(&server, &slow).unwrap();
    let (req_id, _y) = client.collect().unwrap();
    assert_eq!(req_id, 0);
    assert!(server.wait_for_timeout(1, Duration::from_secs(10)));
    let stats = server.stats();
    assert!(
        stats.watchdog_kicks >= 1,
        "a 150ms stall must trip the 40ms stall alarm: {stats:?}"
    );
    assert_eq!(stats.requests_ok, 1);
    server.shutdown();
}

/// The dichotomy (exactly-one-terminal-answer) property under combined
/// chaos: faulty uplinks, shedding, deadlines and quarantine together.
/// Every Ok-dispatch is answered by exactly one RESPONSE xor REFUSED;
/// every Err-dispatch is terminal with no frame; the server's
/// accounting reconciles exactly.
#[test]
fn every_request_has_exactly_one_terminal_outcome_under_chaos() {
    let mut policy = BatchPolicy::batched().with_resilience(ResiliencePolicy {
        shed: true,
        request_deadline: Some(Duration::from_millis(500)),
        ..ResiliencePolicy::default()
    });
    policy.queue_depth = 4;
    let server = start_server(policy, 2);
    let n_sessions = 8u64;
    let reqs = 4u64;
    let mut clients: Vec<_> = (0..n_sessions)
        .map(|tag| {
            if tag % 2 == 1 {
                let up =
                    TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(0xD1CE + tag)));
                Some(connect_with(&server, tag, up, TransportConfig::default()))
            } else {
                Some(connect(&server, tag))
            }
        })
        .collect();

    let mut ok_dispatched = vec![0u64; n_sessions as usize];
    for req_id in 0..reqs {
        for (tag, slot) in clients.iter_mut().enumerate() {
            let Some((client, rng)) = slot.as_mut() else {
                continue;
            };
            let prepared = client.prepare(req_id, &activation(rng), rng);
            match client.dispatch(&server, &prepared) {
                Ok(()) => ok_dispatched[tag] += 1,
                Err(_) => *slot = None, // the Err IS the terminal outcome
            }
        }
    }
    let total_ok: u64 = ok_dispatched.iter().sum();
    assert!(
        server.wait_for_timeout(total_ok, Duration::from_secs(60)),
        "every Ok-dispatch must reach a terminal outcome"
    );

    for (tag, slot) in clients.iter_mut().enumerate() {
        let Some((client, _)) = slot.as_mut() else {
            continue;
        };
        let mut seen = BTreeMap::new();
        for _ in 0..ok_dispatched[tag] {
            let (req_id, kind) = match client.collect() {
                Ok((req_id, _y)) => (req_id, "response"),
                Err(ServeError::Refused { req_id, .. }) => (req_id, "refusal"),
                Err(e) => panic!("session {tag}: non-terminal collect error {e:?}"),
            };
            if let Some(prev) = seen.insert(req_id, kind) {
                panic!("session {tag} req {req_id}: double answer ({prev} then {kind})");
            }
        }
        assert_eq!(
            seen.len() as u64,
            ok_dispatched[tag],
            "session {tag}: exactly one terminal answer per Ok-dispatch"
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.requests_ok + stats.requests_refused,
        total_ok,
        "server accounting must reconcile: {stats:?}"
    );
    // Clean sessions whose dispatches all succeeded must all be healthy.
    for snap in server.session_snapshots() {
        if snap.client_tag % 2 == 0 {
            assert!(!snap.failed, "clean session {} poisoned", snap.client_tag);
        }
    }
    server.shutdown();
}

/// Draining shutdown: queued work completes, new work is refused typed,
/// and shutdown is idempotent.
#[test]
fn shutdown_drains_queued_work_then_refuses_new_admissions() {
    let server = start_server(BatchPolicy::batched(), 2);
    let (mut client, mut rng) = connect(&server, 0);
    let reqs = 4u64;
    let prepared: Vec<_> = (0..reqs)
        .map(|r| client.prepare(r, &activation(&mut rng), &mut rng))
        .collect();
    for p in &prepared {
        client.dispatch(&server, p).unwrap();
    }
    server.shutdown();
    // Every queued request was answered before the workers joined.
    let mut answered = Vec::new();
    for _ in 0..reqs {
        let (req_id, _y) = client.collect().unwrap();
        answered.push(req_id);
    }
    answered.sort_unstable();
    assert_eq!(answered, vec![0, 1, 2, 3]);
    assert_eq!(server.stats().requests_ok, reqs);
    // New work is refused typed, and shutdown is idempotent.
    let late = client.prepare(99, &activation(&mut rng), &mut rng);
    assert!(matches!(
        client.dispatch(&server, &late),
        Err(ServeError::Shutdown)
    ));
    server.shutdown();
}
