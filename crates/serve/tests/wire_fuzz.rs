//! Fuzzing of the serving wire decoders.
//!
//! The decoders sit on the trust boundary of the serving layer: every
//! byte they see arrived over a (possibly faulted, possibly hostile)
//! link. Two guarantees, property-tested:
//!
//! 1. on **arbitrary bytes** every decoder returns — `Ok` or a typed
//!    [`flash_serve::ServeError`] — and never panics or over-allocates;
//! 2. **valid messages round-trip** exactly, and any single-byte
//!    mutation or truncation of a valid message again never panics.

use flash_serve::wire::{
    decode_ack, decode_hello, decode_request, decode_request_borrowed, decode_response, encode_ack,
    encode_hello, encode_refusal, encode_request, encode_response, RefusalReason, Response,
    SessionAck,
};
use proptest::prelude::*;

fn arb_blobs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    collection::vec(collection::vec(any::<u8>(), 0..48), 0..6)
}

fn arb_reason() -> impl Strategy<Value = RefusalReason> {
    (0u8..6, collection::vec(any::<u8>(), 0..24)).prop_map(|(kind, detail)| match kind {
        0 => RefusalReason::Expired,
        1 => RefusalReason::Shed,
        2 => RefusalReason::Quarantined,
        3 => RefusalReason::Poisoned,
        4 => RefusalReason::Shutdown,
        _ => RefusalReason::Invalid(String::from_utf8_lossy(&detail).into_owned()),
    })
}

fn arb_ack() -> impl Strategy<Value = SessionAck> {
    (
        (any::<u32>(), any::<u32>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<bool>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |((session_id, n, t), (c_polys, m, bands), (trunc, d0, d1))| SessionAck {
                session_id,
                n,
                t,
                c_polys,
                m,
                bands,
                truncation: trunc.then_some((d0, d1)),
            },
        )
}

proptest! {
    /// Guarantee 1: arbitrary bytes never panic any decoder.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_hello(&bytes);
        let _ = decode_ack(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_request_borrowed(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Guarantee 2 for HELLO: exact round-trip, and every truncation
    /// fails typed.
    #[test]
    fn hello_roundtrips_and_truncations_fail_typed(
        model_id in any::<u64>(),
        client_tag in any::<u64>(),
    ) {
        let bytes = encode_hello(model_id, client_tag);
        prop_assert_eq!(decode_hello(&bytes).unwrap(), (model_id, client_tag));
        for cut in 0..bytes.len() {
            prop_assert!(decode_hello(&bytes[..cut]).is_err());
        }
    }

    /// Guarantee 2 for ACK: exact round-trip over arbitrary negotiated
    /// parameters, including the optional truncation pair.
    #[test]
    fn ack_roundtrips(ack in arb_ack()) {
        let bytes = encode_ack(&ack);
        prop_assert_eq!(decode_ack(&bytes).unwrap(), ack);
        for cut in 0..bytes.len() {
            prop_assert!(decode_ack(&bytes[..cut]).is_err());
        }
    }

    /// Guarantee 2 for REQUEST/RESPONSE: arbitrary blob schedules
    /// round-trip through both the owned and the borrowed decoder.
    #[test]
    fn request_and_response_roundtrip(req_id in any::<u64>(), blobs in arb_blobs()) {
        let req = encode_request(req_id, &blobs);
        prop_assert_eq!(decode_request(&req).unwrap(), (req_id, blobs.clone()));
        let (got_id, borrowed) = decode_request_borrowed(&req).unwrap();
        prop_assert_eq!(got_id, req_id);
        let views: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        prop_assert_eq!(borrowed, views);
        let resp = encode_response(req_id, &blobs);
        prop_assert_eq!(
            decode_response(&resp).unwrap(),
            Response::Ok { req_id, blobs }
        );
    }

    /// Guarantee 2 for REFUSED: every reason (arbitrary detail strings
    /// included) round-trips through the response decoder.
    #[test]
    fn refusal_roundtrips(req_id in any::<u64>(), reason in arb_reason()) {
        let bytes = encode_refusal(req_id, &reason);
        prop_assert_eq!(
            decode_response(&bytes).unwrap(),
            Response::Refused { req_id, reason }
        );
    }

    /// Guarantees 1+2 combined: a single-byte mutation anywhere in a
    /// valid server → client message (response or refusal) decodes to
    /// *something* — possibly still valid, possibly a typed error — but
    /// never panics. This is the checksums-off threat model of the
    /// frame layer.
    #[test]
    fn mutated_server_messages_never_panic(
        req_id in any::<u64>(),
        blobs in arb_blobs(),
        reason in arb_reason(),
        pos in any::<usize>(),
        val in any::<u8>(),
    ) {
        for bytes in [encode_response(req_id, &blobs), encode_refusal(req_id, &reason)] {
            let mut m = bytes.clone();
            let i = pos % m.len();
            m[i] = val;
            let _ = decode_response(&m);
            for cut in [0, m.len() / 2, m.len() - 1] {
                let _ = decode_response(&m[..cut]);
            }
        }
    }
}
