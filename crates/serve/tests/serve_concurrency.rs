//! Concurrency acceptance for the serving layer.
//!
//! * **Determinism** — N concurrent sessions served by the batching
//!   core produce bit-identical client *and* server shares to N serial
//!   per-session runs, for any worker count: batching and scheduling
//!   affect wall-clock only, never bytes.
//! * **Chaos** — per-session fault schedules on the wire: sessions with
//!   recoverable faults either deliver bit-identical results or fail
//!   with a typed error, a wedged session fails fast without stalling
//!   or corrupting any other session.

use flash_2pc::transport::{FaultConfig, FaultOp, FaultPlan, TransportConfig};
use flash_2pc::{expected_conv_mod, ShareRing};
use flash_he::encoding::ConvShape;
use flash_he::{HeParams, PolyMulBackend};
use flash_serve::{BatchPolicy, Client, InferenceServer, ModelSpec, ServeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

const SERVER_SEED: u64 = 42;
const MODEL_A: u64 = 1;
const MODEL_B: u64 = 2;

fn shape_a() -> ConvShape {
    ConvShape {
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
    }
}

/// A banded layer (h·w > N) so multi-band units are exercised.
fn shape_b() -> ConvShape {
    ConvShape {
        c: 1,
        h: 24,
        w: 24,
        m: 1,
        k: 3,
    }
}

fn weights_for(shape: &ConvShape, salt: i64) -> Vec<i64> {
    (0..shape.m * shape.kernel_len())
        .map(|i| ((i as i64 * 3 + salt) % 15) - 7)
        .collect()
}

fn register_models(server: &InferenceServer) {
    let params = HeParams::test_256();
    server
        .register_model(
            ModelSpec::new(
                MODEL_A,
                params.clone(),
                shape_a(),
                PolyMulBackend::FftF64,
                weights_for(&shape_a(), 1),
            )
            .with_truncation(8, 2),
        )
        .unwrap();
    server
        .register_model(ModelSpec::new(
            MODEL_B,
            params,
            shape_b(),
            PolyMulBackend::Ntt,
            weights_for(&shape_b(), 2),
        ))
        .unwrap();
}

fn model_of(tag: u64) -> (u64, ConvShape, Vec<i64>) {
    if tag.is_multiple_of(2) {
        (MODEL_A, shape_a(), weights_for(&shape_a(), 1))
    } else {
        (MODEL_B, shape_b(), weights_for(&shape_b(), 2))
    }
}

/// Per-`(client tag, request)` output shares of one fleet run.
#[derive(Debug, Default, PartialEq, Eq)]
struct FleetOutputs {
    /// `(client share, server share)` of every answered request.
    ok: BTreeMap<(u64, u64), (Vec<u64>, Vec<u64>)>,
}

struct FleetRun {
    outputs: FleetOutputs,
    /// The cleartext activation of every prepared request.
    inputs: BTreeMap<(u64, u64), Vec<i64>>,
    /// First error observed per client tag, if any.
    errors: BTreeMap<u64, ServeError>,
    snapshots: Vec<flash_serve::SessionSnapshot>,
    stats: flash_serve::ServerStats,
}

/// Connects `n_clients` sessions (transport configs per client tag from
/// `cfg_for`), round-robins `reqs` pipelined requests through each, and
/// collects every share. Client randomness is a pure function of the
/// tag, so two runs differ only in policy/workers/faults.
fn run_fleet(
    policy: BatchPolicy,
    workers: usize,
    n_clients: u64,
    reqs: u64,
    cfg_for: &dyn Fn(u64) -> (TransportConfig, TransportConfig),
) -> FleetRun {
    let server = InferenceServer::start(policy, SERVER_SEED, workers);
    register_models(&server);
    let params = HeParams::test_256();
    let timeout = Duration::from_secs(5);

    let mut errors: BTreeMap<u64, ServeError> = BTreeMap::new();
    let mut clients: Vec<Option<(u64, Client, StdRng)>> = Vec::new();
    for tag in 0..n_clients {
        let (model_id, shape, _) = model_of(tag);
        let (cfg_up, cfg_down) = cfg_for(tag);
        let mut rng = StdRng::seed_from_u64(1000 + tag);
        match Client::connect(
            &server,
            model_id,
            tag,
            params.clone(),
            shape,
            cfg_up,
            cfg_down,
            timeout,
            &mut rng,
        ) {
            Ok(client) => clients.push(Some((tag, client, rng))),
            Err(e) => {
                errors.insert(tag, e);
                clients.push(None);
            }
        }
    }

    // Round-robin dispatch: request r of every live session enters the
    // queue before request r+1 of any.
    let mut inputs = BTreeMap::new();
    let mut dispatched = 0u64;
    for req_id in 0..reqs {
        for slot in clients.iter_mut() {
            let Some((tag, client, rng)) = slot.as_mut() else {
                continue;
            };
            let (_, shape, _) = model_of(*tag);
            let x: Vec<i64> = (0..shape.input_len())
                .map(|_| rng.gen_range(-8..8))
                .collect();
            let prepared = client.prepare(req_id, &x, rng);
            inputs.insert((*tag, req_id), x);
            match client.dispatch(&server, &prepared) {
                // Ok promises exactly one terminal outcome per the
                // server's contract; an Err *is* the terminal outcome.
                Ok(()) => dispatched += 1,
                Err(e) => {
                    errors.insert(*tag, e);
                    *slot = None;
                }
            }
        }
    }
    assert!(
        server.wait_for_timeout(dispatched, Duration::from_secs(120)),
        "server must reach {dispatched} terminal outcomes"
    );

    let mut outputs = FleetOutputs::default();
    for slot in clients.iter_mut() {
        let Some((tag, client, _)) = slot.as_mut() else {
            continue;
        };
        for _ in 0..reqs {
            match client.collect() {
                Ok((req_id, y_client)) => {
                    let y_server = server
                        .take_result(client.session_id(), req_id)
                        .expect("answered request leaves a server share");
                    outputs.ok.insert((*tag, req_id), (y_client, y_server));
                }
                Err(e) => {
                    errors.insert(*tag, e);
                    break;
                }
            }
        }
    }
    let run = FleetRun {
        outputs,
        inputs,
        errors,
        snapshots: server.session_snapshots(),
        stats: server.stats(),
    };
    server.shutdown();
    run
}

fn clean_cfg(_tag: u64) -> (TransportConfig, TransportConfig) {
    (TransportConfig::default(), TransportConfig::default())
}

/// Checks every answered request's shares reconstruct to the cleartext
/// convolution.
fn verify_against_reference(run: &FleetRun, n_clients: u64, reqs: u64) {
    let ring = ShareRing::new(HeParams::test_256().t.trailing_zeros());
    for tag in 0..n_clients {
        let (_, shape, weights) = model_of(tag);
        for req_id in 0..reqs {
            let x = &run.inputs[&(tag, req_id)];
            let (y_client, y_server) = &run.outputs.ok[&(tag, req_id)];
            let got = ring.reconstruct_vec(y_client, y_server);
            let want = expected_conv_mod(x, &weights, &shape, ring);
            assert_eq!(got, want, "client {tag} request {req_id}");
        }
    }
}

#[test]
fn concurrent_batched_sessions_match_serial_baseline_bitwise() {
    let n_clients = 6;
    let reqs = 4;
    let reference = run_fleet(
        BatchPolicy::serial_baseline(),
        1,
        n_clients,
        reqs,
        &clean_cfg,
    );
    assert!(
        reference.errors.is_empty(),
        "clean serial run must not fail: {:?}",
        reference.errors
    );
    assert_eq!(
        reference.outputs.ok.len(),
        (n_clients * reqs) as usize,
        "every request answered"
    );
    verify_against_reference(&reference, n_clients, reqs);

    for workers in [1, 2, 4] {
        let batched = run_fleet(BatchPolicy::batched(), workers, n_clients, reqs, &clean_cfg);
        assert!(
            batched.errors.is_empty(),
            "clean batched run (workers={workers}) must not fail: {:?}",
            batched.errors
        );
        assert_eq!(
            batched.outputs, reference.outputs,
            "batched outputs (workers={workers}) must be bit-identical to the serial baseline"
        );
        assert_eq!(batched.stats.requests_ok, n_clients * reqs);
        assert_eq!(batched.stats.requests_failed, 0);
    }
}

#[test]
fn pow2_model_roundtrips_and_batched_matches_serial_bitwise() {
    // The serving stack end-to-end on a power-of-two ciphertext modulus:
    // HELLO/params handshake, 8-byte-coefficient serialization, the
    // Pow2 spectral units of the batched core, and the serial baseline —
    // identical shares from both scheduling policies.
    let params = HeParams::pow2_test_256();
    let shape = shape_a();
    let weights = weights_for(&shape, 3);
    let reqs = 3u64;
    let run = |policy: BatchPolicy| {
        let server = InferenceServer::start(policy, SERVER_SEED, 1);
        server
            .register_model(ModelSpec::new(
                9,
                params.clone(),
                shape,
                PolyMulBackend::Pow2,
                weights.clone(),
            ))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let mut client = Client::connect(
            &server,
            9,
            0,
            params.clone(),
            shape,
            TransportConfig::default(),
            TransportConfig::default(),
            Duration::from_secs(5),
            &mut rng,
        )
        .unwrap();
        let mut inputs = Vec::new();
        for req_id in 0..reqs {
            let x: Vec<i64> = (0..shape.input_len())
                .map(|_| rng.gen_range(-8..8))
                .collect();
            let prepared = client.prepare(req_id, &x, &mut rng);
            inputs.push(x);
            client.dispatch(&server, &prepared).unwrap();
        }
        assert!(server.wait_for_timeout(reqs, Duration::from_secs(120)));
        let mut shares = Vec::new();
        for _ in 0..reqs {
            let (req_id, y_client) = client.collect().unwrap();
            let y_server = server.take_result(client.session_id(), req_id).unwrap();
            shares.push((req_id, y_client, y_server));
        }
        server.shutdown();
        (inputs, shares)
    };
    let (inputs, serial) = run(BatchPolicy::serial_baseline());
    let ring = ShareRing::new(params.t.trailing_zeros());
    for (req_id, y_client, y_server) in &serial {
        let got = ring.reconstruct_vec(y_client, y_server);
        let want = expected_conv_mod(&inputs[*req_id as usize], &weights, &shape, ring);
        assert_eq!(got, want, "request {req_id}");
    }
    let (_, batched) = run(BatchPolicy::batched());
    assert_eq!(batched, serial, "pow2 batched path must match serial");
}

#[test]
fn model_cache_and_sessions_are_accounted() {
    let run = run_fleet(BatchPolicy::batched(), 2, 4, 2, &clean_cfg);
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert_eq!(run.snapshots.len(), 4);
    for snap in &run.snapshots {
        assert!(!snap.failed);
        assert_eq!(snap.requests_ok, 2);
        assert_eq!(snap.requests_failed, 0);
        assert!(snap.upload_bytes > 0 && snap.download_bytes > 0);
        assert_eq!(snap.faults_detected, 0);
    }
    // two registrations (misses) + one cache hit per accept
    assert_eq!(run.stats.model_cache.misses, 2);
    assert!(run.stats.model_cache.hits >= 4);
    assert_eq!(run.stats.model_cache.evictions, 0);
    assert_eq!(run.stats.batched_requests, 8);
    assert!(run.stats.occupancy() > 0.0 && run.stats.occupancy() <= 1.0);
}

/// A scripted uplink that lets the handshake through and then drops
/// every frame past the retry budget: the session must wedge, typed.
fn doomed_cfg() -> (TransportConfig, TransportConfig) {
    let mut ops = vec![FaultOp::None]; // HELLO passes
    ops.extend(std::iter::repeat_n(FaultOp::Drop, 24));
    let up = TransportConfig {
        faults: Some(FaultPlan::Scripted(ops)),
        max_retries: 3,
        verify_checksums: true,
        backoff: Default::default(),
    };
    (up, TransportConfig::default())
}

fn chaos_cfg(tag: u64) -> (TransportConfig, TransportConfig) {
    if tag == 12 {
        return doomed_cfg();
    }
    if tag % 2 == 1 {
        let up =
            TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(0xC0DE + 2 * tag)));
        let down = TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(
            0xBEEF + 2 * tag + 1,
        )));
        (up, down)
    } else {
        clean_cfg(tag)
    }
}

#[test]
fn per_session_chaos_never_leaks_across_sessions() {
    let n_clients = 13; // tag 12 is the doomed session
    let reqs = 3;
    let reference = run_fleet(BatchPolicy::batched(), 2, n_clients, reqs, &clean_cfg);
    assert!(reference.errors.is_empty(), "{:?}", reference.errors);

    let chaotic = run_fleet(BatchPolicy::batched(), 2, n_clients, reqs, &chaos_cfg);

    // The wedged session fails typed — at dispatch (admission hits the
    // exhausted uplink) — and is poisoned server-side.
    let doomed_err = chaotic.errors.get(&12).expect("doomed session must fail");
    assert!(
        matches!(
            doomed_err,
            ServeError::Flash(_) | ServeError::SessionFailed(_)
        ),
        "wedged session fails with a wire-typed error, got {doomed_err:?}"
    );
    assert!(
        chaotic
            .snapshots
            .iter()
            .any(|s| s.client_tag == 12 && s.failed),
        "server must mark the wedged session failed"
    );

    let mut faulted_recovered = 0;
    let mut faults_seen = 0;
    for tag in 0..12 {
        let clean = tag % 2 == 0;
        let answered: Vec<_> = (0..reqs)
            .filter(|&r| chaotic.outputs.ok.contains_key(&(tag, r)))
            .collect();
        if clean {
            // Clean sessions are untouched by other sessions' chaos:
            // every request answered, every byte equal to the all-clean
            // run.
            assert_eq!(answered.len(), reqs as usize, "clean session {tag} stalled");
            assert!(!chaotic.errors.contains_key(&tag), "clean session {tag}");
        }
        for r in answered {
            assert_eq!(
                chaotic.outputs.ok[&(tag, r)],
                reference.outputs.ok[&(tag, r)],
                "session {tag} request {r} must recover bit-identically"
            );
            if !clean {
                faulted_recovered += 1;
            }
        }
        if !clean {
            if let Some(snap) = chaotic.snapshots.iter().find(|s| s.client_tag == tag) {
                faults_seen += snap.faults_detected;
            }
        }
    }
    assert!(
        faulted_recovered > 0,
        "moderate fault plans should recover at least some requests"
    );
    assert!(
        faults_seen > 0,
        "across six moderate fault plans at least one fault must have fired"
    );
    // Clean sessions never see failures in the server's accounting.
    for snap in &chaotic.snapshots {
        if snap.client_tag % 2 == 0 && snap.client_tag != 12 {
            assert!(!snap.failed);
            assert_eq!(snap.requests_failed, 0);
        }
    }
}
