//! The multi-session inference server.
//!
//! Requests from all sessions funnel into one bounded [`WorkQueue`];
//! worker threads drain it in batches ([`WorkQueue::pop_batch`]) and
//! coalesce compatible tickets — same registered model — into one
//! spectral pass:
//!
//! 1. every coalesced ticket's ciphertexts forward-transform in **one**
//!    SoA sweep ([`PolyMulBackend::activation_spectra_multi`]),
//! 2. each `(ticket, oc, band)` unit MACs the model's precomputed
//!    weight spectra against its slice of the shared batch,
//! 3. every spectral unit of the whole group closes through **one**
//!    batched inverse ([`BandAccumulator::finish_bands`]).
//!
//! On a serial per-session baseline the same transforms run per request
//! at width `2·c_polys` (activations) and `2·bands` (inverses); the
//! coalesced pass runs them at up to `2·Σ c_polys` and `2·Σ units`, so
//! the lane-parallel kernels fill all `W` SIMD lanes — that, plus the
//! per-model amortization of [`ModelPlan`], is where the aggregate
//! throughput comes from on a single-core host.
//!
//! Masks come from [`mask_seed`] — a pure function of
//! `(server seed, session, request, unit)` — so outputs are bit-equal
//! for any batch composition and worker count; `BatchPolicy::
//! serial_baseline()` reuses the same seeds, which is what lets the
//! determinism tests compare the two modes byte for byte.
//!
//! # Resilience
//!
//! The [`ResiliencePolicy`] wraps the batching core in a fault policy
//! with one invariant — the **terminal-outcome contract**: every
//! request whose [`InferenceServer::ingest`] returns `Ok` is answered
//! by exactly one RESPONSE xor one REFUSED frame; every `Err` return is
//! itself the request's single terminal outcome and no frame follows.
//!
//! * **Deadlines** — a ticket older than `request_deadline` is evicted
//!   before batching and refused [`RefusalReason::Expired`], so a
//!   backed-up queue sheds stale work instead of computing answers
//!   nobody is waiting for.
//! * **Quarantine** — each session runs an error-rate circuit breaker
//!   ([`crate::session::SessionHealth`]); a chronically faulty session
//!   is refused [`RefusalReason::Quarantined`] at admission instead of
//!   burning worker time, and an unrecoverable wire fault quarantines
//!   immediately.
//! * **Shedding** — when the global queue is at its watermark, new
//!   `Normal`-priority requests are refused [`RefusalReason::Shed`]
//!   instead of blocking (degraded sessions shed at half watermark;
//!   [`Priority::High`] sessions block for a slot instead).
//! * **Panic containment** — the batch core runs under `catch_unwind`;
//!   a panicking group is bisected until the poisoned ticket fails
//!   alone ([`RefusalReason::Poisoned`]) while its clean co-batched
//!   tickets recompute bit-exactly (masks are per-`(session, req,
//!   unit)`, and the batched kernels are width-invariant).
//! * **Watchdog** — a supervisor thread respawns dead workers and
//!   counts stall alarms, so even an uncontained worker death degrades
//!   capacity instead of wedging the queue.

use crate::model::{mask_coeffs, mask_seed, merge_band, ModelPlan, ModelSpec, UnitWeights};
use crate::session::{Priority, SessionHealth, SessionSnapshot, SessionState};
use crate::wire::RefusalReason;
use crate::{wire, ServeError};
use flash_2pc::error::FlashError;
use flash_2pc::{conv_band_noise_bound, conv_band_plan, SharedTransport, Transport};
use flash_he::backend::{weight_residues_into, BandAccumulator};
use flash_he::truncate::TruncatedCiphertext;
use flash_he::{serialize, Ciphertext, Poly, PolyMulBackend};
use flash_runtime::{CacheStats, Interner, WorkQueue};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A fault-injection verdict for one ticket inside the batch core, from
/// a hook installed with [`InferenceServer::set_chaos_hook`]. Chaos
/// tests use it to poison or stall specific `(session, req_id)` pairs
/// inside the compute path — the production build never installs one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Compute normally.
    None,
    /// Panic inside the batch core (exercises containment/bisection).
    Panic,
    /// Sleep this long before computing (exercises the stall watchdog).
    Stall(Duration),
}

/// A chaos hook: `(session_id, req_id) → action`, consulted for every
/// ticket entering the batch core.
pub type ChaosHook = Arc<dyn Fn(u32, u64) -> ChaosAction + Send + Sync>;

/// Knobs of the resilience layer; [`ResiliencePolicy::default`] is the
/// serving configuration (containment + breaker on, no deadline, no
/// shedding — the two knobs that change clean-path semantics are opt-in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Refuse tickets older than this at the worker instead of
    /// computing them ([`RefusalReason::Expired`]). `None` = no
    /// deadline.
    pub request_deadline: Option<Duration>,
    /// Refuse `Normal`-priority admissions while the global queue is at
    /// its watermark ([`RefusalReason::Shed`]) instead of blocking.
    pub shed: bool,
    /// Circuit-breaker sliding window, requests (≤ 64).
    pub health_window: u32,
    /// Failures in the window that degrade the session.
    pub degrade_after: u32,
    /// Failures in the window that quarantine it (sticky).
    pub quarantine_after: u32,
    /// Watchdog scan period.
    pub watchdog_interval: Duration,
    /// Busy time after which a worker counts as stalled (one alarm per
    /// batch).
    pub watchdog_stall: Duration,
    /// Run the batch core under `catch_unwind` and bisect panicking
    /// groups. Off, a poisoned ticket kills its worker (the watchdog
    /// respawns it) and the batch's tickets never terminate.
    pub contain_panics: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            request_deadline: None,
            shed: false,
            health_window: 16,
            degrade_after: 4,
            quarantine_after: 8,
            watchdog_interval: Duration::from_millis(25),
            watchdog_stall: Duration::from_secs(5),
            contain_panics: true,
        }
    }
}

/// Knobs of the batching core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Most tickets one worker drains per queue visit (the coalescing
    /// window).
    pub max_batch: usize,
    /// Bound of the process-wide ticket queue; submissions block when
    /// it is full (global backpressure).
    pub queue_depth: usize,
    /// Per-session in-flight window; a session's submissions block when
    /// it alone has this many requests pending.
    pub per_session_inflight: usize,
    /// Amortize per-model work across requests (the serving datapath).
    /// With `false` every ticket re-derives the full per-request server
    /// pipeline of [`flash_2pc::ConvProtocol`] — the per-session serial
    /// baseline the speedup is measured against.
    pub amortize: bool,
    /// The fault policy wrapped around the core.
    pub resilience: ResiliencePolicy,
}

impl BatchPolicy {
    /// The serving configuration: coalesce up to 16 tickets — wide
    /// enough to amortize the shared forward sweep, small enough that
    /// one batch's activation and accumulator buffers stay inside L2.
    pub fn batched() -> Self {
        BatchPolicy {
            max_batch: 16,
            queue_depth: 256,
            per_session_inflight: 8,
            amortize: true,
            resilience: ResiliencePolicy::default(),
        }
    }

    /// The per-session baseline: no coalescing, no amortization.
    pub fn serial_baseline() -> Self {
        BatchPolicy {
            max_batch: 1,
            queue_depth: 256,
            per_session_inflight: 8,
            amortize: false,
            resilience: ResiliencePolicy::default(),
        }
    }

    /// The same policy with a different resilience configuration.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::batched()
    }
}

/// One admitted request waiting for a worker: the share-folded upload
/// ciphertexts plus routing/latency bookkeeping.
struct Ticket {
    session: Arc<SessionState>,
    req_id: u64,
    cts: Vec<Ciphertext>,
    submitted: Instant,
    /// Evict-and-refuse after this instant ([`RefusalReason::Expired`]).
    deadline: Option<Instant>,
}

/// Per-worker liveness slot read by the watchdog.
#[derive(Debug, Default)]
struct Heartbeat {
    /// Microseconds since server start at which the current batch began;
    /// 0 = idle.
    busy_since_us: AtomicU64,
    /// Batches started (the stall alarm fires once per generation).
    generation: AtomicU64,
    /// Last generation the watchdog raised a stall alarm for.
    alarmed_generation: AtomicU64,
}

struct ServerCore {
    policy: BatchPolicy,
    seed: u64,
    /// Registered models, LRU-bounded: a serving process cycling
    /// through many models sheds the cold plans (sessions keep their
    /// own `Arc`, so an evicted plan stays alive until its last
    /// session closes).
    models: Interner<u64, ModelPlan>,
    sessions: Mutex<BTreeMap<u32, Arc<SessionState>>>,
    next_session: AtomicU32,
    queue: WorkQueue<Ticket>,
    /// Server output shares by `(session, request)` until collected.
    results: Mutex<BTreeMap<(u32, u64), Vec<u64>>>,
    /// Submission → response-send latency per answered request,
    /// tagged with the session id, µs.
    latencies_us: Mutex<Vec<(u32, u64)>>,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    /// Requests answered with a typed REFUSED frame, by class.
    requests_refused: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    quarantined: AtomicU64,
    poisoned: AtomicU64,
    /// Transport retransmissions observed during admission receives.
    retries: AtomicU64,
    /// Dead workers respawned + stall alarms raised.
    watchdog_kicks: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Polynomials fed to the batched spectral kernels…
    kernel_polys: AtomicU64,
    /// …and the SIMD lane-slots those calls occupied (`rounds × W`).
    kernel_slots: AtomicU64,
    /// Terminal outcomes (ok + failed), with a wakeup for waiters.
    completed: Mutex<u64>,
    done: Condvar,
    /// Cleared by [`InferenceServer::shutdown`]: admissions fail fast
    /// with [`ServeError::Shutdown`] while in-flight work drains.
    accepting: AtomicBool,
    shutting_down: AtomicBool,
    /// Worker handles live in the core so the watchdog can respawn a
    /// dead worker; `None` marks a slot mid-respawn or joined.
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    heartbeats: Vec<Heartbeat>,
    epoch: Instant,
    chaos: Mutex<Option<ChaosHook>>,
}

impl ServerCore {
    fn record_kernel(&self, polys: usize) {
        let w = flash_runtime::simd::lanes().max(1);
        let slots = polys.div_ceil(w) * w;
        self.kernel_polys.fetch_add(polys as u64, Ordering::Relaxed);
        self.kernel_slots.fetch_add(slots as u64, Ordering::Relaxed);
    }

    fn complete_one(&self) {
        let mut n = self.completed.lock().unwrap_or_else(|e| e.into_inner());
        *n += 1;
        drop(n);
        self.done.notify_all();
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn chaos_hook(&self) -> Option<ChaosHook> {
        self.chaos.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Aggregate serving accounting (see also [`SessionSnapshot`] for the
/// per-session view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests_ok: u64,
    /// Requests that failed (wire, decode, or compute).
    pub requests_failed: u64,
    /// Requests answered with a typed REFUSED frame (all classes).
    pub requests_refused: u64,
    /// Refusals: admission overload ([`RefusalReason::Shed`]).
    pub shed: u64,
    /// Refusals: deadline eviction ([`RefusalReason::Expired`]).
    pub expired: u64,
    /// Refusals: circuit breaker ([`RefusalReason::Quarantined`]).
    pub quarantined: u64,
    /// Refusals: panic containment ([`RefusalReason::Poisoned`]).
    pub poisoned: u64,
    /// Transport retransmissions observed during admission receives.
    pub retries: u64,
    /// Dead workers respawned plus stall alarms raised.
    pub watchdog_kicks: u64,
    /// Worker queue visits that yielded at least one ticket.
    pub batches: u64,
    /// Tickets drained across those visits.
    pub batched_requests: u64,
    /// Polynomials fed to the batched spectral kernels.
    pub kernel_polys: u64,
    /// SIMD lane-slots those kernel calls occupied.
    pub kernel_slots: u64,
    /// Connected sessions.
    pub sessions: usize,
    /// Hit/miss/eviction accounting of the model-plan cache.
    pub model_cache: CacheStats,
}

impl ServerStats {
    /// Fraction of SIMD lane-slots the spectral kernel calls actually
    /// filled (1.0 = every call ran at full width).
    pub fn occupancy(&self) -> f64 {
        if self.kernel_slots == 0 {
            1.0
        } else {
            self.kernel_polys as f64 / self.kernel_slots as f64
        }
    }

    /// Mean tickets per worker queue visit.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// A running multi-session inference server.
///
/// Workers are real threads, but every path is deterministic in
/// *content*: scheduling affects only the order work retires, never the
/// bytes a session observes.
pub struct InferenceServer {
    core: Arc<ServerCore>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

fn spawn_worker(core: &Arc<ServerCore>, slot: usize) -> JoinHandle<()> {
    let core = Arc::clone(core);
    std::thread::Builder::new()
        .name(format!("flash-serve-{slot}"))
        .spawn(move || worker_loop(&core, slot))
        .expect("spawn serve worker")
}

impl InferenceServer {
    /// Starts the server with `workers` worker threads (clamped to ≥ 1)
    /// plus the watchdog supervisor.
    pub fn start(policy: BatchPolicy, seed: u64, workers: usize) -> Self {
        let workers = workers.max(1);
        let core = Arc::new(ServerCore {
            policy,
            seed,
            models: Interner::bounded(32),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU32::new(1),
            queue: WorkQueue::bounded(policy.queue_depth.max(1)),
            results: Mutex::new(BTreeMap::new()),
            latencies_us: Mutex::new(Vec::new()),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            requests_refused: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            watchdog_kicks: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            kernel_polys: AtomicU64::new(0),
            kernel_slots: AtomicU64::new(0),
            completed: Mutex::new(0),
            done: Condvar::new(),
            accepting: AtomicBool::new(true),
            shutting_down: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            heartbeats: (0..workers).map(|_| Heartbeat::default()).collect(),
            epoch: Instant::now(),
            chaos: Mutex::new(None),
        });
        // Register the resilience counters so a clean run's snapshot
        // carries them at zero (the all-zero assertion of bench_serve).
        flash_telemetry::counter!("serve.shed").add(0);
        flash_telemetry::counter!("serve.expired").add(0);
        flash_telemetry::counter!("serve.quarantined").add(0);
        flash_telemetry::counter!("serve.retries").add(0);
        flash_telemetry::counter!("serve.watchdog_kicks").add(0);
        {
            let mut slots = core.workers.lock().unwrap_or_else(|e| e.into_inner());
            for i in 0..workers {
                slots.push(Some(spawn_worker(&core, i)));
            }
        }
        let watchdog = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("flash-serve-watchdog".into())
                .spawn(move || watchdog_loop(&core))
                .expect("spawn serve watchdog")
        };
        InferenceServer {
            core,
            watchdog: Mutex::new(Some(watchdog)),
        }
    }

    /// Registers (and compiles) a model. Re-registering an id that is
    /// still cached returns the existing plan untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelPlan::build`] failures — a model whose noise
    /// bound overflows the decryption ceiling is refused here, before
    /// any session can name it.
    pub fn register_model(&self, spec: ModelSpec) -> Result<Arc<ModelPlan>, ServeError> {
        self.core
            .models
            .try_intern_with(spec.id, move |_| ModelPlan::build(spec))
    }

    /// Opens a session: receives the client's HELLO on `uplink`,
    /// resolves the model, and answers the negotiated parameters on
    /// `downlink`. Returns the assigned session id.
    ///
    /// # Errors
    ///
    /// Wire failures on either link, or [`ServeError::UnknownModel`].
    pub fn accept(
        &self,
        uplink: SharedTransport,
        downlink: SharedTransport,
    ) -> Result<u32, ServeError> {
        if !self.core.accepting.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let hello = uplink.clone().recv()?;
        let (model_id, client_tag) = wire::decode_hello(&hello)?;
        let model = self
            .core
            .models
            .get(&model_id)
            .ok_or(ServeError::UnknownModel(model_id))?;
        let p = model.params();
        let ack = wire::SessionAck {
            session_id: self.core.next_session.fetch_add(1, Ordering::Relaxed),
            n: p.n as u32,
            t: p.t,
            c_polys: model.c_polys() as u32,
            m: model.shape().m as u32,
            bands: model.encoder().bands() as u32,
            truncation: model.truncation(),
        };
        let r = self.core.policy.resilience;
        let session = Arc::new(SessionState::new(
            ack.session_id,
            client_tag,
            model,
            uplink,
            downlink.clone(),
            self.core.policy.per_session_inflight,
            r.health_window,
            r.degrade_after,
            r.quarantine_after,
        ));
        self.core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(ack.session_id, session);
        downlink.clone().send(&wire::encode_ack(&ack))?;
        Ok(ack.session_id)
    }

    /// Sets a session's admission priority under load shedding.
    pub fn set_session_priority(&self, session_id: u32, priority: Priority) -> bool {
        let sessions = self.core.sessions.lock().unwrap_or_else(|e| e.into_inner());
        match sessions.get(&session_id) {
            Some(s) => {
                s.set_priority(priority);
                true
            }
            None => false,
        }
    }

    /// Installs (or clears) the per-ticket chaos hook — fault injection
    /// for the batch core, used by the chaos tests and `bench_chaos`.
    pub fn set_chaos_hook(&self, hook: Option<ChaosHook>) {
        *self.core.chaos.lock().unwrap_or_else(|e| e.into_inner()) = hook;
    }

    /// Admits one request of a session: receives the REQUEST frame from
    /// the session's uplink, validates and share-folds the ciphertexts,
    /// and enqueues the ticket. Blocks for backpressure — on the
    /// session's in-flight window and on the global queue bound —
    /// unless the resilience policy sheds instead.
    ///
    /// `server_share` is the server's additive share of the activation
    /// (its 2PC state for this layer), folded into the upload exactly as
    /// in [`flash_2pc::ConvProtocol`].
    ///
    /// # Terminal-outcome contract
    ///
    /// `Ok(())` promises exactly one later frame on the downlink — a
    /// RESPONSE or a typed REFUSED (quarantine/shed refusals send it
    /// before returning). An `Err` is itself the request's terminal
    /// outcome and no frame follows. Wire-class failures (the uplink's
    /// recovery gave up mid-stream) poison and quarantine the session —
    /// the frame layer is positional, so every later frame on that link
    /// is suspect — but never touch other sessions. Validation failures
    /// after a clean receive refuse typed and strike the session's
    /// circuit breaker instead of poisoning.
    pub fn ingest(
        &self,
        session_id: u32,
        req_id: u64,
        server_share: &[i64],
    ) -> Result<(), ServeError> {
        if !self.core.accepting.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let session = self
            .core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session_id)
            .cloned()
            .ok_or(ServeError::UnknownSession(session_id))?;
        if session.is_failed() {
            return Err(ServeError::SessionFailed(session_id));
        }
        if let Some(reason) = self.admission_gate(&session) {
            // The client has already queued its REQUEST frame; drain it
            // so the positional uplink stays aligned for later requests,
            // then answer the typed refusal.
            match session.uplink.clone().recv() {
                Ok(_) => {
                    self.refuse_admission(&session, req_id, reason);
                    return Ok(());
                }
                Err(e) => return Err(self.poison(&session, e.into())),
            }
        }
        if session.is_failed() || !session.acquire() {
            return Err(ServeError::SessionFailed(session_id));
        }
        match self.admit(&session, req_id, server_share) {
            Ok(ticket) => match self.core.queue.push(ticket) {
                Ok(()) => Ok(()),
                Err(_) => {
                    session.release();
                    Err(ServeError::Shutdown)
                }
            },
            Err(e) => {
                session.release();
                if matches!(e, ServeError::Flash(FlashError::Protocol(_))) {
                    // The receive itself failed: the stream is broken.
                    Err(self.poison(&session, e))
                } else {
                    // The frame arrived clean but its content failed
                    // validation: the stream is still aligned, so the
                    // request refuses typed and the breaker strikes.
                    session.record_outcome(false);
                    self.refuse_admission(&session, req_id, RefusalReason::Invalid(e.to_string()));
                    Ok(())
                }
            }
        }
    }

    /// The admission-time refusal verdict, if any.
    fn admission_gate(&self, session: &Arc<SessionState>) -> Option<RefusalReason> {
        let health = session.health();
        if health == SessionHealth::Quarantined {
            return Some(RefusalReason::Quarantined);
        }
        let r = &self.core.policy.resilience;
        if r.shed && session.priority() == Priority::Normal {
            let depth = self.core.queue.capacity();
            let watermark = match health {
                SessionHealth::Degraded => (depth / 2).max(1),
                _ => depth,
            };
            if self.core.queue.len() >= watermark {
                return Some(RefusalReason::Shed);
            }
        }
        None
    }

    /// Sends an admission-time REFUSED frame and records the terminal
    /// outcome. A downlink failure here poisons the session (the client
    /// can no longer be answered at all).
    fn refuse_admission(&self, session: &Arc<SessionState>, req_id: u64, reason: RefusalReason) {
        let core = &self.core;
        record_refusal(core, session, &reason);
        let frame = wire::encode_refusal(req_id, &reason);
        if session.downlink.clone().send(&frame).is_err() {
            session.mark_failed();
            session.quarantine();
        }
        core.complete_one();
    }

    /// Marks a session unrecoverable: poisoned (fail-fast submissions)
    /// and quarantined (health reporting), with failure accounting.
    fn poison(&self, session: &Arc<SessionState>, e: ServeError) -> ServeError {
        session.mark_failed();
        session.quarantine();
        session.requests_failed.fetch_add(1, Ordering::Relaxed);
        self.core.requests_failed.fetch_add(1, Ordering::Relaxed);
        flash_telemetry::counter!("serve.requests_failed").add(1);
        e
    }

    fn admit(
        &self,
        session: &Arc<SessionState>,
        req_id: u64,
        server_share: &[i64],
    ) -> Result<Ticket, ServeError> {
        let submitted = Instant::now();
        let _t = flash_telemetry::span!("serve.admit");
        let model = &session.model;
        let p = model.params();
        if server_share.len() != model.shape().input_len() {
            return Err(ServeError::Malformed("server share length"));
        }
        let retried_before = session.uplink.stats().frames_retried;
        let msg = session.uplink.clone().recv()?;
        let retried = session
            .uplink
            .stats()
            .frames_retried
            .saturating_sub(retried_before);
        if retried > 0 {
            self.core.retries.fetch_add(retried, Ordering::Relaxed);
            flash_telemetry::counter!("serve.retries").add(retried);
        }
        let (got_req, blobs) = wire::decode_request_borrowed(&msg)?;
        if got_req != req_id {
            return Err(ServeError::Malformed("request id mismatch"));
        }
        if blobs.len() != model.c_polys() {
            return Err(ServeError::Malformed("upload ciphertext count"));
        }
        let tiles = model.encoder().encode_activation(server_share);
        let cts = blobs
            .iter()
            .zip(&tiles)
            .map(|(bytes, tile)| {
                let mut ct = serialize::ciphertext_from_bytes(bytes, p.n, p.q)?;
                ct.validate_for(p)?;
                ct.add_plain_assign(&Poly::from_signed(tile, p.t), p);
                Ok(ct)
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Ticket {
            session: Arc::clone(session),
            req_id,
            cts,
            submitted,
            deadline: self
                .core
                .policy
                .resilience
                .request_deadline
                .map(|d| submitted + d),
        })
    }

    /// Aggregate accounting so far.
    pub fn stats(&self) -> ServerStats {
        let core = &self.core;
        ServerStats {
            requests_ok: core.requests_ok.load(Ordering::Relaxed),
            requests_failed: core.requests_failed.load(Ordering::Relaxed),
            requests_refused: core.requests_refused.load(Ordering::Relaxed),
            shed: core.shed.load(Ordering::Relaxed),
            expired: core.expired.load(Ordering::Relaxed),
            quarantined: core.quarantined.load(Ordering::Relaxed),
            poisoned: core.poisoned.load(Ordering::Relaxed),
            retries: core.retries.load(Ordering::Relaxed),
            watchdog_kicks: core.watchdog_kicks.load(Ordering::Relaxed),
            batches: core.batches.load(Ordering::Relaxed),
            batched_requests: core.batched_requests.load(Ordering::Relaxed),
            kernel_polys: core.kernel_polys.load(Ordering::Relaxed),
            kernel_slots: core.kernel_slots.load(Ordering::Relaxed),
            sessions: core
                .sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            model_cache: core.models.stats(),
        }
    }

    /// Per-session accounting, in session-id order.
    pub fn session_snapshots(&self) -> Vec<SessionSnapshot> {
        self.core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|s| s.snapshot())
            .collect()
    }

    /// Removes and returns the server's output share of one answered
    /// request (the server's half of the 2PC result).
    pub fn take_result(&self, session_id: u32, req_id: u64) -> Option<Vec<u64>> {
        self.core
            .results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(session_id, req_id))
    }

    /// Drains the recorded submission → response latencies (µs).
    pub fn take_latencies_us(&self) -> Vec<u64> {
        self.take_latencies_tagged()
            .into_iter()
            .map(|(_, us)| us)
            .collect()
    }

    /// Drains the recorded latencies tagged with the answering
    /// session's id — `(session_id, µs)` per answered request. The
    /// chaos harness uses the tag to compute clean-session percentiles
    /// with faulted sessions excluded.
    pub fn take_latencies_tagged(&self) -> Vec<(u32, u64)> {
        std::mem::take(
            &mut *self
                .core
                .latencies_us
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// Blocks until at least `count` requests have reached a terminal
    /// outcome (answered or refused) since the server started.
    ///
    /// Prefer [`InferenceServer::wait_for_timeout`]: this variant blocks
    /// forever if a worker is wedged or a request was lost.
    pub fn wait_for(&self, count: u64) {
        let mut n = self
            .core
            .completed
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *n < count {
            n = self.core.done.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Bounded variant of [`InferenceServer::wait_for`]: returns `true`
    /// once `count` terminal outcomes are reached, `false` if `dur`
    /// elapses first — so a hung worker fails the caller's run instead
    /// of wedging it.
    pub fn wait_for_timeout(&self, count: u64, dur: Duration) -> bool {
        let deadline = Instant::now() + dur;
        let mut n = self
            .core
            .completed
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *n < count {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            n = self
                .core
                .done
                .wait_timeout(n, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        true
    }

    /// Draining shutdown: stops accepting work (admissions fail fast
    /// with [`ServeError::Shutdown`]), completes every ticket already
    /// queued, then joins the workers and the watchdog. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        self.core.accepting.store(false, Ordering::Release);
        self.core.shutting_down.store(true, Ordering::Release);
        self.core.queue.close();
        if let Some(w) = self
            .watchdog
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = w.join();
        }
        let mut workers = self.core.workers.lock().unwrap_or_else(|e| e.into_inner());
        for slot in workers.iter_mut() {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Supervises the workers: a finished worker thread (uncontained panic)
/// is joined and respawned; a worker busy on one batch longer than the
/// stall bound raises one alarm per batch. Both count as
/// `serve.watchdog_kicks`.
fn watchdog_loop(core: &Arc<ServerCore>) {
    let interval = core
        .policy
        .resilience
        .watchdog_interval
        .max(Duration::from_millis(1));
    let stall_us = core.policy.resilience.watchdog_stall.as_micros() as u64;
    let slice = Duration::from_millis(2).min(interval);
    while !core.shutting_down.load(Ordering::Acquire) {
        // Sleep in small slices so shutdown joins promptly.
        let wake = Instant::now() + interval;
        while Instant::now() < wake {
            if core.shutting_down.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(slice);
        }
        let mut kicks = 0u64;
        let mut workers = core.workers.lock().unwrap_or_else(|e| e.into_inner());
        for (i, slot) in workers.iter_mut().enumerate() {
            let dead = slot.as_ref().is_some_and(|h| h.is_finished());
            if dead && !core.shutting_down.load(Ordering::Acquire) {
                if let Some(h) = slot.take() {
                    let _ = h.join();
                }
                core.heartbeats[i].busy_since_us.store(0, Ordering::Relaxed);
                *slot = Some(spawn_worker(core, i));
                kicks += 1;
                continue;
            }
            let hb = &core.heartbeats[i];
            let busy = hb.busy_since_us.load(Ordering::Relaxed);
            let generation = hb.generation.load(Ordering::Relaxed);
            if busy != 0
                && core.now_us().saturating_sub(busy) > stall_us
                && hb.alarmed_generation.load(Ordering::Relaxed) != generation
            {
                hb.alarmed_generation.store(generation, Ordering::Relaxed);
                kicks += 1;
            }
        }
        drop(workers);
        if kicks > 0 {
            core.watchdog_kicks.fetch_add(kicks, Ordering::Relaxed);
            flash_telemetry::counter!("serve.watchdog_kicks").add(kicks);
        }
    }
}

fn worker_loop(core: &Arc<ServerCore>, slot: usize) {
    let hb = &core.heartbeats[slot];
    loop {
        let batch = core.queue.pop_batch(core.policy.max_batch);
        if batch.is_empty() {
            return; // closed and drained
        }
        hb.generation.fetch_add(1, Ordering::Relaxed);
        hb.busy_since_us
            .store(core.now_us().max(1), Ordering::Relaxed);
        core.batches.fetch_add(1, Ordering::Relaxed);
        core.batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        flash_telemetry::counter!("serve.batches").add(1);
        flash_telemetry::counter!("serve.batched_requests").add(batch.len() as u64);
        // Evict expired tickets before batching: refuse typed instead of
        // computing answers whose deadline already passed.
        let now = Instant::now();
        let (batch, stale): (Vec<Ticket>, Vec<Ticket>) = batch
            .into_iter()
            .partition(|t| t.deadline.is_none_or(|d| now < d));
        for ticket in stale {
            refuse_ticket(core, ticket, RefusalReason::Expired);
        }
        // Coalesce by model *plan* (pointer identity, not id): tickets
        // whose sessions pinned different generations of a re-registered
        // id must not share spectra.
        let mut groups: BTreeMap<usize, Vec<Ticket>> = BTreeMap::new();
        for t in batch {
            groups
                .entry(Arc::as_ptr(&t.session.model) as usize)
                .or_default()
                .push(t);
        }
        let chaos = core.chaos_hook();
        for (_, tickets) in groups {
            if core.policy.amortize {
                run_group(core, tickets, chaos.as_ref());
            } else {
                for ticket in tickets {
                    run_serial(core, ticket, chaos.as_ref());
                }
            }
        }
        hb.busy_since_us.store(0, Ordering::Relaxed);
    }
}

/// Fires the chaos hook for every ticket in the slice. `Panic` unwinds
/// here — inside the containment boundary of the caller — and `Stall`
/// sleeps, tripping the watchdog's stall alarm.
fn apply_chaos(chaos: Option<&ChaosHook>, tickets: &[Ticket]) {
    let Some(hook) = chaos else { return };
    for t in tickets {
        match hook(t.session.id, t.req_id) {
            ChaosAction::None => {}
            ChaosAction::Panic => panic!("chaos: injected panic"),
            ChaosAction::Stall(d) => std::thread::sleep(d),
        }
    }
}

/// Runs one coalesced group under panic containment: a panic anywhere in
/// the compute path bisects the group until the poisoned ticket stands
/// alone and is refused [`RefusalReason::Poisoned`] — its co-batched
/// tickets recompute in smaller groups with bit-identical results
/// (masks are per-`(session, req, unit)` and the batched kernels are
/// width-invariant, so batch composition never changes bytes).
fn run_group(core: &Arc<ServerCore>, mut tickets: Vec<Ticket>, chaos: Option<&ChaosHook>) {
    if tickets.is_empty() {
        return;
    }
    let model = Arc::clone(&tickets[0].session.model);
    if !core.policy.resilience.contain_panics {
        apply_chaos(chaos, &tickets);
        let resolved = compute_group(core, &model, &tickets);
        for (ticket, unit_cts) in tickets.into_iter().zip(resolved) {
            finalize_ticket(core, &model, ticket, unit_cts);
        }
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        apply_chaos(chaos, &tickets);
        compute_group(core, &model, &tickets)
    }));
    match outcome {
        Ok(resolved) => {
            for (ticket, unit_cts) in tickets.into_iter().zip(resolved) {
                finalize_ticket(core, &model, ticket, unit_cts);
            }
        }
        Err(_) if tickets.len() == 1 => {
            let ticket = tickets.pop().expect("len checked");
            ticket.session.record_outcome(false);
            refuse_ticket(core, ticket, RefusalReason::Poisoned);
        }
        Err(_) => {
            let right = tickets.split_off(tickets.len() / 2);
            run_group(core, tickets, chaos);
            run_group(core, right, chaos);
        }
    }
}

/// The serial-baseline ticket path under the same containment contract.
fn run_serial(core: &Arc<ServerCore>, ticket: Ticket, chaos: Option<&ChaosHook>) {
    let model = Arc::clone(&ticket.session.model);
    if !core.policy.resilience.contain_panics {
        apply_chaos(chaos, std::slice::from_ref(&ticket));
        process_ticket_serial(core, ticket);
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        apply_chaos(chaos, std::slice::from_ref(&ticket));
        serial_units(core, &model, &ticket)
    }));
    match outcome {
        Ok(Ok(unit_cts)) => finalize_ticket(core, &model, ticket, unit_cts),
        Ok(Err(e)) => {
            ticket.session.record_outcome(false);
            refuse_ticket(core, ticket, RefusalReason::Invalid(e.to_string()));
        }
        Err(_) => {
            ticket.session.record_outcome(false);
            refuse_ticket(core, ticket, RefusalReason::Poisoned);
        }
    }
}

/// The coalesced datapath: one SoA forward sweep over every ticket's
/// ciphertexts, per-unit MACs against the model's precomputed spectra,
/// one group-wide batched inverse. Borrows the tickets — the caller
/// finalizes (or, on a contained panic, retries in smaller groups).
fn compute_group(
    core: &Arc<ServerCore>,
    model: &Arc<ModelPlan>,
    tickets: &[Ticket],
) -> Vec<Vec<Option<Ciphertext>>> {
    let p = model.params();
    let n = p.n;
    let bands = model.encoder().bands();
    let m = model.shape().m;
    let units = model.units.len();

    let spans: Vec<&[Ciphertext]> = tickets.iter().map(|t| t.cts.as_slice()).collect();
    let total_cts: usize = spans.iter().map(|s| s.len()).sum();
    let act = {
        let _t = flash_telemetry::span!("serve.forward_fft");
        model.spec.backend.activation_spectra_multi(&spans, p)
    };
    core.record_kernel(2 * total_cts);

    let mac_span = flash_telemetry::span!("serve.mac");
    let mut resolved: Vec<Vec<Option<Ciphertext>>> =
        tickets.iter().map(|_| vec![None; units]).collect();
    // Unit kinds are uniform across tickets (one model per group).
    let ntt_units: Vec<usize> = (0..units)
        .filter(|&u| matches!(model.units[u], UnitWeights::Ntt(_)))
        .collect();
    let fft_units: Vec<usize> = (0..units)
        .filter(|&u| matches!(model.units[u], UnitWeights::Fft(_)))
        .collect();
    // NTT accumulators live in one contiguous buffer, ticket-major —
    // MACs write straight into the slice the batched inverse will
    // consume in place, with no per-accumulator staging copy.
    let two_n = 2 * n;
    let mut ntt_buf = vec![0u64; tickets.len() * ntt_units.len() * two_n];
    let mut fft_accs: Vec<BandAccumulator> = Vec::new();
    let mut fft_tags: Vec<(usize, usize)> = Vec::new();
    let mut offset = 0usize;
    for (ti, ticket) in tickets.iter().enumerate() {
        let groups = ticket.cts.len() / bands;
        for oc in 0..m {
            for b in 0..bands {
                let u = oc * bands + b;
                if let UnitWeights::Fallback = &model.units[u] {
                    // Exact coefficient-domain path (ring-dispatched);
                    // consumes the ticket's own ciphertexts, not the
                    // hoisted spectra.
                    let mut acc = Ciphertext::zero(n, p.q);
                    for (g, wp) in model.w_polys[oc].iter().enumerate() {
                        ticket.cts[g * bands + b].mul_plain_signed_acc_exact(&wp[b], p, &mut acc);
                    }
                    resolved[ti][u] = Some(acc);
                }
            }
        }
        // Spectral units accumulate group-by-group with the unit loop
        // *innermost*: one ciphertext slice of the shared SoA stays
        // cache-hot while every unit MACs against it, instead of the
        // whole activation span being re-streamed once per unit. Each
        // accumulator still sees its groups in increasing order, so the
        // result is bit-identical to the unit-major order for both
        // domains.
        let tbuf = &mut ntt_buf[ti * ntt_units.len() * two_n..][..ntt_units.len() * two_n];
        for g in 0..groups {
            for (slot, &u) in ntt_units.iter().enumerate() {
                let UnitWeights::Ntt(residues) = &model.units[u] else {
                    unreachable!("ntt_units holds only NTT units");
                };
                let b = u % bands;
                act.mac_ntt_shoup_lazy_into(
                    offset + g * bands + b,
                    &residues.w[g * n..][..n],
                    &residues.shoup[g * n..][..n],
                    p.ntt(),
                    &mut tbuf[slot * two_n..][..two_n],
                );
            }
        }
        for &u in &fft_units {
            let UnitWeights::Fft(spectra) = &model.units[u] else {
                unreachable!("fft_units holds only FFT units");
            };
            let b = u % bands;
            let mut acc = act.accumulator(n);
            for (g, fwg) in spectra.chunks_exact(n / 2).enumerate() {
                act.mac_fft(offset + g * bands + b, fwg, &mut acc);
            }
            fft_accs.push(acc);
            fft_tags.push((ti, u));
        }
        offset += ticket.cts.len();
    }
    drop(mac_span);
    if !ntt_units.is_empty() {
        let _t = flash_telemetry::span!("serve.inverse_fft");
        core.record_kernel(ntt_buf.len() / n);
        // One ticket's accumulators (`units · 2N` words) fit L2; the
        // whole batch does not. Draining ticket-by-ticket keeps the
        // reduce + inverse sweeps cache-resident without changing a
        // single output bit (each accumulator is still reduced and
        // inverted exactly once).
        for (ti, tchunk) in ntt_buf.chunks_mut(ntt_units.len() * two_n).enumerate() {
            let closed = BandAccumulator::finish_ntt_bands_in_place(tchunk, p);
            for (slot, ct) in closed.into_iter().enumerate() {
                resolved[ti][ntt_units[slot]] = Some(ct);
            }
        }
    }
    if !fft_accs.is_empty() {
        let _t = flash_telemetry::span!("serve.inverse_fft");
        core.record_kernel(2 * fft_accs.len());
        let closed = BandAccumulator::finish_bands(fft_accs, p);
        for ((ti, u), ct) in fft_tags.into_iter().zip(closed) {
            resolved[ti][u] = Some(ct);
        }
    }
    resolved
}

/// The per-session baseline: the full per-request server pipeline of
/// [`flash_2pc::ConvProtocol`] — weight re-encoding, per-request noise
/// guard, per-request weight transforms, narrow activation batch, and
/// per-channel inverses — with the serving layer's mask seeds, so its
/// outputs are bit-identical to the coalesced path.
fn process_ticket_serial(core: &Arc<ServerCore>, ticket: Ticket) {
    let model = Arc::clone(&ticket.session.model);
    match serial_units(core, &model, &ticket) {
        Ok(unit_cts) => finalize_ticket(core, &model, ticket, unit_cts),
        Err(e) => {
            ticket.session.record_outcome(false);
            refuse_ticket(core, ticket, RefusalReason::Invalid(e.to_string()));
        }
    }
}

fn serial_units(
    core: &Arc<ServerCore>,
    model: &ModelPlan,
    ticket: &Ticket,
) -> Result<Vec<Option<Ciphertext>>, ServeError> {
    let _t = flash_telemetry::span!("serve.serial_units");
    let spec = &model.spec;
    let p = model.params();
    let enc = model.encoder();
    let shape = *model.shape();
    let bands = enc.bands();
    let m_half = p.n / 2;
    let is_ntt = matches!(spec.backend, PolyMulBackend::Ntt);

    let act = spec.backend.activation_spectra(&ticket.cts, p);
    core.record_kernel(2 * ticket.cts.len());

    let band_plans: Vec<_> = (0..bands)
        .map(|b| {
            if !spec.sparse_weights || is_ntt {
                return None;
            }
            let plan = conv_band_plan(enc, p.n, b);
            plan.worthwhile().then_some(plan)
        })
        .collect();

    let mut unit_cts: Vec<Option<Ciphertext>> = vec![None; shape.m * bands];
    for oc in 0..shape.m {
        let w_polys = enc.encode_weight(
            &spec.weights[oc * shape.kernel_len()..][..shape.kernel_len()],
            oc,
        );
        let groups = w_polys.len();
        let mut accs: Vec<BandAccumulator> = Vec::new();
        let mut idxs: Vec<usize> = Vec::new();
        for b in 0..bands {
            let (noise, w_sq) = conv_band_noise_bound(p, &w_polys, b, spec.truncation);
            noise.check()?;
            let fallback = match spec.backend.error_model(p) {
                Some(em) => {
                    let err = em.phase_error_bound(p, w_sq, groups);
                    noise.bound() + err >= spec.noise_margin * noise.ceiling()
                }
                None => false,
            };
            if fallback {
                let mut acc = Ciphertext::zero(p.n, p.q);
                for (g, wp) in w_polys.iter().enumerate() {
                    ticket.cts[g * bands + b].mul_plain_signed_acc_exact(&wp[b], p, &mut acc);
                }
                unit_cts[oc * bands + b] = Some(acc);
                continue;
            }
            let ws: Vec<&[i64]> = w_polys.iter().map(|wp| wp[b].as_slice()).collect();
            let mut acc = act.accumulator(p.n);
            if is_ntt {
                let mut fw = vec![0u64; groups * p.n];
                weight_residues_into(&ws, &mut fw, p.ntt());
                for (g, fwg) in fw.chunks_exact(p.n).enumerate() {
                    act.mac_ntt(g * bands + b, fwg, p.ntt(), &mut acc);
                }
            } else {
                let mut fw = vec![flash_math::C64::ZERO; groups * m_half];
                match &band_plans[b] {
                    Some(plan) => plan.execute_batch_into(ws.iter().copied(), &mut fw),
                    None => spec.backend.weight_spectra_into(&ws, &mut fw, p.fft()),
                }
                for (g, fwg) in fw.chunks_exact(m_half).enumerate() {
                    act.mac_fft(g * bands + b, fwg, &mut acc);
                }
            }
            accs.push(acc);
            idxs.push(b);
        }
        if !accs.is_empty() {
            core.record_kernel(2 * accs.len());
            let closed = BandAccumulator::finish_bands(accs, p);
            for (b, ct) in idxs.into_iter().zip(closed) {
                unit_cts[oc * bands + b] = Some(ct);
            }
        }
    }
    Ok(unit_cts)
}

/// Masks, decodes the server share, serializes and sends one ticket's
/// response; shared by both datapaths so the bytes cannot diverge.
fn finalize_ticket(
    core: &Arc<ServerCore>,
    model: &ModelPlan,
    ticket: Ticket,
    unit_cts: Vec<Option<Ciphertext>>,
) {
    let _t = flash_telemetry::span!("serve.finalize");
    let p = model.params();
    let enc = model.encoder();
    let bands = enc.bands();
    let out_len = model.shape().output_len();
    let mut y_server = vec![0u64; out_len];
    let mut blobs = Vec::with_capacity(unit_cts.len());
    let mut band_vals = vec![0i64; out_len];
    for (u, ct) in unit_cts.into_iter().enumerate() {
        let mut ct = ct.expect("every unit resolved before finalize");
        let (oc, b) = (u / bands, u % bands);
        let seed = mask_seed(core.seed, ticket.session.id, ticket.req_id, u);
        let mask_vals = mask_coeffs(seed, p.n, p.t);
        let mask = Poly::from_coeffs(mask_vals, p.t);
        ct.sub_plain_assign(&mask, p);
        let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
        band_vals.iter_mut().for_each(|v| *v = 0);
        enc.decode_band(&mask_signed, b, oc, &mut band_vals);
        merge_band(enc, &band_vals, b, oc, &mut y_server);
        blobs.push(match model.truncation() {
            None => serialize::ciphertext_to_bytes(&ct),
            Some((d0, d1)) => TruncatedCiphertext::truncate(&ct, d0, d1, p).to_bytes(p),
        });
    }
    let response = wire::encode_response(ticket.req_id, &blobs);
    let sent = ticket.session.downlink.clone().send(&response);
    core.results
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert((ticket.session.id, ticket.req_id), y_server);
    core.latencies_us
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((
            ticket.session.id,
            ticket.submitted.elapsed().as_micros() as u64,
        ));
    match sent {
        Ok(()) => {
            ticket.session.record_outcome(true);
            ticket.session.requests_ok.fetch_add(1, Ordering::Relaxed);
            core.requests_ok.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.requests_ok").add(1);
        }
        Err(_) => {
            ticket.session.mark_failed();
            ticket.session.quarantine();
            ticket
                .session
                .requests_failed
                .fetch_add(1, Ordering::Relaxed);
            core.requests_failed.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.requests_failed").add(1);
        }
    }
    ticket.session.release();
    core.complete_one();
}

/// Bumps the per-class refusal accounting (core + session + telemetry).
fn record_refusal(core: &ServerCore, session: &SessionState, reason: &RefusalReason) {
    session.requests_refused.fetch_add(1, Ordering::Relaxed);
    core.requests_refused.fetch_add(1, Ordering::Relaxed);
    flash_telemetry::counter!("serve.requests_refused").add(1);
    match reason {
        RefusalReason::Shed => {
            core.shed.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.shed").add(1);
        }
        RefusalReason::Expired => {
            core.expired.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.expired").add(1);
        }
        RefusalReason::Quarantined => {
            core.quarantined.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.quarantined").add(1);
        }
        RefusalReason::Poisoned => {
            core.poisoned.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.poisoned").add(1);
        }
        RefusalReason::Shutdown | RefusalReason::Invalid(_) => {}
    }
}

/// Answers one queued ticket with a typed refusal instead of a result.
/// The breaker strike, if the refusal class warrants one, is the
/// caller's job ([`crate::session::SessionState::record_outcome`]) —
/// shed/expired refusals are the server's condition and must not strike.
fn refuse_ticket(core: &Arc<ServerCore>, ticket: Ticket, reason: RefusalReason) {
    record_refusal(core, &ticket.session, &reason);
    let refusal = wire::encode_refusal(ticket.req_id, &reason);
    if ticket.session.downlink.clone().send(&refusal).is_err() {
        ticket.session.mark_failed();
        ticket.session.quarantine();
    }
    ticket.session.release();
    core.complete_one();
}
