//! The multi-session inference server.
//!
//! Requests from all sessions funnel into one bounded [`WorkQueue`];
//! worker threads drain it in batches ([`WorkQueue::pop_batch`]) and
//! coalesce compatible tickets — same registered model — into one
//! spectral pass:
//!
//! 1. every coalesced ticket's ciphertexts forward-transform in **one**
//!    SoA sweep ([`PolyMulBackend::activation_spectra_multi`]),
//! 2. each `(ticket, oc, band)` unit MACs the model's precomputed
//!    weight spectra against its slice of the shared batch,
//! 3. every spectral unit of the whole group closes through **one**
//!    batched inverse ([`BandAccumulator::finish_bands`]).
//!
//! On a serial per-session baseline the same transforms run per request
//! at width `2·c_polys` (activations) and `2·bands` (inverses); the
//! coalesced pass runs them at up to `2·Σ c_polys` and `2·Σ units`, so
//! the lane-parallel kernels fill all `W` SIMD lanes — that, plus the
//! per-model amortization of [`ModelPlan`], is where the aggregate
//! throughput comes from on a single-core host.
//!
//! Masks come from [`mask_seed`] — a pure function of
//! `(server seed, session, request, unit)` — so outputs are bit-equal
//! for any batch composition and worker count; `BatchPolicy::
//! serial_baseline()` reuses the same seeds, which is what lets the
//! determinism tests compare the two modes byte for byte.

use crate::model::{mask_coeffs, mask_seed, merge_band, ModelPlan, ModelSpec, UnitWeights};
use crate::session::{SessionSnapshot, SessionState};
use crate::{wire, ServeError};
use flash_2pc::{conv_band_noise_bound, conv_band_plan, SharedTransport, Transport};
use flash_he::backend::{weight_residues_into, BandAccumulator};
use flash_he::truncate::TruncatedCiphertext;
use flash_he::{serialize, Ciphertext, Poly, PolyMulBackend};
use flash_runtime::{CacheStats, Interner, WorkQueue};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Knobs of the batching core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Most tickets one worker drains per queue visit (the coalescing
    /// window).
    pub max_batch: usize,
    /// Bound of the process-wide ticket queue; submissions block when
    /// it is full (global backpressure).
    pub queue_depth: usize,
    /// Per-session in-flight window; a session's submissions block when
    /// it alone has this many requests pending.
    pub per_session_inflight: usize,
    /// Amortize per-model work across requests (the serving datapath).
    /// With `false` every ticket re-derives the full per-request server
    /// pipeline of [`flash_2pc::ConvProtocol`] — the per-session serial
    /// baseline the speedup is measured against.
    pub amortize: bool,
}

impl BatchPolicy {
    /// The serving configuration: coalesce up to 16 tickets — wide
    /// enough to amortize the shared forward sweep, small enough that
    /// one batch's activation and accumulator buffers stay inside L2.
    pub fn batched() -> Self {
        BatchPolicy {
            max_batch: 16,
            queue_depth: 256,
            per_session_inflight: 8,
            amortize: true,
        }
    }

    /// The per-session baseline: no coalescing, no amortization.
    pub fn serial_baseline() -> Self {
        BatchPolicy {
            max_batch: 1,
            queue_depth: 256,
            per_session_inflight: 8,
            amortize: false,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::batched()
    }
}

/// One admitted request waiting for a worker: the share-folded upload
/// ciphertexts plus routing/latency bookkeeping.
struct Ticket {
    session: Arc<SessionState>,
    req_id: u64,
    cts: Vec<Ciphertext>,
    submitted: Instant,
}

struct ServerCore {
    policy: BatchPolicy,
    seed: u64,
    /// Registered models, LRU-bounded: a serving process cycling
    /// through many models sheds the cold plans (sessions keep their
    /// own `Arc`, so an evicted plan stays alive until its last
    /// session closes).
    models: Interner<u64, ModelPlan>,
    sessions: Mutex<BTreeMap<u32, Arc<SessionState>>>,
    next_session: AtomicU32,
    queue: WorkQueue<Ticket>,
    /// Server output shares by `(session, request)` until collected.
    results: Mutex<BTreeMap<(u32, u64), Vec<u64>>>,
    /// Submission → response-send latency per answered request, µs.
    latencies_us: Mutex<Vec<u64>>,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Polynomials fed to the batched spectral kernels…
    kernel_polys: AtomicU64,
    /// …and the SIMD lane-slots those calls occupied (`rounds × W`).
    kernel_slots: AtomicU64,
    /// Terminal outcomes (ok + failed), with a wakeup for waiters.
    completed: Mutex<u64>,
    done: Condvar,
}

impl ServerCore {
    fn record_kernel(&self, polys: usize) {
        let w = flash_runtime::simd::lanes().max(1);
        let slots = polys.div_ceil(w) * w;
        self.kernel_polys.fetch_add(polys as u64, Ordering::Relaxed);
        self.kernel_slots.fetch_add(slots as u64, Ordering::Relaxed);
    }

    fn complete_one(&self) {
        let mut n = self.completed.lock().unwrap_or_else(|e| e.into_inner());
        *n += 1;
        drop(n);
        self.done.notify_all();
    }
}

/// Aggregate serving accounting (see also [`SessionSnapshot`] for the
/// per-session view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests_ok: u64,
    /// Requests that failed (wire, decode, or compute).
    pub requests_failed: u64,
    /// Worker queue visits that yielded at least one ticket.
    pub batches: u64,
    /// Tickets drained across those visits.
    pub batched_requests: u64,
    /// Polynomials fed to the batched spectral kernels.
    pub kernel_polys: u64,
    /// SIMD lane-slots those kernel calls occupied.
    pub kernel_slots: u64,
    /// Connected sessions.
    pub sessions: usize,
    /// Hit/miss/eviction accounting of the model-plan cache.
    pub model_cache: CacheStats,
}

impl ServerStats {
    /// Fraction of SIMD lane-slots the spectral kernel calls actually
    /// filled (1.0 = every call ran at full width).
    pub fn occupancy(&self) -> f64 {
        if self.kernel_slots == 0 {
            1.0
        } else {
            self.kernel_polys as f64 / self.kernel_slots as f64
        }
    }

    /// Mean tickets per worker queue visit.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// A running multi-session inference server.
///
/// Workers are real threads, but every path is deterministic in
/// *content*: scheduling affects only the order work retires, never the
/// bytes a session observes.
pub struct InferenceServer {
    core: Arc<ServerCore>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl InferenceServer {
    /// Starts the server with `workers` worker threads (clamped to ≥ 1).
    pub fn start(policy: BatchPolicy, seed: u64, workers: usize) -> Self {
        let core = Arc::new(ServerCore {
            policy,
            seed,
            models: Interner::bounded(32),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU32::new(1),
            queue: WorkQueue::bounded(policy.queue_depth.max(1)),
            results: Mutex::new(BTreeMap::new()),
            latencies_us: Mutex::new(Vec::new()),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            kernel_polys: AtomicU64::new(0),
            kernel_slots: AtomicU64::new(0),
            completed: Mutex::new(0),
            done: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("flash-serve-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawn serve worker")
            })
            .collect();
        InferenceServer {
            core,
            workers: Mutex::new(workers),
        }
    }

    /// Registers (and compiles) a model. Re-registering an id that is
    /// still cached returns the existing plan untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelPlan::build`] failures — a model whose noise
    /// bound overflows the decryption ceiling is refused here, before
    /// any session can name it.
    pub fn register_model(&self, spec: ModelSpec) -> Result<Arc<ModelPlan>, ServeError> {
        self.core
            .models
            .try_intern_with(spec.id, move |_| ModelPlan::build(spec))
    }

    /// Opens a session: receives the client's HELLO on `uplink`,
    /// resolves the model, and answers the negotiated parameters on
    /// `downlink`. Returns the assigned session id.
    ///
    /// # Errors
    ///
    /// Wire failures on either link, or [`ServeError::UnknownModel`].
    pub fn accept(
        &self,
        uplink: SharedTransport,
        downlink: SharedTransport,
    ) -> Result<u32, ServeError> {
        let hello = uplink.clone().recv()?;
        let (model_id, client_tag) = wire::decode_hello(&hello)?;
        let model = self
            .core
            .models
            .get(&model_id)
            .ok_or(ServeError::UnknownModel(model_id))?;
        let p = model.params();
        let ack = wire::SessionAck {
            session_id: self.core.next_session.fetch_add(1, Ordering::Relaxed),
            n: p.n as u32,
            t: p.t,
            c_polys: model.c_polys() as u32,
            m: model.shape().m as u32,
            bands: model.encoder().bands() as u32,
            truncation: model.truncation(),
        };
        let session = Arc::new(SessionState::new(
            ack.session_id,
            client_tag,
            model,
            uplink,
            downlink.clone(),
            self.core.policy.per_session_inflight,
        ));
        self.core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(ack.session_id, session);
        downlink.clone().send(&wire::encode_ack(&ack))?;
        Ok(ack.session_id)
    }

    /// Admits one request of a session: receives the REQUEST frame from
    /// the session's uplink, validates and share-folds the ciphertexts,
    /// and enqueues the ticket. Blocks for backpressure — on the
    /// session's in-flight window and on the global queue bound.
    ///
    /// `server_share` is the server's additive share of the activation
    /// (its 2PC state for this layer), folded into the upload exactly as
    /// in [`flash_2pc::ConvProtocol`].
    ///
    /// # Errors
    ///
    /// Typed admission failures. Any error here poisons the session —
    /// the frame layer is positional, so an unrecoverable fault
    /// mid-stream makes every later frame on the link suspect — but
    /// never touches other sessions.
    pub fn ingest(
        &self,
        session_id: u32,
        req_id: u64,
        server_share: &[i64],
    ) -> Result<(), ServeError> {
        let session = self
            .core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session_id)
            .cloned()
            .ok_or(ServeError::UnknownSession(session_id))?;
        if session.is_failed() || !session.acquire() {
            return Err(ServeError::SessionFailed(session_id));
        }
        match self.admit(&session, req_id, server_share) {
            Ok(ticket) => match self.core.queue.push(ticket) {
                Ok(()) => Ok(()),
                Err(_) => {
                    session.release();
                    Err(ServeError::Shutdown)
                }
            },
            Err(e) => {
                session.release();
                session.mark_failed();
                session.requests_failed.fetch_add(1, Ordering::Relaxed);
                self.core.requests_failed.fetch_add(1, Ordering::Relaxed);
                flash_telemetry::counter!("serve.requests_failed").add(1);
                self.core.complete_one();
                Err(e)
            }
        }
    }

    fn admit(
        &self,
        session: &Arc<SessionState>,
        req_id: u64,
        server_share: &[i64],
    ) -> Result<Ticket, ServeError> {
        let submitted = Instant::now();
        let _t = flash_telemetry::span!("serve.admit");
        let model = &session.model;
        let p = model.params();
        if server_share.len() != model.shape().input_len() {
            return Err(ServeError::Malformed("server share length"));
        }
        let msg = session.uplink.clone().recv()?;
        let (got_req, blobs) = wire::decode_request_borrowed(&msg)?;
        if got_req != req_id {
            return Err(ServeError::Malformed("request id mismatch"));
        }
        if blobs.len() != model.c_polys() {
            return Err(ServeError::Malformed("upload ciphertext count"));
        }
        let tiles = model.encoder().encode_activation(server_share);
        let cts = blobs
            .iter()
            .zip(&tiles)
            .map(|(bytes, tile)| {
                let mut ct = serialize::ciphertext_from_bytes(bytes, p.n, p.q)?;
                ct.validate_for(p)?;
                ct.add_plain_assign(&Poly::from_signed(tile, p.t), p);
                Ok(ct)
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Ticket {
            session: Arc::clone(session),
            req_id,
            cts,
            submitted,
        })
    }

    /// Aggregate accounting so far.
    pub fn stats(&self) -> ServerStats {
        let core = &self.core;
        ServerStats {
            requests_ok: core.requests_ok.load(Ordering::Relaxed),
            requests_failed: core.requests_failed.load(Ordering::Relaxed),
            batches: core.batches.load(Ordering::Relaxed),
            batched_requests: core.batched_requests.load(Ordering::Relaxed),
            kernel_polys: core.kernel_polys.load(Ordering::Relaxed),
            kernel_slots: core.kernel_slots.load(Ordering::Relaxed),
            sessions: core
                .sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            model_cache: core.models.stats(),
        }
    }

    /// Per-session accounting, in session-id order.
    pub fn session_snapshots(&self) -> Vec<SessionSnapshot> {
        self.core
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|s| s.snapshot())
            .collect()
    }

    /// Removes and returns the server's output share of one answered
    /// request (the server's half of the 2PC result).
    pub fn take_result(&self, session_id: u32, req_id: u64) -> Option<Vec<u64>> {
        self.core
            .results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(session_id, req_id))
    }

    /// Drains the recorded submission → response latencies (µs).
    pub fn take_latencies_us(&self) -> Vec<u64> {
        std::mem::take(
            &mut *self
                .core
                .latencies_us
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// Blocks until at least `count` requests have reached a terminal
    /// outcome (answered or failed) since the server started.
    pub fn wait_for(&self, count: u64) {
        let mut n = self
            .core
            .completed
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *n < count {
            n = self.core.done.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.core.queue.close();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(core: &Arc<ServerCore>) {
    loop {
        let batch = core.queue.pop_batch(core.policy.max_batch);
        if batch.is_empty() {
            return; // closed and drained
        }
        core.batches.fetch_add(1, Ordering::Relaxed);
        core.batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        flash_telemetry::counter!("serve.batches").add(1);
        flash_telemetry::counter!("serve.batched_requests").add(batch.len() as u64);
        // Coalesce by model *plan* (pointer identity, not id): tickets
        // whose sessions pinned different generations of a re-registered
        // id must not share spectra.
        let mut groups: BTreeMap<usize, Vec<Ticket>> = BTreeMap::new();
        for t in batch {
            groups
                .entry(Arc::as_ptr(&t.session.model) as usize)
                .or_default()
                .push(t);
        }
        for (_, tickets) in groups {
            if core.policy.amortize {
                process_group_batched(core, tickets);
            } else {
                for ticket in tickets {
                    process_ticket_serial(core, ticket);
                }
            }
        }
    }
}

/// The coalesced datapath: one SoA forward sweep over every ticket's
/// ciphertexts, per-unit MACs against the model's precomputed spectra,
/// one group-wide batched inverse, then per-ticket mask/serialize.
fn process_group_batched(core: &Arc<ServerCore>, tickets: Vec<Ticket>) {
    let model = Arc::clone(&tickets[0].session.model);
    let p = model.params();
    let n = p.n;
    let bands = model.encoder().bands();
    let m = model.shape().m;
    let units = model.units.len();

    let spans: Vec<&[Ciphertext]> = tickets.iter().map(|t| t.cts.as_slice()).collect();
    let total_cts: usize = spans.iter().map(|s| s.len()).sum();
    let act = {
        let _t = flash_telemetry::span!("serve.forward_fft");
        model.spec.backend.activation_spectra_multi(&spans, p)
    };
    core.record_kernel(2 * total_cts);

    let mac_span = flash_telemetry::span!("serve.mac");
    let mut resolved: Vec<Vec<Option<Ciphertext>>> =
        tickets.iter().map(|_| vec![None; units]).collect();
    // Unit kinds are uniform across tickets (one model per group).
    let ntt_units: Vec<usize> = (0..units)
        .filter(|&u| matches!(model.units[u], UnitWeights::Ntt(_)))
        .collect();
    let fft_units: Vec<usize> = (0..units)
        .filter(|&u| matches!(model.units[u], UnitWeights::Fft(_)))
        .collect();
    // NTT accumulators live in one contiguous buffer, ticket-major —
    // MACs write straight into the slice the batched inverse will
    // consume in place, with no per-accumulator staging copy.
    let two_n = 2 * n;
    let mut ntt_buf = vec![0u64; tickets.len() * ntt_units.len() * two_n];
    let mut fft_accs: Vec<BandAccumulator> = Vec::new();
    let mut fft_tags: Vec<(usize, usize)> = Vec::new();
    let mut offset = 0usize;
    for (ti, ticket) in tickets.iter().enumerate() {
        let groups = ticket.cts.len() / bands;
        for oc in 0..m {
            for b in 0..bands {
                let u = oc * bands + b;
                if let UnitWeights::Fallback = &model.units[u] {
                    // Exact coefficient-domain path (ring-dispatched);
                    // consumes the ticket's own ciphertexts, not the
                    // hoisted spectra.
                    let mut acc = Ciphertext::zero(n, p.q);
                    for (g, wp) in model.w_polys[oc].iter().enumerate() {
                        ticket.cts[g * bands + b].mul_plain_signed_acc_exact(&wp[b], p, &mut acc);
                    }
                    resolved[ti][u] = Some(acc);
                }
            }
        }
        // Spectral units accumulate group-by-group with the unit loop
        // *innermost*: one ciphertext slice of the shared SoA stays
        // cache-hot while every unit MACs against it, instead of the
        // whole activation span being re-streamed once per unit. Each
        // accumulator still sees its groups in increasing order, so the
        // result is bit-identical to the unit-major order for both
        // domains.
        let tbuf = &mut ntt_buf[ti * ntt_units.len() * two_n..][..ntt_units.len() * two_n];
        for g in 0..groups {
            for (slot, &u) in ntt_units.iter().enumerate() {
                let UnitWeights::Ntt(residues) = &model.units[u] else {
                    unreachable!("ntt_units holds only NTT units");
                };
                let b = u % bands;
                act.mac_ntt_shoup_lazy_into(
                    offset + g * bands + b,
                    &residues.w[g * n..][..n],
                    &residues.shoup[g * n..][..n],
                    p.ntt(),
                    &mut tbuf[slot * two_n..][..two_n],
                );
            }
        }
        for &u in &fft_units {
            let UnitWeights::Fft(spectra) = &model.units[u] else {
                unreachable!("fft_units holds only FFT units");
            };
            let b = u % bands;
            let mut acc = act.accumulator(n);
            for (g, fwg) in spectra.chunks_exact(n / 2).enumerate() {
                act.mac_fft(offset + g * bands + b, fwg, &mut acc);
            }
            fft_accs.push(acc);
            fft_tags.push((ti, u));
        }
        offset += ticket.cts.len();
    }
    drop(mac_span);
    if !ntt_units.is_empty() {
        let _t = flash_telemetry::span!("serve.inverse_fft");
        core.record_kernel(ntt_buf.len() / n);
        // One ticket's accumulators (`units · 2N` words) fit L2; the
        // whole batch does not. Draining ticket-by-ticket keeps the
        // reduce + inverse sweeps cache-resident without changing a
        // single output bit (each accumulator is still reduced and
        // inverted exactly once).
        for (ti, tchunk) in ntt_buf.chunks_mut(ntt_units.len() * two_n).enumerate() {
            let closed = BandAccumulator::finish_ntt_bands_in_place(tchunk, p);
            for (slot, ct) in closed.into_iter().enumerate() {
                resolved[ti][ntt_units[slot]] = Some(ct);
            }
        }
    }
    if !fft_accs.is_empty() {
        let _t = flash_telemetry::span!("serve.inverse_fft");
        core.record_kernel(2 * fft_accs.len());
        let closed = BandAccumulator::finish_bands(fft_accs, p);
        for ((ti, u), ct) in fft_tags.into_iter().zip(closed) {
            resolved[ti][u] = Some(ct);
        }
    }
    for (ticket, unit_cts) in tickets.into_iter().zip(resolved) {
        finalize_ticket(core, &model, ticket, unit_cts);
    }
}

/// The per-session baseline: the full per-request server pipeline of
/// [`flash_2pc::ConvProtocol`] — weight re-encoding, per-request noise
/// guard, per-request weight transforms, narrow activation batch, and
/// per-channel inverses — with the serving layer's mask seeds, so its
/// outputs are bit-identical to the coalesced path.
fn process_ticket_serial(core: &Arc<ServerCore>, ticket: Ticket) {
    let model = Arc::clone(&ticket.session.model);
    match serial_units(core, &model, &ticket) {
        Ok(unit_cts) => finalize_ticket(core, &model, ticket, unit_cts),
        Err(e) => refuse_ticket(core, ticket, &e),
    }
}

fn serial_units(
    core: &Arc<ServerCore>,
    model: &ModelPlan,
    ticket: &Ticket,
) -> Result<Vec<Option<Ciphertext>>, ServeError> {
    let _t = flash_telemetry::span!("serve.serial_units");
    let spec = &model.spec;
    let p = model.params();
    let enc = model.encoder();
    let shape = *model.shape();
    let bands = enc.bands();
    let m_half = p.n / 2;
    let is_ntt = matches!(spec.backend, PolyMulBackend::Ntt);

    let act = spec.backend.activation_spectra(&ticket.cts, p);
    core.record_kernel(2 * ticket.cts.len());

    let band_plans: Vec<_> = (0..bands)
        .map(|b| {
            if !spec.sparse_weights || is_ntt {
                return None;
            }
            let plan = conv_band_plan(enc, p.n, b);
            plan.worthwhile().then_some(plan)
        })
        .collect();

    let mut unit_cts: Vec<Option<Ciphertext>> = vec![None; shape.m * bands];
    for oc in 0..shape.m {
        let w_polys = enc.encode_weight(
            &spec.weights[oc * shape.kernel_len()..][..shape.kernel_len()],
            oc,
        );
        let groups = w_polys.len();
        let mut accs: Vec<BandAccumulator> = Vec::new();
        let mut idxs: Vec<usize> = Vec::new();
        for b in 0..bands {
            let (noise, w_sq) = conv_band_noise_bound(p, &w_polys, b, spec.truncation);
            noise.check()?;
            let fallback = match spec.backend.error_model(p) {
                Some(em) => {
                    let err = em.phase_error_bound(p, w_sq, groups);
                    noise.bound() + err >= spec.noise_margin * noise.ceiling()
                }
                None => false,
            };
            if fallback {
                let mut acc = Ciphertext::zero(p.n, p.q);
                for (g, wp) in w_polys.iter().enumerate() {
                    ticket.cts[g * bands + b].mul_plain_signed_acc_exact(&wp[b], p, &mut acc);
                }
                unit_cts[oc * bands + b] = Some(acc);
                continue;
            }
            let ws: Vec<&[i64]> = w_polys.iter().map(|wp| wp[b].as_slice()).collect();
            let mut acc = act.accumulator(p.n);
            if is_ntt {
                let mut fw = vec![0u64; groups * p.n];
                weight_residues_into(&ws, &mut fw, p.ntt());
                for (g, fwg) in fw.chunks_exact(p.n).enumerate() {
                    act.mac_ntt(g * bands + b, fwg, p.ntt(), &mut acc);
                }
            } else {
                let mut fw = vec![flash_math::C64::ZERO; groups * m_half];
                match &band_plans[b] {
                    Some(plan) => plan.execute_batch_into(ws.iter().copied(), &mut fw),
                    None => spec.backend.weight_spectra_into(&ws, &mut fw, p.fft()),
                }
                for (g, fwg) in fw.chunks_exact(m_half).enumerate() {
                    act.mac_fft(g * bands + b, fwg, &mut acc);
                }
            }
            accs.push(acc);
            idxs.push(b);
        }
        if !accs.is_empty() {
            core.record_kernel(2 * accs.len());
            let closed = BandAccumulator::finish_bands(accs, p);
            for (b, ct) in idxs.into_iter().zip(closed) {
                unit_cts[oc * bands + b] = Some(ct);
            }
        }
    }
    Ok(unit_cts)
}

/// Masks, decodes the server share, serializes and sends one ticket's
/// response; shared by both datapaths so the bytes cannot diverge.
fn finalize_ticket(
    core: &Arc<ServerCore>,
    model: &ModelPlan,
    ticket: Ticket,
    unit_cts: Vec<Option<Ciphertext>>,
) {
    let _t = flash_telemetry::span!("serve.finalize");
    let p = model.params();
    let enc = model.encoder();
    let bands = enc.bands();
    let out_len = model.shape().output_len();
    let mut y_server = vec![0u64; out_len];
    let mut blobs = Vec::with_capacity(unit_cts.len());
    let mut band_vals = vec![0i64; out_len];
    for (u, ct) in unit_cts.into_iter().enumerate() {
        let mut ct = ct.expect("every unit resolved before finalize");
        let (oc, b) = (u / bands, u % bands);
        let seed = mask_seed(core.seed, ticket.session.id, ticket.req_id, u);
        let mask_vals = mask_coeffs(seed, p.n, p.t);
        let mask = Poly::from_coeffs(mask_vals, p.t);
        ct.sub_plain_assign(&mask, p);
        let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
        band_vals.iter_mut().for_each(|v| *v = 0);
        enc.decode_band(&mask_signed, b, oc, &mut band_vals);
        merge_band(enc, &band_vals, b, oc, &mut y_server);
        blobs.push(match model.truncation() {
            None => serialize::ciphertext_to_bytes(&ct),
            Some((d0, d1)) => TruncatedCiphertext::truncate(&ct, d0, d1, p).to_bytes(p),
        });
    }
    let response = wire::encode_response(ticket.req_id, &blobs);
    let sent = ticket.session.downlink.clone().send(&response);
    core.results
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert((ticket.session.id, ticket.req_id), y_server);
    core.latencies_us
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(ticket.submitted.elapsed().as_micros() as u64);
    match sent {
        Ok(()) => {
            ticket.session.requests_ok.fetch_add(1, Ordering::Relaxed);
            core.requests_ok.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.requests_ok").add(1);
        }
        Err(_) => {
            ticket.session.mark_failed();
            ticket
                .session
                .requests_failed
                .fetch_add(1, Ordering::Relaxed);
            core.requests_failed.fetch_add(1, Ordering::Relaxed);
            flash_telemetry::counter!("serve.requests_failed").add(1);
        }
    }
    ticket.session.release();
    core.complete_one();
}

/// Answers one ticket with a typed refusal instead of a result.
fn refuse_ticket(core: &Arc<ServerCore>, ticket: Ticket, err: &ServeError) {
    let refusal = wire::encode_refusal(ticket.req_id, &err.to_string());
    let _ = ticket.session.downlink.clone().send(&refusal);
    ticket
        .session
        .requests_failed
        .fetch_add(1, Ordering::Relaxed);
    core.requests_failed.fetch_add(1, Ordering::Relaxed);
    flash_telemetry::counter!("serve.requests_failed").add(1);
    ticket.session.release();
    core.complete_one();
}
