//! Multi-session inference serving for the hybrid HE/2PC pipeline.
//!
//! One [`InferenceServer`] multiplexes many concurrent client sessions
//! over the wire transport of [`flash_2pc::transport`]: each session
//! opens with a handshake + parameter negotiation over a
//! [`flash_2pc::SharedTransport`] pair, holds its own client-side secret
//! key, and submits requests through a bounded queue (backpressure at
//! the submission call, per session and process-wide).
//!
//! The throughput lever is the **batching core**: requests against the
//! same registered model are compatible, so a worker coalesces them —
//!
//! * weight spectra, sparse plans and noise-guard verdicts are computed
//!   **once per model** at registration ([`ModelPlan`]) and shared by
//!   every session, instead of once per request;
//! * activations from different clients pack into one SoA batch
//!   ([`flash_he::PolyMulBackend::activation_spectra_multi`]) and all
//!   coalesced responses close through **one** batched inverse
//!   ([`flash_he::backend::BandAccumulator::finish_bands`]) — so the
//!   lane-parallel spectral kernels run at full SIMD width `W` instead
//!   of per-client width.
//!
//! Batching never changes results: masks are derived from
//! per-`(session, request, unit)` seeds and the batched kernels are
//! bit-identical at every width, so N concurrent sessions produce
//! exactly the bytes N serial runs would — for any worker count and any
//! batch composition (the concurrency test suite asserts this).
//!
//! The seeded [`flash_2pc::transport::FaultInjector`-style] fault plans
//! double as the server's chaos mode: each session's links carry their
//! own schedule, and a fault on one session (recovered or terminal)
//! can neither corrupt nor stall another — a wedged link fails *that*
//! session typed ([`ServeError`]) while the rest keep serving.

pub mod client;
pub mod model;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{Client, PreparedRequest};
pub use model::{ModelPlan, ModelSpec};
pub use server::{
    BatchPolicy, ChaosAction, ChaosHook, InferenceServer, ResiliencePolicy, ServerStats,
};
pub use session::{Priority, SessionHealth, SessionSnapshot};
pub use wire::RefusalReason;

use flash_2pc::error::{FlashError, ProtocolError};
use std::fmt;

/// Any failure of the serving layer, per session: wire/protocol/scheme
/// errors bubbling up from the stack, plus serving-specific conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A protocol-stack failure (wire decoding, transport recovery,
    /// scheme-level validation) on this session's links.
    Flash(FlashError),
    /// The requested model id is not registered.
    UnknownModel(u64),
    /// The session id is not (or no longer) connected.
    UnknownSession(u32),
    /// The session was poisoned by an earlier unrecoverable wire failure;
    /// later submissions fail fast instead of racing a wedged link.
    SessionFailed(u32),
    /// The server refused the request and relayed a typed reason.
    Refused {
        /// The request the refusal applies to.
        req_id: u64,
        /// Typed server-side reason (decoded from the REFUSED frame).
        reason: wire::RefusalReason,
    },
    /// A framed message decoded but violated the serving wire format
    /// (possible only with checksums disabled, or a version skew).
    Malformed(&'static str),
    /// The server is shutting down and no longer accepts work.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Flash(e) => write!(f, "{e}"),
            ServeError::UnknownModel(id) => write!(f, "unknown model id {id}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            ServeError::SessionFailed(id) => write!(f, "session {id} failed earlier"),
            ServeError::Refused { req_id, reason } => {
                write!(f, "request {req_id} refused: {reason}")
            }
            ServeError::Malformed(what) => write!(f, "malformed serve message: {what}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for ServeError {
    fn from(e: FlashError) -> Self {
        ServeError::Flash(e)
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Flash(FlashError::Protocol(e))
    }
}

impl From<flash_he::serialize::WireError> for ServeError {
    fn from(e: flash_he::serialize::WireError) -> Self {
        ServeError::Flash(FlashError::Wire(e))
    }
}

impl From<flash_he::HeError> for ServeError {
    fn from(e: flash_he::HeError) -> Self {
        ServeError::Flash(FlashError::He(e))
    }
}
