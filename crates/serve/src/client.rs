//! The client side of a serving session.
//!
//! A [`Client`] owns the session's secret key and the two
//! [`SharedTransport`] links. Request submission is split so callers
//! control what sits on the hot path: [`Client::prepare`] does the
//! client-local work (share split, encode, encrypt, serialize),
//! [`Client::dispatch`] puts the bytes on the wire and drives the
//! server's admission, and [`Client::collect`] drains one response
//! (decrypt + decode into the client's output share).

use crate::model::merge_band;
use crate::server::InferenceServer;
use crate::{wire, ServeError};
use flash_2pc::transport::TransportConfig;
use flash_2pc::{ShareRing, SharedTransport, Transport};
use flash_he::encoding::{ConvEncoder, ConvShape};
use flash_he::truncate::TruncatedCiphertext;
use flash_he::{serialize, HeParams, Poly, SecretKey};
use rand::Rng;
use std::time::Duration;

/// One encoded-and-encrypted request, ready to dispatch.
///
/// `server_share` is the server's additive share of the activation —
/// 2PC state that in a real deployment the server already holds; the
/// in-process driver hands it to [`InferenceServer::ingest`] alongside
/// the wire bytes.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    /// Client-chosen request id, echoed by the response.
    pub req_id: u64,
    /// The serialized REQUEST message.
    pub upload: Vec<u8>,
    /// The server's activation share (signed, `input_len`).
    pub server_share: Vec<i64>,
    /// The cleartext activation, kept so a refused request can be
    /// re-prepared ([`Client::retry_prepare`]) without the caller
    /// holding on to its inputs.
    pub activation: Vec<i64>,
}

/// A connected client session.
#[derive(Debug)]
pub struct Client {
    session_id: u32,
    sk: SecretKey,
    params: HeParams,
    encoder: ConvEncoder,
    ring: ShareRing,
    truncation: Option<(u32, u32)>,
    uplink: SharedTransport,
    downlink: SharedTransport,
}

impl Client {
    /// Opens a session against an in-process server: builds the two
    /// links from `cfg_up`/`cfg_down` (fault plans included — this is
    /// where chaos tests attach their per-session schedules), sends
    /// HELLO, drives [`InferenceServer::accept`], and verifies the
    /// negotiated parameters against the locally derived tiling.
    ///
    /// # Errors
    ///
    /// Wire failures during the handshake, [`ServeError::UnknownModel`],
    /// or [`ServeError::Malformed`] when the server's negotiated
    /// parameters disagree with the local plan.
    #[allow(clippy::too_many_arguments)]
    pub fn connect<R: Rng>(
        server: &InferenceServer,
        model_id: u64,
        client_tag: u64,
        params: HeParams,
        shape: ConvShape,
        cfg_up: TransportConfig,
        cfg_down: TransportConfig,
        recv_timeout: Duration,
        rng: &mut R,
    ) -> Result<Client, ServeError> {
        let uplink = SharedTransport::with_timeout(cfg_up, recv_timeout);
        let downlink = SharedTransport::with_timeout(cfg_down, recv_timeout);
        let sk = SecretKey::generate(&params, rng);
        let encoder = ConvEncoder::new(shape, params.n);
        let l = params.t.trailing_zeros();
        assert!(params.t.is_power_of_two() && l >= 2, "t must be 2^l");

        uplink
            .clone()
            .send(&wire::encode_hello(model_id, client_tag))?;
        server.accept(uplink.clone(), downlink.clone())?;
        let ack = wire::decode_ack(&downlink.clone().recv()?)?;
        if ack.n as usize != params.n
            || ack.t != params.t
            || ack.c_polys as usize != encoder.activation_polys()
            || ack.m as usize != shape.m
            || ack.bands as usize != encoder.bands()
        {
            return Err(ServeError::Malformed("negotiated parameters"));
        }
        Ok(Client {
            session_id: ack.session_id,
            sk,
            params,
            encoder,
            ring: ShareRing::new(l),
            truncation: ack.truncation,
            uplink,
            downlink,
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u32 {
        self.session_id
    }

    /// The share ring `Z_{2^l}`.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// Client-local request construction: splits the cleartext
    /// activation into shares, encodes and encrypts the client share,
    /// and serializes the REQUEST message. No wire traffic.
    pub fn prepare<R: Rng>(&self, req_id: u64, x: &[i64], rng: &mut R) -> PreparedRequest {
        assert_eq!(
            x.len(),
            self.encoder.shape().input_len(),
            "activation size mismatch"
        );
        let (x_client, x_server) = self.ring.share_vec(x, rng);
        let xc_signed: Vec<i64> = x_client.iter().map(|&v| v as i64).collect();
        let blobs: Vec<Vec<u8>> = self
            .encoder
            .encode_activation(&xc_signed)
            .iter()
            .map(|tile| {
                let m = Poly::from_signed(tile, self.params.t);
                serialize::ciphertext_to_bytes(&self.sk.encrypt(&m, rng))
            })
            .collect();
        PreparedRequest {
            req_id,
            upload: wire::encode_request(req_id, &blobs),
            server_share: x_server.iter().map(|&v| v as i64).collect(),
            activation: x.to_vec(),
        }
    }

    /// Re-prepares a refused (or otherwise terminally failed) request
    /// for resubmission under the same `req_id`: a fresh share split and
    /// fresh encryption randomness, so the retry leaks nothing about the
    /// first attempt — and, because the server derives its response
    /// masks from `(session, req_id, unit)` seeds, the resubmission is
    /// answered exactly as the original would have been.
    pub fn retry_prepare<R: Rng>(&self, prev: &PreparedRequest, rng: &mut R) -> PreparedRequest {
        self.prepare(prev.req_id, &prev.activation, rng)
    }

    /// Puts a prepared request on the uplink and drives the server's
    /// admission. Blocks under backpressure (session window or global
    /// queue). `&mut self` serializes submissions per session — the
    /// uplink is positional, so one session's requests must enter in
    /// order.
    ///
    /// # Errors
    ///
    /// Admission failures from [`InferenceServer::ingest`]; wire faults
    /// on the uplink surface here (and poison this session only).
    pub fn dispatch(
        &mut self,
        server: &InferenceServer,
        prepared: &PreparedRequest,
    ) -> Result<(), ServeError> {
        self.uplink.clone().send(&prepared.upload)?;
        server.ingest(self.session_id, prepared.req_id, &prepared.server_share)
    }

    /// Drains one response from the downlink: deserializes (undoing the
    /// agreed truncation), decrypts, and decodes the client's output
    /// share.
    ///
    /// Responses of pipelined requests arrive in server completion
    /// order; the returned request id says which one this is.
    ///
    /// # Errors
    ///
    /// Wire faults on the downlink, [`ServeError::Refused`] carrying the
    /// typed [`wire::RefusalReason`] when the server refused the
    /// request, or scheme-level failures during decryption.
    pub fn collect(&mut self) -> Result<(u64, Vec<u64>), ServeError> {
        let msg = self.downlink.clone().recv()?;
        let (req_id, blobs) = match wire::decode_response(&msg)? {
            wire::Response::Ok { req_id, blobs } => (req_id, blobs),
            wire::Response::Refused { req_id, reason } => {
                return Err(ServeError::Refused { req_id, reason })
            }
        };
        let p = &self.params;
        let shape = *self.encoder.shape();
        let bands = self.encoder.bands();
        if blobs.len() != shape.m * bands {
            return Err(ServeError::Malformed("response ciphertext count"));
        }
        let out_len = shape.output_len();
        let mut y_client = vec![0u64; out_len];
        let mut band_vals = vec![0i64; out_len];
        for (u, bytes) in blobs.iter().enumerate() {
            let (oc, b) = (u / bands, u % bands);
            let ct = match self.truncation {
                None => {
                    let ct = serialize::ciphertext_from_bytes(bytes, p.n, p.q)?;
                    ct.validate_for(p)?;
                    ct
                }
                Some((d0, d1)) => TruncatedCiphertext::from_bytes(bytes, d0, d1, p)?.reconstruct(p),
            };
            let m = self.sk.try_decrypt(&ct)?;
            let coeffs: Vec<i64> = m.coeffs().iter().map(|&v| v as i64).collect();
            band_vals.iter_mut().for_each(|v| *v = 0);
            self.encoder.decode_band(&coeffs, b, oc, &mut band_vals);
            merge_band(&self.encoder, &band_vals, b, oc, &mut y_client);
        }
        Ok((req_id, y_client))
    }
}
