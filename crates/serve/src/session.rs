//! Per-session server-side state.

use crate::model::ModelPlan;
use flash_2pc::SharedTransport;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One connected client session.
///
/// The transports are [`SharedTransport`] handles: the submission path
/// receives requests on `uplink` while workers answer on `downlink`,
/// possibly from different threads per request. `failed` poisons the
/// session after an unrecoverable wire fault — the frame layer is
/// positional, so once recovery is exhausted mid-stream every later
/// message on that link is suspect, and the session fails fast instead
/// of serving corrupt state. Other sessions' links are independent
/// objects and never observe the failure.
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) id: u32,
    pub(crate) client_tag: u64,
    pub(crate) model: Arc<ModelPlan>,
    pub(crate) uplink: SharedTransport,
    pub(crate) downlink: SharedTransport,
    failed: AtomicBool,
    /// In-flight request window: submissions block once `cap` requests
    /// of this session are queued or executing (per-session
    /// backpressure, independent of the global queue bound).
    in_flight: Mutex<usize>,
    drained: Condvar,
    cap: usize,
    pub(crate) requests_ok: AtomicU64,
    pub(crate) requests_failed: AtomicU64,
}

impl SessionState {
    pub(crate) fn new(
        id: u32,
        client_tag: u64,
        model: Arc<ModelPlan>,
        uplink: SharedTransport,
        downlink: SharedTransport,
        cap: usize,
    ) -> Self {
        SessionState {
            id,
            client_tag,
            model,
            uplink,
            downlink,
            failed: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            cap: cap.max(1),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
        }
    }

    /// Blocks until the session's in-flight window has room, then takes
    /// a slot. Returns `false` if the session failed while waiting.
    pub(crate) fn acquire(&self) -> bool {
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        while *n >= self.cap && !self.is_failed() {
            n = self.drained.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        if self.is_failed() {
            return false;
        }
        *n += 1;
        true
    }

    /// Releases one in-flight slot.
    pub(crate) fn release(&self) {
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        self.drained.notify_all();
    }

    /// Poisons the session and wakes any submission blocked on its
    /// window.
    pub(crate) fn mark_failed(&self) {
        self.failed.store(true, Ordering::Release);
        self.drained.notify_all();
    }

    pub(crate) fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

/// Externally visible accounting of one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Server-assigned session id.
    pub session_id: u32,
    /// The opaque tag the client sent in its HELLO.
    pub client_tag: u64,
    /// The model the session serves.
    pub model_id: u64,
    /// Requests answered.
    pub requests_ok: u64,
    /// Requests that failed (wire, decode, or compute).
    pub requests_failed: u64,
    /// Whether the session is poisoned.
    pub failed: bool,
    /// Payload bytes received on the uplink.
    pub upload_bytes: u64,
    /// Payload bytes sent on the downlink.
    pub download_bytes: u64,
    /// Faulted frames detected across both links.
    pub faults_detected: u64,
    /// Retransmissions requested across both links.
    pub frames_retried: u64,
}

impl SessionState {
    pub(crate) fn snapshot(&self) -> SessionSnapshot {
        use flash_2pc::Transport;
        let up = self.uplink.stats();
        let down = self.downlink.stats();
        SessionSnapshot {
            session_id: self.id,
            client_tag: self.client_tag,
            model_id: self.model.id(),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            failed: self.is_failed(),
            upload_bytes: up.payload_bytes,
            download_bytes: down.payload_bytes,
            faults_detected: up.faults_detected + down.faults_detected,
            frames_retried: up.frames_retried + down.frames_retried,
        }
    }
}
