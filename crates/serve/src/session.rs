//! Per-session server-side state.

use crate::model::ModelPlan;
use flash_2pc::SharedTransport;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Admission priority of a session under load shedding.
///
/// When the global queue crosses its shed watermark, `Normal` requests
/// are refused ([`crate::wire::RefusalReason::Shed`]) while `High`
/// requests fall back to blocking backpressure — they wait for a slot
/// instead of being turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Shed under overload (the default).
    #[default]
    Normal,
    /// Never shed; block for a queue slot instead.
    High,
}

/// The session health state machine driven by the error-rate circuit
/// breaker: `Healthy → Degraded → Quarantined`.
///
/// Outcomes that are the *session's* fault (invalid requests, poisoned
/// compute) strike a sliding window; crossing `degrade_after` failures
/// in the window degrades the session (it sheds earlier under load),
/// crossing `quarantine_after` quarantines it — every later request is
/// refused without burning worker time. Quarantine is sticky: the
/// breaker never half-opens, because the positional wire format gives a
/// chronically faulty client no way to resynchronize mid-session.
/// Server-side refusals (shed, expired, shutdown) never strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionHealth {
    /// Serving normally.
    Healthy,
    /// Error rate elevated: sheds at half the normal watermark.
    Degraded,
    /// Circuit open: all requests refused, sticky.
    Quarantined,
}

/// Sliding-window outcome history: one bit per request, newest at bit 0.
#[derive(Debug)]
struct HealthWindow {
    /// Outcome bits, 1 = failure.
    bits: u64,
    /// Requests recorded (saturates at the window size).
    len: u32,
}

/// One connected client session.
///
/// The transports are [`SharedTransport`] handles: the submission path
/// receives requests on `uplink` while workers answer on `downlink`,
/// possibly from different threads per request. `failed` poisons the
/// session after an unrecoverable wire fault — the frame layer is
/// positional, so once recovery is exhausted mid-stream every later
/// message on that link is suspect, and the session fails fast instead
/// of serving corrupt state. Other sessions' links are independent
/// objects and never observe the failure.
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) id: u32,
    pub(crate) client_tag: u64,
    pub(crate) model: Arc<ModelPlan>,
    pub(crate) uplink: SharedTransport,
    pub(crate) downlink: SharedTransport,
    failed: AtomicBool,
    /// In-flight request window: submissions block once `cap` requests
    /// of this session are queued or executing (per-session
    /// backpressure, independent of the global queue bound).
    in_flight: Mutex<usize>,
    drained: Condvar,
    cap: usize,
    pub(crate) requests_ok: AtomicU64,
    pub(crate) requests_failed: AtomicU64,
    /// Requests answered with a typed REFUSED frame.
    pub(crate) requests_refused: AtomicU64,
    /// Admission priority under load shedding ([`Priority`] as u8).
    priority: AtomicU8,
    /// Circuit-breaker window; thresholds fixed at session creation
    /// from the server's [`crate::server::ResiliencePolicy`].
    health: Mutex<HealthWindow>,
    quarantined: AtomicBool,
    health_window: u32,
    degrade_after: u32,
    quarantine_after: u32,
}

impl SessionState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u32,
        client_tag: u64,
        model: Arc<ModelPlan>,
        uplink: SharedTransport,
        downlink: SharedTransport,
        cap: usize,
        health_window: u32,
        degrade_after: u32,
        quarantine_after: u32,
    ) -> Self {
        SessionState {
            id,
            client_tag,
            model,
            uplink,
            downlink,
            failed: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            cap: cap.max(1),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            requests_refused: AtomicU64::new(0),
            priority: AtomicU8::new(0),
            health: Mutex::new(HealthWindow { bits: 0, len: 0 }),
            quarantined: AtomicBool::new(false),
            health_window: health_window.clamp(1, 64),
            degrade_after: degrade_after.max(1),
            quarantine_after: quarantine_after.max(1),
        }
    }

    pub(crate) fn priority(&self) -> Priority {
        if self.priority.load(Ordering::Relaxed) == 1 {
            Priority::High
        } else {
            Priority::Normal
        }
    }

    pub(crate) fn set_priority(&self, p: Priority) {
        self.priority
            .store(matches!(p, Priority::High) as u8, Ordering::Relaxed);
    }

    /// Records one outcome the session is accountable for (`ok` = the
    /// request was answered; `!ok` = invalid request or poisoned
    /// compute) and advances the circuit breaker. Shed/expired/shutdown
    /// refusals are the server's condition, not the session's, and must
    /// not be recorded here.
    pub(crate) fn record_outcome(&self, ok: bool) {
        let mut w = self.health.lock().unwrap_or_else(|e| e.into_inner());
        w.bits = (w.bits << 1) | (!ok as u64);
        if self.health_window < 64 {
            w.bits &= (1u64 << self.health_window) - 1;
        }
        w.len = (w.len + 1).min(self.health_window);
        let fails = w.bits.count_ones();
        drop(w);
        if fails >= self.quarantine_after {
            self.quarantined.store(true, Ordering::Release);
        }
    }

    /// Forces the circuit open (unrecoverable wire fault, shutdown of a
    /// chronically faulty peer).
    pub(crate) fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Release);
    }

    /// The breaker's current verdict.
    pub(crate) fn health(&self) -> SessionHealth {
        if self.quarantined.load(Ordering::Acquire) {
            return SessionHealth::Quarantined;
        }
        let fails = self
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .bits
            .count_ones();
        if fails >= self.degrade_after {
            SessionHealth::Degraded
        } else {
            SessionHealth::Healthy
        }
    }

    /// Blocks until the session's in-flight window has room, then takes
    /// a slot. Returns `false` if the session failed while waiting.
    pub(crate) fn acquire(&self) -> bool {
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        while *n >= self.cap && !self.is_failed() {
            n = self.drained.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        if self.is_failed() {
            return false;
        }
        *n += 1;
        true
    }

    /// Releases one in-flight slot.
    pub(crate) fn release(&self) {
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        self.drained.notify_all();
    }

    /// Poisons the session and wakes any submission blocked on its
    /// window.
    pub(crate) fn mark_failed(&self) {
        self.failed.store(true, Ordering::Release);
        self.drained.notify_all();
    }

    pub(crate) fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

/// Externally visible accounting of one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Server-assigned session id.
    pub session_id: u32,
    /// The opaque tag the client sent in its HELLO.
    pub client_tag: u64,
    /// The model the session serves.
    pub model_id: u64,
    /// Requests answered.
    pub requests_ok: u64,
    /// Requests that failed (wire, decode, or compute).
    pub requests_failed: u64,
    /// Requests answered with a typed REFUSED frame.
    pub requests_refused: u64,
    /// Whether the session is poisoned.
    pub failed: bool,
    /// The circuit breaker's verdict at snapshot time.
    pub health: SessionHealth,
    /// Payload bytes received on the uplink.
    pub upload_bytes: u64,
    /// Payload bytes sent on the downlink.
    pub download_bytes: u64,
    /// Faulted frames detected across both links.
    pub faults_detected: u64,
    /// Retransmissions requested across both links.
    pub frames_retried: u64,
}

impl SessionState {
    pub(crate) fn snapshot(&self) -> SessionSnapshot {
        use flash_2pc::Transport;
        let up = self.uplink.stats();
        let down = self.downlink.stats();
        SessionSnapshot {
            session_id: self.id,
            client_tag: self.client_tag,
            model_id: self.model.id(),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            requests_refused: self.requests_refused.load(Ordering::Relaxed),
            failed: self.is_failed(),
            health: self.health(),
            upload_bytes: up.payload_bytes,
            download_bytes: down.payload_bytes,
            faults_detected: up.faults_detected + down.faults_detected,
            frames_retried: up.frames_retried + down.frames_retried,
        }
    }
}
