//! Registered models and their amortized per-model plans.
//!
//! A [`ModelSpec`] is what an operator registers: parameters, layer
//! shape, backend, plaintext weights, and the protocol knobs of
//! [`flash_2pc::ConvProtocol`]. Registration compiles it into a
//! [`ModelPlan`] — everything the per-request server path of the 2PC
//! protocol derives from the *weights only* is hoisted here and shared
//! by every session and request against the model:
//!
//! * the tiling plan ([`ConvEncoder`]) and encoded weight polynomials,
//! * the per-`(oc, band)` noise-guard verdict
//!   ([`flash_2pc::conv_band_noise_bound`]): models whose exact-path
//!   bound overflows the decryption ceiling are refused at registration,
//!   and approximate-backend units too close to the ceiling are marked
//!   for the exact fallback once instead of re-deciding per request,
//! * the forward weight transforms themselves — each unit's per-group
//!   spectra (via the interned sparse tape when worthwhile, the dense
//!   batched kernels otherwise), computed once and MAC-ed against every
//!   request's activation spectra thereafter.

use crate::ServeError;
use flash_2pc::shares::ShareRing;
use flash_2pc::{conv_band_noise_bound, conv_band_plan};
use flash_he::backend::{weight_residue_shoups, WeightShoups};
use flash_he::encoding::{ConvEncoder, ConvShape};
use flash_he::{HeParams, PolyMulBackend};
use flash_math::C64;

/// A model as registered by the operator.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Operator-chosen identifier clients name in their HELLO.
    pub id: u64,
    /// BFV parameters (`t` must be `2^l`, the share ring).
    pub params: HeParams,
    /// The (pre-padded, stride-1) convolution layer.
    pub shape: ConvShape,
    /// Polynomial-multiplication backend.
    pub backend: PolyMulBackend,
    /// Full `m×c×k×k` kernel, row-major.
    pub weights: Vec<i64>,
    /// Response truncation `(d0, d1)`, if enabled.
    pub truncation: Option<(u32, u32)>,
    /// Route weight transforms through compiled sparse tapes when
    /// worthwhile (on by default).
    pub sparse_weights: bool,
    /// Noise-guard margin (fraction of the decryption ceiling).
    pub noise_margin: f64,
}

impl ModelSpec {
    /// A model with default protocol knobs (sparse weights on, no
    /// truncation, [`flash_runtime::noise_margin`]).
    pub fn new(
        id: u64,
        params: HeParams,
        shape: ConvShape,
        backend: PolyMulBackend,
        weights: Vec<i64>,
    ) -> Self {
        ModelSpec {
            id,
            params,
            shape,
            backend,
            weights,
            truncation: None,
            sparse_weights: true,
            noise_margin: flash_runtime::noise_margin(),
        }
    }

    /// Enables response truncation (see
    /// [`flash_2pc::ConvProtocol::with_truncation`]).
    pub fn with_truncation(mut self, d0: u32, d1: u32) -> Self {
        self.truncation = Some((d0, d1));
        self
    }

    /// Enables or disables the compiled sparse weight-transform path.
    pub fn with_sparse_weights(mut self, enabled: bool) -> Self {
        self.sparse_weights = enabled;
        self
    }

    /// Overrides the noise-guard margin.
    pub fn with_noise_margin(mut self, margin: f64) -> Self {
        self.noise_margin = margin;
        self
    }
}

/// One `(oc, band)` unit's precomputed weight transform.
#[derive(Debug, Clone)]
pub(crate) enum UnitWeights {
    /// FFT-family spectra, `groups × N/2` concatenated.
    Fft(Vec<C64>),
    /// Exact-NTT residues, `groups × N` concatenated, with the Shoup
    /// constant of every coefficient precomputed at registration in
    /// split residue/constant streams — the request-path MAC then costs
    /// two multiplies per coefficient instead of a widening remainder,
    /// and the split layout feeds the vectorizer contiguous full-width
    /// loads.
    Ntt(WeightShoups),
    /// Noise guard demands the exact coefficient-domain fallback; the
    /// request path multiplies against the stored weight polynomials.
    Fallback,
}

/// A registered model compiled for serving.
#[derive(Debug)]
pub struct ModelPlan {
    pub(crate) spec: ModelSpec,
    pub(crate) encoder: ConvEncoder,
    pub(crate) ring: ShareRing,
    /// Per-unit transforms, `m × bands` in unit order `oc·bands + b`.
    pub(crate) units: Vec<UnitWeights>,
    /// Encoded weight polynomials per output channel
    /// (`m × groups × bands × N`) — the fallback units' inputs.
    pub(crate) w_polys: Vec<Vec<Vec<Vec<i64>>>>,
    sparse_units: usize,
    fallback_units: usize,
}

impl ModelPlan {
    /// Compiles a registered model: encodes the weights, runs the noise
    /// guard per unit, and precomputes every unit's weight transform.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flash`] wrapping
    /// [`flash_he::HeError::NoiseOverflow`] when some unit's exact-path
    /// bound overflows the decryption ceiling — the model cannot be
    /// served at these parameters, refused here instead of per request.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not `2^l` with `l ≥ 2`, or on weight-size
    /// mismatches with the shape (operator-side contract violations).
    pub fn build(spec: ModelSpec) -> Result<ModelPlan, ServeError> {
        let p = &spec.params;
        let l = p.t.trailing_zeros();
        assert!(p.t.is_power_of_two() && l >= 2, "t must be 2^l");
        match spec.backend {
            PolyMulBackend::Pow2 => assert!(
                p.is_pow2(),
                "Pow2 backend requires a power-of-two ciphertext modulus"
            ),
            PolyMulBackend::Ntt => assert!(
                !p.is_pow2(),
                "exact NTT backend requires a prime ciphertext modulus"
            ),
            _ => {}
        }
        let shape = spec.shape;
        assert_eq!(
            spec.weights.len(),
            shape.m * shape.kernel_len(),
            "weight size mismatch"
        );
        let encoder = ConvEncoder::new(shape, p.n);
        let bands = encoder.bands();
        let m_half = p.n / 2;
        let is_ntt = matches!(spec.backend, PolyMulBackend::Ntt);

        // Band plans are structural — every output channel of a band
        // shares one interned tape.
        let band_plans: Vec<_> = (0..bands)
            .map(|b| {
                if !spec.sparse_weights || is_ntt {
                    return None;
                }
                let plan = conv_band_plan(&encoder, p.n, b);
                plan.worthwhile().then_some(plan)
            })
            .collect();

        let mut units = Vec::with_capacity(shape.m * bands);
        let mut w_polys = Vec::with_capacity(shape.m);
        let mut sparse_units = 0;
        let mut fallback_units = 0;
        for oc in 0..shape.m {
            let oc_polys = encoder.encode_weight(
                &spec.weights[oc * shape.kernel_len()..][..shape.kernel_len()],
                oc,
            );
            let groups = oc_polys.len();
            for b in 0..bands {
                let (noise, w_sq) = conv_band_noise_bound(p, &oc_polys, b, spec.truncation);
                noise.check()?;
                let fallback = match spec.backend.error_model(p) {
                    Some(model) => {
                        let err = model.phase_error_bound(p, w_sq, groups);
                        noise.bound() + err >= spec.noise_margin * noise.ceiling()
                    }
                    None => false,
                };
                if fallback {
                    fallback_units += 1;
                    units.push(UnitWeights::Fallback);
                    continue;
                }
                let ws: Vec<&[i64]> = oc_polys.iter().map(|wp| wp[b].as_slice()).collect();
                if is_ntt {
                    // The batched request path accumulates one lazy
                    // (unreduced, < 2q) Shoup product per group before
                    // its single Barrett drain, so the group count must
                    // fit the u64 headroom ⌊(2^64−1)/2q⌋. Unreachable
                    // for any practical q, but a violation would be a
                    // silent-wraparound correctness bug, so such a unit
                    // is pinned to the exact coefficient fallback.
                    if groups as u128 * 2 * p.q as u128 > u64::MAX as u128 {
                        fallback_units += 1;
                        units.push(UnitWeights::Fallback);
                        continue;
                    }
                    units.push(UnitWeights::Ntt(weight_residue_shoups(&ws, p.ntt())));
                } else {
                    let mut fw = vec![C64::ZERO; groups * m_half];
                    match &band_plans[b] {
                        Some(plan) => {
                            plan.execute_batch_into(ws.iter().copied(), &mut fw);
                            sparse_units += 1;
                        }
                        None => spec.backend.weight_spectra_into(&ws, &mut fw, p.fft()),
                    }
                    units.push(UnitWeights::Fft(fw));
                }
            }
            w_polys.push(oc_polys);
        }
        Ok(ModelPlan {
            encoder,
            ring: ShareRing::new(l),
            units,
            w_polys,
            sparse_units,
            fallback_units,
            spec,
        })
    }

    /// The registered identifier.
    pub fn id(&self) -> u64 {
        self.spec.id
    }

    /// The BFV parameters.
    pub fn params(&self) -> &HeParams {
        &self.spec.params
    }

    /// The layer shape.
    pub fn shape(&self) -> &ConvShape {
        &self.spec.shape
    }

    /// The tiling plan.
    pub fn encoder(&self) -> &ConvEncoder {
        &self.encoder
    }

    /// The share ring `Z_{2^l}`.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// The agreed response truncation.
    pub fn truncation(&self) -> Option<(u32, u32)> {
        self.spec.truncation
    }

    /// Ciphertexts per request upload (`groups × bands`).
    pub fn c_polys(&self) -> usize {
        self.encoder.activation_polys()
    }

    /// Result ciphertexts per request (`m × bands`).
    pub fn result_polys(&self) -> usize {
        self.units.len()
    }

    /// Units whose weight transform compiled to a sparse tape.
    pub fn sparse_units(&self) -> usize {
        self.sparse_units
    }

    /// Units the noise guard pinned to the exact fallback.
    pub fn fallback_units(&self) -> usize {
        self.fallback_units
    }
}

/// `splitmix64` finalizer: a full-avalanche 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The output-mask seed of one `(session, request, unit)` triple.
///
/// [`ConvProtocol`](flash_2pc::ConvProtocol) draws its mask seeds from
/// the run's RNG stream; a server multiplexing many sessions cannot — the
/// draw order would depend on batch composition and worker scheduling.
/// Deriving each seed from the coordinates instead makes every mask
/// independent of ordering, so batched and serial execution produce
/// bit-identical shares for any worker count.
pub fn mask_seed(server_seed: u64, session_id: u32, req_id: u64, unit: usize) -> u64 {
    let mut h = mix64(server_seed ^ 0x464C_4153_4856_3031); // "FLASHV01"
    h = mix64(h ^ u64::from(session_id));
    h = mix64(h ^ req_id);
    mix64(h ^ unit as u64)
}

/// Expands one mask seed into `n` output-share coefficients mod `t`.
///
/// A splitmix64 counter stream mapped into `[0, t)` with Lemire's
/// multiply-shift: two multiplies per coefficient, versus keying a full
/// `StdRng` per unit — which showed up as a measurable slice of every
/// response in the serving profile. Like [`mask_seed`], the expansion is
/// a pure function of its inputs, so batched and serial datapaths (and
/// any worker count) draw bit-identical masks. The multiply-shift range
/// map has bias ≤ `t / 2^64` — below `2^-47` for every supported
/// plaintext modulus, immaterial for the share-hiding role the masks
/// play in this reproduction.
pub(crate) fn mask_coeffs(seed: u64, n: usize, t: u64) -> Vec<u64> {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    (1..=n as u64)
        .map(|i| {
            let z = mix64(seed.wrapping_add(i.wrapping_mul(GOLDEN)));
            ((z as u128 * t as u128) >> 64) as u64
        })
        .collect()
}

/// Copies one decoded band (only its own output rows) into an
/// accumulated share tensor — the serving-side twin of the protocol's
/// band merge.
pub(crate) fn merge_band(
    encoder: &ConvEncoder,
    band_vals: &[i64],
    b: usize,
    oc: usize,
    out: &mut [u64],
) {
    let shape = encoder.shape();
    let spec = encoder.band_spec(b);
    for pp in 0..spec.rows_out {
        for q in 0..shape.out_w() {
            let idx = (oc * shape.out_h() + spec.out_row0 + pp) * shape.out_w() + q;
            out[idx] = band_vals[idx] as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec(backend: PolyMulBackend) -> ModelSpec {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let weights: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| ((i as i64 * 3) % 15) - 7)
            .collect();
        ModelSpec::new(1, HeParams::test_256(), shape, backend, weights)
    }

    #[test]
    fn plan_precomputes_every_unit() {
        let plan = ModelPlan::build(toy_spec(PolyMulBackend::FftF64)).unwrap();
        assert_eq!(plan.units.len(), plan.result_polys());
        assert!(plan.sparse_units() > 0, "toy layer patterns are sparse");
        assert_eq!(plan.fallback_units(), 0);
        assert!(plan
            .units
            .iter()
            .all(|u| matches!(u, UnitWeights::Fft(s) if !s.is_empty())));
    }

    #[test]
    fn ntt_plan_stores_residues() {
        let plan = ModelPlan::build(toy_spec(PolyMulBackend::Ntt)).unwrap();
        assert_eq!(plan.sparse_units(), 0);
        assert!(plan.units.iter().all(|u| matches!(u, UnitWeights::Ntt(r)
                if !r.w.is_empty() && r.shoup.len() == r.w.len())));
    }

    fn toy_spec_pow2() -> ModelSpec {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let weights: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| ((i as i64 * 3) % 15) - 7)
            .collect();
        ModelSpec::new(
            2,
            HeParams::pow2_test_256(),
            shape,
            PolyMulBackend::Pow2,
            weights,
        )
    }

    #[test]
    fn pow2_plan_precomputes_spectral_units() {
        // At the default margin the error model clears the 2^62 ceiling
        // easily, so every unit stays on the precomputed spectral path
        // (with sparse tapes where worthwhile) — no per-unit fallbacks.
        let plan = ModelPlan::build(toy_spec_pow2()).unwrap();
        assert_eq!(plan.units.len(), plan.result_polys());
        assert!(plan.sparse_units() > 0);
        assert_eq!(plan.fallback_units(), 0);
        assert!(plan
            .units
            .iter()
            .all(|u| matches!(u, UnitWeights::Fft(s) if !s.is_empty())));
    }

    #[test]
    fn pow2_zero_margin_pins_every_unit_to_fallback() {
        let plan = ModelPlan::build(toy_spec_pow2().with_noise_margin(0.0)).unwrap();
        assert_eq!(plan.fallback_units(), plan.result_polys());
    }

    #[test]
    #[should_panic(expected = "power-of-two ciphertext modulus")]
    fn pow2_backend_rejects_prime_ring_at_registration() {
        let _ = ModelPlan::build(toy_spec(PolyMulBackend::Pow2));
    }

    #[test]
    fn zero_margin_pins_every_approx_unit_to_fallback() {
        let params = HeParams::test_256();
        let mut cfg = flash_fft::ApproxFftConfig::uniform(
            params.n,
            flash_math::fixed::FxpFormat::new(18, 34),
            30,
        );
        cfg.max_shift = 30;
        let spec = toy_spec(PolyMulBackend::approx(cfg)).with_noise_margin(0.0);
        let plan = ModelPlan::build(spec).unwrap();
        assert_eq!(plan.fallback_units(), plan.result_polys());
    }

    #[test]
    fn unsafe_truncation_is_refused_at_registration() {
        let spec = toy_spec(PolyMulBackend::Ntt).with_truncation(30, 25);
        let err = ModelPlan::build(spec).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Flash(flash_2pc::error::FlashError::He(
                flash_he::HeError::NoiseOverflow { .. }
            ))
        ));
    }

    #[test]
    fn mask_expansion_is_deterministic_and_in_range() {
        for t in [2u64, 1 << 13, 1 << 16, (1 << 36) - 5] {
            let a = mask_coeffs(0xDEAD_BEEF, 257, t);
            assert_eq!(a, mask_coeffs(0xDEAD_BEEF, 257, t));
            assert!(a.iter().all(|&v| v < t), "mask out of range for t={t}");
            assert_ne!(a, mask_coeffs(0xDEAD_BEF0, 257, t), "seed separation");
        }
        // Masks should look like draws, not a constant: over 257 draws
        // from [0, 2^13) a repeated value is plausible, a single value
        // for all coefficients is not.
        let a = mask_coeffs(7, 257, 1 << 13);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn mask_seeds_are_coordinate_separated() {
        let a = mask_seed(1, 2, 3, 4);
        assert_eq!(a, mask_seed(1, 2, 3, 4));
        assert_ne!(a, mask_seed(2, 2, 3, 4));
        assert_ne!(a, mask_seed(1, 3, 3, 4));
        assert_ne!(a, mask_seed(1, 2, 4, 4));
        assert_ne!(a, mask_seed(1, 2, 3, 5));
        // swapping coordinates must not collide
        assert_ne!(mask_seed(1, 2, 3, 4), mask_seed(1, 3, 2, 4));
    }
}
