//! Serving-layer message formats, one message per transport frame.
//!
//! Every message is little-endian and rides inside one frame of the
//! 2PC transport, so the frame layer's checksums/retransmissions cover
//! the whole message and a request's ciphertexts cannot be torn across
//! independently-faulted frames.
//!
//! | tag  | message | layout |
//! |------|---------|--------|
//! | 0x01 | HELLO    | `model_id u64, client_tag u64` |
//! | 0x02 | ACK      | `session_id u32, n u32, t u64, c_polys u32, m u32, bands u32, trunc u8 [, d0 u32, d1 u32]` |
//! | 0x03 | REQUEST  | `req_id u64, count u32, count × (len u32, ciphertext bytes)` |
//! | 0x04 | RESPONSE | `req_id u64, count u32, count × (len u32, ciphertext bytes)` — unit order `oc·bands + b` |
//! | 0x05 | REFUSED  | `req_id u64, code u8, len u32, utf-8 detail` |

use crate::ServeError;
use std::fmt;

/// Session-open request, client → server.
pub const TAG_HELLO: u8 = 0x01;
/// Negotiated session parameters, server → client.
pub const TAG_ACK: u8 = 0x02;
/// One inference request (all uploaded ciphertexts), client → server.
pub const TAG_REQUEST: u8 = 0x03;
/// One inference response (all result ciphertexts), server → client.
pub const TAG_RESPONSE: u8 = 0x04;
/// Typed per-request refusal, server → client.
pub const TAG_REFUSED: u8 = 0x05;

/// The parameter echo of a session handshake: everything the client must
/// agree on before requests flow. A mismatch on any field is a planning
/// bug (client and server derived different tilings), surfaced typed at
/// connect time instead of as garbage ciphertext counts mid-session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAck {
    /// Server-assigned session id.
    pub session_id: u32,
    /// Ring degree `N`.
    pub n: u32,
    /// Plaintext/share modulus `t`.
    pub t: u64,
    /// Ciphertexts per request (`groups × bands`).
    pub c_polys: u32,
    /// Output channels.
    pub m: u32,
    /// Row bands per channel.
    pub bands: u32,
    /// Response truncation `(d0, d1)`, if the model compresses downloads.
    pub truncation: Option<(u32, u32)>,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ServeError::Malformed(what))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ServeError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    fn finish(self, what: &'static str) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Malformed(what))
        }
    }
}

fn expect_tag(r: &mut Reader<'_>, tag: u8, what: &'static str) -> Result<(), ServeError> {
    if r.u8(what)? == tag {
        Ok(())
    } else {
        Err(ServeError::Malformed(what))
    }
}

/// Encodes a HELLO. `client_tag` is an opaque client-chosen value echoed
/// into the server's session accounting (test fixtures use it to label
/// sessions independently of assignment order).
pub fn encode_hello(model_id: u64, client_tag: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.push(TAG_HELLO);
    out.extend_from_slice(&model_id.to_le_bytes());
    out.extend_from_slice(&client_tag.to_le_bytes());
    out
}

/// Decodes a HELLO into `(model_id, client_tag)`.
pub fn decode_hello(buf: &[u8]) -> Result<(u64, u64), ServeError> {
    let mut r = Reader::new(buf);
    expect_tag(&mut r, TAG_HELLO, "hello tag")?;
    let model_id = r.u64("hello model id")?;
    let client_tag = r.u64("hello client tag")?;
    r.finish("hello trailing bytes")?;
    Ok((model_id, client_tag))
}

/// Encodes a session ACK.
pub fn encode_ack(ack: &SessionAck) -> Vec<u8> {
    let mut out = Vec::with_capacity(34);
    out.push(TAG_ACK);
    out.extend_from_slice(&ack.session_id.to_le_bytes());
    out.extend_from_slice(&ack.n.to_le_bytes());
    out.extend_from_slice(&ack.t.to_le_bytes());
    out.extend_from_slice(&ack.c_polys.to_le_bytes());
    out.extend_from_slice(&ack.m.to_le_bytes());
    out.extend_from_slice(&ack.bands.to_le_bytes());
    match ack.truncation {
        None => out.push(0),
        Some((d0, d1)) => {
            out.push(1);
            out.extend_from_slice(&d0.to_le_bytes());
            out.extend_from_slice(&d1.to_le_bytes());
        }
    }
    out
}

/// Decodes a session ACK.
pub fn decode_ack(buf: &[u8]) -> Result<SessionAck, ServeError> {
    let mut r = Reader::new(buf);
    expect_tag(&mut r, TAG_ACK, "ack tag")?;
    let session_id = r.u32("ack session id")?;
    let n = r.u32("ack degree")?;
    let t = r.u64("ack plaintext modulus")?;
    let c_polys = r.u32("ack ciphertext count")?;
    let m = r.u32("ack channel count")?;
    let bands = r.u32("ack band count")?;
    let truncation = match r.u8("ack truncation flag")? {
        0 => None,
        1 => Some((r.u32("ack d0")?, r.u32("ack d1")?)),
        _ => return Err(ServeError::Malformed("ack truncation flag")),
    };
    r.finish("ack trailing bytes")?;
    Ok(SessionAck {
        session_id,
        n,
        t,
        c_polys,
        m,
        bands,
        truncation,
    })
}

fn encode_blob_list(tag: u8, req_id: u64, blobs: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = blobs.iter().map(|b| 4 + b.len()).sum();
    let mut out = Vec::with_capacity(13 + body);
    out.push(tag);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
    for blob in blobs {
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(blob);
    }
    out
}

fn decode_blob_list(
    buf: &[u8],
    tag: u8,
    what: &'static str,
) -> Result<(u64, Vec<Vec<u8>>), ServeError> {
    let mut r = Reader::new(buf);
    expect_tag(&mut r, tag, what)?;
    let req_id = r.u64(what)?;
    let count = r.u32(what)? as usize;
    // Each blob costs at least its length prefix; anything claiming more
    // blobs than remaining bytes is malformed, not an allocation request.
    if count > buf.len() {
        return Err(ServeError::Malformed(what));
    }
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32(what)? as usize;
        blobs.push(r.bytes(len, what)?.to_vec());
    }
    r.finish(what)?;
    Ok((req_id, blobs))
}

/// Encodes one inference request: the serialized upload ciphertexts in
/// tile order.
pub fn encode_request(req_id: u64, blobs: &[Vec<u8>]) -> Vec<u8> {
    encode_blob_list(TAG_REQUEST, req_id, blobs)
}

/// Decodes one inference request into `(req_id, ciphertext blobs)`.
pub fn decode_request(buf: &[u8]) -> Result<(u64, Vec<Vec<u8>>), ServeError> {
    decode_blob_list(buf, TAG_REQUEST, "request")
}

/// Zero-copy variant of [`decode_request`]: the returned blob slices
/// borrow the frame. The admission path deserializes straight out of
/// the received frame, so copying the payload into owned vectors first
/// would only add a frame-sized memcpy per request.
pub fn decode_request_borrowed(buf: &[u8]) -> Result<(u64, Vec<&[u8]>), ServeError> {
    let what = "request";
    let mut r = Reader::new(buf);
    expect_tag(&mut r, TAG_REQUEST, what)?;
    let req_id = r.u64(what)?;
    let count = r.u32(what)? as usize;
    if count > buf.len() {
        return Err(ServeError::Malformed(what));
    }
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32(what)? as usize;
        blobs.push(r.bytes(len, what)?);
    }
    r.finish(what)?;
    Ok((req_id, blobs))
}

/// Encodes one inference response: the serialized (possibly truncated)
/// result ciphertexts in unit order `oc·bands + b`.
pub fn encode_response(req_id: u64, blobs: &[Vec<u8>]) -> Vec<u8> {
    encode_blob_list(TAG_RESPONSE, req_id, blobs)
}

/// Why the server refused a request — the typed half of the
/// terminal-outcome contract (every admitted or refused request gets
/// exactly one RESPONSE xor one REFUSED frame).
///
/// The wire carries a one-byte code plus an optional UTF-8 detail
/// string; only [`RefusalReason::Invalid`] uses the detail (the
/// admission error's rendering), so policy code can match on the enum
/// without string comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefusalReason {
    /// The request's deadline expired before a worker reached it.
    Expired,
    /// Admission control shed the request under queue overload.
    Shed,
    /// The session is quarantined by its error-rate circuit breaker.
    Quarantined,
    /// Panic containment isolated this request; co-batched requests
    /// were unaffected.
    Poisoned,
    /// The server is draining for shutdown and admits no new work.
    Shutdown,
    /// The request failed admission validation (bad ciphertext count,
    /// undecodable blob, noise-budget overflow, …); the detail is the
    /// underlying error's rendering.
    Invalid(String),
}

impl RefusalReason {
    fn code(&self) -> u8 {
        match self {
            RefusalReason::Expired => 1,
            RefusalReason::Shed => 2,
            RefusalReason::Quarantined => 3,
            RefusalReason::Poisoned => 4,
            RefusalReason::Shutdown => 5,
            RefusalReason::Invalid(_) => 6,
        }
    }

    fn detail(&self) -> &str {
        match self {
            RefusalReason::Invalid(d) => d,
            _ => "",
        }
    }

    fn from_wire(code: u8, detail: String) -> Result<Self, ServeError> {
        Ok(match code {
            1 => RefusalReason::Expired,
            2 => RefusalReason::Shed,
            3 => RefusalReason::Quarantined,
            4 => RefusalReason::Poisoned,
            5 => RefusalReason::Shutdown,
            6 => RefusalReason::Invalid(detail),
            _ => return Err(ServeError::Malformed("refusal code")),
        })
    }
}

impl fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefusalReason::Expired => write!(f, "deadline expired before execution"),
            RefusalReason::Shed => write!(f, "shed under admission overload"),
            RefusalReason::Quarantined => write!(f, "session quarantined by circuit breaker"),
            RefusalReason::Poisoned => write!(f, "request poisoned the batch core"),
            RefusalReason::Shutdown => write!(f, "server draining for shutdown"),
            RefusalReason::Invalid(d) => write!(f, "invalid request: {d}"),
        }
    }
}

/// Encodes a typed refusal for one request.
pub fn encode_refusal(req_id: u64, reason: &RefusalReason) -> Vec<u8> {
    let detail = reason.detail();
    let mut out = Vec::with_capacity(14 + detail.len());
    out.push(TAG_REFUSED);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(reason.code());
    out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
    out.extend_from_slice(detail.as_bytes());
    out
}

/// A decoded server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Result ciphertext blobs in unit order.
    Ok {
        /// The request this response answers.
        req_id: u64,
        /// Serialized result ciphertexts, `m × bands` of them.
        blobs: Vec<Vec<u8>>,
    },
    /// The server refused this request.
    Refused {
        /// The refused request.
        req_id: u64,
        /// Typed server-side reason.
        reason: RefusalReason,
    },
}

/// Decodes a server → client message (response or refusal).
pub fn decode_response(buf: &[u8]) -> Result<Response, ServeError> {
    match buf.first() {
        Some(&TAG_RESPONSE) => {
            let (req_id, blobs) = decode_blob_list(buf, TAG_RESPONSE, "response")?;
            Ok(Response::Ok { req_id, blobs })
        }
        Some(&TAG_REFUSED) => {
            let mut r = Reader::new(buf);
            expect_tag(&mut r, TAG_REFUSED, "refusal tag")?;
            let req_id = r.u64("refusal request id")?;
            let code = r.u8("refusal code")?;
            let len = r.u32("refusal detail length")? as usize;
            let detail = String::from_utf8(r.bytes(len, "refusal detail")?.to_vec())
                .map_err(|_| ServeError::Malformed("refusal detail utf-8"))?;
            r.finish("refusal trailing bytes")?;
            Ok(Response::Refused {
                req_id,
                reason: RefusalReason::from_wire(code, detail)?,
            })
        }
        _ => Err(ServeError::Malformed("response tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let bytes = encode_hello(7, 0xDEAD_BEEF);
        assert_eq!(decode_hello(&bytes).unwrap(), (7, 0xDEAD_BEEF));
    }

    #[test]
    fn ack_roundtrip_with_and_without_truncation() {
        for truncation in [None, Some((8, 2))] {
            let ack = SessionAck {
                session_id: 3,
                n: 256,
                t: 1 << 16,
                c_polys: 4,
                m: 2,
                bands: 2,
                truncation,
            };
            assert_eq!(decode_ack(&encode_ack(&ack)).unwrap(), ack);
        }
    }

    #[test]
    fn request_and_response_roundtrip() {
        let blobs = vec![vec![1u8, 2, 3], vec![], vec![9u8; 40]];
        let req = encode_request(11, &blobs);
        assert_eq!(decode_request(&req).unwrap(), (11, blobs.clone()));
        let resp = encode_response(11, &blobs);
        assert_eq!(
            decode_response(&resp).unwrap(),
            Response::Ok { req_id: 11, blobs }
        );
    }

    #[test]
    fn refusal_roundtrip_every_reason() {
        for reason in [
            RefusalReason::Expired,
            RefusalReason::Shed,
            RefusalReason::Quarantined,
            RefusalReason::Poisoned,
            RefusalReason::Shutdown,
            RefusalReason::Invalid("noise overflow".into()),
        ] {
            let resp = decode_response(&encode_refusal(5, &reason)).unwrap();
            assert_eq!(resp, Response::Refused { req_id: 5, reason });
        }
    }

    #[test]
    fn forged_refusal_code_fails_typed() {
        let mut bytes = encode_refusal(5, &RefusalReason::Shed);
        bytes[9] = 0xEE;
        assert!(matches!(
            decode_response(&bytes),
            Err(ServeError::Malformed("refusal code"))
        ));
    }

    #[test]
    fn truncated_messages_fail_typed() {
        let bytes = encode_request(11, &[vec![1u8; 10]]);
        for cut in [0, 1, 5, 14, bytes.len() - 1] {
            assert!(matches!(
                decode_request(&bytes[..cut]),
                Err(ServeError::Malformed(_))
            ));
        }
        let mut wrong = bytes.clone();
        wrong[0] = TAG_ACK;
        assert!(decode_request(&wrong).is_err());
        // A forged count larger than the buffer cannot trigger a huge
        // allocation.
        let mut forged = encode_request(1, &[]);
        let len = forged.len();
        forged[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&forged).is_err());
    }
}
