//! A small synthetic CNN for *measured* end-to-end robustness.
//!
//! The margin model in [`crate::robustness`] is a calibrated proxy; this
//! module complements it with a direct experiment: build a random W4A4
//! CNN, label inputs by the exact network's own argmax (so the "task" is
//! perfectly learnable by construction), then re-run inference with
//! HConv-level errors injected at every convolution and measure how often
//! the argmax survives — the network-level robustness of Section III-A,
//! observed rather than modeled.

use crate::layers::{conv_reference, ConvLayerSpec};
use crate::quant::{div_round_half_away, Quantizer, Requantizer};
use flash_he::matvec::matvec_reference;
use rand::Rng;

/// A fixed random quantized CNN: a few conv layers, global average
/// pooling, one FC classifier.
#[derive(Debug, Clone)]
pub struct SyntheticCnn {
    layers: Vec<ConvLayerSpec>,
    weights: Vec<Vec<i64>>,
    requants: Vec<Requantizer>,
    fc: (usize, usize),
    fc_weights: Vec<i64>,
}

impl SyntheticCnn {
    /// Builds a CNN with the given conv specs (channel flow must chain)
    /// and `classes` outputs, calibrating each re-quantizer on random
    /// data.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer channels do not chain.
    pub fn generate<R: Rng>(layers: Vec<ConvLayerSpec>, classes: usize, rng: &mut R) -> Self {
        for w in layers.windows(2) {
            assert_eq!(w[0].m, w[1].c, "channel flow must chain");
        }
        let wq = Quantizer::w4();
        let weights: Vec<Vec<i64>> = layers.iter().map(|l| l.sample_weights(wq, rng)).collect();
        // calibrate requantizers with one random forward pass
        let mut requants = Vec::with_capacity(layers.len());
        let mut x = layers[0].sample_input(Quantizer::a4(), rng);
        for (l, w) in layers.iter().zip(&weights) {
            let y = conv_reference(&x, w, l);
            let max_sp = y.iter().map(|v| v.abs()).max().unwrap_or(1).max(1);
            let rq = Requantizer::calibrate(max_sp, 4);
            x = y.iter().map(|&v| rq.apply(v)).collect();
            requants.push(rq);
        }
        let last = layers.last().expect("at least one layer");
        let fc_in = last.m; // after global average pooling
        let fc_weights = (0..classes * fc_in).map(|_| wq.sample(rng)).collect();
        Self {
            layers,
            weights,
            requants,
            fc: (fc_in, classes),
            fc_weights,
        }
    }

    /// The input tensor size.
    pub fn input_len(&self) -> usize {
        let l = &self.layers[0];
        l.c * l.h * l.w
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.fc.1
    }

    /// The convolution layer specs, in execution order.
    pub fn layer_specs(&self) -> &[ConvLayerSpec] {
        &self.layers
    }

    /// The quantized weights of conv layer `i`.
    pub fn layer_weights(&self, i: usize) -> &[i64] {
        &self.weights[i]
    }

    /// The calibrated requantizer of conv layer `i`.
    pub fn requantizer(&self, i: usize) -> Requantizer {
        self.requants[i]
    }

    /// The FC classifier dimensions `(in_features, classes)`.
    pub fn fc_dims(&self) -> (usize, usize) {
        self.fc
    }

    /// The FC classifier weights, row-major `classes × in_features`.
    pub fn fc_weights(&self) -> &[i64] {
        &self.fc_weights
    }

    /// Exact integer inference; returns the logits.
    pub fn logits(&self, x: &[i64]) -> Vec<i64> {
        self.logits_with_errors(x, &vec![0.0; self.layers.len()], &mut NoRng)
    }

    /// Inference with zero-mean Gaussian errors of the given per-layer
    /// standard deviation injected into every conv sum-product (the
    /// decrypted HConv error of the approximate datapath).
    pub fn logits_with_errors<R: Rng>(
        &self,
        x: &[i64],
        error_std: &[f64],
        rng: &mut R,
    ) -> Vec<i64> {
        assert_eq!(x.len(), self.input_len(), "input size mismatch");
        assert_eq!(error_std.len(), self.layers.len(), "one std per layer");
        let mut act = x.to_vec();
        for ((l, w), (rq, &std)) in self
            .layers
            .iter()
            .zip(&self.weights)
            .zip(self.requants.iter().zip(error_std))
        {
            let mut y = conv_reference(&act, w, l);
            if std > 0.0 {
                for v in y.iter_mut() {
                    *v += gaussian(rng, std).round() as i64;
                }
            }
            // ReLU + requantize (the 2PC non-linear stage)
            act = y.iter().map(|&v| rq.apply(v.max(0))).collect();
        }
        // global average pooling per channel; rounds to nearest (ties
        // away from zero) like the requantizer, not toward zero
        let last = self.layers.last().unwrap();
        let spatial = last.out_h() * last.out_w();
        let pooled: Vec<i64> = (0..last.m)
            .map(|c| {
                div_round_half_away(
                    act[c * spatial..(c + 1) * spatial].iter().sum::<i64>(),
                    spatial as i64,
                )
            })
            .collect();
        matvec_reference(&self.fc_weights, &pooled, self.fc.0, self.fc.1)
    }

    /// Top-1 class of the logits: the *first* maximal element, matching
    /// the secure argmax (whose comparison tree keeps the earlier index
    /// on ties).
    pub fn argmax(logits: &[i64]) -> usize {
        assert!(!logits.is_empty(), "non-empty logits");
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate().skip(1) {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Measures argmax agreement between exact and error-injected
    /// inference over `samples` random inputs.
    pub fn agreement<R: Rng>(&self, error_std: &[f64], samples: usize, rng: &mut R) -> f64 {
        let aq = Quantizer::a4();
        let mut agree = 0usize;
        for _ in 0..samples {
            let x: Vec<i64> = (0..self.input_len()).map(|_| aq.sample(rng)).collect();
            let exact = Self::argmax(&self.logits(&x));
            let noisy = Self::argmax(&self.logits_with_errors(&x, error_std, rng));
            if exact == noisy {
                agree += 1;
            }
        }
        agree as f64 / samples as f64
    }
}

fn gaussian<R: Rng>(rng: &mut R, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * std
}

/// A deterministic RNG stub for the zero-error path.
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("zero-error path must not sample")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!("zero-error path must not sample")
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("zero-error path must not sample")
    }
    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!("zero-error path must not sample")
    }
}

/// A standard 3-conv test network (8×8 inputs, 4→8→8→8 channels, 10
/// classes).
pub fn small_testnet<R: Rng>(rng: &mut R) -> SyntheticCnn {
    let spec = |name: &str, c: usize, m: usize| ConvLayerSpec {
        name: name.into(),
        c,
        h: 8,
        w: 8,
        m,
        k: 3,
        stride: 1,
        pad: 1,
    };
    SyntheticCnn::generate(
        vec![
            spec("conv1", 4, 8),
            spec("conv2", 8, 8),
            spec("conv3", 8, 8),
        ],
        10,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn argmax_ties_break_to_first_index() {
        // `max_by_key` returns the *last* maximal element; the secure
        // argmax keeps the earlier index on ties, so the reference must
        // too.
        assert_eq!(SyntheticCnn::argmax(&[3, 5, 5, 1]), 1);
        assert_eq!(SyntheticCnn::argmax(&[7, 7, 7]), 0);
        assert_eq!(SyntheticCnn::argmax(&[-2, -9, -2]), 0);
        assert_eq!(SyntheticCnn::argmax(&[1]), 0);
    }

    #[test]
    fn average_pooling_rounds_to_nearest() {
        // A handcrafted identity network: one 1×1 conv with weight 1 and
        // a unit FC, so the logit *is* the pooled channel average. The
        // activations [3, 4] sum to 7 over 2 positions: round-to-nearest
        // gives 4 where the old truncating division gave 3.
        let spec = ConvLayerSpec {
            name: "pool".into(),
            c: 1,
            h: 1,
            w: 2,
            m: 1,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let net = SyntheticCnn {
            layers: vec![spec],
            weights: vec![vec![1]],
            requants: vec![Requantizer {
                shift: 0,
                out_bits: 8,
            }],
            fc: (1, 1),
            fc_weights: vec![1],
        };
        assert_eq!(net.logits(&[3, 4]), vec![4]);
    }

    #[test]
    fn exact_inference_is_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = small_testnet(&mut rng);
        let x: Vec<i64> = (0..net.input_len())
            .map(|i| ((i as i64) % 15) - 7)
            .collect();
        assert_eq!(net.logits(&x), net.logits(&x));
        assert_eq!(net.classes(), 10);
    }

    #[test]
    fn zero_error_agreement_is_perfect() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let net = small_testnet(&mut rng);
        let stds = vec![0.0; 3];
        let a = net.agreement(&stds, 30, &mut rng);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn small_errors_mostly_absorbed_large_errors_not() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = small_testnet(&mut rng);
        // Sub-LSB noise: at std 0.25 the injected SP error is ±1 in a few
        // percent of elements and zero otherwise, far below the first
        // requantizer's step. (Before the average-pooling rounding fix
        // every channel sum truncated to zero, all logits were zero, and
        // this test passed vacuously at any noise level — the thresholds
        // here are calibrated against the non-degenerate network.)
        let tiny = vec![0.25; 3];
        let huge = vec![50_000.0; 3];
        let a_tiny = net.agreement(&tiny, 60, &mut rng);
        let a_huge = net.agreement(&huge, 60, &mut rng);
        assert!(a_tiny > 0.8, "tiny errors should be absorbed: {a_tiny}");
        assert!(
            a_huge < 0.5 && a_huge < a_tiny,
            "huge errors must hurt: {a_huge} vs {a_tiny}"
        );
    }

    #[test]
    fn agreement_monotone_in_error_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = small_testnet(&mut rng);
        let mut prev = 1.1;
        for scale in [0.0, 20.0, 2_000.0, 200_000.0] {
            let a = net.agreement(&[scale; 3], 40, &mut rng);
            assert!(a <= prev + 0.15, "agreement at {scale}: {a} vs prev {prev}");
            prev = a;
        }
    }
}
