//! Quantized CNN substrate: tensors, W4A4 quantization, convolution
//! layers, ResNet-18/-50 geometry, weight-polynomial sparsity and the
//! error-resilience models of the paper's Section III-A.
//!
//! The paper evaluates on pre-trained HAWQ-v3 W4A4 ResNets over ImageNet.
//! We reproduce every *geometry-driven* quantity exactly (layer shapes,
//! tiling, sparsity, transform counts) and model the *data-driven*
//! quantities (re-quantization error absorption, classification
//! robustness) with synthetic weights/activations drawn from realistic
//! quantized distributions plus a logit-margin accuracy proxy — see
//! DESIGN.md §3 for the substitution rationale.
//!
//! * [`quant`] — symmetric quantization and re-quantization.
//! * [`layers`] — convolution layer specs and integer reference
//!   execution (any stride/padding).
//! * [`resnet`] — the full conv-layer tables of ResNet-18 and ResNet-50.
//! * [`sparsity`] — encoded weight-polynomial sparsity per layer
//!   (Figure 7).
//! * [`robustness`] — kernel/layer/network-level error-resilience
//!   models (Figure 5(b)).

pub mod layers;
pub mod quant;
pub mod resnet;
pub mod robustness;
pub mod sparsity;
pub mod synthetic;

pub use layers::ConvLayerSpec;
pub use resnet::{resnet18_conv_layers, resnet50_conv_layers, vgg16_conv_layers, Network};
