//! Layer tables of ResNet-18 and ResNet-50 (ImageNet geometry).
//!
//! Only the linear (convolution + fully-connected) layers matter for the
//! hybrid protocol — non-linearities run under 2PC. The tables below
//! enumerate every convolution in execution order with its exact input
//! geometry, matching torchvision's reference models.

use crate::layers::ConvLayerSpec;

/// A network's linear-layer inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Model name (`"resnet18"` / `"resnet50"`).
    pub name: String,
    /// All convolutions in execution order.
    pub convs: Vec<ConvLayerSpec>,
    /// The fully-connected layers `(in_features, out_features)`, in
    /// execution order (ResNets have one; VGG has three).
    pub fcs: Vec<(usize, usize)>,
}

impl Network {
    /// Total cleartext MACs over all conv layers.
    pub fn total_macs(&self) -> u64 {
        self.convs.iter().map(|l| l.macs()).sum::<u64>()
            + self.fcs.iter().map(|&(i, o)| (i * o) as u64).sum::<u64>()
    }

    /// Looks a layer up by (1-based) index, the numbering used by the
    /// paper's "layer 28 / layer 41 of ResNet-50".
    pub fn layer(&self, index_1based: usize) -> &ConvLayerSpec {
        &self.convs[index_1based - 1]
    }
}

fn conv(
    name: String,
    c: usize,
    h: usize,
    m: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> ConvLayerSpec {
    ConvLayerSpec {
        name,
        c,
        h,
        w: h,
        m,
        k,
        stride,
        pad,
    }
}

/// The convolution layers of ResNet-18.
pub fn resnet18_conv_layers() -> Network {
    let mut v = Vec::new();
    v.push(conv("conv1".into(), 3, 224, 64, 7, 2, 3));
    // After 3x3/2 max-pool: 56x56.
    let stages = [
        (64usize, 64usize, 56usize, 1usize), // layer1
        (64, 128, 56, 2),                    // layer2 (input H of first conv)
        (128, 256, 28, 2),                   // layer3
        (256, 512, 14, 2),                   // layer4
    ];
    for (si, &(c_in, c_out, h_in, first_stride)) in stages.iter().enumerate() {
        let stage = si + 1;
        for block in 0..2 {
            let (bc, bh, bs) = if block == 0 {
                (c_in, h_in, first_stride)
            } else {
                (c_out, h_in / first_stride, 1)
            };
            v.push(conv(
                format!("layer{stage}.{block}.conv1"),
                bc,
                bh,
                c_out,
                3,
                bs,
                1,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv2"),
                c_out,
                h_in / first_stride,
                c_out,
                3,
                1,
                1,
            ));
            if block == 0 && (first_stride != 1 || c_in != c_out) {
                v.push(conv(
                    format!("layer{stage}.{block}.downsample"),
                    c_in,
                    h_in,
                    c_out,
                    1,
                    first_stride,
                    0,
                ));
            }
        }
    }
    Network {
        name: "resnet18".into(),
        convs: v,
        fcs: vec![(512, 1000)],
    }
}

/// The convolution layers of ResNet-50 (bottleneck blocks, stride on the
/// 3×3 as in torchvision).
pub fn resnet50_conv_layers() -> Network {
    let mut v = Vec::new();
    v.push(conv("conv1".into(), 3, 224, 64, 7, 2, 3));
    let stages = [
        (256usize, 64usize, 56usize, 3usize, 1usize), // layer1: in 64 (after pool)
        (512, 128, 56, 4, 2),                         // layer2
        (1024, 256, 28, 6, 2),                        // layer3
        (2048, 512, 14, 3, 2),                        // layer4
    ];
    let mut c_in = 64; // channels entering the stage
    for (si, &(c_out, width, h_in, blocks, first_stride)) in stages.iter().enumerate() {
        let stage = si + 1;
        for block in 0..blocks {
            let (bc, bh, bs) = if block == 0 {
                (c_in, h_in, first_stride)
            } else {
                (c_out, h_in / first_stride, 1)
            };
            let h_mid = bh; // 1x1 keeps dims
            v.push(conv(
                format!("layer{stage}.{block}.conv1"),
                bc,
                bh,
                width,
                1,
                1,
                0,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv2"),
                width,
                h_mid,
                width,
                3,
                bs,
                1,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv3"),
                width,
                h_in / first_stride,
                c_out,
                1,
                1,
                0,
            ));
            if block == 0 {
                v.push(conv(
                    format!("layer{stage}.{block}.downsample"),
                    bc,
                    bh,
                    c_out,
                    1,
                    bs,
                    0,
                ));
            }
        }
        c_in = c_out;
    }
    Network {
        name: "resnet50".into(),
        convs: v,
        fcs: vec![(2048, 1000)],
    }
}

/// The convolution layers of VGG-16 — not evaluated by the paper, but a
/// useful stress case: all-3×3, no 1×1 layers, and a three-layer
/// classifier head, so the sparse dataflow sees only its harder pattern
/// class.
pub fn vgg16_conv_layers() -> Network {
    let cfg: [(usize, usize, usize, usize); 13] = [
        (3, 64, 224, 1),
        (64, 64, 224, 1),
        (64, 128, 112, 2),
        (128, 128, 112, 2),
        (128, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 512, 28, 4),
        (512, 512, 28, 4),
        (512, 512, 28, 4),
        (512, 512, 14, 5),
        (512, 512, 14, 5),
        (512, 512, 14, 5),
    ];
    let mut block_idx = [0usize; 6];
    let convs = cfg
        .iter()
        .map(|&(c, m, h, stage)| {
            block_idx[stage] += 1;
            conv(
                format!("conv{stage}_{}", block_idx[stage]),
                c,
                h,
                m,
                3,
                1,
                1,
            )
        })
        .collect();
    Network {
        name: "vgg16".into(),
        convs,
        fcs: vec![(512 * 7 * 7, 4096), (4096, 4096), (4096, 1000)],
    }
}

/// The three convolutions of one ResNet-50 stage-1 residual block
/// (the Figure-1 profiling workload).
pub fn resnet50_residual_block() -> Vec<ConvLayerSpec> {
    vec![
        conv("block.conv1".into(), 256, 56, 64, 1, 1, 0),
        conv("block.conv2".into(), 64, 56, 64, 3, 1, 1),
        conv("block.conv3".into(), 64, 56, 256, 1, 1, 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_inventory() {
        let net = resnet18_conv_layers();
        // 1 stem + 4 stages x (2 blocks x 2 convs) + 3 downsamples = 20
        assert_eq!(net.convs.len(), 20);
        assert_eq!(net.convs[0].out_h(), 112);
        // last conv operates at 7x7 on 512 channels
        let last = net.convs.last().unwrap();
        assert_eq!(last.h, 7);
        assert_eq!(last.m, 512);
        // total macs ~ 1.8 GMACs for ResNet-18
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.5..2.2).contains(&g), "GMACs = {g}");
    }

    #[test]
    fn resnet50_inventory() {
        let net = resnet50_conv_layers();
        // 1 stem + 3*(3)+1 + 4*3+1 + 6*3+1 + 3*3+1 = 53
        assert_eq!(net.convs.len(), 53);
        // total macs ~ 4.1 GMACs for ResNet-50
        let g = net.total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&g), "GMACs = {g}");
        // the paper's H = W = 56 (58 padded), k = 3 layers exist
        assert!(net
            .convs
            .iter()
            .any(|l| l.h == 56 && l.k == 3 && l.stride == 1 && l.pad == 1));
    }

    #[test]
    fn resnet50_channel_flow_is_consistent() {
        let net = resnet50_conv_layers();
        // every 3x3 conv has matching in/out widths within its block
        for l in &net.convs {
            if l.name.ends_with("conv2") {
                assert_eq!(l.c, l.m, "{}", l.name);
            }
        }
        // stage outputs: 256, 512, 1024, 2048
        assert!(net.convs.iter().any(|l| l.m == 2048));
        assert_eq!(net.fcs, vec![(2048, 1000)]);
    }

    #[test]
    fn paper_reference_layers_exist() {
        let net = resnet50_conv_layers();
        let l28 = net.layer(28);
        let l41 = net.layer(41);
        // both are mid/late-network layers at 28x28 or 14x14
        assert!(l28.h == 28 || l28.h == 14, "layer 28 at H={}", l28.h);
        assert!(l41.h == 14 || l41.h == 28, "layer 41 at H={}", l41.h);
    }

    #[test]
    fn vgg16_inventory() {
        let net = vgg16_conv_layers();
        assert_eq!(net.convs.len(), 13);
        assert!(net.convs.iter().all(|l| l.k == 3 && l.stride == 1));
        // ~15.3 GMACs of convolution + 123M of FC
        let g = net.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&g), "GMACs = {g}");
        assert_eq!(net.fcs.len(), 3);
        assert_eq!(net.fcs[0], (25088, 4096));
        // channel flow chains
        for w in net.convs.windows(2) {
            assert_eq!(w[0].m, w[1].c, "{} -> {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn residual_block_shapes_chain() {
        let block = resnet50_residual_block();
        assert_eq!(block[0].m, block[1].c);
        assert_eq!(block[1].m, block[2].c);
        assert_eq!(block[2].m, 256);
        for l in &block {
            assert_eq!(l.out_h(), 56);
        }
    }

    #[test]
    fn downsample_dimensions() {
        let net = resnet18_conv_layers();
        let ds: Vec<_> = net
            .convs
            .iter()
            .filter(|l| l.name.contains("downsample"))
            .collect();
        assert_eq!(ds.len(), 3);
        for d in ds {
            assert_eq!(d.k, 1);
            assert_eq!(d.stride, 2);
            assert_eq!(d.m, 2 * d.c);
        }
    }
}
