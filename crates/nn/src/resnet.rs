//! Layer tables of ResNet-18 and ResNet-50 (ImageNet geometry).
//!
//! Only the linear (convolution + fully-connected) layers matter for the
//! hybrid protocol — non-linearities run under 2PC. The tables below
//! enumerate every convolution in execution order with its exact input
//! geometry, matching torchvision's reference models.

use crate::layers::{conv_reference, maxpool_reference, ConvLayerSpec};
use crate::quant::{div_round_half_away, Quantizer, Requantizer};
use flash_he::matvec::matvec_reference;
use rand::Rng;

/// A network's linear-layer inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Model name (`"resnet18"` / `"resnet50"`).
    pub name: String,
    /// All convolutions in execution order.
    pub convs: Vec<ConvLayerSpec>,
    /// The fully-connected layers `(in_features, out_features)`, in
    /// execution order (ResNets have one; VGG has three).
    pub fcs: Vec<(usize, usize)>,
}

impl Network {
    /// Total cleartext MACs over all conv layers.
    pub fn total_macs(&self) -> u64 {
        self.convs.iter().map(|l| l.macs()).sum::<u64>()
            + self.fcs.iter().map(|&(i, o)| (i * o) as u64).sum::<u64>()
    }

    /// Looks a layer up by (1-based) index, the numbering used by the
    /// paper's "layer 28 / layer 41 of ResNet-50".
    pub fn layer(&self, index_1based: usize) -> &ConvLayerSpec {
        &self.convs[index_1based - 1]
    }
}

fn conv(
    name: String,
    c: usize,
    h: usize,
    m: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> ConvLayerSpec {
    ConvLayerSpec {
        name,
        c,
        h,
        w: h,
        m,
        k,
        stride,
        pad,
    }
}

/// The convolution layers of ResNet-18.
pub fn resnet18_conv_layers() -> Network {
    let mut v = Vec::new();
    v.push(conv("conv1".into(), 3, 224, 64, 7, 2, 3));
    // After 3x3/2 max-pool: 56x56.
    let stages = [
        (64usize, 64usize, 56usize, 1usize), // layer1
        (64, 128, 56, 2),                    // layer2 (input H of first conv)
        (128, 256, 28, 2),                   // layer3
        (256, 512, 14, 2),                   // layer4
    ];
    for (si, &(c_in, c_out, h_in, first_stride)) in stages.iter().enumerate() {
        let stage = si + 1;
        for block in 0..2 {
            let (bc, bh, bs) = if block == 0 {
                (c_in, h_in, first_stride)
            } else {
                (c_out, h_in / first_stride, 1)
            };
            v.push(conv(
                format!("layer{stage}.{block}.conv1"),
                bc,
                bh,
                c_out,
                3,
                bs,
                1,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv2"),
                c_out,
                h_in / first_stride,
                c_out,
                3,
                1,
                1,
            ));
            if block == 0 && (first_stride != 1 || c_in != c_out) {
                v.push(conv(
                    format!("layer{stage}.{block}.downsample"),
                    c_in,
                    h_in,
                    c_out,
                    1,
                    first_stride,
                    0,
                ));
            }
        }
    }
    Network {
        name: "resnet18".into(),
        convs: v,
        fcs: vec![(512, 1000)],
    }
}

/// The convolution layers of ResNet-50 (bottleneck blocks, stride on the
/// 3×3 as in torchvision).
pub fn resnet50_conv_layers() -> Network {
    let mut v = Vec::new();
    v.push(conv("conv1".into(), 3, 224, 64, 7, 2, 3));
    let stages = [
        (256usize, 64usize, 56usize, 3usize, 1usize), // layer1: in 64 (after pool)
        (512, 128, 56, 4, 2),                         // layer2
        (1024, 256, 28, 6, 2),                        // layer3
        (2048, 512, 14, 3, 2),                        // layer4
    ];
    let mut c_in = 64; // channels entering the stage
    for (si, &(c_out, width, h_in, blocks, first_stride)) in stages.iter().enumerate() {
        let stage = si + 1;
        for block in 0..blocks {
            let (bc, bh, bs) = if block == 0 {
                (c_in, h_in, first_stride)
            } else {
                (c_out, h_in / first_stride, 1)
            };
            let h_mid = bh; // 1x1 keeps dims
            v.push(conv(
                format!("layer{stage}.{block}.conv1"),
                bc,
                bh,
                width,
                1,
                1,
                0,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv2"),
                width,
                h_mid,
                width,
                3,
                bs,
                1,
            ));
            v.push(conv(
                format!("layer{stage}.{block}.conv3"),
                width,
                h_in / first_stride,
                c_out,
                1,
                1,
                0,
            ));
            if block == 0 {
                v.push(conv(
                    format!("layer{stage}.{block}.downsample"),
                    bc,
                    bh,
                    c_out,
                    1,
                    bs,
                    0,
                ));
            }
        }
        c_in = c_out;
    }
    Network {
        name: "resnet50".into(),
        convs: v,
        fcs: vec![(2048, 1000)],
    }
}

/// The convolution layers of VGG-16 — not evaluated by the paper, but a
/// useful stress case: all-3×3, no 1×1 layers, and a three-layer
/// classifier head, so the sparse dataflow sees only its harder pattern
/// class.
pub fn vgg16_conv_layers() -> Network {
    let cfg: [(usize, usize, usize, usize); 13] = [
        (3, 64, 224, 1),
        (64, 64, 224, 1),
        (64, 128, 112, 2),
        (128, 128, 112, 2),
        (128, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 512, 28, 4),
        (512, 512, 28, 4),
        (512, 512, 28, 4),
        (512, 512, 14, 5),
        (512, 512, 14, 5),
        (512, 512, 14, 5),
    ];
    let mut block_idx = [0usize; 6];
    let convs = cfg
        .iter()
        .map(|&(c, m, h, stage)| {
            block_idx[stage] += 1;
            conv(
                format!("conv{stage}_{}", block_idx[stage]),
                c,
                h,
                m,
                3,
                1,
                1,
            )
        })
        .collect();
    Network {
        name: "vgg16".into(),
        convs,
        fcs: vec![(512 * 7 * 7, 4096), (4096, 4096), (4096, 1000)],
    }
}

/// One quantized convolution of the executable ResNet: reduced geometry
/// (the torchvision name is kept from the full table), W4 weights and
/// the calibrated re-quantizer of the stage that follows it.
#[derive(Debug, Clone)]
pub struct ConvUnit {
    /// Layer geometry.
    pub spec: ConvLayerSpec,
    /// Row-major quantized weights (`m·c·k·k`).
    pub weights: Vec<i64>,
    /// Re-quantizer applied after this convolution — after ReLU for the
    /// stem and `conv1` units, on the raw sum-product for `conv2` and
    /// `downsample` units (their ReLU comes after the residual add).
    pub rq: Requantizer,
}

/// One basic block: two 3×3 convolutions plus the optional 1×1
/// projection on the identity path.
#[derive(Debug, Clone)]
pub struct ResBlock {
    /// First 3×3 (carries the block's stride).
    pub conv1: ConvUnit,
    /// Second 3×3 (stride 1).
    pub conv2: ConvUnit,
    /// 1×1 stride-2 projection on stage boundaries, absent otherwise.
    pub down: Option<ConvUnit>,
}

/// An *executable* quantized ResNet-18 with the full residual topology —
/// stem, 3×3/2 max-pool, eight basic blocks with identity/projection
/// shortcuts, global average pooling and the classifier — instantiated
/// at reduced width/resolution so the hybrid HE/2PC protocol can run it
/// end to end in test time. The topology (layer names, kernel sizes,
/// strides, channel ratios, downsample placement) is derived from
/// [`resnet18_conv_layers`]; only channel counts and spatial resolution
/// shrink.
#[derive(Debug, Clone)]
pub struct QuantResnet {
    /// Model name, e.g. `"resnet18-w8-h32"`.
    pub name: String,
    /// The 7×7/2 stem convolution.
    pub stem: ConvUnit,
    /// Stem max-pool `(k, stride, pad)` — 3×3/2, pad 1.
    pub pool: (usize, usize, usize),
    /// The eight basic blocks in execution order.
    pub blocks: Vec<ResBlock>,
    /// Classifier dimensions `(in_features, classes)`.
    pub fc: (usize, usize),
    /// Row-major `classes × in_features` classifier weights.
    pub fc_weights: Vec<i64>,
}

impl QuantResnet {
    /// Builds a width/resolution-reduced quantized ResNet-18: channel
    /// counts divide by `channel_div` (the 3-channel input stays), the
    /// input is `input_h × input_h`, and every re-quantizer is
    /// calibrated by a cleartext forward pass on random data.
    ///
    /// # Panics
    ///
    /// Panics on a zero divisor, `input_h < 8` (five stride-2 stages
    /// need the room) or fewer than two classes.
    pub fn reduced_resnet18<R: Rng>(
        channel_div: usize,
        input_h: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(channel_div >= 1, "channel divisor must be positive");
        assert!(input_h >= 8, "five stride-2 stages need input_h >= 8");
        assert!(classes >= 2, "need at least two classes");
        let full = resnet18_conv_layers();
        let wq = Quantizer::w4();
        let ch = |c: usize| if c == 3 { 3 } else { (c / channel_div).max(1) };
        let unit = |spec: &ConvLayerSpec, c: usize, h: usize, w: usize, rng: &mut R| {
            let spec = ConvLayerSpec {
                name: spec.name.clone(),
                c,
                h,
                w,
                m: ch(spec.m),
                k: spec.k,
                stride: spec.stride,
                pad: spec.pad,
            };
            let weights = spec.sample_weights(wq, rng);
            // placeholder; the calibration pass below overwrites it
            let rq = Requantizer {
                shift: 0,
                out_bits: 4,
            };
            ConvUnit { spec, weights, rq }
        };

        // Group the full table into stem + (conv1, conv2, downsample?)
        // triples, then rebuild each with reduced channels and spatial
        // dimensions propagated from the reduced input.
        let convs = &full.convs;
        let stem = unit(&convs[0], 3, input_h, input_h, rng);
        let (mut c, mut h, mut w) = (stem.spec.m, stem.spec.out_h(), stem.spec.out_w());
        let pool = (3usize, 2usize, 1usize);
        h = (h + 2 * pool.2 - pool.0) / pool.1 + 1;
        w = (w + 2 * pool.2 - pool.0) / pool.1 + 1;
        let mut blocks = Vec::new();
        let mut i = 1;
        while i < convs.len() {
            let conv1 = unit(&convs[i], c, h, w, rng);
            let (m1, h1, w1) = (conv1.spec.m, conv1.spec.out_h(), conv1.spec.out_w());
            let conv2 = unit(&convs[i + 1], m1, h1, w1, rng);
            let down = convs
                .get(i + 2)
                .filter(|s| s.name.ends_with("downsample"))
                .map(|s| unit(s, c, h, w, rng));
            i += if down.is_some() { 3 } else { 2 };
            (c, h, w) = (conv2.spec.m, conv2.spec.out_h(), conv2.spec.out_w());
            blocks.push(ResBlock { conv1, conv2, down });
        }
        let fc_weights = (0..classes * c).map(|_| wq.sample(rng)).collect();
        let mut net = Self {
            name: format!("resnet18-w{channel_div}-h{input_h}"),
            stem,
            pool,
            blocks,
            fc: (c, classes),
            fc_weights,
        };
        let x = net.stem.spec.sample_input(Quantizer::a4(), rng);
        let rqs = net.calibrate_rqs(&x);
        for (u, rq) in net.units_mut().into_iter().zip(rqs) {
            u.rq = rq;
        }
        net
    }

    /// The input tensor size (`3 · input_h²`).
    pub fn input_len(&self) -> usize {
        let s = &self.stem.spec;
        s.c * s.h * s.w
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.fc.1
    }

    /// Every convolution in execution order (stem, then per block
    /// `conv1`, `conv2`, `downsample?`) — the order re-quantizers are
    /// consumed in during a forward pass.
    pub fn units_in_order(&self) -> Vec<&ConvUnit> {
        let mut v = vec![&self.stem];
        for b in &self.blocks {
            v.push(&b.conv1);
            v.push(&b.conv2);
            if let Some(d) = &b.down {
                v.push(d);
            }
        }
        v
    }

    fn units_mut(&mut self) -> Vec<&mut ConvUnit> {
        let mut v = vec![&mut self.stem];
        for b in &mut self.blocks {
            v.push(&mut b.conv1);
            v.push(&mut b.conv2);
            if let Some(d) = &mut b.down {
                v.push(d);
            }
        }
        v
    }

    /// Exact integer inference; returns the logits.
    pub fn logits(&self, x: &[i64]) -> Vec<i64> {
        let units = self.units_in_order();
        let mut next = 0;
        self.forward_with(x, |_| {
            let rq = units[next].rq;
            next += 1;
            rq
        })
    }

    /// One calibration pass: re-quantizers are derived from each conv's
    /// raw sum-products *in execution order*, so every layer calibrates
    /// on properly re-quantized upstream activations.
    fn calibrate_rqs(&self, x: &[i64]) -> Vec<Requantizer> {
        let mut rqs = Vec::new();
        self.forward_with(x, |y| {
            let max_sp = y.iter().map(|v| v.abs()).max().unwrap_or(1).max(1);
            let rq = Requantizer::calibrate(max_sp, 4);
            rqs.push(rq);
            rq
        });
        rqs
    }

    /// The single forward implementation both [`Self::logits`] and
    /// calibration share. `rq_for` is called once per convolution, in
    /// execution order, with the raw sum-products, and returns the
    /// re-quantizer to apply — so the plaintext reference and the
    /// private execution can only ever disagree if the shared topology
    /// itself is wrong.
    fn forward_with(&self, x: &[i64], mut rq_for: impl FnMut(&[i64]) -> Requantizer) -> Vec<i64> {
        let s = &self.stem;
        assert_eq!(x.len(), self.input_len(), "input size mismatch");
        let y = conv_reference(x, &s.weights, &s.spec);
        let rq = rq_for(&y);
        let mut a: Vec<i64> = y.iter().map(|&v| rq.apply(v.max(0))).collect();
        let (mut c, mut h, mut w) = (s.spec.m, s.spec.out_h(), s.spec.out_w());
        let (pk, ps, pp) = self.pool;
        a = maxpool_reference(&a, (c, h, w), pk, ps, pp);
        h = (h + 2 * pp - pk) / ps + 1;
        w = (w + 2 * pp - pk) / ps + 1;
        for b in &self.blocks {
            let y1 = conv_reference(&a, &b.conv1.weights, &b.conv1.spec);
            let rq1 = rq_for(&y1);
            let t: Vec<i64> = y1.iter().map(|&v| rq1.apply(v.max(0))).collect();
            let y2 = conv_reference(&t, &b.conv2.weights, &b.conv2.spec);
            let rq2 = rq_for(&y2);
            let shortcut: Vec<i64> = match &b.down {
                Some(d) => {
                    let yd = conv_reference(&a, &d.weights, &d.spec);
                    let rqd = rq_for(&yd);
                    yd.iter().map(|&v| rqd.apply(v)).collect()
                }
                None => a.clone(),
            };
            a = y2
                .iter()
                .zip(&shortcut)
                .map(|(&p, &q)| (rq2.apply(p) + q).max(0))
                .collect();
            (c, h, w) = (b.conv2.spec.m, b.conv2.spec.out_h(), b.conv2.spec.out_w());
        }
        let spatial = h * w;
        let pooled: Vec<i64> = (0..c)
            .map(|ch| {
                div_round_half_away(
                    a[ch * spatial..(ch + 1) * spatial].iter().sum::<i64>(),
                    spatial as i64,
                )
            })
            .collect();
        matvec_reference(&self.fc_weights, &pooled, self.fc.0, self.fc.1)
    }
}

/// The three convolutions of one ResNet-50 stage-1 residual block
/// (the Figure-1 profiling workload).
pub fn resnet50_residual_block() -> Vec<ConvLayerSpec> {
    vec![
        conv("block.conv1".into(), 256, 56, 64, 1, 1, 0),
        conv("block.conv2".into(), 64, 56, 64, 3, 1, 1),
        conv("block.conv3".into(), 64, 56, 256, 1, 1, 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn resnet18_inventory() {
        let net = resnet18_conv_layers();
        // 1 stem + 4 stages x (2 blocks x 2 convs) + 3 downsamples = 20
        assert_eq!(net.convs.len(), 20);
        assert_eq!(net.convs[0].out_h(), 112);
        // last conv operates at 7x7 on 512 channels
        let last = net.convs.last().unwrap();
        assert_eq!(last.h, 7);
        assert_eq!(last.m, 512);
        // total macs ~ 1.8 GMACs for ResNet-18
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.5..2.2).contains(&g), "GMACs = {g}");
    }

    #[test]
    fn resnet50_inventory() {
        let net = resnet50_conv_layers();
        // 1 stem + 3*(3)+1 + 4*3+1 + 6*3+1 + 3*3+1 = 53
        assert_eq!(net.convs.len(), 53);
        // total macs ~ 4.1 GMACs for ResNet-50
        let g = net.total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&g), "GMACs = {g}");
        // the paper's H = W = 56 (58 padded), k = 3 layers exist
        assert!(net
            .convs
            .iter()
            .any(|l| l.h == 56 && l.k == 3 && l.stride == 1 && l.pad == 1));
    }

    #[test]
    fn resnet50_channel_flow_is_consistent() {
        let net = resnet50_conv_layers();
        // every 3x3 conv has matching in/out widths within its block
        for l in &net.convs {
            if l.name.ends_with("conv2") {
                assert_eq!(l.c, l.m, "{}", l.name);
            }
        }
        // stage outputs: 256, 512, 1024, 2048
        assert!(net.convs.iter().any(|l| l.m == 2048));
        assert_eq!(net.fcs, vec![(2048, 1000)]);
    }

    #[test]
    fn paper_reference_layers_exist() {
        let net = resnet50_conv_layers();
        let l28 = net.layer(28);
        let l41 = net.layer(41);
        // both are mid/late-network layers at 28x28 or 14x14
        assert!(l28.h == 28 || l28.h == 14, "layer 28 at H={}", l28.h);
        assert!(l41.h == 14 || l41.h == 28, "layer 41 at H={}", l41.h);
    }

    #[test]
    fn vgg16_inventory() {
        let net = vgg16_conv_layers();
        assert_eq!(net.convs.len(), 13);
        assert!(net.convs.iter().all(|l| l.k == 3 && l.stride == 1));
        // ~15.3 GMACs of convolution + 123M of FC
        let g = net.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&g), "GMACs = {g}");
        assert_eq!(net.fcs.len(), 3);
        assert_eq!(net.fcs[0], (25088, 4096));
        // channel flow chains
        for w in net.convs.windows(2) {
            assert_eq!(w[0].m, w[1].c, "{} -> {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn residual_block_shapes_chain() {
        let block = resnet50_residual_block();
        assert_eq!(block[0].m, block[1].c);
        assert_eq!(block[1].m, block[2].c);
        assert_eq!(block[2].m, 256);
        for l in &block {
            assert_eq!(l.out_h(), 56);
        }
    }

    #[test]
    fn reduced_resnet18_topology_matches_table() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = QuantResnet::reduced_resnet18(8, 32, 10, &mut rng);
        // 8 basic blocks, projections on the three stage boundaries
        assert_eq!(net.blocks.len(), 8);
        let downs: Vec<usize> = net
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.down.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(downs, vec![2, 4, 6]);
        // 20 convolutions total, same names as the full table
        let units = net.units_in_order();
        assert_eq!(units.len(), 20);
        let full = resnet18_conv_layers();
        // table order is conv1/conv2/downsample per block, execution
        // order is the same — names must match one-to-one
        for (u, f) in units.iter().zip(&full.convs) {
            assert_eq!(u.spec.name, f.name);
            assert_eq!(u.spec.k, f.k, "{}", f.name);
            assert_eq!(u.spec.stride, f.stride, "{}", f.name);
            assert_eq!(u.spec.pad, f.pad, "{}", f.name);
        }
        // channels divide by 8: stem 64 -> 8, final stage 512 -> 64
        assert_eq!(net.stem.spec.m, 8);
        assert_eq!(net.fc, (64, 10));
    }

    #[test]
    fn reduced_resnet18_geometry_chains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let net = QuantResnet::reduced_resnet18(16, 16, 6, &mut rng);
        for b in &net.blocks {
            // conv1 -> conv2 channel/spatial flow
            assert_eq!(b.conv1.spec.m, b.conv2.spec.c);
            assert_eq!(b.conv1.spec.out_h(), b.conv2.spec.h);
            // shortcut dims agree with the residual branch output
            if let Some(d) = &b.down {
                assert_eq!(d.spec.m, b.conv2.spec.m);
                assert_eq!(d.spec.out_h(), b.conv2.spec.out_h());
                assert_eq!(d.spec.out_w(), b.conv2.spec.out_w());
            } else {
                assert_eq!(b.conv1.spec.c, b.conv2.spec.m);
                assert_eq!(b.conv1.spec.h, b.conv2.spec.out_h());
            }
        }
    }

    #[test]
    fn reduced_resnet18_inference_is_deterministic_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let net = QuantResnet::reduced_resnet18(16, 16, 6, &mut rng);
        let x: Vec<i64> = (0..net.input_len())
            .map(|i| ((i as i64) % 15) - 7)
            .collect();
        let logits = net.logits(&x);
        assert_eq!(logits.len(), 6);
        assert_eq!(net.logits(&x), logits);
        // activations are 4-bit re-quantized throughout, so logits stay
        // far inside the l = 21 share ring's signed range
        assert!(logits.iter().all(|v| v.abs() < 1 << 20), "{logits:?}");
    }

    #[test]
    fn downsample_dimensions() {
        let net = resnet18_conv_layers();
        let ds: Vec<_> = net
            .convs
            .iter()
            .filter(|l| l.name.contains("downsample"))
            .collect();
        assert_eq!(ds.len(), 3);
        for d in ds {
            assert_eq!(d.k, 1);
            assert_eq!(d.stride, 2);
            assert_eq!(d.m, 2 * d.c);
        }
    }
}
