//! Weight-polynomial sparsity of encoded layers (Figure 7 of the paper).
//!
//! After Cheetah encoding, a weight polynomial carries at most `k²` valid
//! coefficients per `H·W` span — more than 90 % of coefficients are zero
//! for every ResNet layer. These helpers compute the exact patterns per
//! layer, feed them to the sparse-dataflow analyzer, and summarize the
//! statistics the figures plot.

use crate::layers::ConvLayerSpec;
use flash_he::encoding::ConvEncoder;
use flash_sparse::pattern::SparsityPattern;

/// Sparsity summary of one layer's encoded weight polynomials.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSparsity {
    /// Layer name.
    pub name: String,
    /// Ring degree used.
    pub n: usize,
    /// Valid (non-zero-capable) coefficients per weight polynomial.
    pub valid_per_poly: usize,
    /// Fraction of zero coefficients.
    pub sparsity: f64,
    /// Weight polynomials in the whole layer (`groups × m`, with stride-2
    /// layers counting all four phases).
    pub weight_polys: usize,
    /// The coefficient-domain pattern of one weight polynomial.
    pub pattern: SparsityPattern,
}

/// Computes the encoded weight sparsity of a layer at ring degree `n`.
///
/// For stride-2 layers the dominant phase (full `⌈k/2⌉²` taps) is
/// reported; phase polynomials only differ in a few taps.
pub fn layer_weight_sparsity(spec: &ConvLayerSpec, n: usize) -> LayerSparsity {
    let shape = spec.encoded_shape();
    let enc = ConvEncoder::new(shape, n);
    let idx = enc.weight_indices(0);
    let pattern = SparsityPattern::from_indices(n, idx.iter().copied());
    let phases = if spec.stride == 2 { 4 } else { 1 };
    LayerSparsity {
        name: spec.name.clone(),
        n,
        valid_per_poly: idx.len(),
        sparsity: pattern.sparsity(),
        weight_polys: enc.groups() * shape.m * phases,
        pattern,
    }
}

/// The *folded* (half-size) pattern entering the negacyclic FFT of degree
/// `n`, in natural order.
pub fn folded_fft_pattern(layer: &LayerSparsity) -> SparsityPattern {
    let mask = layer.pattern.mask();
    let half = layer.n / 2;
    SparsityPattern::from_mask((0..half).map(|j| mask[j] || mask[j + half]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{resnet18_conv_layers, resnet50_conv_layers};

    const N: usize = 4096;

    #[test]
    fn resnet50_3x3_layers_are_over_90_percent_sparse() {
        // The paper's Figure 7 claim ("more than 90%") holds for every
        // 3x3 layer except the final 7x7-image stage, which still exceeds
        // 85%; the median is well above 90%.
        let net = resnet50_conv_layers();
        let mut sparsities = Vec::new();
        for l in net.convs.iter().filter(|l| l.k == 3 && l.stride == 1) {
            let s = layer_weight_sparsity(l, N);
            assert!(
                s.sparsity > 0.85,
                "{}: sparsity {:.3} should exceed 0.85",
                l.name,
                s.sparsity
            );
            sparsities.push(s.sparsity);
        }
        sparsities.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            sparsities[sparsities.len() / 2] > 0.9,
            "median must exceed 0.9"
        );
    }

    #[test]
    fn all_resnet_layers_encode_and_are_sparse() {
        for net in [resnet18_conv_layers(), resnet50_conv_layers()] {
            for l in &net.convs {
                let s = layer_weight_sparsity(l, N);
                assert!(s.valid_per_poly > 0);
                assert!(
                    s.sparsity > 0.5,
                    "{}/{}: sparsity {:.3}",
                    net.name,
                    l.name,
                    s.sparsity
                );
                assert!(s.weight_polys > 0);
            }
        }
    }

    #[test]
    fn folded_pattern_has_union_semantics() {
        let net = resnet50_conv_layers();
        let l = net
            .convs
            .iter()
            .find(|l| l.k == 3 && l.stride == 1)
            .unwrap();
        let s = layer_weight_sparsity(l, N);
        let folded = folded_fft_pattern(&s);
        assert_eq!(folded.len(), N / 2);
        assert!(folded.count() <= s.valid_per_poly);
        assert!(folded.count() >= s.valid_per_poly / 2);
    }

    #[test]
    fn one_by_one_kernels_are_extremely_sparse() {
        let net = resnet50_conv_layers();
        let l = net
            .convs
            .iter()
            .find(|l| l.k == 1 && l.stride == 1)
            .unwrap();
        let s = layer_weight_sparsity(l, N);
        // one valid coefficient per channel span
        assert!(s.sparsity > 0.99, "{}: {:.4}", l.name, s.sparsity);
    }
}
