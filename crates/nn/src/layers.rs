//! Convolution layer specifications and integer reference execution.

use crate::quant::Quantizer;
use flash_he::encoding::{pad_input, ConvShape};
use rand::Rng;

/// A convolution layer of a quantized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayerSpec {
    /// Human-readable name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// Input channels.
    pub c: usize,
    /// Input height (pre-padding).
    pub h: usize,
    /// Input width (pre-padding).
    pub w: usize,
    /// Output channels.
    pub m: usize,
    /// Kernel size.
    pub k: usize,
    /// Stride (1 or 2 in ResNets).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvLayerSpec {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Multiply-accumulates of the cleartext convolution.
    pub fn macs(&self) -> u64 {
        (self.m * self.c * self.k * self.k * self.out_h() * self.out_w()) as u64
    }

    /// Number of weight values.
    pub fn weight_count(&self) -> usize {
        self.m * self.c * self.k * self.k
    }

    /// The padded stride-1 [`ConvShape`] this layer encodes to (stride-2
    /// layers are first decomposed; see
    /// [`flash_he::encoding::stride2_decompose`]).
    ///
    /// # Panics
    ///
    /// Panics for strides other than 1 and 2.
    pub fn encoded_shape(&self) -> ConvShape {
        match self.stride {
            1 => ConvShape {
                c: self.c,
                h: self.h + 2 * self.pad,
                w: self.w + 2 * self.pad,
                m: self.m,
                k: self.k,
            },
            2 => {
                let hp = self.h + 2 * self.pad;
                let wp = self.w + 2 * self.pad;
                ConvShape {
                    c: self.c,
                    h: hp.div_ceil(2),
                    w: wp.div_ceil(2),
                    m: self.m,
                    k: self.k.div_ceil(2),
                }
            }
            s => panic!("unsupported stride {s}"),
        }
    }

    /// Samples realistic quantized weights for this layer.
    pub fn sample_weights<R: Rng>(&self, q: Quantizer, rng: &mut R) -> Vec<i64> {
        (0..self.weight_count()).map(|_| q.sample(rng)).collect()
    }

    /// Samples a quantized input activation tensor.
    pub fn sample_input<R: Rng>(&self, q: Quantizer, rng: &mut R) -> Vec<i64> {
        (0..self.c * self.h * self.w)
            .map(|_| q.sample(rng))
            .collect()
    }
}

/// Integer reference convolution with stride and padding.
pub fn conv_reference(x: &[i64], f: &[i64], spec: &ConvLayerSpec) -> Vec<i64> {
    assert_eq!(x.len(), spec.c * spec.h * spec.w, "input size mismatch");
    assert_eq!(f.len(), spec.weight_count(), "weight size mismatch");
    let xp = pad_input(x, spec.c, spec.h, spec.w, spec.pad);
    let (hp, wp) = (spec.h + 2 * spec.pad, spec.w + 2 * spec.pad);
    let (oh, ow) = (spec.out_h(), spec.out_w());
    let mut y = vec![0i64; spec.m * oh * ow];
    for oc in 0..spec.m {
        for p in 0..oh {
            for q in 0..ow {
                let mut acc = 0i64;
                for c in 0..spec.c {
                    for i in 0..spec.k {
                        for j in 0..spec.k {
                            let xv = xp[(c * hp + p * spec.stride + i) * wp + q * spec.stride + j];
                            let fv = f[((oc * spec.c + c) * spec.k + i) * spec.k + j];
                            acc += xv * fv;
                        }
                    }
                }
                y[(oc * oh + p) * ow + q] = acc;
            }
        }
    }
    y
}

/// Plaintext max-pooling reference. Out-of-bounds (padded) positions
/// contribute 0 — the after-ReLU identity, matching the secure pooling's
/// window rule.
///
/// # Panics
///
/// Panics when the input length does not match `c·h·w`.
pub fn maxpool_reference(
    x: &[i64],
    (c, h, w): (usize, usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<i64> {
    assert_eq!(x.len(), c * h * w, "input size mismatch");
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i64::MIN;
                for dy in 0..k {
                    for dx in 0..k {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        let ix = (ox * stride + dx) as isize - pad as isize;
                        let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            x[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0
                        };
                        best = best.max(v);
                    }
                }
                out.push(best);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec(c: usize, h: usize, k: usize, stride: usize, pad: usize) -> ConvLayerSpec {
        ConvLayerSpec {
            name: "test".into(),
            c,
            h,
            w: h,
            m: 2,
            k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims() {
        // the classic "same" 3x3: 8x8 stays 8x8
        let s = spec(1, 8, 3, 1, 1);
        assert_eq!((s.out_h(), s.out_w()), (8, 8));
        // stride 2 halves
        let s = spec(1, 8, 3, 2, 1);
        assert_eq!((s.out_h(), s.out_w()), (4, 4));
        // 7x7/2 pad 3 on 224 -> 112 (ResNet conv1)
        let s = spec(3, 224, 7, 2, 3);
        assert_eq!(s.out_h(), 112);
    }

    #[test]
    fn macs_counting() {
        let s = spec(4, 8, 3, 1, 1);
        assert_eq!(s.macs(), (2 * 4 * 9 * 64) as u64);
    }

    #[test]
    fn conv_reference_identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input channel-summed.
        let s = ConvLayerSpec {
            name: "id".into(),
            c: 1,
            h: 4,
            w: 4,
            m: 1,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let x: Vec<i64> = (0..16).collect();
        let y = conv_reference(&x, &[1], &s);
        assert_eq!(y, x);
    }

    #[test]
    fn conv_reference_matches_stride1_oracle() {
        let s = spec(2, 6, 3, 1, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = s.sample_input(Quantizer::a4(), &mut rng);
        let f = s.sample_weights(Quantizer::w4(), &mut rng);
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        assert_eq!(
            conv_reference(&x, &f, &s),
            flash_he::encoding::direct_conv_stride1(&x, &f, &shape)
        );
    }

    #[test]
    fn encoded_shape_for_strides() {
        let s1 = spec(2, 8, 3, 1, 1);
        assert_eq!(
            s1.encoded_shape(),
            ConvShape {
                c: 2,
                h: 10,
                w: 10,
                m: 2,
                k: 3
            }
        );
        let s2 = spec(2, 8, 3, 2, 1);
        assert_eq!(
            s2.encoded_shape(),
            ConvShape {
                c: 2,
                h: 5,
                w: 5,
                m: 2,
                k: 2
            }
        );
    }
}
