//! Error-resilience models: the kernel / layer / network levels of the
//! paper's Section III-A and Figure 5(b).
//!
//! * **Kernel level** — BFV decryption absorbs any computation error below
//!   `q/(2t)` (tested directly in `flash-he`).
//! * **Layer level** — re-quantization discards sum-product LSBs; errors
//!   well below half a re-quantization step almost never flip an output.
//!   [`layer_flip_rate`] measures the flip probability empirically.
//! * **Network level** — small flip rates rarely change the argmax of the
//!   final logits. Lacking ImageNet, we model the per-image logit margin
//!   as a Gaussian calibrated to the reported baseline accuracy and
//!   degrade it with the injected error power ([`MarginModel`]); this is
//!   the documented substitution for HAWQ-v3 accuracy evaluation.

use crate::quant::Requantizer;
use rand::Rng;

/// Error function approximation (Abramowitz–Stegun 7.1.26, |ε| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation, adequate
/// for calibration purposes).
pub fn phi_inv(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
    // Coefficients for the central region.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -phi_inv(1.0 - p)
    }
}

/// Measures the probability that adding a Gaussian error of standard
/// deviation `error_std` to a layer's sum-products changes its
/// re-quantized outputs.
pub fn layer_flip_rate<R: Rng>(
    requant: &Requantizer,
    sp_samples: &[i64],
    error_std: f64,
    rng: &mut R,
) -> f64 {
    if sp_samples.is_empty() {
        return 0.0;
    }
    let mut flips = 0usize;
    for &sp in sp_samples {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let err = (z * error_std).round() as i64;
        if requant.flips(sp, err) {
            flips += 1;
        }
    }
    flips as f64 / sp_samples.len() as f64
}

/// Network-level accuracy proxy: the per-image top-1 logit margin is
/// modelled as `N(μ, 1)` with `μ = Φ⁻¹(baseline)`; computation errors add
/// an independent perturbation of standard deviation `sigma_e` (in margin
/// units), giving accuracy `Φ(μ / √(1 + σ_e²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginModel {
    /// Accuracy of the exact network (fraction, e.g. 0.7424).
    pub baseline: f64,
    /// Converts a layer-output flip rate into margin-space perturbation:
    /// `σ_e = gain · √(mean flip rate)`. Calibrated so the paper's k = 5
    /// trained operating point costs a fraction of a point of accuracy.
    pub gain: f64,
}

impl MarginModel {
    /// A model calibrated for ResNet-scale networks.
    pub fn new(baseline: f64) -> Self {
        Self {
            baseline,
            gain: 2.0,
        }
    }

    /// Predicted accuracy when the mean per-layer output flip rate is
    /// `flip_rate`. Never exceeds the baseline (errors cannot help).
    pub fn accuracy(&self, flip_rate: f64) -> f64 {
        let mu = phi_inv(self.baseline);
        let sigma_e = self.gain * flip_rate.max(0.0).sqrt();
        phi(mu / (1.0 + sigma_e * sigma_e).sqrt()).min(self.baseline)
    }

    /// Accuracy drop in percentage points.
    pub fn drop_points(&self, flip_rate: f64) -> f64 {
        (self.baseline - self.accuracy(flip_rate)) * 100.0
    }
}

/// Sweeps fixed-point data widths and returns the smallest width whose
/// HConv output error never flips a re-quantized output — the paper's
/// Figure 5(b) "27-bit FXP with no accuracy change" experiment.
///
/// `error_std_at(dw)` supplies the conv-output error standard deviation
/// for a given total data width (from the `flash-fft` error models).
pub fn min_exact_bitwidth(
    requant: &Requantizer,
    sp_samples: &[i64],
    widths: std::ops::RangeInclusive<u32>,
    mut error_std_at: impl FnMut(u32) -> f64,
    rng: &mut impl Rng,
) -> Option<u32> {
    for dw in widths {
        let rate = layer_flip_rate(requant, sp_samples, error_std_at(dw), rng);
        if rate == 0.0 {
            return Some(dw);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erf_and_phi_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn phi_inv_inverts_phi() {
        for p in [0.01, 0.1, 0.5, 0.6845, 0.7424, 0.99] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-3, "p={p}");
        }
    }

    #[test]
    fn flip_rate_monotone_in_error() {
        let r = Requantizer {
            shift: 12,
            out_bits: 4,
        };
        let sps: Vec<i64> = (-30000..30000).step_by(61).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let low = layer_flip_rate(&r, &sps, 4.0, &mut rng);
        let high = layer_flip_rate(&r, &sps, 4096.0, &mut rng);
        assert!(low < 0.05, "tiny errors absorbed, got {low}");
        assert!(high > 0.3, "large errors flip, got {high}");
    }

    #[test]
    fn margin_model_limits() {
        let m = MarginModel::new(0.7424);
        assert!((m.accuracy(0.0) - 0.7424).abs() < 1e-6);
        assert!(m.accuracy(0.5) < 0.7424);
        // small flip rates cost fractions of a point
        assert!(m.drop_points(1e-4) < 0.5, "{}", m.drop_points(1e-4));
        assert!(m.drop_points(0.05) > m.drop_points(0.001));
    }

    #[test]
    fn bitwidth_sweep_finds_threshold() {
        let r = Requantizer {
            shift: 12,
            out_bits: 4,
        };
        let sps: Vec<i64> = (-20000..20000).step_by(37).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        // synthetic error model: error halves per extra bit, huge at 16b
        let dw = min_exact_bitwidth(
            &r,
            &sps,
            16..=40,
            |w| (2.0f64).powi(34 - w as i32),
            &mut rng,
        );
        let dw = dw.expect("some width must be exact");
        assert!((20..=36).contains(&dw), "threshold at {dw}");
    }
}
