//! Symmetric quantization and re-quantization.
//!
//! The hybrid protocol runs over low-bit-width quantized tensors: W4A4
//! convolutions accumulate into a wide sum-product (SP) which the
//! *re-quantization* step scales back down to the activation width,
//! discarding low-order bits — the paper's layer-level error absorption.

use rand::Rng;

/// A symmetric signed quantizer with `bits` of precision
/// (range `[-2^{bits-1}, 2^{bits-1} - 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    /// Bit width (including sign).
    pub bits: u32,
    /// Real-value scale: `real ≈ q · scale`.
    pub scale: f64,
}

impl Quantizer {
    /// The standard 4-bit weight quantizer of a W4A4 network.
    pub fn w4() -> Self {
        Self {
            bits: 4,
            scale: 1.0 / 8.0,
        }
    }

    /// The standard 4-bit activation quantizer.
    pub fn a4() -> Self {
        Self {
            bits: 4,
            scale: 1.0 / 8.0,
        }
    }

    /// Smallest representable value.
    pub fn min(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Largest representable value.
    pub fn max(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Quantizes a real value (round to nearest, clamp).
    pub fn quantize(&self, x: f64) -> i64 {
        let q = (x / self.scale).round() as i64;
        q.clamp(self.min(), self.max())
    }

    /// Reconstructs the real value.
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 * self.scale
    }

    /// Samples a quantized value with a centered, roughly bell-shaped
    /// distribution (sum of three uniforms), matching the weight/
    /// activation histograms of trained quantized networks better than a
    /// flat uniform.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> i64 {
        let span = self.max() as f64;
        let x: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 3.0;
        ((x * span).round() as i64).clamp(self.min(), self.max())
    }
}

/// The re-quantization step of one layer: scale the wide sum-product down
/// by a power-of-two shift, then clamp into the activation range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requantizer {
    /// Right-shift applied to the sum-product.
    pub shift: u32,
    /// Output activation bit width.
    pub out_bits: u32,
}

impl Requantizer {
    /// Picks a shift so that `max_sp` maps near the top of the output
    /// range (how per-layer scales are calibrated in practice).
    pub fn calibrate(max_sp: i64, out_bits: u32) -> Self {
        let out_max = (1i64 << (out_bits - 1)) - 1;
        let mut shift = 0;
        let mut v = max_sp.abs().max(1);
        while v > out_max {
            v >>= 1;
            shift += 1;
        }
        Self { shift, out_bits }
    }

    /// Re-quantizes one sum-product value (round-to-nearest shift, clamp).
    pub fn apply(&self, sp: i64) -> i64 {
        let rounded = if self.shift == 0 {
            sp
        } else {
            let half = 1i64 << (self.shift - 1);
            // round half away from zero
            if sp >= 0 {
                (sp + half) >> self.shift
            } else {
                -((-sp + half) >> self.shift)
            }
        };
        let out_max = (1i64 << (self.out_bits - 1)) - 1;
        rounded.clamp(-out_max - 1, out_max)
    }

    /// Whether an additive error `err` on the sum-product can change the
    /// re-quantized output of value `sp` (the layer-level absorption
    /// predicate).
    pub fn flips(&self, sp: i64, err: i64) -> bool {
        self.apply(sp + err) != self.apply(sp)
    }
}

/// Integer division rounding to nearest, ties away from zero — the same
/// rounding rule [`Requantizer::apply`] uses for its power-of-two shift.
/// Average pooling divides channel sums by the (generally non-power-of-
/// two) spatial size and must agree with the requantizer on negative
/// sums, or the pooled features drift by one LSB between the plaintext
/// reference and the 2PC execution path.
///
/// # Panics
///
/// Panics for `d <= 0`.
#[inline]
pub fn div_round_half_away(n: i64, d: i64) -> i64 {
    assert!(d > 0, "divisor must be positive");
    if n >= 0 {
        (n + d / 2) / d
    } else {
        -((-n + d / 2) / d)
    }
}

/// The maximum possible absolute sum-product of a conv layer:
/// `C·k² · max|w| · max|x|` — sizes the plaintext modulus `t`.
pub fn max_sum_product(c: usize, k: usize, w_bits: u32, a_bits: u32) -> i64 {
    let w_max = 1i64 << (w_bits - 1);
    let a_max = 1i64 << (a_bits - 1);
    (c * k * k) as i64 * w_max * a_max
}

/// The plaintext bit width needed for that sum-product (the paper's "t is
/// determined by maximum SP bit-width").
pub fn required_plain_bits(c: usize, k: usize, w_bits: u32, a_bits: u32) -> u32 {
    64 - (max_sum_product(c, k, w_bits, a_bits) as u64).leading_zeros() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quantizer_range_and_roundtrip() {
        let q = Quantizer::w4();
        assert_eq!(q.min(), -8);
        assert_eq!(q.max(), 7);
        assert_eq!(q.quantize(0.5), 4);
        assert_eq!(q.quantize(10.0), 7); // clamps
        assert_eq!(q.quantize(-10.0), -8);
        assert!((q.dequantize(q.quantize(0.25)) - 0.25).abs() < q.scale / 2.0);
    }

    #[test]
    fn samples_stay_in_range_and_center() {
        let q = Quantizer::a4();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let xs: Vec<i64> = (0..10000).map(|_| q.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (q.min()..=q.max()).contains(&x)));
        let mean = xs.iter().sum::<i64>() as f64 / xs.len() as f64;
        assert!(mean.abs() < 0.2);
        // bell-shaped: zeros more common than extremes
        let zeros = xs.iter().filter(|&&x| x == 0).count();
        let sevens = xs.iter().filter(|&&x| x == 7).count();
        assert!(zeros > 2 * sevens);
    }

    #[test]
    fn requantizer_calibration() {
        let r = Requantizer::calibrate(9 * 8 * 8 * 64, 4);
        assert_eq!(r.out_bits, 4);
        // the max SP maps into range
        assert!(r.apply(9 * 8 * 8 * 64) <= 7);
        assert!(r.apply(-9 * 8 * 8 * 64) >= -8);
        assert_eq!(r.apply(0), 0);
    }

    #[test]
    fn small_errors_are_absorbed() {
        // Layer-level robustness: an error far below half the shift step
        // rarely changes the output.
        let r = Requantizer {
            shift: 10,
            out_bits: 4,
        };
        let mut flips = 0;
        for sp in (-4000..4000).step_by(17) {
            if r.flips(sp, 3) {
                flips += 1;
            }
        }
        assert!(
            flips < 5,
            "tiny errors should almost never flip, got {flips}"
        );
        // Errors comparable to the step always can.
        assert!(r.flips(511, 1024));
    }

    #[test]
    fn div_round_half_away_matches_requantizer_shift() {
        // For power-of-two divisors the helper must be bit-identical to
        // the requantizer's rounding shift (wide out_bits disable the
        // clamp so only the rounding rule is compared).
        let r = Requantizer {
            shift: 3,
            out_bits: 16,
        };
        for sp in -2000..2000 {
            assert_eq!(div_round_half_away(sp, 8), r.apply(sp), "sp={sp}");
        }
        // Non-power-of-two divisors: nearest, ties away from zero.
        assert_eq!(div_round_half_away(7, 3), 2);
        assert_eq!(div_round_half_away(-7, 3), -2);
        assert_eq!(div_round_half_away(3, 2), 2);
        assert_eq!(div_round_half_away(-3, 2), -2);
        // Truncating division would round -1/2 up to 0.
        assert_eq!(div_round_half_away(-1, 2), -1);
    }

    #[test]
    fn sp_bits_for_resnet_layer() {
        // 3x3 conv over 512 channels at W4A4: SP <= 512*9*8*8, 19 bits + sign
        let bits = required_plain_bits(512, 3, 4, 4);
        assert!((19..=21).contains(&bits), "bits = {bits}");
    }
}
