//! Runs every table/figure regeneration binary in sequence.
//!
//! ```text
//! cargo run --release -p flash-bench --bin paper_suite
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig01_breakdown",
        "table02_multipliers",
        "fig05_robustness",
        "fig07_sparsity",
        "fig11a_mult_reduction",
        "fig11bc_dse",
        "fig11de_ablation",
        "fig12_breakdown",
        "table03_efficiency",
        "table04_e2e",
        "suppl_twiddle_k",
        "suppl_ablations",
        "suppl_batching",
        "suppl_communication",
        "suppl_synthetic_accuracy",
        "suppl_sizing",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    println!();
    if failures.is_empty() {
        println!(
            "paper suite complete: all {} experiments regenerated.",
            bins.len()
        );
    } else {
        println!("paper suite: FAILURES in {failures:?}");
        std::process::exit(1);
    }
}
