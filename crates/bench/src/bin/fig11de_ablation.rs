//! Regenerates **Figure 11(d)(e)**: the ablation of sparse and
//! approximate optimizations on ResNet-50 / ResNet-18 HConv energy.

use flash_accel::config::FlashConfig;
use flash_accel::inference::{ablation_energy, run_network};
use flash_bench::{banner, pct, subhead};
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers};

fn main() {
    banner("Figure 11(d)(e): energy ablation of sparse & approximate FFT");
    let cfg = FlashConfig::paper_default();
    for (fig, net) in [
        ("(d)", resnet50_conv_layers()),
        ("(e)", resnet18_conv_layers()),
    ] {
        subhead(&format!("figure {fig}: {}", net.name));
        let bars = ablation_energy(&net, &cfg);
        let fp_weight = bars[0].1;
        let fp_total = bars[0].2;
        println!(
            "{:<18} {:>14} {:>10} {:>14} {:>10}",
            "design point", "weight uJ", "rel", "total uJ", "rel"
        );
        for (label, weight, total) in &bars {
            println!(
                "{label:<18} {weight:>14.1} {:>10} {total:>14.1} {:>10}",
                pct(weight / fp_weight),
                pct(total / fp_total)
            );
        }
        let flash_weight = bars.last().unwrap().1;
        println!();
        println!(
            "weight-transform energy: sparse-only {} / approx-only {} / FLASH {} of FP baseline",
            pct(bars[2].1 / fp_weight),
            pct(bars[3].1 / fp_weight),
            pct(flash_weight / fp_weight),
        );
        println!("paper: each single optimization ≈10%, combined ≈1%");

        let run = run_network(&net, &cfg);
        println!(
            "vs F1 (chip-level transforms + modular point-wise): FLASH reduces {} \
             (paper: ≈87%)",
            pct(run.energy_reduction_vs_f1())
        );
    }
}
