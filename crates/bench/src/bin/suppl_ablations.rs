//! Supplementary design-choice ablations (the DESIGN.md list):
//!
//! * DSE optimizer: Bayesian optimization vs NSGA-II vs random search,
//!   at equal evaluation budgets (hypervolume of the resulting fronts);
//! * butterfly radix: radix-2 vs radix-4 multiplication counts and the
//!   resulting BU-energy estimate for dense transforms;
//! * tile alignment: compact vs power-of-two strides — ciphertext count
//!   vs sparse-dataflow reduction.

use flash_bench::{banner, pct, subhead};
use flash_dse::bayesopt::{optimize_multi, random_search, BoConfig};
use flash_dse::nsga2::{nsga2, NsgaConfig};
use flash_dse::objective::Objective;
use flash_dse::pareto::{hypervolume, pareto_front};
use flash_dse::space::DesignSpace;
use flash_he::encoding::{ConvEncoder, ConvShape, TileAlignment};
use flash_ntt::ops::fft_complex_ops;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::{analyze, twist_mults};
use rand::SeedableRng;

fn main() {
    banner("Supplementary ablations: optimizer, radix, tile alignment");

    // ---------------- optimizer ablation ----------------
    subhead("DSE optimizer at equal budget (~240 evaluations, layer-28-like)");
    let he = flash_he::HeParams::flash_default();
    let space = DesignSpace::flash_default(he.n);
    let obj = Objective::from_layer(space, 36, 8.0, (he.t / 2) as f64);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let bo = optimize_multi(
        &obj,
        &[0.2, 0.5, 0.8],
        &BoConfig {
            init: 20,
            iters: 60,
            candidates: 192,
            ..BoConfig::default()
        },
        &mut rng,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let ga = nsga2(
        &obj,
        &NsgaConfig {
            population: 30,
            generations: 7,
        },
        &mut rng,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let rs = random_search(&obj, bo.len(), &mut rng);

    let ref_p = bo
        .iter()
        .chain(&ga)
        .chain(&rs)
        .map(|e| e.power)
        .fold(0.0f64, f64::max)
        * 1.1;
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "optimizer", "evals", "front size", "hypervolume"
    );
    for (name, evals) in [("bayesian", &bo), ("nsga2", &ga), ("random", &rs)] {
        let front = pareto_front(evals);
        println!(
            "{name:>12} {:>8} {:>12} {:>12.1}",
            evals.len(),
            front.len(),
            hypervolume(&front, ref_p, 20.0)
        );
    }
    println!("(the paper uses Bayesian optimization; both model-based searches should");
    println!(" dominate random at this budget)");

    // ---------------- radix ablation ----------------
    subhead("butterfly radix for the dense 2048-point transform");
    let r2 = fft_complex_ops(2048);
    let r4 = flash_fft::radix4::radix4_ops(2048);
    println!("radix-2: {} mults, {} adds", r2.mults, r2.adds);
    println!(
        "radix-4: {} mults, {} adds ({} of radix-2 multiplier activations)",
        r4.mults,
        r4.adds,
        pct(r4.mults as f64 / r2.mults as f64)
    );
    println!("FLASH keeps radix-2: its sparse dataflow leaves so few multiplications");
    println!("that BU simplicity wins; radix-4 would help the dense FP (activation) side.");

    // ---------------- alignment ablation ----------------
    subhead("tile alignment: compact vs power-of-two (ResNet-50 3x3 @56, N=4096)");
    let shape = ConvShape {
        c: 64,
        h: 58,
        w: 58,
        m: 64,
        k: 3,
    };
    println!(
        "{:>12} {:>10} {:>12} {:>14} {:>12}",
        "layout", "cts (g*b)", "sparse/ea", "dense/ea", "reduction"
    );
    for (name, align) in [
        ("compact", TileAlignment::Compact),
        ("pow2", TileAlignment::PowerOfTwo),
    ] {
        let enc = ConvEncoder::with_alignment(shape, 4096, align);
        let idx = enc.weight_indices(0);
        let half = 2048;
        let natural = SparsityPattern::from_indices(4096, idx.iter().copied());
        let folded = SparsityPattern::from_mask(
            (0..half)
                .map(|j| natural.get(j) || natural.get(j + half))
                .collect(),
        );
        let counts = analyze(&folded.bit_reversed());
        let sparse = counts.mults() + twist_mults(&folded);
        let dense = counts.dense_mults() + half as u64;
        println!(
            "{name:>12} {:>10} {:>12} {:>14} {:>12}",
            enc.activation_polys(),
            sparse,
            dense,
            pct(1.0 - sparse as f64 / dense as f64)
        );
    }
    println!("power-of-two strides cost nothing here (1 channel/poly either way) and");
    println!("unlock the bit-reverse-contiguity that skipping relies on.");
}
