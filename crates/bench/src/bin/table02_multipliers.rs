//! Regenerates **Table II**: hardware cost of modular, complex-FP and
//! approximate shift-add multipliers.

use flash_bench::{banner, compare_row};
use flash_hw::cost::{anchors, CostModel, TechNode};

fn main() {
    banner("Table II: multiplier hardware cost (area um^2 / power mW)");
    let m = CostModel::cmos28();

    let f1 = TechNode::n14().scale(m.modular_mult_barrett(32));
    compare_row(
        "F1 modular mult (32b, 14nm)",
        format!(
            "{:.0} / {:.2}",
            anchors::F1_MODULAR_32.area_um2,
            anchors::F1_MODULAR_32.power_mw
        ),
        format!("{:.0} / {:.2}", f1.area_um2, f1.power_mw),
    );

    let cham = m.modular_mult_shiftadd(39);
    compare_row(
        "CHAM modular mult (39b, 28nm)",
        format!(
            "{:.0} / {:.2}",
            anchors::CHAM_MODULAR_39.area_um2,
            anchors::CHAM_MODULAR_39.power_mw
        ),
        format!("{:.0} / {:.2}", cham.area_um2, cham.power_mw),
    );

    let fp = m.complex_fp_mult(8, 39);
    compare_row(
        "Complex FP mult (8+1+39, 28nm)",
        format!(
            "{:.0} / {:.2}",
            anchors::FLASH_FP_COMPLEX.area_um2,
            anchors::FLASH_FP_COMPLEX.power_mw
        ),
        format!("{:.0} / {:.2}", fp.area_um2, fp.power_mw),
    );

    let approx = m.shift_add_complex_mult(39, 5, 8);
    compare_row(
        "Approx FXP mult (39b, k=5, 28nm)",
        format!(
            "{:.0} / {:.2}",
            anchors::FLASH_APPROX_FXP.area_um2,
            anchors::FLASH_APPROX_FXP.power_mw
        ),
        format!("{:.0} / {:.2}", approx.area_um2, approx.power_mw),
    );

    println!();
    println!(
        "power ratios (measured): CHAM/approx = {:.2}x (paper 3.41x), FP/approx = {:.2}x (paper 7.44x)",
        cham.power_mw / approx.power_mw,
        fp.power_mw / approx.power_mw
    );
    println!(
        "paper's note: the k=5 shift-add multiplier is comparable to an 11-bit \
         multiplier — ours: {:.0} um^2 vs 11x11 array {:.0} um^2",
        approx.area_um2,
        m.int_mult(11, 11).area_um2 * 4.0 // complex = 4 real multipliers
    );
}
